//go:build race

package repro_test

// raceEnabled reports whether the race detector is compiled in; the
// scale-sensitive tests shrink their workloads under it (the detector
// multiplies both time and memory by an order of magnitude).
const raceEnabled = true
