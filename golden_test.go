package repro_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/learn"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenSummary renders the facts the golden files pin: the state
// count and the sorted set of accepted l-grams (l = 2, the compliance
// length) — every length-2 predicate sequence the automaton realises.
func goldenSummary(m *repro.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states: %d\n", m.States)
	var grams []string
	for _, g := range m.Automaton.SymbolSequences(2) {
		grams = append(grams, strings.Join(g, "\t"))
	}
	sort.Strings(grams)
	b.WriteString("lgrams:\n")
	for _, g := range grams {
		b.WriteString(g + "\n")
	}
	return b.String()
}

func readExampleTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var tr *trace.Trace
	switch filepath.Ext(path) {
	case ".csv":
		tr, err = trace.ReadCSV(f)
	case ".vcd":
		tr, err = trace.ReadVCD(f, nil)
	default:
		tr, err = trace.ReadEvents(f)
	}
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return tr
}

// TestGoldenExamples learns a model for every trace under
// examples/traces and compares its state count and accepted l-grams
// against the checked-in golden files. Regenerate with
//
//	go test -run TestGoldenExamples -update .
//
// It also pins the ISSUE's mode-equivalence criterion on exactly these
// example traces: the incremental path (live solver extension), the
// scratch-rebuild path and the portfolio path must all produce the
// identical automaton — same states, transitions, and start state.
func TestGoldenExamples(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "traces", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no traces under examples/traces")
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t.Run(name, func(t *testing.T) {
			tr := readExampleTrace(t, path)
			model, err := repro.Learn(tr, repro.LearnOptions{})
			if err != nil {
				t.Fatalf("learning %s: %v", path, err)
			}

			got := goldenSummary(model)
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\ngot:\n%s\nwant:\n%s\n(re-run with -update if intended)", path, got, want)
			}

			// Mode equivalence on the predicate sequence of this trace.
			modes := []struct {
				name string
				opts learn.Options
			}{
				{"incremental", learn.Options{Segmented: true}},
				{"scratch", learn.Options{Segmented: true, ScratchRefinement: true}},
				{"portfolio", learn.Options{Segmented: true, Portfolio: 4, Workers: 4}},
			}
			ref := model.Automaton.String()
			for _, mode := range modes {
				res, err := learn.GenerateModel(model.P, mode.opts)
				if err != nil {
					t.Fatalf("%s relearn: %v", mode.name, err)
				}
				if res.Automaton.String() != ref {
					t.Errorf("%s path diverged from the pipeline's automaton:\n%s\nwant:\n%s",
						mode.name, res.Automaton, ref)
				}
			}
		})
	}
}
