// Package predicate implements the transition-predicate abstraction of
// Algorithm 1 (procedure GeneratePredicate): it turns each sliding
// window of w trace observations into one predicate over X ∪ X′ by
// synthesising, for every non-symbolic variable, the smallest next(X)
// function consistent with the window's steps, and guarding on
// symbolic (event) variables whose value is constant across the
// window.
//
// Two engineering details make this scale to long traces and keep the
// predicate alphabet small, both direct consequences of the paper's
// observation that traces are dominated by repeating patterns:
//
//   - windows with identical observation content are memoised, so each
//     repeated pattern is synthesised once;
//   - previously synthesised next functions are offered to the
//     synthesizer as seeds and reused whenever they already explain a
//     new window, so equivalent behaviour always yields the same
//     predicate text (and therefore the same alphabet symbol).
//
// Sequence additionally exploits the first observation for parallelism:
// because repeated windows collapse onto few unique ones, it
// deduplicates windows up front and fans only the unique windows out to
// a bounded worker pool (see parallel.go), reassembling the sequence in
// original order. The parallel path is bit-for-bit identical to the
// serial one — same predicates, same interning (pointer equality), same
// seed-pool evolution, same stats, same first error.
package predicate

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// Predicate is one alphabet symbol of the learned automaton: a boolean
// expression over current and primed trace variables, plus its
// canonical key.
type Predicate struct {
	Expr expr.Expr
	Key  string
}

// Options configures predicate generation.
type Options struct {
	// Window is the observation window size w. Zero selects the
	// default: 3 for schemas with non-symbolic variables (two
	// synthesis examples per window, the paper's choice), 2 for
	// pure event schemas, where predicates are explicit in the
	// trace and need no generalisation (Section III-B applies
	// synthesis only to non-Boolean observations).
	Window int
	// Synth tunes the underlying synthesizer.
	Synth synth.Options
	// NoReuse disables cross-window seeding, forcing every window
	// to be synthesised from scratch (for the ablation benches).
	NoReuse bool
	// NoMemo disables whole-window memoisation (for the ablation
	// benches).
	NoMemo bool
	// Workers caps the number of concurrent synthesis workers
	// Sequence fans unique windows out to. Zero selects
	// runtime.GOMAXPROCS(0); 1 forces the serial path. Every worker
	// count produces identical output (see parallel.go).
	Workers int
	// Cache attaches a cross-run synthesis cache (see
	// internal/synthcache and cache.go): unique-window builds consult
	// it before enumerating and publish after. Nil disables caching.
	// Models are byte-identical with the cache cold, warm, shared,
	// corrupted or disabled.
	Cache *synthcache.Cache
	// Context cancels in-flight synthesis (signal handling). Nil
	// means never cancelled. Cancellation surfaces as an error from
	// the Sequence/FromWindow call; it never produces a partial
	// predicate.
	Context context.Context
}

// Generator produces predicates for windows of one trace schema.
//
// A Generator is safe for concurrent use: the memo, interning table,
// seed pools and stats are guarded by one mutex, so concurrent
// FromWindow/Sequence calls serialise their mutations. Determinism is
// only guaranteed when calls do not overlap — interleaved callers
// observe a seed-pool order that depends on scheduling.
type Generator struct {
	schema *trace.Schema
	opts   Options
	w      int

	synthVars []synth.Var // immutable after NewGenerator

	// obsIntern hash-conses observations so window identity is a
	// fixed-size array of dense ids (trace.WindowKey) instead of a
	// concatenated-string key. It has its own lock and never takes
	// g.mu, so it may be consulted with or without g.mu held.
	obsIntern *trace.Interner

	// Telemetry, resolved once by SetTelemetry so the hot paths record
	// with one nil check (cWindows/cMemoHits) or one atomic add; all of
	// it no-ops when telemetry is disabled. stageSpan parents the
	// per-window unit spans in the trace.
	tel         *pipeline.Telemetry
	stageSpan   pipeline.SpanID
	cWindows    *pipeline.Counter64
	cMemoHits   *pipeline.Counter64
	cCandidates *pipeline.Counter64
	hSynthNS    *pipeline.Histogram

	// Cross-run synthesis cache (cache.go); all three are immutable
	// while a sequence runs, so the parallel paths read them without
	// g.mu. Nil cache means every cache hook is a no-op.
	cache       *synthcache.Cache
	cachePrefix []byte
	cacheTypes  map[string]expr.Type

	mu       sync.Mutex
	memo     map[trace.WindowKey]*Predicate
	interned map[string]*Predicate
	seeds    map[string][]expr.Expr // per-variable next-function seeds
	stats    Stats
}

// Stats counts predicate-generation work.
type Stats struct {
	Windows       int // windows processed
	MemoHits      int // windows answered from the memo
	UniqueWindows int // windows actually synthesised (memo misses)
	SynthCalls    int // synthesizer invocations (per variable)
	SeedHits      int // synthesizer calls answered by a reused seed
}

// Stats returns a snapshot of the generator's work counters. The
// returned value is a copy: callers cannot race on it, and two
// snapshots bracket a Sequence call to measure that call's work.
func (g *Generator) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Minus returns the counter-wise difference s − o, for measuring one
// pipeline stage out of a stateful generator's running totals.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		Windows:       s.Windows - o.Windows,
		MemoHits:      s.MemoHits - o.MemoHits,
		UniqueWindows: s.UniqueWindows - o.UniqueWindows,
		SynthCalls:    s.SynthCalls - o.SynthCalls,
		SeedHits:      s.SeedHits - o.SeedHits,
	}
}

// DefaultWindow returns the default observation window for a schema:
// 2 when every variable is symbolic, 3 otherwise.
func DefaultWindow(schema *trace.Schema) int {
	for i := 0; i < schema.Len(); i++ {
		if schema.Var(i).Type != expr.Sym {
			return 3
		}
	}
	return 2
}

// NewGenerator returns a Generator for the schema.
func NewGenerator(schema *trace.Schema, opts Options) (*Generator, error) {
	w := opts.Window
	if w == 0 {
		w = DefaultWindow(schema)
	}
	if w < 2 {
		return nil, fmt.Errorf("predicate: window %d must be at least 2", w)
	}
	g := &Generator{
		schema:    schema,
		opts:      opts,
		w:         w,
		obsIntern: trace.NewInterner(),
		memo:      map[trace.WindowKey]*Predicate{},
		interned:  map[string]*Predicate{},
		seeds:     map[string][]expr.Expr{},
	}
	for i := 0; i < schema.Len(); i++ {
		v := schema.Var(i)
		g.synthVars = append(g.synthVars, synth.Var{Name: v.Name, Type: v.Type})
	}
	if opts.Cache != nil {
		g.SetSynthCache(opts.Cache)
	}
	return g, nil
}

// Window returns the observation window size in effect.
func (g *Generator) Window() int { return g.w }

// workers resolves the effective worker count for Sequence.
func (g *Generator) workers() int {
	if g.opts.Workers > 0 {
		return g.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker count (command-line -j flags on
// pipelines reconstructed from a saved model).
func (g *Generator) SetWorkers(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opts.Workers = n
}

// SetContext attaches a cancellation context to subsequent synthesis
// work (see Options.Context).
func (g *Generator) SetContext(ctx context.Context) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.opts.Context = ctx
}

// SetTelemetry attaches a run's telemetry to the generator: registry
// counters for windows, memo hits and enumerated synthesis candidates,
// a latency histogram for unique-window builds, and — when tracing —
// per-window unit spans parented under stage. Telemetry is purely
// observational (it never changes results) and must be attached before
// any Sequence/FromWindow call, not concurrently with one.
func (g *Generator) SetTelemetry(tel *pipeline.Telemetry, stage pipeline.SpanID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tel = tel
	g.stageSpan = stage
	g.cWindows = tel.Count("predicate_windows_total")
	g.cMemoHits = tel.Count("predicate_memo_hits_total")
	g.cCandidates = tel.Count("synth_candidates_total")
	g.hSynthNS = tel.Hist("predicate_window_synth_ns", "ns")
	g.opts.Synth.Work = g.cCandidates.Raw()
	if g.cache != nil {
		g.cache.SetTelemetry(tel)
	}
}

// Sequence computes the predicate sequence P = p1 … pk for the trace,
// k = n+1−w (Algorithm 1 lines 9–14). Returned predicates are
// interned: equal keys are pointer-equal.
//
// With more than one worker configured (Options.Workers; the default
// uses every core) the unique windows are synthesised concurrently;
// the result — predicates, interning, seed pools, stats, and the first
// error — is identical to the serial path.
func (g *Generator) Sequence(tr *trace.Trace) ([]*Predicate, error) {
	if !tr.Schema().Equal(g.schema) {
		return nil, errors.New("predicate: trace schema does not match generator schema")
	}
	n := tr.Len()
	if n < g.w {
		return nil, fmt.Errorf("predicate: trace length %d shorter than window %d", n, g.w)
	}
	if w := g.workers(); w > 1 && n+1-g.w > 1 {
		return g.sequenceParallel(tr, w)
	}
	// Intern each observation once; window keys are then O(w) id
	// copies instead of O(w·|schema|) string building per window.
	ids := make([]trace.ObsID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.obsIntern.Intern(tr.At(i))
	}
	out := make([]*Predicate, 0, n+1-g.w)
	for i := 0; i+g.w <= n; i++ {
		key := trace.MakeWindowKey(ids[i : i+g.w])
		p, err := g.fromWindow(tr.Slice(i, i+g.w), key)
		if err != nil {
			return nil, fmt.Errorf("predicate: window at observation %d: %w", i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// FromWindow generates the predicate for one window of exactly w
// observations.
func (g *Generator) FromWindow(win *trace.Trace) (*Predicate, error) {
	if win.Len() != g.w {
		return nil, fmt.Errorf("predicate: window has %d observations, want %d", win.Len(), g.w)
	}
	ids := make([]trace.ObsID, g.w)
	for i := range ids {
		ids[i] = g.obsIntern.Intern(win.At(i))
	}
	return g.fromWindow(win, trace.MakeWindowKey(ids))
}

// fromWindow is FromWindow after key computation; key is ignored when
// memoisation is off.
func (g *Generator) fromWindow(win *trace.Trace, key trace.WindowKey) (*Predicate, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Windows++
	g.cWindows.Add(1)
	if !g.opts.NoMemo {
		if p, ok := g.memo[key]; ok {
			g.stats.MemoHits++
			g.cMemoHits.Add(1)
			return p, nil
		}
	}
	g.stats.UniqueWindows++
	e, err := g.buildUnique(win, "serial")
	if err != nil {
		return nil, err
	}
	p := g.intern(e)
	if !g.opts.NoMemo {
		g.memo[key] = p
	}
	return p, nil
}

// buildUnique runs the serial unique-window build with its telemetry:
// the window-synthesis latency histogram and, when tracing, a unit span
// recording the build's synthesis-call and seed-hit deltas. With a
// cross-run cache attached the build goes through the cache's
// lookup/replay/publish path instead of direct synthesis (cache.go);
// the result and the generator-state evolution are identical. Callers
// hold g.mu and have already counted the window as unique.
func (g *Generator) buildUnique(win *trace.Trace, mode string) (expr.Expr, error) {
	tr := g.tel.Trace()
	var id pipeline.SpanID
	if tr.Enabled() {
		id = tr.Start(g.stageSpan, "window", pipeline.Str("mode", mode))
	}
	before := g.stats
	t0 := time.Now()
	var e expr.Expr
	var err error
	if g.cache != nil {
		e, err = g.buildCached(win)
	} else {
		e, err = g.buildExpr(win, g.synthesizeNext)
	}
	g.hSynthNS.Since(t0)
	g.tel.Prof().Observe("window", time.Since(t0))
	if tr.Enabled() {
		d := g.stats.Minus(before)
		tr.End(id,
			pipeline.Int("synth_calls", int64(d.SynthCalls)),
			pipeline.Int("seed_hits", int64(d.SeedHits)),
			pipeline.Bool("ok", err == nil))
	}
	return e, err
}

// nextFunc synthesises one variable's next function from a window's
// examples. buildExpr is parameterised on it so the same control flow
// drives the serial path (synthesizeNext), the speculative parallel
// workers (seed-free recording) and the deterministic replay — the
// three must agree on the sequence of synthesis calls, which this
// sharing guarantees by construction.
type nextFunc func(name string, examples []synth.Example) (expr.Expr, error)

// buildExpr constructs the window predicate as a conjunction in schema
// order: symbolic variables contribute equality guards when their
// value is constant across the window's step sources; every other
// variable contributes an update conjunct var' = next(X) with next
// synthesised from the window's steps. The caller interns the result.
func (g *Generator) buildExpr(win *trace.Trace, next nextFunc) (expr.Expr, error) {
	steps := win.Steps()
	var conjuncts []expr.Expr

	// First pass: guards for symbolic variables (event names) whose
	// value is constant across the window's step sources. Symbolic
	// variables never receive update conjuncts (the next event is
	// environment-driven); the guards are also substituted into
	// update functions below, so that a reused general update like
	// ite(event = 'read', x-1, x+1) renders as x-1 under an
	// event = 'read' guard.
	//
	// Numeric input-role variables likewise receive no update
	// conjunct — synthesising ip' = f(X) for an environment-driven
	// input is semantically wrong and fragments the alphabet — but
	// they also receive no guard: they appear inside the synthesized
	// update functions where they matter (the paper's integrator
	// predicates reference ip only inside op' = op + ip).
	guards := map[string]expr.Value{}
	for vi := 0; vi < g.schema.Len(); vi++ {
		vd := g.schema.Var(vi)
		if !guardVar(vd) {
			continue
		}
		if c, uniform := g.uniformSource(win, vi); uniform {
			guards[vd.Name] = c
			conjuncts = append(conjuncts,
				expr.Eq(expr.NewVar(vd.Name, vd.Type), &expr.Lit{Val: c}))
		}
	}

	for vi := 0; vi < g.schema.Len(); vi++ {
		vd := g.schema.Var(vi)
		if vd.Type == expr.Sym || vd.Role == trace.Input {
			// Events and environment-driven inputs never receive
			// update conjuncts.
			continue
		}
		examples := make([]synth.Example, steps)
		for s := 0; s < steps; s++ {
			in := make(map[string]expr.Value, g.schema.Len())
			for vj := 0; vj < g.schema.Len(); vj++ {
				in[g.schema.Var(vj).Name] = win.At(s)[vj]
			}
			examples[s] = synth.Example{In: in, Out: win.At(s + 1)[vi]}
		}
		f, err := g.updateFunction(win, vd, examples, next)
		if err != nil {
			if errors.Is(err, synth.ErrInconsistent) {
				// No function fits: fall back to the explicit
				// step relation for this variable.
				conjuncts = append(conjuncts, explicitRelation(g.schema, win, vi))
				continue
			}
			return nil, fmt.Errorf("next(%s): %w", vd.Name, err)
		}
		for name, val := range guards {
			f = expr.Substitute(f, name, val)
		}
		f = expr.Simplify(f)
		conjuncts = append(conjuncts,
			expr.Eq(expr.NewPrimedVar(vd.Name, vd.Type), f))
	}

	if len(conjuncts) == 0 {
		// Pure event schema with a changing event: synthesise the
		// next-event function so the window still yields a
		// predicate (only reachable with Window > 2 on event
		// traces).
		vi := 0
		vd := g.schema.Var(vi)
		examples := make([]synth.Example, steps)
		for s := 0; s < steps; s++ {
			in := map[string]expr.Value{vd.Name: win.At(s)[vi]}
			examples[s] = synth.Example{In: in, Out: win.At(s + 1)[vi]}
		}
		f, err := next(vd.Name, examples)
		if err != nil {
			if errors.Is(err, synth.ErrInconsistent) {
				f = nil
			} else {
				return nil, fmt.Errorf("next(%s): %w", vd.Name, err)
			}
		}
		if f != nil {
			conjuncts = append(conjuncts,
				expr.Eq(expr.NewPrimedVar(vd.Name, vd.Type), f))
		} else {
			conjuncts = append(conjuncts, explicitRelation(g.schema, win, vi))
		}
	}

	e := conjuncts[0]
	for _, c := range conjuncts[1:] {
		e = expr.And(e, c)
	}
	return expr.Simplify(e), nil
}

// uniformSource reports whether variable vi has the same value at the
// source observation of every step in the window.
func (g *Generator) uniformSource(win *trace.Trace, vi int) (expr.Value, bool) {
	first := win.At(0)[vi]
	for s := 1; s < win.Steps(); s++ {
		if !win.At(s)[vi].Equal(first) {
			return expr.Value{}, false
		}
	}
	return first, true
}

// updateFunction synthesizes the next function for one state variable
// over a window. When the window's steps disagree on a symbolic or
// input variable (e.g. a write step followed by a reset step), the
// steps are grouped by that variable's value and each group is
// synthesized separately — with the usual cross-window seed reuse —
// and the results are combined into a canonical ite over the group
// values. This keeps mixed windows on the same, readable update
// functions the uniform windows use (x' = ite(event = 'reset', 0,
// x + 1)) instead of window-local minimal fits that memorise one
// queue length each; the per-value branches are exactly the control
// structure the guard variables carry.
func (g *Generator) updateFunction(win *trace.Trace, vd trace.VarDef, examples []synth.Example, next nextFunc) (expr.Expr, error) {
	bi := g.branchVar(win)
	if bi < 0 {
		return next(vd.Name, examples)
	}
	bd := g.schema.Var(bi)
	groups := map[string][]synth.Example{}
	groupVal := map[string]expr.Value{}
	var keys []string
	for s, ex := range examples {
		v := win.At(s)[bi]
		k := v.String()
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
			groupVal[k] = v
		}
		groups[k] = append(groups[k], ex)
	}
	if len(groups) < 2 {
		return next(vd.Name, examples)
	}
	// Canonical branch order: sorted by value text, so windows that
	// see the same step set in a different order intern to the same
	// predicate.
	sort.Strings(keys)
	fs := make([]expr.Expr, len(keys))
	for i, k := range keys {
		f, err := next(vd.Name, groups[k])
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	// Nest: ite(b = v1, f1, ite(b = v2, f2, … fLast)). Identical
	// branches collapse in the Simplify pass run by the caller.
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		cond := expr.Eq(expr.NewVar(bd.Name, bd.Type), &expr.Lit{Val: groupVal[keys[i]]})
		out = expr.NewIte(cond, fs[i], out)
	}
	return expr.Simplify(out), nil
}

// guardVar reports whether a variable contributes equality guards when
// uniform across a window (and grouping branches when not): symbolic
// variables always (event names are the control signal) and boolean
// inputs (two crisp values). Numeric inputs (the integrator's ip) are
// deliberately excluded: they belong inside arithmetic updates
// (op' = op + ip), which joint synthesis handles better, and guarding
// on every observed value would fragment the alphabet.
func guardVar(vd trace.VarDef) bool {
	return vd.Type == expr.Sym || (vd.Role == trace.Input && vd.Type == expr.Bool)
}

// branchVar returns the index of the first guard variable whose value
// differs across the window's step sources, or -1.
func (g *Generator) branchVar(win *trace.Trace) int {
	for vi := 0; vi < g.schema.Len(); vi++ {
		if !guardVar(g.schema.Var(vi)) {
			continue
		}
		if _, uniform := g.uniformSource(win, vi); !uniform {
			return vi
		}
	}
	return -1
}

// synthesizeNext runs the synthesizer for one variable's next
// function, seeding it with previously synthesised functions for the
// same variable, smallest first — so a steady-state window reuses the
// simple update (op, or op + ip) rather than whichever boundary
// predicate happened to be synthesised earlier. Callers hold g.mu.
func (g *Generator) synthesizeNext(name string, examples []synth.Example) (expr.Expr, error) {
	g.stats.SynthCalls++
	f, err := g.searchNext(name, examples)
	if err != nil {
		return nil, err
	}
	g.noteResult(name, f)
	return f, nil
}

// searchNext is the synthesis search of synthesizeNext without the
// accounting: size-sorted seed pass, then CEGIS. Callers hold g.mu.
func (g *Generator) searchNext(name string, examples []synth.Example) (expr.Expr, error) {
	opts := g.opts.Synth
	opts.DiffVars = []string{name}
	if !g.opts.NoReuse {
		opts.Seeds = g.sortedSeeds(name)
	}
	ctx := g.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return synth.SynthesizeContext(ctx, g.synthVars, examples, opts)
}

// sortedSeeds returns a copy of the variable's seed pool ordered
// smallest-first (stable, so equal sizes keep insertion order). Callers
// hold g.mu.
func (g *Generator) sortedSeeds(name string) []expr.Expr {
	seeds := append([]expr.Expr(nil), g.seeds[name]...)
	sort.SliceStable(seeds, func(i, j int) bool { return seeds[i].Size() < seeds[j].Size() })
	return seeds
}

// noteResult records a synthesis result: a pool member counts as a
// seed hit; a fresh expression joins the pool (unless reuse is off).
// Callers hold g.mu.
func (g *Generator) noteResult(name string, f expr.Expr) {
	for _, s := range g.seeds[name] {
		if s == f {
			g.stats.SeedHits++
			return
		}
	}
	if !g.opts.NoReuse {
		g.seeds[name] = append(g.seeds[name], f)
	}
}

// explicitRelation is the fallback predicate for a variable whose
// window steps admit no single next function: the disjunction over
// steps of (X = source ∧ var' = target).
func explicitRelation(schema *trace.Schema, win *trace.Trace, vi int) expr.Expr {
	var disj expr.Expr
	seen := map[string]bool{}
	for s := 0; s < win.Steps(); s++ {
		var conj expr.Expr
		for vj := 0; vj < schema.Len(); vj++ {
			vd := schema.Var(vj)
			eq := expr.Eq(expr.NewVar(vd.Name, vd.Type), &expr.Lit{Val: win.At(s)[vj]})
			if conj == nil {
				conj = eq
			} else {
				conj = expr.And(conj, eq)
			}
		}
		vd := schema.Var(vi)
		conj = expr.And(conj, expr.Eq(
			expr.NewPrimedVar(vd.Name, vd.Type),
			&expr.Lit{Val: win.At(s + 1)[vi]}))
		if seen[conj.String()] {
			continue
		}
		seen[conj.String()] = true
		if disj == nil {
			disj = conj
		} else {
			disj = expr.Or(disj, conj)
		}
	}
	return disj
}

// intern returns the canonical *Predicate for the expression. Callers
// hold g.mu.
func (g *Generator) intern(e expr.Expr) *Predicate {
	key := e.String()
	if p, ok := g.interned[key]; ok {
		return p
	}
	p := &Predicate{Expr: e, Key: key}
	g.interned[key] = p
	return p
}

// Seeds returns the per-variable next-function seeds accumulated so
// far, in insertion order. Model persistence saves them so that a
// reloaded model abstracts fresh traces to the same predicate text.
func (g *Generator) Seeds() map[string][]expr.Expr {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string][]expr.Expr, len(g.seeds))
	for name, es := range g.seeds {
		out[name] = append([]expr.Expr(nil), es...)
	}
	return out
}

// SetSeeds replaces the per-variable seed pools (used when loading a
// persisted model).
func (g *Generator) SetSeeds(seeds map[string][]expr.Expr) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seeds = make(map[string][]expr.Expr, len(seeds))
	for name, es := range seeds {
		g.seeds[name] = append([]expr.Expr(nil), es...)
	}
}

// Alphabet returns all predicates interned so far, in no particular
// order.
func (g *Generator) Alphabet() []*Predicate {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Predicate, 0, len(g.interned))
	for _, p := range g.interned {
		out = append(out, p)
	}
	return out
}

// Verify checks that predicate p holds on every step of the window it
// claims to describe; the tests use it as a soundness oracle.
func Verify(p *Predicate, win *trace.Trace) error {
	for s := 0; s < win.Steps(); s++ {
		ok, err := win.HoldsAt(p.Expr, s)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("predicate %s does not hold on step %d", p.Key, s)
		}
	}
	return nil
}
