// Streaming predicate sequencing: SequenceSource slides a w-sized ring
// of interned observation ids over a trace.Source and emits the
// predicate sequence as maximal runs of equal predicates, so the
// resident state is O(w + unique windows) regardless of trace length.
//
// Determinism matches the batch paths exactly. Observations are
// interned in stream order (the same first-occurrence order the batch
// pass uses), the serial path takes the very same memo-or-build branch
// per window, and the parallel path reuses the speculate/replay engine
// of parallel.go: a dispatcher goroutine reads the source, interns,
// and enqueues one ordered record per window — carrying a speculation
// job the first time a non-memoised window content is seen — while the
// consumer replays records in stream order against the authoritative
// generator state. Replay order equals window order, so the seed-pool
// evolution, interning, stats and first error are identical to both
// the serial streaming path and the batch paths.
package predicate

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Run is one maximal run of identical predicates in a streamed
// sequence: Count consecutive windows all abstracted to Pred. Pointer
// equality is the predicate identity (predicates are interned).
type Run struct {
	Pred  *Predicate
	Count int
}

// SequenceSource computes the predicate sequence of the observations
// streamed by src, emitting it as maximal runs in order. It is the
// streaming counterpart of Sequence: the same predicates in the same
// order (run-length encoded), the same generator-state evolution, but
// only O(w + unique windows) resident memory.
//
// emit is called serially, in sequence order; an emit error aborts the
// stream and is returned verbatim.
func (g *Generator) SequenceSource(src trace.Source, emit func(Run) error) error {
	if !src.Schema().Equal(g.schema) {
		return errNoSchema
	}
	if w := g.workers(); w > 1 {
		return g.sequenceSourceParallel(src, emit, w)
	}
	return g.sequenceSourceSerial(src, emit)
}

var errNoSchema = fmt.Errorf("predicate: trace schema does not match generator schema")

// runEmitter folds a stream of per-window predicates into maximal runs.
type runEmitter struct {
	emit  func(Run) error
	pred  *Predicate
	count int
}

func (e *runEmitter) add(p *Predicate) error {
	if p == e.pred {
		e.count++
		return nil
	}
	if err := e.flush(); err != nil {
		return err
	}
	e.pred, e.count = p, 1
	return nil
}

func (e *runEmitter) flush() error {
	if e.count == 0 {
		return nil
	}
	r := Run{Pred: e.pred, Count: e.count}
	e.pred, e.count = nil, 0
	return e.emit(r)
}

// slide appends id to the window ids, dropping the oldest id once the
// window is full. It returns true when ids holds a complete window.
func slide(ids []trace.ObsID, w int, id trace.ObsID) ([]trace.ObsID, bool) {
	if len(ids) == w {
		copy(ids, ids[1:])
		ids = ids[:w-1]
	}
	ids = append(ids, id)
	return ids, len(ids) == w
}

// materialize wraps the canonical observations for ids into a window
// trace without copying values (the canonical slices are shared and
// read-only, which buildExpr respects).
func (g *Generator) materialize(ids []trace.ObsID) *trace.Trace {
	obs := make([]trace.Observation, len(ids))
	for i, id := range ids {
		obs[i] = g.obsIntern.Obs(id)
	}
	return trace.FromObservations(g.schema, obs)
}

// sequenceSourceSerial is the one-worker streaming path.
func (g *Generator) sequenceSourceSerial(src trace.Source, emit func(Run) error) error {
	em := &runEmitter{emit: emit}
	ids := make([]trace.ObsID, 0, g.w)
	seen := 0
	for {
		obs, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		seen++
		var full bool
		ids, full = slide(ids, g.w, g.obsIntern.Intern(obs))
		if !full {
			continue
		}
		p, err := g.streamWindow(ids)
		if err != nil {
			return fmt.Errorf("predicate: window at observation %d: %w", seen-g.w, err)
		}
		if err := em.add(p); err != nil {
			return err
		}
	}
	if seen < g.w {
		return fmt.Errorf("predicate: trace length %d shorter than window %d", seen, g.w)
	}
	return em.flush()
}

// streamWindow resolves one window given its interned ids: memo hit or
// materialise-and-build, with the same accounting as fromWindow.
func (g *Generator) streamWindow(ids []trace.ObsID) (*Predicate, error) {
	key := trace.MakeWindowKey(ids)
	g.mu.Lock()
	g.stats.Windows++
	g.cWindows.Add(1)
	if !g.opts.NoMemo {
		if p, ok := g.memo[key]; ok {
			g.stats.MemoHits++
			g.cMemoHits.Add(1)
			g.mu.Unlock()
			return p, nil
		}
	}
	g.stats.UniqueWindows++
	win := g.materialize(ids)
	e, err := g.buildUnique(win, "stream")
	if err != nil {
		g.mu.Unlock()
		return nil, err
	}
	p := g.intern(e)
	if !g.opts.NoMemo {
		g.memo[key] = p
	}
	g.mu.Unlock()
	return p, nil
}

// streamRec is one window of the parallel streaming path, in stream
// order: its key, and the speculation job covering its content when the
// dispatcher saw that content for the first time outside the memo (nil
// for windows whose content was memoised before the stream started or
// whose job travels with an earlier record).
type streamRec struct {
	key trace.WindowKey
	job *specJob
	idx int // window index, for error positions
}

// sequenceSourceParallel overlaps source decoding and speculative
// synthesis with in-order replay. The dispatcher is the only goroutine
// touching src; workers are the only goroutines running the expensive
// enumeration; the consumer (the calling goroutine) is the only one
// mutating authoritative generator state.
func (g *Generator) sequenceSourceParallel(src trace.Source, emit func(Run) error, workers int) error {
	ctx, cancel := context.WithCancel(context.Background())

	depth := 4 * workers
	if depth < 64 {
		depth = 64
	}
	recCh := make(chan streamRec, depth)
	jobCh := make(chan *specJob, depth)

	// Defers run LIFO: cancel first, so blocked dispatcher sends and
	// in-flight workers unwind before Wait — no goroutine outlives the
	// call even on an early (emit-error) return.
	var ww sync.WaitGroup
	defer ww.Wait()
	defer cancel()

	// Dispatcher: read, intern, slide, dedupe, enqueue in order.
	var srcErr error
	var seen atomic.Int64
	go func() {
		defer close(recCh)
		defer close(jobCh)
		jobByKey := map[trace.WindowKey]*specJob{}
		ids := make([]trace.ObsID, 0, g.w)
		idx := 0
		for {
			obs, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				srcErr = err
				return
			}
			seen.Add(1)
			var full bool
			ids, full = slide(ids, g.w, g.obsIntern.Intern(obs))
			if !full {
				continue
			}
			key := trace.MakeWindowKey(ids)
			rec := streamRec{key: key, idx: idx}
			idx++
			if _, ok := jobByKey[key]; !ok {
				memoised := false
				if !g.opts.NoMemo {
					g.mu.Lock()
					_, memoised = g.memo[key]
					g.mu.Unlock()
				}
				if !memoised {
					// The memo only grows, so a miss here is still a
					// miss at replay time unless an earlier record of
					// the same content fills it — and that record
					// carries this very job.
					job := &specJob{win: g.materialize(ids), done: make(chan struct{})}
					jobByKey[key] = job
					rec.job = job
					select {
					case jobCh <- job:
					case <-ctx.Done():
						return
					}
				}
			}
			select {
			case recCh <- rec:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: speculate on unique windows as they are discovered.
	for i := 0; i < workers; i++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for job := range jobCh {
				if ctx.Err() != nil {
					// Drain without working so the dispatcher's sends
					// never block forever during cancellation.
					close(job.done)
					continue
				}
				if !g.cacheLookup(job) {
					g.speculate(ctx, job)
				}
				close(job.done)
			}
		}()
	}

	// Consumer: replay in stream order against authoritative state.
	em := &runEmitter{emit: emit}
	jobByKey := map[trace.WindowKey]*specJob{}
	for rec := range recCh {
		if rec.job != nil {
			jobByKey[rec.key] = rec.job
		}
		g.mu.Lock()
		g.stats.Windows++
		g.cWindows.Add(1)
		if !g.opts.NoMemo {
			if p, ok := g.memo[rec.key]; ok {
				g.stats.MemoHits++
				g.cMemoHits.Add(1)
				g.mu.Unlock()
				if err := em.add(p); err != nil {
					return err
				}
				continue
			}
		}
		g.mu.Unlock()

		job := jobByKey[rec.key]
		<-job.done

		g.mu.Lock()
		g.stats.UniqueWindows++
		p, err := g.replayTraced(job)
		if err == nil && !g.opts.NoMemo {
			g.memo[rec.key] = p
		}
		g.mu.Unlock()
		if err != nil {
			cancel()
			return fmt.Errorf("predicate: window at observation %d: %w", rec.idx, err)
		}
		g.cachePublish(job)
		if err := em.add(p); err != nil {
			return err
		}
	}
	if srcErr != nil {
		return srcErr
	}
	if n := int(seen.Load()); n < g.w {
		return fmt.Errorf("predicate: trace length %d shorter than window %d", n, g.w)
	}
	return em.flush()
}
