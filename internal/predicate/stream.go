// Streaming predicate sequencing: SequenceSource slides a w-sized ring
// of interned observation ids over a trace.Source and emits the
// predicate sequence as maximal runs of equal predicates, so the
// resident state is O(w + unique windows) regardless of trace length.
//
// Determinism matches the batch paths exactly. Observations are
// interned in stream order (the same first-occurrence order the batch
// pass uses), the serial path takes the very same memo-or-build branch
// per window, and the parallel path reuses the speculate/replay engine
// of parallel.go: a dispatcher goroutine reads the source, interns,
// and enqueues one ordered record per window — carrying a speculation
// job the first time a non-memoised window content is seen — while the
// consumer replays records in stream order against the authoritative
// generator state. Replay order equals window order, so the seed-pool
// evolution, interning, stats and first error are identical to both
// the serial streaming path and the batch paths.
package predicate

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Run is one maximal run of identical predicates in a streamed
// sequence: Count consecutive windows all abstracted to Pred. Pointer
// equality is the predicate identity (predicates are interned).
type Run struct {
	Pred  *Predicate
	Count int
}

// SequenceSource computes the predicate sequence of the observations
// streamed by src, emitting it as maximal runs in order. It is the
// streaming counterpart of Sequence: the same predicates in the same
// order (run-length encoded), the same generator-state evolution, but
// only O(w + unique windows) resident memory.
//
// emit is called serially, in sequence order; an emit error aborts the
// stream and is returned verbatim.
func (g *Generator) SequenceSource(src trace.Source, emit func(Run) error) error {
	if !src.Schema().Equal(g.schema) {
		return errNoSchema
	}
	if w := g.workers(); w > 1 {
		return g.sequenceSourceParallel(src, emit, w)
	}
	return g.sequenceSourceSerial(src, emit)
}

var errNoSchema = fmt.Errorf("predicate: trace schema does not match generator schema")

// runEmitter folds a stream of per-window predicates into maximal runs.
type runEmitter struct {
	emit  func(Run) error
	pred  *Predicate
	count int
}

func (e *runEmitter) add(p *Predicate) error {
	if p == e.pred {
		e.count++
		return nil
	}
	if err := e.flush(); err != nil {
		return err
	}
	e.pred, e.count = p, 1
	return nil
}

func (e *runEmitter) flush() error {
	if e.count == 0 {
		return nil
	}
	r := Run{Pred: e.pred, Count: e.count}
	e.pred, e.count = nil, 0
	return e.emit(r)
}

// slide appends id to the window ids, dropping the oldest id once the
// window is full. It returns true when ids holds a complete window.
func slide(ids []trace.ObsID, w int, id trace.ObsID) ([]trace.ObsID, bool) {
	if len(ids) == w {
		copy(ids, ids[1:])
		ids = ids[:w-1]
	}
	ids = append(ids, id)
	return ids, len(ids) == w
}

// materialize wraps the canonical observations for ids into a window
// trace without copying values (the canonical slices are shared and
// read-only, which buildExpr respects).
func (g *Generator) materialize(ids []trace.ObsID) *trace.Trace {
	obs := make([]trace.Observation, len(ids))
	for i, id := range ids {
		obs[i] = g.obsIntern.Obs(id)
	}
	return trace.FromObservations(g.schema, obs)
}

// nextIDFunc returns the per-observation intern step for src: the
// IDSource fast path when the source can intern its own records (a
// repeated raw record then skips decoding entirely), and decode-then-
// intern otherwise. Both assign identical ids in identical order — the
// IDSource contract.
func (g *Generator) nextIDFunc(src trace.Source) func() (trace.ObsID, error) {
	if is, ok := src.(trace.IDSource); ok {
		return func() (trace.ObsID, error) { return is.NextID(g.obsIntern) }
	}
	return func() (trace.ObsID, error) {
		obs, err := src.Next()
		if err != nil {
			return 0, err
		}
		return g.obsIntern.Intern(obs), nil
	}
}

// sequenceSourceSerial is the one-worker streaming path.
func (g *Generator) sequenceSourceSerial(src trace.Source, emit func(Run) error) error {
	em := &runEmitter{emit: emit}
	ids := make([]trace.ObsID, 0, g.w)
	seen := 0
	nextID := g.nextIDFunc(src)
	for {
		id, err := nextID()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		seen++
		var full bool
		ids, full = slide(ids, g.w, id)
		if !full {
			continue
		}
		p, err := g.streamWindow(ids)
		if err != nil {
			return fmt.Errorf("predicate: window at observation %d: %w", seen-g.w, err)
		}
		if err := em.add(p); err != nil {
			return err
		}
	}
	if seen < g.w {
		return fmt.Errorf("predicate: trace length %d shorter than window %d", seen, g.w)
	}
	return em.flush()
}

// streamWindow resolves one window given its interned ids: memo hit or
// materialise-and-build, with the same accounting as fromWindow.
func (g *Generator) streamWindow(ids []trace.ObsID) (*Predicate, error) {
	key := trace.MakeWindowKey(ids)
	g.mu.Lock()
	g.stats.Windows++
	g.cWindows.Add(1)
	if !g.opts.NoMemo {
		if p, ok := g.memo[key]; ok {
			g.stats.MemoHits++
			g.cMemoHits.Add(1)
			g.mu.Unlock()
			return p, nil
		}
	}
	g.stats.UniqueWindows++
	win := g.materialize(ids)
	e, err := g.buildUnique(win, "stream")
	if err != nil {
		g.mu.Unlock()
		return nil, err
	}
	p := g.intern(e)
	if !g.opts.NoMemo {
		g.memo[key] = p
	}
	g.mu.Unlock()
	return p, nil
}

// streamRec is one window of the parallel streaming path, in stream
// order: its key, and the speculation job covering its content when the
// dispatcher saw that content for the first time outside the memo (nil
// for windows whose content was memoised before the stream started or
// whose job travels with an earlier record).
type streamRec struct {
	key trace.WindowKey
	job *specJob
	idx int // window index, for error positions
}

// sequenceSourceParallel overlaps source decoding and speculative
// synthesis with in-order replay. The dispatcher is the only goroutine
// touching src; workers are the only goroutines running the expensive
// enumeration; the consumer (the calling goroutine) is the only one
// mutating authoritative generator state.
func (g *Generator) sequenceSourceParallel(src trace.Source, emit func(Run) error, workers int) error {
	ctx, cancel := context.WithCancel(context.Background())

	depth := 4 * workers
	if depth < 64 {
		depth = 64
	}
	recCh := make(chan streamRec, depth)
	jobCh := make(chan *specJob, depth)

	// Defers run LIFO: cancel first, so blocked dispatcher sends and
	// in-flight workers unwind before Wait — no goroutine outlives the
	// call even on an early (emit-error) return.
	var ww sync.WaitGroup
	defer ww.Wait()
	defer cancel()

	// Dispatcher: read, intern, slide, dedupe, enqueue in order. The
	// intern step picks the fastest available ingest strategy — sharded
	// block decoding when the source supports it, the raw-record id
	// cache when it self-interns, plain decode-then-intern otherwise —
	// all of which assign identical ids in identical order, so the
	// window stream below is strategy-independent.
	var srcErr error
	var seen atomic.Int64
	go func() {
		defer close(recCh)
		defer close(jobCh)
		jobByKey := map[trace.WindowKey]*specJob{}
		ids := make([]trace.ObsID, 0, g.w)
		idx := 0
		feed := func(id trace.ObsID) bool {
			seen.Add(1)
			var full bool
			ids, full = slide(ids, g.w, id)
			if !full {
				return true
			}
			key := trace.MakeWindowKey(ids)
			rec := streamRec{key: key, idx: idx}
			idx++
			if _, ok := jobByKey[key]; !ok {
				memoised := false
				if !g.opts.NoMemo {
					g.mu.Lock()
					_, memoised = g.memo[key]
					g.mu.Unlock()
				}
				if !memoised {
					// The memo only grows, so a miss here is still a
					// miss at replay time unless an earlier record of
					// the same content fills it — and that record
					// carries this very job.
					job := &specJob{win: g.materialize(ids), done: make(chan struct{})}
					jobByKey[key] = job
					rec.job = job
					select {
					case jobCh <- job:
					case <-ctx.Done():
						return false
					}
				}
			}
			select {
			case recCh <- rec:
				return true
			case <-ctx.Done():
				return false
			}
		}
		if bs, ok := src.(trace.BlockSource); ok {
			if next, ok := bs.Blocks(shardBlockSize); ok {
				srcErr = g.shardStream(ctx, bs, next, workers, feed)
				return
			}
		}
		nextID := g.nextIDFunc(src)
		for {
			id, err := nextID()
			if err == io.EOF {
				return
			}
			if err != nil {
				srcErr = err
				return
			}
			if !feed(id) {
				return
			}
		}
	}()

	// Workers: speculate on unique windows as they are discovered.
	for i := 0; i < workers; i++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for job := range jobCh {
				if ctx.Err() != nil {
					// Drain without working so the dispatcher's sends
					// never block forever during cancellation.
					close(job.done)
					continue
				}
				if !g.cacheLookup(job) {
					g.speculate(ctx, job)
				}
				close(job.done)
			}
		}()
	}

	// Consumer: replay in stream order against authoritative state.
	em := &runEmitter{emit: emit}
	jobByKey := map[trace.WindowKey]*specJob{}
	for rec := range recCh {
		if rec.job != nil {
			jobByKey[rec.key] = rec.job
		}
		g.mu.Lock()
		g.stats.Windows++
		g.cWindows.Add(1)
		if !g.opts.NoMemo {
			if p, ok := g.memo[rec.key]; ok {
				g.stats.MemoHits++
				g.cMemoHits.Add(1)
				g.mu.Unlock()
				if err := em.add(p); err != nil {
					return err
				}
				continue
			}
		}
		g.mu.Unlock()

		job := jobByKey[rec.key]
		<-job.done

		g.mu.Lock()
		g.stats.UniqueWindows++
		p, err := g.replayTraced(job)
		if err == nil && !g.opts.NoMemo {
			g.memo[rec.key] = p
		}
		g.mu.Unlock()
		if err != nil {
			cancel()
			return fmt.Errorf("predicate: window at observation %d: %w", rec.idx, err)
		}
		g.cachePublish(job)
		if err := em.add(p); err != nil {
			return err
		}
	}
	if srcErr != nil {
		return srcErr
	}
	if n := int(seen.Load()); n < g.w {
		return fmt.Errorf("predicate: trace length %d shorter than window %d", n, g.w)
	}
	return em.flush()
}

// shardBlockSize is the target byte size of one ingest shard. Large
// enough that per-block overhead (channel hops, one remap extension)
// vanishes; small enough that a handful of blocks are always in
// flight per worker.
const shardBlockSize = 1 << 20

// shardOut is one decoded block: the block's observations as
// worker-local interned ids, plus the canonical entries the block
// newly introduced to its worker's local table (the merger re-interns
// exactly these, in block order, into the global table).
type shardOut struct {
	ids []trace.ObsID
	seg []trace.Observation
	err error
}

// shardStream decodes record-aligned blocks on parallel workers with
// private interners and merges the results in block hand-out order.
//
// Determinism: the merged global id assignment is byte-identical to
// single-stream interning. Blocks concatenated in hand-out order equal
// the input, and the merger walks them in that order, interning each
// block's newly-seen canonical entries first. An observation's
// globally-first occurrence lies in some block b; within b's worker
// that occurrence is also the local first sight (earlier local sights
// would be in earlier blocks of the same worker, merged before b), so
// it appears in b's canon segment in first-occurrence order — the
// global table therefore grows in exactly single-stream first-sight
// order, and per-record ids follow via the local→global remap.
//
// feed receives the global ids in record order; a false return stops
// the stream (downstream cancellation). The returned error is the
// source/decode error in block order, after all earlier records fed.
func (g *Generator) shardStream(ctx context.Context, src trace.BlockSource, next func() ([]byte, error), workers int, feed func(trace.ObsID) bool) error {
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	ins := make([]chan []byte, workers)
	outs := make([]chan shardOut, workers)
	for w := 0; w < workers; w++ {
		ins[w] = make(chan []byte, 2)
		outs[w] = make(chan shardOut, 2)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer close(outs[w])
			dec := src.NewBlockDecoder()
			local := trace.NewInterner()
			for block := range ins[w] {
				prev := local.Len()
				var ids []trace.ObsID
				err := dec.Decode(block, func(obs trace.Observation) error {
					ids = append(ids, local.Intern(obs))
					return nil
				})
				out := shardOut{ids: ids, seg: local.CanonSince(prev), err: err}
				select {
				case outs[w] <- out:
				case <-ctx.Done():
					return
				}
				if err != nil {
					return
				}
			}
		}(w)
	}

	// Feeder: hand out blocks round-robin so per-worker block order is
	// globally known (the merger walks workers in the same rotation).
	srcErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, ch := range ins {
				close(ch)
			}
		}()
		for w := 0; ; w = (w + 1) % workers {
			block, err := next()
			if err == io.EOF {
				srcErr <- nil
				return
			}
			if err != nil {
				srcErr <- err
				return
			}
			select {
			case ins[w] <- block:
			case <-ctx.Done():
				srcErr <- ctx.Err()
				return
			}
		}
	}()

	// Merger: walk blocks in hand-out order, grow per-worker remap
	// tables, feed global ids downstream.
	remaps := make([][]trace.ObsID, workers)
	for w := 0; ; w = (w + 1) % workers {
		out, ok := <-outs[w]
		if !ok {
			// The rotation hit the worker after the final block: all
			// blocks are merged. Surface the source error, if any.
			return <-srcErr
		}
		remap := remaps[w]
		for _, obs := range out.seg {
			remap = append(remap, g.obsIntern.Intern(obs))
		}
		remaps[w] = remap
		for _, lid := range out.ids {
			if !feed(remap[lid]) {
				return nil
			}
		}
		if out.err != nil {
			return out.err
		}
	}
}
