package predicate

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/trace"
)

func intTrace(t *testing.T, vals ...int64) *trace.Trace {
	t.Helper()
	tr := trace.New(trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int}))
	for _, v := range vals {
		tr.MustAppend(trace.Observation{expr.IntVal(v)})
	}
	return tr
}

func keys(ps []*Predicate) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

func TestCounterAscending(t *testing.T) {
	tr := intTrace(t, 1, 2, 3, 4, 5)
	g, err := NewGenerator(tr.Schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Window() != 3 {
		t.Fatalf("default window = %d, want 3", g.Window())
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("sequence length %d, want 3 (n+1-w)", len(ps))
	}
	for i, p := range ps {
		if p.Key != "x' = x + 1" {
			t.Errorf("p%d = %q, want x' = x + 1", i, p.Key)
		}
		if p != ps[0] {
			t.Errorf("predicates not interned: p%d != p0", i)
		}
	}
}

func TestCounterTurningPointsSoundAndStable(t *testing.T) {
	// 1..5..1..5: ascending, peak, descending, trough predicates.
	vals := []int64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	tr := intTrace(t, vals...)
	g, err := NewGenerator(tr.Schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Soundness: every predicate holds on its own window.
	for i, p := range ps {
		if err := Verify(p, tr.Slice(i, i+g.Window())); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
	}
	// Stability: the alphabet has exactly 4 predicates (up, peak,
	// down, trough) and the second cycle reuses the first cycle's.
	distinct := map[string]bool{}
	for _, p := range ps {
		distinct[p.Key] = true
	}
	if len(distinct) != 4 {
		t.Errorf("alphabet size %d, want 4: %v", len(distinct), keys(ps))
	}
	// Period: predicate at i and i+8 must match (cycle length 8).
	for i := 0; i+8 < len(ps); i++ {
		if ps[i] != ps[i+8] {
			t.Errorf("predicate %d (%q) != predicate %d (%q)", i, ps[i].Key, i+8, ps[i+8].Key)
		}
	}
	if len(g.Alphabet()) != 4 {
		t.Errorf("Alphabet() size %d, want 4", len(g.Alphabet()))
	}
}

func TestEventTraceGuards(t *testing.T) {
	tr := trace.FromEvents([]string{"enable", "address", "configure", "stop", "disable"})
	g, err := NewGenerator(tr.Schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Window() != 2 {
		t.Fatalf("event-schema default window = %d, want 2", g.Window())
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"event = 'enable'", "event = 'address'", "event = 'configure'", "event = 'stop'"}
	got := keys(ps)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("p%d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMixedSchemaSerialStyle(t *testing.T) {
	schema := trace.MustSchema(
		trace.VarDef{Name: "event", Type: expr.Sym},
		trace.VarDef{Name: "x", Type: expr.Int},
	)
	tr := trace.New(schema)
	add := func(ev string, x int64) {
		tr.MustAppend(trace.Observation{expr.SymVal(ev), expr.IntVal(x)})
	}
	// Two writes then two reads.
	add("write", 0)
	add("write", 1)
	add("write", 2)
	add("read", 3)
	add("read", 2)
	add("read", 1)
	g, err := NewGenerator(schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if err := Verify(p, tr.Slice(i, i+g.Window())); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
	}
	// Uniform write window yields guard + increment.
	if ps[0].Key != "event = 'write' && x' = x + 1" {
		t.Errorf("p0 = %q", ps[0].Key)
	}
	// Uniform read window yields guard + decrement.
	last := ps[len(ps)-1]
	if last.Key != "event = 'read' && x' = x - 1" {
		t.Errorf("last = %q", last.Key)
	}
	// The mixed window (write then read) has no event guard but must
	// still describe x soundly (checked above) and branch on the event.
	found := false
	for _, p := range ps {
		if p != ps[0] && p != last {
			found = true
		}
	}
	if !found {
		t.Error("no mixed-window predicate generated")
	}
}

func TestMemoisation(t *testing.T) {
	vals := make([]int64, 0, 64)
	for c := 0; c < 8; c++ {
		for v := int64(1); v <= 4; v++ {
			vals = append(vals, v)
		}
		for v := int64(3); v >= 1; v-- {
			vals = append(vals, v)
		}
	}
	tr := intTrace(t, vals...)
	g, _ := NewGenerator(tr.Schema(), Options{})
	if _, err := g.Sequence(tr); err != nil {
		t.Fatal(err)
	}
	if g.Stats().MemoHits == 0 {
		t.Error("no memo hits on a periodic trace")
	}
	if g.Stats().Windows != tr.Len()+1-g.Window() {
		t.Errorf("windows = %d, want %d", g.Stats().Windows, tr.Len()+1-g.Window())
	}
	// Without memoisation, every window is rebuilt but results agree.
	g2, _ := NewGenerator(tr.Schema(), Options{NoMemo: true})
	ps2, err := g2.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	g3, _ := NewGenerator(tr.Schema(), Options{})
	ps3, _ := g3.Sequence(tr)
	if len(ps2) != len(ps3) {
		t.Fatal("length mismatch")
	}
	for i := range ps2 {
		if ps2[i].Key != ps3[i].Key {
			t.Errorf("window %d: %q (no memo) vs %q (memo)", i, ps2[i].Key, ps3[i].Key)
		}
	}
	if g2.Stats().MemoHits != 0 {
		t.Error("NoMemo still hit the memo")
	}
}

func TestSeedReuseStabilisesAlphabet(t *testing.T) {
	// With reuse disabled the alphabet can only grow or stay equal.
	vals := []int64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	tr := intTrace(t, vals...)
	gReuse, _ := NewGenerator(tr.Schema(), Options{})
	psReuse, err := gReuse.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	gNo, _ := NewGenerator(tr.Schema(), Options{NoReuse: true})
	psNo, err := gNo.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	count := func(ps []*Predicate) int {
		m := map[string]bool{}
		for _, p := range ps {
			m[p.Key] = true
		}
		return len(m)
	}
	if count(psReuse) > count(psNo) {
		t.Errorf("reuse enlarged alphabet: %d vs %d", count(psReuse), count(psNo))
	}
	if gReuse.Stats().SeedHits == 0 {
		t.Error("no seed hits with reuse enabled")
	}
}

func TestInconsistentWindowFallsBack(t *testing.T) {
	// Window [0,1,0,2] with w=4: steps 0→1, 1→0, 0→2. f(0) must be
	// both 1 and 2 — inconsistent, so the explicit relation is used.
	tr := intTrace(t, 0, 1, 0, 2)
	g, err := NewGenerator(tr.Schema(), Options{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("got %d predicates", len(ps))
	}
	if err := Verify(ps[0], tr); err != nil {
		t.Errorf("fallback predicate unsound: %v", err)
	}
}

func TestWindowValidation(t *testing.T) {
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	if _, err := NewGenerator(schema, Options{Window: 1}); err == nil {
		t.Error("window 1 accepted")
	}
	g, _ := NewGenerator(schema, Options{})
	if _, err := g.Sequence(intTrace(t, 1, 2)); err == nil {
		t.Error("trace shorter than window accepted")
	}
	if _, err := g.FromWindow(intTrace(t, 1, 2)); err == nil {
		t.Error("short window accepted")
	}
}

func TestEventTraceWiderWindow(t *testing.T) {
	// Event trace with w=3: the changing event has no uniform guard,
	// so the generator synthesises a next-event function instead of
	// returning an empty predicate.
	tr := trace.FromEvents([]string{"a", "b", "a", "b", "a"})
	g, err := NewGenerator(tr.Schema(), Options{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := g.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if err := Verify(p, tr.Slice(i, i+3)); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
	}
}
