package predicate

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/trace"
)

// expand flattens a run stream back into the per-window sequence.
func expand(runs []Run) []*Predicate {
	var out []*Predicate
	for _, r := range runs {
		for i := 0; i < r.Count; i++ {
			out = append(out, r.Pred)
		}
	}
	return out
}

// mixedTrace is a small trace exercising memo hits, seed reuse and the
// wrap fallback: a mod-4 counter with an event variable.
func mixedTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	schema := trace.MustSchema(
		trace.VarDef{Name: "count", Type: expr.Int},
		trace.VarDef{Name: "event", Type: expr.Sym},
	)
	tr := trace.New(schema)
	for i := 0; i < n; i++ {
		ev := "tick"
		if i%4 == 3 {
			ev = "wrap"
		}
		tr.MustAppend(trace.Observation{expr.IntVal(int64(i % 4)), expr.SymVal(ev)})
	}
	return tr
}

func TestSequenceSourceMatchesBatch(t *testing.T) {
	tr := mixedTrace(t, 64)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gBatch, err := NewGenerator(tr.Schema(), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			batch, err := gBatch.Sequence(tr)
			if err != nil {
				t.Fatal(err)
			}

			gStream, err := NewGenerator(tr.Schema(), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var runs []Run
			if err := gStream.SequenceSource(trace.NewTraceSource(tr), func(r Run) error {
				runs = append(runs, r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			stream := expand(runs)

			if len(stream) != len(batch) {
				t.Fatalf("stream yields %d windows, batch %d", len(stream), len(batch))
			}
			for i := range batch {
				if stream[i].Key != batch[i].Key {
					t.Fatalf("window %d: stream %q, batch %q", i, stream[i].Key, batch[i].Key)
				}
			}
			// Runs must be maximal: no adjacent equal predicates.
			for i := 1; i < len(runs); i++ {
				if runs[i].Pred == runs[i-1].Pred {
					t.Fatalf("runs %d and %d share predicate %q", i-1, i, runs[i].Pred.Key)
				}
			}
			// Work accounting matches the batch path exactly.
			if bs, ss := gBatch.Stats(), gStream.Stats(); bs != ss {
				t.Fatalf("stats diverge: batch %+v, stream %+v", bs, ss)
			}
		})
	}
}

func TestSequenceSourceShortTrace(t *testing.T) {
	tr := mixedTrace(t, 2)
	for _, workers := range []int{1, 4} {
		g, err := NewGenerator(tr.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		err = g.SequenceSource(trace.NewTraceSource(tr), func(Run) error { return nil })
		if err == nil {
			t.Fatalf("workers=%d: no error for trace shorter than window", workers)
		}
	}
}

func TestSequenceSourceEmitError(t *testing.T) {
	tr := mixedTrace(t, 32)
	sentinel := errors.New("stop")
	for _, workers := range []int{1, 4} {
		g, err := NewGenerator(tr.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		err = g.SequenceSource(trace.NewTraceSource(tr), func(Run) error { return sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got %v, want sentinel emit error", workers, err)
		}
	}
}
