package predicate

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/trace"
)

// expand flattens a run stream back into the per-window sequence.
func expand(runs []Run) []*Predicate {
	var out []*Predicate
	for _, r := range runs {
		for i := 0; i < r.Count; i++ {
			out = append(out, r.Pred)
		}
	}
	return out
}

// mixedTrace is a small trace exercising memo hits, seed reuse and the
// wrap fallback: a mod-4 counter with an event variable.
func mixedTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	schema := trace.MustSchema(
		trace.VarDef{Name: "count", Type: expr.Int},
		trace.VarDef{Name: "event", Type: expr.Sym},
	)
	tr := trace.New(schema)
	for i := 0; i < n; i++ {
		ev := "tick"
		if i%4 == 3 {
			ev = "wrap"
		}
		tr.MustAppend(trace.Observation{expr.IntVal(int64(i % 4)), expr.SymVal(ev)})
	}
	return tr
}

func TestSequenceSourceMatchesBatch(t *testing.T) {
	tr := mixedTrace(t, 64)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			gBatch, err := NewGenerator(tr.Schema(), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			batch, err := gBatch.Sequence(tr)
			if err != nil {
				t.Fatal(err)
			}

			gStream, err := NewGenerator(tr.Schema(), Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			var runs []Run
			if err := gStream.SequenceSource(trace.NewTraceSource(tr), func(r Run) error {
				runs = append(runs, r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			stream := expand(runs)

			if len(stream) != len(batch) {
				t.Fatalf("stream yields %d windows, batch %d", len(stream), len(batch))
			}
			for i := range batch {
				if stream[i].Key != batch[i].Key {
					t.Fatalf("window %d: stream %q, batch %q", i, stream[i].Key, batch[i].Key)
				}
			}
			// Runs must be maximal: no adjacent equal predicates.
			for i := 1; i < len(runs); i++ {
				if runs[i].Pred == runs[i-1].Pred {
					t.Fatalf("runs %d and %d share predicate %q", i-1, i, runs[i].Pred.Key)
				}
			}
			// Work accounting matches the batch path exactly.
			if bs, ss := gBatch.Stats(), gStream.Stats(); bs != ss {
				t.Fatalf("stats diverge: batch %+v, stream %+v", bs, ss)
			}
		})
	}
}

func TestSequenceSourceShortTrace(t *testing.T) {
	tr := mixedTrace(t, 2)
	for _, workers := range []int{1, 4} {
		g, err := NewGenerator(tr.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		err = g.SequenceSource(trace.NewTraceSource(tr), func(Run) error { return nil })
		if err == nil {
			t.Fatalf("workers=%d: no error for trace shorter than window", workers)
		}
	}
}

func TestSequenceSourceEmitError(t *testing.T) {
	tr := mixedTrace(t, 32)
	sentinel := errors.New("stop")
	for _, workers := range []int{1, 4} {
		g, err := NewGenerator(tr.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		err = g.SequenceSource(trace.NewTraceSource(tr), func(Run) error { return sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got %v, want sentinel emit error", workers, err)
		}
	}
}

// bigCSV builds a quote-free counter CSV large enough to span several
// ingest shards (shardBlockSize-sized blocks), with an optional
// malformed record injected at row badAt (-1 for none).
func bigCSV(rows, badAt int) []byte {
	var buf bytes.Buffer
	buf.WriteString("count:int,event:sym\n")
	for i := 0; i < rows; i++ {
		if i == badAt {
			buf.WriteString("notanint,ev\n")
			continue
		}
		ev := "tick"
		if i%5 == 4 {
			ev = "wrap"
		}
		fmt.Fprintf(&buf, "%d,%s\n", i%5, ev)
	}
	return buf.Bytes()
}

// TestShardedIngestMatchesSerial drives a multi-megabyte zero-copy CSV
// through SequenceSource at several worker counts. Workers > 1 on a
// quote-free byte-backed source takes the sharded block-decode path
// (private per-worker interners, deterministic merge); the emitted run
// sequence must be byte-identical to the serial path's.
func TestShardedIngestMatchesSerial(t *testing.T) {
	data := bigCSV(320_000, -1) // ~2.5 MiB: several shardBlockSize blocks
	if len(data) < 2*shardBlockSize {
		t.Fatalf("trace only %d bytes, want > %d to span shards", len(data), 2*shardBlockSize)
	}
	// Confirm the shard precondition holds, so workers>1 below really
	// exercises shardStream rather than silently falling back.
	probe, err := trace.NewCSVSource(trace.NewBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := probe.Blocks(shardBlockSize); !ok {
		t.Fatal("Blocks refused the shard-eligible trace")
	}

	collect := func(workers int) []Run {
		src, err := trace.NewCSVSource(trace.NewBytes(data))
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(src.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var runs []Run
		if err := g.SequenceSource(src, func(r Run) error {
			runs = append(runs, r)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return runs
	}

	want := collect(1)
	if len(want) == 0 {
		t.Fatal("serial path emitted no runs")
	}
	for _, workers := range []int{2, 4} {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d runs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Pred.Key != want[i].Pred.Key || got[i].Count != want[i].Count {
				t.Fatalf("workers=%d: run %d = {%q, %d}, want {%q, %d}",
					workers, i, got[i].Pred.Key, got[i].Count, want[i].Pred.Key, want[i].Count)
			}
		}
	}
}

// TestShardedIngestDecodeError: a malformed record deep in the trace
// must surface as an error at every worker count — including through
// the sharded block path, where the failing block is decoded on some
// worker but the error is reported in block order.
func TestShardedIngestDecodeError(t *testing.T) {
	data := bigCSV(320_000, 250_000)
	for _, workers := range []int{1, 4} {
		src, err := trace.NewCSVSource(trace.NewBytes(data))
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(src.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		err = g.SequenceSource(src, func(Run) error { return nil })
		if err == nil {
			t.Fatalf("workers=%d: malformed record decoded without error", workers)
		}
	}
}
