// Parallel predicate synthesis: Sequence deduplicates windows by
// content, fans the unique windows out to a bounded worker pool, and
// reassembles the predicate sequence in original order with output
// bit-for-bit identical to the serial path.
//
// The challenge is that the serial path is stateful: previously
// synthesised next functions seed later windows, and whether a window
// reuses a seed or synthesises afresh depends on the seed pool *at the
// moment that window is processed*. The engine therefore splits each
// unique window's work in two:
//
//  1. Speculation (parallel): run the window build — the expensive
//     enumeration — and record the outcome of every synthesizer call,
//     seeding each search with a snapshot of the current pool (see
//     speculate for why that preserves determinism). Because the CEGIS
//     search ignores seeds once the seed pass misses, the minimal
//     expression for a call depends only on the window content, so the
//     record is valid no matter when it is computed.
//
//  2. Replay (serial, in first-occurrence order): re-run the build
//     replacing each synthesizer call with the serial decision rule —
//     size-sorted seed pass against the authoritative pool first, the
//     speculative minimal expression otherwise — and evolve the seed
//     pool, memo, interning table and stats exactly as the serial path
//     would. Replay does no enumeration, so it is cheap; the control
//     flow of the build depends only on window content and error
//     class, so replay consumes the speculation record in lockstep.
//
// The one divergence — speculation aborted on a "no solution within
// size bound" error that the authoritative seed pool rescues — leaves
// the replay without records for the remaining calls of that window;
// those calls fall back to full serial synthesis, which is exactly the
// serial semantics.
//
// The first window whose replay fails cancels the context, stopping
// in-flight workers promptly; the error index matches the serial path
// because replay runs in original order and synthesis failures are
// deterministic in (window content, seed pool).
package predicate

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// synthRecord is the replayable outcome of one synthesizer call,
// produced either by in-process speculation or by decoding a cross-run
// cache entry (cache.go).
type synthRecord struct {
	f   expr.Expr
	err error
	// seed marks a cache record whose producing run answered this call
	// from its seed pool: replay must re-decide it against the live
	// pool (synthesising afresh on a miss), never reuse a value.
	seed bool
	// name is the recorded variable for cache records; replay poisons
	// the job on a mismatch. Empty (speculation records) skips the
	// check.
	name string
}

// specJob is one unique window content awaiting speculation.
type specJob struct {
	win  *trace.Trace
	recs []synthRecord
	work int64         // candidate expressions enumerated speculatively
	done chan struct{} // closed when recs is populated

	// Cross-run cache state (cache.go); all zero when no cache is
	// attached. dig/hasDig/fromCache/cachedExpr are written by
	// cacheLookup before done closes; pub/poison by the replaying
	// consumer.
	dig        synthcache.Digest
	hasDig     bool
	fromCache  bool
	cachedExpr int // ExprCalls of the loaded entry
	pub        []synthcache.Call
	poison     bool
}

// sequenceParallel is Sequence's fan-out path. Callers validated the
// trace; workers ≥ 2.
func (g *Generator) sequenceParallel(tr *trace.Trace, workers int) ([]*Predicate, error) {
	k := tr.Len() + 1 - g.w

	// Stage 1: intern every observation once. Ids make each window key
	// an O(w) fixed-size array copy, so the formerly parallel
	// string-building stage collapses into this single cheap pass.
	ids := make([]trace.ObsID, tr.Len())
	for i := range ids {
		ids[i] = g.obsIntern.Intern(tr.At(i))
	}

	// Stage 2: one speculation job per unique window content not
	// already memoised, in first-occurrence order (the order replay
	// will consume them, so the pool pipelines with the replay).
	g.mu.Lock()
	jobByKey := make(map[trace.WindowKey]*specJob, k)
	var jobs []*specJob
	for i := 0; i < k; i++ {
		key := trace.MakeWindowKey(ids[i : i+g.w])
		if _, ok := jobByKey[key]; ok {
			continue
		}
		if !g.opts.NoMemo {
			if _, ok := g.memo[key]; ok {
				continue
			}
		}
		job := &specJob{win: tr.Slice(i, i+g.w), done: make(chan struct{})}
		jobByKey[key] = job
		jobs = append(jobs, job)
	}
	g.mu.Unlock()

	// Stage 3: bounded worker pool speculating on unique windows.
	ctx, cancel := context.WithCancel(context.Background())
	var ww sync.WaitGroup
	defer ww.Wait() // after cancel (defers run LIFO): no goroutine outlives the call
	defer cancel()
	var cursor atomic.Int64
	for w := 0; w < workers && w < len(jobs); w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				job := jobs[i]
				if !g.cacheLookup(job) {
					g.speculate(ctx, job)
				}
				close(job.done)
			}
		}()
	}

	// Stage 4: replay in original order against the authoritative
	// generator state.
	out := make([]*Predicate, 0, k)
	for i := 0; i < k; i++ {
		key := trace.MakeWindowKey(ids[i : i+g.w])
		g.mu.Lock()
		g.stats.Windows++
		g.cWindows.Add(1)
		if !g.opts.NoMemo {
			if p, ok := g.memo[key]; ok {
				g.stats.MemoHits++
				g.cMemoHits.Add(1)
				g.mu.Unlock()
				out = append(out, p)
				continue
			}
		}
		g.mu.Unlock()

		job := jobByKey[key]
		<-job.done

		g.mu.Lock()
		g.stats.UniqueWindows++
		p, err := g.replayTraced(job)
		if err == nil && !g.opts.NoMemo {
			g.memo[key] = p
		}
		g.mu.Unlock()
		if err != nil {
			cancel()
			return nil, fmt.Errorf("predicate: window at observation %d: %w", i, err)
		}
		g.cachePublish(job)
		out = append(out, p)
	}
	return out, nil
}

// speculate runs the window build with speculative synthesis,
// recording every synthesizer call's outcome. Each call seeds the
// search with a snapshot of the current seed pool: pools only grow
// during the run, so the snapshot is a subset of the pool the replay
// will consult, and whenever the replay's authoritative seed pass
// misses — the only case that consumes the record — the snapshot pass
// must have missed too, leaving the recorded value the seed-independent
// minimal expression. The snapshot costs a brief lock per call but
// spares most repeated-pattern windows the full enumeration.
func (g *Generator) speculate(ctx context.Context, job *specJob) {
	var recs []synthRecord
	next := func(name string, examples []synth.Example) (expr.Expr, error) {
		opts := g.opts.Synth
		opts.DiffVars = []string{name}
		// Candidate counting lands in the job, not the shared counter,
		// so the replay span can report this window's enumeration work;
		// the total is folded into the registry below.
		opts.Work = &job.work
		if !g.opts.NoReuse {
			g.mu.Lock()
			opts.Seeds = g.sortedSeeds(name)
			g.mu.Unlock()
		}
		f, err := synth.SynthesizeContext(ctx, g.synthVars, examples, opts)
		recs = append(recs, synthRecord{f: f, err: err})
		return f, err
	}
	// The build result is discarded: only the recorded synthesis
	// outcomes matter, and the replay recomputes the predicate with
	// the authoritative seed decisions.
	t0 := time.Now()
	_, _ = g.buildExpr(job.win, next)
	g.hSynthNS.Since(t0)
	g.cCandidates.Add(job.work)
	job.recs = recs
}

// replayTraced wraps replay with the unit-span accounting shared by the
// batch and streaming parallel consumers: a "window" span in replay
// mode carrying the synthesis-call and seed-hit deltas plus the
// speculative enumeration work. Callers hold g.mu.
func (g *Generator) replayTraced(job *specJob) (*Predicate, error) {
	tr := g.tel.Trace()
	if !tr.Enabled() {
		return g.replay(job)
	}
	before := g.stats
	id := tr.Start(g.stageSpan, "window", pipeline.Str("mode", "replay"))
	p, err := g.replay(job)
	d := g.stats.Minus(before)
	tr.End(id,
		pipeline.Int("synth_calls", int64(d.SynthCalls)),
		pipeline.Int("seed_hits", int64(d.SeedHits)),
		pipeline.Int("spec_candidates", job.work),
		pipeline.Bool("ok", err == nil))
	return p, err
}

// replay re-runs one window's build with the serial decision rule,
// consuming the speculation (or cache) record. Callers hold g.mu.
func (g *Generator) replay(job *specJob) (*Predicate, error) {
	e, err := g.buildExpr(job.win, g.replayNexter(job))
	if err != nil {
		return nil, err
	}
	return g.intern(e), nil
}

// replayNexter returns the nextFunc replay drives: positional record
// consumption over job.recs. The serial cached build (cache.go) uses
// the same closure over a job with cache-decoded records.
func (g *Generator) replayNexter(job *specJob) nextFunc {
	cur := 0
	return func(name string, examples []synth.Example) (expr.Expr, error) {
		var rec *synthRecord
		if cur < len(job.recs) {
			rec = &job.recs[cur]
			cur++
		}
		return g.replayNext(name, examples, rec, job)
	}
}

// replayNext reproduces exactly what synthesizeNext would have
// returned at this point of the seed-pool evolution, substituting the
// speculative or cached record for the enumeration. rec is nil when
// speculation aborted before reaching this call. With a cross-run
// cache attached, every outcome is also recorded on the job for
// publication (pubCall). Callers hold g.mu.
func (g *Generator) replayNext(name string, examples []synth.Example, rec *synthRecord, job *specJob) (expr.Expr, error) {
	g.stats.SynthCalls++
	// Serial order inside synth.Synthesize: consistency check, then
	// seed pass, then search.
	if err := synth.CheckExamples(examples); err != nil {
		g.pubCall(job, name, nil, false, err)
		return nil, err
	}
	if rec != nil && rec.name != "" && rec.name != name {
		// A cache record for a different call sequence than this build
		// ran: fall back to serial synthesis for the rest of the
		// window and never publish it.
		job.poison = true
		rec = nil
	}
	if rec != nil && rec.seed {
		// The producing run's pool answered this call; ours decides
		// afresh below, exactly like a missing record.
		rec = nil
	}
	var f expr.Expr
	if !g.opts.NoReuse {
		for _, s := range g.sortedSeeds(name) {
			if synth.ConsistentWith(s, examples) {
				f = s
				break
			}
		}
	}
	seedHit := f != nil
	if f == nil {
		switch {
		case rec == nil:
			// Speculation aborted before this call (or the record is
			// pool-dependent): synthesise serially (seed pass inside
			// misses again; only the CEGIS search runs).
			var err error
			f, err = g.searchNext(name, examples)
			if err != nil {
				g.pubCall(job, name, nil, false, err)
				return nil, err
			}
		case rec.err != nil:
			// The seed pool could not rescue the speculative
			// failure, so the serial path fails identically.
			g.pubCall(job, name, nil, false, rec.err)
			return nil, rec.err
		default:
			f = rec.f
		}
	}
	g.noteResult(name, f)
	g.pubCall(job, name, f, seedHit, nil)
	return f, nil
}
