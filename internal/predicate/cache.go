// Cross-run synthesis caching: with a synthcache.Cache attached
// (Options.Cache / SetSynthCache), every unique-window build consults
// an on-disk, content-addressed record of a previous build of the same
// window before enumerating, and publishes its own outcome after.
//
// The design reuses the speculate/replay decomposition of parallel.go
// wholesale. A cache entry is exactly a persisted speculation record —
// the per-call outcomes whose validity does not depend on when (or in
// which process) they were computed:
//
//   - a call the producing run answered by CEGIS search stores the
//     minimal expression, which depends only on window content and
//     synthesis parameters (the CEGIS search ignores seeds once the
//     seed pass misses);
//   - a call the producing run answered from its seed pool stores only
//     a marker: pools are run-local history, so the consuming run must
//     re-decide the call against its own pool — replayNext treats the
//     marker like a missing record and falls back to full serial
//     synthesis when its authoritative seed pass misses;
//   - deterministic failures (ErrInconsistent, ErrNoSolution) store
//     their class; anything else (cancellation) poisons the record so
//     it is never published.
//
// Replay against the authoritative pool is the same code path that
// makes the parallel engine byte-identical to the serial one, so a
// model learned with the cache cold, warm, shared, corrupted or
// disabled is byte-identical in all five states — the cache can only
// change how fast a window builds, never what it builds.
//
// Keys hash the window's canonical value content (insertion-order
// independent: two runs that intern observations in different orders
// digest the same window identically) together with every synthesis
// parameter that can change a build's outcome. Lookup and store run
// without g.mu on the parallel paths, so entry I/O overlaps synthesis.
package predicate

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/expr"
	"repro/internal/synth"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// SetSynthCache attaches a cross-run synthesis cache, or detaches it
// (nil). Attach before any Sequence/FromWindow call, not concurrently
// with one. Models are byte-identical with and without a cache.
func (g *Generator) SetSynthCache(c *synthcache.Cache) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cache = c
	if c == nil {
		g.cachePrefix, g.cacheTypes = nil, nil
		return
	}
	g.cachePrefix = cacheKeyPrefix(g.w, g.schema, g.opts.Synth)
	g.cacheTypes = g.schema.Types()
	if g.tel != nil {
		c.SetTelemetry(g.tel)
	}
}

// cacheKeyPrefix renders every parameter besides the window content
// that determines a build's outcome: window width, schema (names,
// types, roles — they drive guard/branch selection and the synthesis
// grammar), and the synthesizer options with MaxSize resolved. Seeds,
// Work and NoReuse are deliberately absent: entries record
// seed-independent outcomes, candidate counting is telemetry, and
// NoReuse is applied live at replay. The embedded format version must
// be bumped whenever buildExpr's call sequence or the synthesizer's
// search order changes meaning, so stale fleets miss instead of
// replaying records under the wrong semantics.
func cacheKeyPrefix(w int, schema *trace.Schema, so synth.Options) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "t2m-synthcache-key v%d\n", synthcache.Version)
	fmt.Fprintf(&b, "w=%d\n", w)
	for i := 0; i < schema.Len(); i++ {
		v := schema.Var(i)
		fmt.Fprintf(&b, "var=%q type=%d role=%d\n", v.Name, v.Type, v.Role)
	}
	maxSize := so.MaxSize
	if maxSize == 0 {
		maxSize = synth.DefaultMaxSize
	}
	fmt.Fprintf(&b, "maxsize=%d mul=%t\n", maxSize, so.EnableMul)
	fmt.Fprintf(&b, "arith=%v cmp=%v\n", so.ExtraArithConsts, so.ExtraCmpConsts)
	return b.Bytes()
}

// cacheDigest is the content address of one window: the parameter
// prefix followed by every observation value's length-prefixed
// canonical text, in window and schema order. Hashing value content
// rather than interned ids keeps the digest independent of interner
// insertion order (ids are first-sight-ordered; text is not).
func (g *Generator) cacheDigest(win *trace.Trace) synthcache.Digest {
	h := sha256.New()
	h.Write(g.cachePrefix)
	var n [4]byte
	for i := 0; i < win.Len(); i++ {
		for _, v := range win.At(i) {
			s := v.String()
			binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
			h.Write(n[:])
			io.WriteString(h, s)
		}
	}
	var d synthcache.Digest
	h.Sum(d[:0])
	return d
}

// cacheLookup consults the cache for the job's window, filling
// job.recs with the decoded call records on a hit; it reports whether
// speculation can be skipped. Entries that pass the byte-level
// checksum but fail semantic decoding (unparseable or non-canonical
// expression text) are reclassified as corrupt and treated as misses.
// Safe without g.mu: the cache handle, key prefix and schema types are
// immutable while a sequence runs.
func (g *Generator) cacheLookup(job *specJob) bool {
	if g.cache == nil {
		return false
	}
	job.dig = g.cacheDigest(job.win)
	job.hasDig = true
	ent, ok := g.cache.Load(job.dig)
	if !ok {
		return false
	}
	recs, err := g.decodeEntry(ent)
	if err != nil {
		g.cache.Reject()
		return false
	}
	job.recs = recs
	job.fromCache = true
	job.cachedExpr = ent.ExprCalls()
	return true
}

// decodeEntry converts a cache entry into replayable records, with the
// same canonical round-trip check model loading applies: every stored
// expression must re-render to its stored text.
func (g *Generator) decodeEntry(ent *synthcache.Entry) ([]synthRecord, error) {
	recs := make([]synthRecord, len(ent.Calls))
	for i, call := range ent.Calls {
		recs[i].name = call.Var
		switch call.Op {
		case synthcache.OpExpr:
			e, err := expr.Parse(call.Expr, g.cacheTypes)
			if err != nil {
				return nil, err
			}
			if canon := e.String(); canon != call.Expr {
				return nil, fmt.Errorf("predicate: cached expression not canonical: %q vs %q", call.Expr, canon)
			}
			recs[i].f = e
		case synthcache.OpSeed:
			recs[i].seed = true
		case synthcache.OpInconsistent:
			recs[i].err = synth.ErrInconsistent
		case synthcache.OpNoSolution:
			recs[i].err = synth.ErrNoSolution
		default:
			return nil, fmt.Errorf("predicate: cached call %d has unknown op %q", i, call.Op)
		}
	}
	return recs, nil
}

// pubCall records one replay outcome for publication: a pool answer as
// a seed marker, a search answer as its expression text, deterministic
// failures as their class. Any other outcome poisons the window's
// record. No-op without a cache, so the disabled path allocates
// nothing.
func (g *Generator) pubCall(job *specJob, name string, f expr.Expr, seedHit bool, err error) {
	if g.cache == nil || job == nil || job.poison {
		return
	}
	call := synthcache.Call{Var: name}
	switch {
	case err == nil && seedHit:
		call.Op = synthcache.OpSeed
	case err == nil:
		call.Op = synthcache.OpExpr
		call.Expr = f.String()
	case errors.Is(err, synth.ErrInconsistent):
		call.Op = synthcache.OpInconsistent
	case errors.Is(err, synth.ErrNoSolution):
		call.Op = synthcache.OpNoSolution
	default:
		job.poison = true
		return
	}
	job.pub = append(job.pub, call)
}

// cachePublish stores the replayed window's outcome record, best
// effort (a failed store costs only the next run's miss). An entry
// that was itself loaded from the cache is rewritten only when this
// run resolved strictly more calls to seed-free expressions than the
// stored record — the richer record saves future cold-pool runs more
// enumeration, while an equal or poorer one would only churn the file.
func (g *Generator) cachePublish(job *specJob) {
	if g.cache == nil || !job.hasDig || job.poison {
		return
	}
	ent := &synthcache.Entry{Calls: job.pub}
	if job.fromCache && ent.ExprCalls() <= job.cachedExpr {
		return
	}
	_ = g.cache.Store(job.dig, ent)
}

// buildCached is the serial unique-window build against the cache:
// look the window up, replay whatever record exists (an empty record
// list replays as pure serial synthesis), publish on success. Callers
// hold g.mu and wrap the call in buildUnique's telemetry.
func (g *Generator) buildCached(win *trace.Trace) (expr.Expr, error) {
	job := &specJob{win: win}
	g.cacheLookup(job)
	e, err := g.buildExpr(win, g.replayNexter(job))
	if err == nil {
		g.cachePublish(job)
	}
	return e, err
}
