package predicate

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/synth"
	"repro/internal/trace"
)

// The parallel Sequence path must be bit-for-bit identical to the
// serial one: same predicate pointers (interning), same seed pools,
// same stats, same first error. The tests below check that over
// randomized traces of every schema shape the generator supports.

type schemaGen struct {
	name   string
	schema *trace.Schema
	step   func(rng *rand.Rand, tr *trace.Trace, i int)
}

func schemaGens() []schemaGen {
	intSchema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	eventSchema := trace.MustSchema(trace.VarDef{Name: "event", Type: expr.Sym})
	mixedSchema := trace.MustSchema(
		trace.VarDef{Name: "event", Type: expr.Sym},
		trace.VarDef{Name: "x", Type: expr.Int},
	)
	boolSchema := trace.MustSchema(
		trace.VarDef{Name: "b", Type: expr.Bool, Role: trace.Input},
		trace.VarDef{Name: "x", Type: expr.Int},
	)
	return []schemaGen{
		{
			// Random walk with repeating ±1 runs: memo hits, seed
			// reuse, and turning-point windows.
			name: "int", schema: intSchema,
			step: func(rng *rand.Rand, tr *trace.Trace, i int) {
				var x int64
				if i > 0 {
					x = tr.At(i - 1)[0].I
				}
				switch rng.Intn(6) {
				case 0:
					x = int64(rng.Intn(5))
				case 1, 2:
					x++
				case 3, 4:
					x--
				}
				tr.MustAppend(trace.Observation{expr.IntVal(x)})
			},
		},
		{
			// Pure event trace: guards only, no synthesis.
			name: "events", schema: eventSchema,
			step: func(rng *rand.Rand, tr *trace.Trace, i int) {
				evs := []string{"open", "read", "write", "close"}
				tr.MustAppend(trace.Observation{expr.SymVal(evs[rng.Intn(len(evs))])})
			},
		},
		{
			// Event-guarded counter: mixed windows branch on the
			// event; occasional resets force ite updates.
			name: "mixed", schema: mixedSchema,
			step: func(rng *rand.Rand, tr *trace.Trace, i int) {
				var x int64
				if i > 0 {
					x = tr.At(i - 1)[1].I
				}
				ev := "write"
				switch rng.Intn(5) {
				case 0:
					ev, x = "reset", 0
				case 1, 2:
					ev, x = "read", x-1
				default:
					x++
				}
				tr.MustAppend(trace.Observation{expr.SymVal(ev), expr.IntVal(x)})
			},
		},
		{
			// Boolean input steering an integer state: bool guards
			// group the window steps.
			name: "boolinput", schema: boolSchema,
			step: func(rng *rand.Rand, tr *trace.Trace, i int) {
				var x int64
				if i > 0 {
					x = tr.At(i - 1)[1].I
				}
				b := rng.Intn(2) == 0
				if b {
					x++
				} else {
					x--
				}
				tr.MustAppend(trace.Observation{expr.BoolVal(b), expr.IntVal(x)})
			},
		},
	}
}

func randTrace(rng *rand.Rand, sg schemaGen, n int) *trace.Trace {
	tr := trace.New(sg.schema)
	for i := 0; i < n; i++ {
		sg.step(rng, tr, i)
	}
	return tr
}

// seedStrings renders the per-variable seed pools for comparison.
func seedStrings(g *Generator) map[string][]string {
	out := map[string][]string{}
	for name, es := range g.Seeds() {
		ss := make([]string, len(es))
		for i, e := range es {
			ss[i] = e.String()
		}
		out[name] = ss
	}
	return out
}

func alphabetKeys(g *Generator) map[string]bool {
	out := map[string]bool{}
	for _, p := range g.Alphabet() {
		out[p.Key] = true
	}
	return out
}

// compareRun checks that a parallel run over the same traces is
// indistinguishable from the serial baseline.
func compareRun(t *testing.T, workers int, noMemo bool, trs []*trace.Trace) {
	t.Helper()
	opts := Options{NoMemo: noMemo, Workers: 1}
	gS, err := NewGenerator(trs[0].Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = workers
	gP, err := NewGenerator(trs[0].Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range trs {
		psS, errS := gS.Sequence(tr)
		psP, errP := gP.Sequence(tr)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("trace %d: serial err %v, parallel err %v", ti, errS, errP)
		}
		if errS != nil {
			if errS.Error() != errP.Error() {
				t.Fatalf("trace %d: error mismatch:\nserial:   %v\nparallel: %v", ti, errS, errP)
			}
			continue
		}
		if len(psS) != len(psP) {
			t.Fatalf("trace %d: length %d vs %d", ti, len(psS), len(psP))
		}
		for i := range psS {
			if psS[i].Key != psP[i].Key {
				t.Fatalf("trace %d window %d: key %q vs %q", ti, i, psS[i].Key, psP[i].Key)
			}
		}
		// Interning: equal predicates must be pointer-equal in both
		// runs, with the same sharing structure.
		for i := range psS {
			for j := i + 1; j < len(psS); j++ {
				if (psS[i] == psS[j]) != (psP[i] == psP[j]) {
					t.Fatalf("trace %d: sharing differs at (%d,%d): serial %v, parallel %v",
						ti, i, j, psS[i] == psS[j], psP[i] == psP[j])
				}
			}
		}
	}
	if gS.Stats() != gP.Stats() {
		t.Errorf("stats differ:\nserial:   %+v\nparallel: %+v", gS.Stats(), gP.Stats())
	}
	sS, sP := seedStrings(gS), seedStrings(gP)
	if len(sS) != len(sP) {
		t.Fatalf("seed pools differ: %v vs %v", sS, sP)
	}
	for name, es := range sS {
		ep := sP[name]
		if len(es) != len(ep) {
			t.Fatalf("seed pool %q: %v vs %v", name, es, ep)
		}
		for i := range es {
			if es[i] != ep[i] {
				t.Errorf("seed pool %q[%d]: %q vs %q", name, i, es[i], ep[i])
			}
		}
	}
	aS, aP := alphabetKeys(gS), alphabetKeys(gP)
	if len(aS) != len(aP) {
		t.Errorf("alphabet sizes differ: %d vs %d", len(aS), len(aP))
	}
	for k := range aS {
		if !aP[k] {
			t.Errorf("alphabet missing %q in parallel run", k)
		}
	}
}

func TestSequenceParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sg := range schemaGens() {
		// Two traces per run: the second exercises a generator whose
		// memo and seed pools are already populated.
		trs := []*trace.Trace{randTrace(rng, sg, 48), randTrace(rng, sg, 48)}
		for _, workers := range []int{2, 8} {
			for _, noMemo := range []bool{false, true} {
				name := sg.name
				if noMemo {
					name += "/nomemo"
				}
				t.Run(name, func(t *testing.T) {
					compareRun(t, workers, noMemo, trs)
				})
			}
		}
	}
}

// TestSequenceParallelErrorIndex checks the error path: a window whose
// synthesis fails must surface the same observation index and message
// as the serial run, and cancel the in-flight workers.
func TestSequenceParallelErrorIndex(t *testing.T) {
	// With MaxSize 2 the window [5,9,13] needs x + 4 (size 3) and
	// fails with ErrNoSolution; the preceding [5,5,9] window is
	// inconsistent and falls back to the explicit relation without
	// error. The first failing window starts at observation 4.
	tr := intTrace(t, 5, 5, 5, 5, 5, 9, 13)
	opts := Options{Synth: synth.Options{MaxSize: 2}, Workers: 1}
	gS, err := NewGenerator(tr.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, errS := gS.Sequence(tr)
	if errS == nil {
		t.Fatal("serial run unexpectedly succeeded")
	}
	opts.Workers = 8
	gP, err := NewGenerator(tr.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, errP := gP.Sequence(tr)
	if errP == nil {
		t.Fatal("parallel run unexpectedly succeeded")
	}
	if errS.Error() != errP.Error() {
		t.Errorf("error mismatch:\nserial:   %v\nparallel: %v", errS, errP)
	}
	want := "predicate: window at observation 4"
	if len(errP.Error()) < len(want) || errP.Error()[:len(want)] != want {
		t.Errorf("parallel error %q does not name observation 4", errP)
	}
}

// TestGeneratorConcurrentUse hammers one Generator from many
// goroutines (run under -race in CI). Interleaved calls may observe
// different seed orders, so the test checks safety and soundness, not
// cross-call determinism: no data race, every sequence sound, and
// interning consistent within each result.
func TestGeneratorConcurrentUse(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	tr := intTrace(t, vals...)
	g, err := NewGenerator(tr.Schema(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				ps, err := g.Sequence(tr)
				if err != nil {
					t.Errorf("Sequence: %v", err)
					return
				}
				for j, p := range ps {
					if err := Verify(p, tr.Slice(j, j+g.Window())); err != nil {
						t.Errorf("window %d: %v", j, err)
					}
				}
			} else {
				for j := 0; j+g.Window() <= tr.Len(); j++ {
					if _, err := g.FromWindow(tr.Slice(j, j+g.Window())); err != nil {
						t.Errorf("FromWindow %d: %v", j, err)
					}
				}
			}
			_ = g.Stats()
			_ = g.Alphabet()
			_ = g.Seeds()
		}(i)
	}
	wg.Wait()
	want := tr.Len() + 1 - g.Window()
	if got := g.Stats().Windows; got != 8*want {
		t.Errorf("windows = %d, want %d", got, 8*want)
	}
}
