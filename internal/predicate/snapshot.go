// Generator checkpointing: Snapshot captures the complete mutable
// state of a Generator — the observation interner, the window memo,
// the interned predicate alphabet, the per-variable seed pools and the
// work counters — in a serialisable, deterministic form, and Restore
// rebuilds an identical generator from it. A restored generator
// continues a streaming run bit-for-bit: ids, memo keys, seed order
// and therefore every subsequently synthesised predicate match the
// uninterrupted run (see internal/checkpoint and DESIGN.md note 14).
package predicate

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/expr"
	"repro/internal/trace"
)

// SnapshotState is the serialisable state of a Generator. All fields
// are deterministic functions of the generator's logical state: maps
// are emitted in sorted order, slices in their semantically meaningful
// order (interner ids, seed insertion order), so the same generator
// state always snapshots to the same bytes.
type SnapshotState struct {
	// Window is the observation window w the generator was built with;
	// Restore rejects a mismatch.
	Window int `json:"window"`
	// Obs holds the canonical interned observations in id order, each
	// rendered value-by-value in schema order (type-directed text, the
	// same rendering trace CSV uses). Re-interning them in order
	// reproduces the interner exactly.
	Obs [][]string `json:"obs"`
	// Preds is the interned predicate alphabet as canonical expression
	// text, sorted.
	Preds []string `json:"preds"`
	// Memo maps window contents (interned-id vectors) to predicates
	// (indices into Preds), sorted by id vector.
	Memo []MemoEntry `json:"memo"`
	// Seeds holds the per-variable next-function seed pools, variables
	// sorted, expressions in insertion order (the order is load-bearing:
	// the seed pass tries smaller seeds first with insertion order as
	// the stable tie-break).
	Seeds []SeedEntry `json:"seeds"`
	// Stats are the cumulative work counters.
	Stats Stats `json:"stats"`
}

// MemoEntry is one memoised window: its interned-id contents and the
// index of its predicate in SnapshotState.Preds.
type MemoEntry struct {
	IDs  []int32 `json:"ids"`
	Pred int     `json:"pred"`
}

// SeedEntry is one variable's seed pool in insertion order.
type SeedEntry struct {
	Var   string   `json:"var"`
	Exprs []string `json:"exprs"`
}

// Snapshot captures the generator's state. It must not run
// concurrently with a Sequence/SequenceSource call (checkpoints are
// taken at quiescent epoch boundaries).
func (g *Generator) Snapshot() *SnapshotState {
	g.mu.Lock()
	defer g.mu.Unlock()

	st := &SnapshotState{Window: g.w, Stats: g.stats}

	canon := g.obsIntern.Canon()
	st.Obs = make([][]string, len(canon))
	for i, obs := range canon {
		row := make([]string, len(obs))
		for j, v := range obs {
			row[j] = v.String()
		}
		st.Obs[i] = row
	}

	st.Preds = make([]string, 0, len(g.interned))
	for key := range g.interned {
		st.Preds = append(st.Preds, key)
	}
	sort.Strings(st.Preds)
	predIdx := make(map[string]int, len(st.Preds))
	for i, key := range st.Preds {
		predIdx[key] = i
	}

	st.Memo = make([]MemoEntry, 0, len(g.memo))
	for key, p := range g.memo {
		ids := key.IDs()
		ids32 := make([]int32, len(ids))
		for i, id := range ids {
			ids32[i] = int32(id)
		}
		st.Memo = append(st.Memo, MemoEntry{IDs: ids32, Pred: predIdx[p.Key]})
	}
	sort.Slice(st.Memo, func(i, j int) bool {
		a, b := st.Memo[i].IDs, st.Memo[j].IDs
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})

	names := make([]string, 0, len(g.seeds))
	for name := range g.seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		es := g.seeds[name]
		texts := make([]string, len(es))
		for i, e := range es {
			texts[i] = e.String()
		}
		st.Seeds = append(st.Seeds, SeedEntry{Var: name, Exprs: texts})
	}
	return st
}

// Restore rebuilds the snapshot's state into g, which must be freshly
// constructed with the same schema and window. It returns the restored
// predicate alphabet keyed by canonical text, so callers can rebind
// symbol names to predicates. Expression round-tripping is checked:
// every predicate must re-render to its stored canonical text.
func (g *Generator) Restore(st *SnapshotState) (map[string]*Predicate, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st.Window != g.w {
		return nil, fmt.Errorf("predicate: snapshot window %d, generator window %d", st.Window, g.w)
	}
	if g.stats.Windows != 0 || g.obsIntern.Len() != 0 || len(g.interned) != 0 {
		return nil, fmt.Errorf("predicate: Restore requires a fresh generator")
	}
	types := g.schema.Types()

	// Interner: re-intern the canonical observations in id order; the
	// dense first-sight id assignment reproduces the tables exactly.
	for i, row := range st.Obs {
		if len(row) != g.schema.Len() {
			return nil, fmt.Errorf("predicate: snapshot observation %d has %d values, schema has %d", i, len(row), g.schema.Len())
		}
		obs := make(trace.Observation, len(row))
		for j, text := range row {
			v, err := parseValue(g.schema.Var(j).Type, text)
			if err != nil {
				return nil, fmt.Errorf("predicate: snapshot observation %d, variable %q: %w", i, g.schema.Var(j).Name, err)
			}
			obs[j] = v
		}
		if id := g.obsIntern.Intern(obs); int(id) != i {
			return nil, fmt.Errorf("predicate: snapshot observation %d re-interned as id %d (duplicate entry)", i, id)
		}
	}

	preds := make([]*Predicate, len(st.Preds))
	for i, text := range st.Preds {
		e, err := expr.Parse(text, types)
		if err != nil {
			return nil, fmt.Errorf("predicate: snapshot predicate %d: %w", i, err)
		}
		if canon := e.String(); canon != text {
			return nil, fmt.Errorf("predicate: snapshot predicate %d is not canonical: %q vs %q", i, text, canon)
		}
		p := &Predicate{Expr: e, Key: text}
		g.interned[text] = p
		preds[i] = p
	}

	for _, me := range st.Memo {
		if me.Pred < 0 || me.Pred >= len(preds) {
			return nil, fmt.Errorf("predicate: snapshot memo entry references predicate %d of %d", me.Pred, len(preds))
		}
		ids := make([]trace.ObsID, len(me.IDs))
		for i, id := range me.IDs {
			if id < 0 || int(id) >= g.obsIntern.Len() {
				return nil, fmt.Errorf("predicate: snapshot memo entry references observation %d of %d", id, g.obsIntern.Len())
			}
			ids[i] = trace.ObsID(id)
		}
		g.memo[trace.MakeWindowKey(ids)] = preds[me.Pred]
	}

	for _, se := range st.Seeds {
		if g.schema.Index(se.Var) < 0 {
			return nil, fmt.Errorf("predicate: snapshot seed variable %q not in schema", se.Var)
		}
		for i, text := range se.Exprs {
			e, err := expr.Parse(text, types)
			if err != nil {
				return nil, fmt.Errorf("predicate: snapshot seed %q[%d]: %w", se.Var, i, err)
			}
			g.seeds[se.Var] = append(g.seeds[se.Var], e)
		}
	}

	g.stats = st.Stats
	alphabet := make(map[string]*Predicate, len(g.interned))
	for key, p := range g.interned {
		alphabet[key] = p
	}
	return alphabet, nil
}

// parseValue parses the type-directed text rendering Snapshot emits
// (the same rendering the CSV trace codec uses).
func parseValue(ty expr.Type, text string) (expr.Value, error) {
	switch ty {
	case expr.Int:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.IntVal(n), nil
	case expr.Bool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return expr.Value{}, err
		}
		return expr.BoolVal(b), nil
	case expr.Sym:
		return expr.SymVal(text), nil
	default:
		return expr.Value{}, fmt.Errorf("unknown value type %v", ty)
	}
}
