package predicate

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/synth"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// turningVals is the 1..5..1..5 counter workload: four distinct window
// shapes (ascent, peak, descent, trough), plenty of repeats.
var turningVals = []int64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1}

func cachedGenerator(t *testing.T, schema *trace.Schema, dir string, opts Options) *Generator {
	t.Helper()
	c, err := synthcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c
	g, err := NewGenerator(schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCacheDigestInternerOrderInvariant: the digest addresses window
// content, not interner ids. A generator that interned other
// observations first (different id assignment for the same values)
// must digest an identical window identically — this is what lets runs
// that ingested different traces share one cache directory.
func TestCacheDigestInternerOrderInvariant(t *testing.T) {
	tr := intTrace(t, turningVals...)
	g1 := cachedGenerator(t, tr.Schema(), t.TempDir(), Options{})

	g2 := cachedGenerator(t, tr.Schema(), t.TempDir(), Options{})
	// Skew g2's interner: intern the trace back to front, so every
	// observation gets a different dense id than in g1.
	for i := tr.Len() - 1; i >= 0; i-- {
		g2.obsIntern.Intern(tr.At(i))
	}
	if _, err := g1.Sequence(tr); err != nil {
		t.Fatal(err)
	}

	for i := 0; i+g1.Window() <= tr.Len(); i++ {
		win := tr.Slice(i, i+g1.Window())
		if d1, d2 := g1.cacheDigest(win), g2.cacheDigest(win); d1 != d2 {
			t.Fatalf("window %d: digest depends on interner state: %s vs %s", i, d1, d2)
		}
	}
}

// TestCacheDigestNoCollisions: distinct window contents and distinct
// synthesis parameters must address distinct entries — a collision
// would silently replay the wrong record.
func TestCacheDigestNoCollisions(t *testing.T) {
	tr := intTrace(t, turningVals...)
	g := cachedGenerator(t, tr.Schema(), t.TempDir(), Options{})

	seen := map[synthcache.Digest]string{}
	record := func(gen *Generator, win *trace.Trace, label string) {
		d := gen.cacheDigest(win)
		if prev, ok := seen[d]; ok {
			t.Fatalf("digest collision: %s and %s share %s", prev, label, d)
		}
		seen[d] = label
	}
	// Every distinct window content of several workloads.
	contents := map[string]bool{}
	for _, vals := range [][]int64{
		turningVals,
		{7, 7, 7, 7, 7},
		{0, 10, 0, 10, 0},
		{1, 2, 4, 8, 16, 32},
	} {
		wtr := intTrace(t, vals...)
		for i := 0; i+g.Window() <= wtr.Len(); i++ {
			win := wtr.Slice(i, i+g.Window())
			key := win.At(0)[0].String() + "," + win.At(1)[0].String() + "," + win.At(2)[0].String()
			if contents[key] {
				continue
			}
			contents[key] = true
			record(g, win, "window "+key)
		}
	}

	// The same window under different synthesis parameters: every
	// variation must move the digest.
	win := tr.Slice(0, 3)
	for label, opts := range map[string]Options{
		"maxsize": {Synth: synth.Options{MaxSize: 7}},
		"mul":     {Synth: synth.Options{EnableMul: true}},
		"arith":   {Synth: synth.Options{ExtraArithConsts: []int64{42}}},
		"cmp":     {Synth: synth.Options{ExtraCmpConsts: []int64{42}}},
	} {
		record(cachedGenerator(t, tr.Schema(), t.TempDir(), opts), win, "params "+label)
	}
	// A wider window over the same values, and a different schema.
	g4 := cachedGenerator(t, tr.Schema(), t.TempDir(), Options{Window: 4})
	record(g4, tr.Slice(0, 4), "window-width 4")
	other := trace.MustSchema(trace.VarDef{Name: "y", Type: expr.Int})
	ytr := trace.New(other)
	for _, v := range turningVals[:3] {
		ytr.MustAppend(trace.Observation{expr.IntVal(v)})
	}
	record(cachedGenerator(t, other, t.TempDir(), Options{}), ytr.Slice(0, 3), "schema y")
}

// TestCacheWarmIdenticalSequenceAndStats: with the cache cold or warm,
// at workers 1 and 4, the generator must produce the same predicate
// keys and evolve the same Stats as an uncached generator — the
// generator-level form of the model byte-identity contract. The warm
// generator must additionally answer every unique window from the
// cache.
func TestCacheWarmIdenticalSequenceAndStats(t *testing.T) {
	tr := intTrace(t, turningVals...)
	for _, workers := range []int{1, 4} {
		base, err := NewGenerator(tr.Schema(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		wantPs, err := base.Sequence(tr)
		if err != nil {
			t.Fatal(err)
		}
		wantStats := base.Stats()

		dir := t.TempDir()
		for _, leg := range []string{"cold", "warm"} {
			g := cachedGenerator(t, tr.Schema(), dir, Options{Workers: workers})
			ps, err := g.Sequence(tr)
			if err != nil {
				t.Fatalf("j=%d %s: %v", workers, leg, err)
			}
			if len(ps) != len(wantPs) {
				t.Fatalf("j=%d %s: %d predicates, want %d", workers, leg, len(ps), len(wantPs))
			}
			for i := range ps {
				if ps[i].Key != wantPs[i].Key {
					t.Errorf("j=%d %s: p%d = %q, want %q", workers, leg, i, ps[i].Key, wantPs[i].Key)
				}
			}
			if got := g.Stats(); got != wantStats {
				t.Errorf("j=%d %s: stats %+v, want %+v", workers, leg, got, wantStats)
			}
			st := g.cache.Stats()
			if leg == "warm" && (st.Misses != 0 || st.Hits == 0) {
				t.Errorf("j=%d warm: cache stats %+v, want all hits", workers, st)
			}
			if st.Corrupt != 0 {
				t.Errorf("j=%d %s: cache reported %d corrupt entries", workers, leg, st.Corrupt)
			}
		}
	}
}

// TestDisabledCacheMemoHitNoAllocs pins the hot path: with no cache
// attached, answering a repeated window from the memo must not
// allocate at all — attaching the cache feature may not tax the
// default configuration.
func TestDisabledCacheMemoHitNoAllocs(t *testing.T) {
	tr := intTrace(t, 1, 2, 3)
	g, err := NewGenerator(tr.Schema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	win := tr.Slice(0, g.Window())
	ids := make([]trace.ObsID, g.Window())
	for i := range ids {
		ids[i] = g.obsIntern.Intern(win.At(i))
	}
	key := trace.MakeWindowKey(ids)
	if _, err := g.fromWindow(win, key); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p, err := g.fromWindow(win, key)
		if err != nil || p == nil {
			t.Fatal("memo hit failed")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-cache memo hit allocates %.1f objects per call, want 0", allocs)
	}
}
