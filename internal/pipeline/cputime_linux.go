//go:build linux

package pipeline

import (
	"syscall"
	"time"
)

// CPUTime returns the process's cumulative CPU time (user + system,
// summed over all threads). Stage CPU columns are deltas of this.
func CPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return timevalDuration(ru.Utime) + timevalDuration(ru.Stime)
}

func timevalDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
