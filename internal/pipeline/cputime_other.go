//go:build !linux

package pipeline

import "time"

// CPUTime is unavailable without rusage; stage CPU columns read zero.
func CPUTime() time.Duration { return 0 }
