package pipeline

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsStage(t *testing.T) {
	var m Metrics
	sp := m.Start("predicate")
	time.Sleep(2 * time.Millisecond)
	sp.Add("windows", 10).Add("memo_hits", 7)
	sm := sp.End()

	if sm.Name != "predicate" {
		t.Fatalf("stage name = %q, want predicate", sm.Name)
	}
	if sm.Wall <= 0 {
		t.Errorf("wall time not recorded: %v", sm.Wall)
	}
	if sm.CPU < 0 {
		t.Errorf("negative CPU time: %v", sm.CPU)
	}
	if got := sm.Counter("windows"); got != 10 {
		t.Errorf("windows counter = %d, want 10", got)
	}
	if got := sm.Counter("memo_hits"); got != 7 {
		t.Errorf("memo_hits counter = %d, want 7", got)
	}
	if got := sm.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}

	stages := m.Stages()
	if len(stages) != 1 || stages[0].Name != "predicate" {
		t.Fatalf("Stages() = %+v, want one predicate stage", stages)
	}
}

func TestFormatListsCountersInOrder(t *testing.T) {
	var m Metrics
	m.Start("model").Add("states", 3).Add("transitions", 5).End()
	s := m.String()
	if !strings.Contains(s, "model") || !strings.Contains(s, "states=3") || !strings.Contains(s, "transitions=5") {
		t.Errorf("Format output missing fields:\n%s", s)
	}
	if strings.Index(s, "states=3") > strings.Index(s, "transitions=5") {
		t.Errorf("counters out of insertion order:\n%s", s)
	}
}

func TestMetricsConcurrentSpans(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Start("stage").Add("n", 1).End()
		}()
	}
	wg.Wait()
	if got := len(m.Stages()); got != 8 {
		t.Fatalf("recorded %d stages, want 8", got)
	}
}

func TestCPUTimeMonotone(t *testing.T) {
	a := CPUTime()
	// Burn a little CPU so the second reading can only be ≥ the first.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	b := CPUTime()
	if b < a {
		t.Errorf("CPUTime went backwards: %v then %v", a, b)
	}
}

func TestFormatGolden(t *testing.T) {
	stages := []StageMetrics{
		{Name: "predicate", Wall: 1500 * time.Microsecond, CPU: 4 * time.Millisecond,
			Counters: []Counter{{Name: "windows", Value: 10}, {Name: "memo_hits", Value: 7}}},
		{Name: "model", Wall: 2 * time.Second, CPU: 0},
	}
	got := Format(stages)
	want := "predicate    wall      1.5ms  cpu        4ms  windows=10  memo_hits=7\n" +
		"model        wall         2s  cpu         0s\n"
	if got != want {
		t.Errorf("Format output drifted:\ngot:\n%swant:\n%s", got, want)
	}
}

func TestSpanAddCounterMergesByName(t *testing.T) {
	var m Metrics
	sp := m.Start("ingest")
	sp.Add("runs", 1) // pre-existing appended counter is found by AddCounter
	for i := 0; i < 1000; i++ {
		sp.AddCounter("observations", 2)
		sp.AddCounter("runs", 1)
	}
	sp.AddCounter("bytes", 64)
	sm := sp.End()
	if len(sm.Counters) != 3 {
		t.Fatalf("got %d counters, want 3 (merged by name): %+v", len(sm.Counters), sm.Counters)
	}
	if got := sm.Counter("observations"); got != 2000 {
		t.Errorf("observations = %d, want 2000", got)
	}
	if got := sm.Counter("runs"); got != 1001 {
		t.Errorf("runs = %d, want 1001", got)
	}
	// First-touch order is preserved.
	if sm.Counters[0].Name != "runs" || sm.Counters[1].Name != "observations" || sm.Counters[2].Name != "bytes" {
		t.Errorf("counter order = %+v", sm.Counters)
	}
}

func TestHeapSamplerStopIdempotent(t *testing.T) {
	h := StartHeapSampler(time.Millisecond)
	// Allocate something so the sampler has a non-zero heap to see.
	sink := make([]byte, 1<<20)
	_ = sink
	time.Sleep(5 * time.Millisecond)
	first := h.Stop()
	if first == 0 {
		t.Fatal("peak heap sampled as 0")
	}
	second := h.Stop() // must not panic (double close) and returns the cached peak
	if second != first {
		t.Errorf("second Stop = %d, want cached %d", second, first)
	}
	if h.Current() == 0 {
		t.Error("Current() = 0 after final sample")
	}
	if h.Peak() < h.Current() {
		t.Errorf("peak %d < current %d", h.Peak(), h.Current())
	}
}
