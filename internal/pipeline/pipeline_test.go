package pipeline

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsStage(t *testing.T) {
	var m Metrics
	sp := m.Start("predicate")
	time.Sleep(2 * time.Millisecond)
	sp.Add("windows", 10).Add("memo_hits", 7)
	sm := sp.End()

	if sm.Name != "predicate" {
		t.Fatalf("stage name = %q, want predicate", sm.Name)
	}
	if sm.Wall <= 0 {
		t.Errorf("wall time not recorded: %v", sm.Wall)
	}
	if sm.CPU < 0 {
		t.Errorf("negative CPU time: %v", sm.CPU)
	}
	if got := sm.Counter("windows"); got != 10 {
		t.Errorf("windows counter = %d, want 10", got)
	}
	if got := sm.Counter("memo_hits"); got != 7 {
		t.Errorf("memo_hits counter = %d, want 7", got)
	}
	if got := sm.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}

	stages := m.Stages()
	if len(stages) != 1 || stages[0].Name != "predicate" {
		t.Fatalf("Stages() = %+v, want one predicate stage", stages)
	}
}

func TestFormatListsCountersInOrder(t *testing.T) {
	var m Metrics
	m.Start("model").Add("states", 3).Add("transitions", 5).End()
	s := m.String()
	if !strings.Contains(s, "model") || !strings.Contains(s, "states=3") || !strings.Contains(s, "transitions=5") {
		t.Errorf("Format output missing fields:\n%s", s)
	}
	if strings.Index(s, "states=3") > strings.Index(s, "transitions=5") {
		t.Errorf("counters out of insertion order:\n%s", s)
	}
}

func TestMetricsConcurrentSpans(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Start("stage").Add("n", 1).End()
		}()
	}
	wg.Wait()
	if got := len(m.Stages()); got != 8 {
		t.Fatalf("recorded %d stages, want 8", got)
	}
}

func TestCPUTimeMonotone(t *testing.T) {
	a := CPUTime()
	// Burn a little CPU so the second reading can only be ≥ the first.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	b := CPUTime()
	if b < a {
		t.Errorf("CPUTime went backwards: %v then %v", a, b)
	}
}
