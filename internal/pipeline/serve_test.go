package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("solver_calls_total").Add(7)
	r.Histogram("solver_call_ns", "ns").Observe(1500)
	r.SetGauge("obs_per_sec", func() float64 { return 1234 })

	s, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.Addr, ":") {
		t.Fatalf("no port resolved in addr %q", s.Addr)
	}

	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"solver_calls_total 7", "obs_per_sec 1234", "solver_call_ns_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, s.URL()+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var doc registryJSON
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	if doc.Counters["solver_calls_total"] != 7 || doc.Histograms["solver_call_ns"].Count != 1 {
		t.Errorf("/metrics.json doc = %+v", doc)
	}

	code, body = get(t, s.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d, body %.80s", code, body)
	}
	code, _ = get(t, s.URL()+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/heap status %d", code)
	}
}

func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatal("expected error for bad address")
	}
}

func TestMetricsServerNilClose(t *testing.T) {
	var s *MetricsServer
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeMetricsConcurrentScrapes hammers /metrics, /metrics.json
// and /healthz while writer goroutines register and mutate counters,
// histograms and gauges: run under -race, every scrape must still
// return well-formed output.
func TestServeMetricsConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	h := NewHealth(time.Hour)
	spin, div := r.Counter("spin_total"), r.Counter("div_total")
	h.WatchProgress("spin", func() float64 { return float64(spin.Value()) })
	h.WatchDivergence(func() float64 { return float64(div.Value()) })
	h.Register(r)
	s, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetHealth(h)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter(fmt.Sprintf("c_%d_%d", g, i%7)).Add(1)
				r.Histogram(fmt.Sprintf("h_%d_%d", g, i%5), "ns").Observe(int64(i))
				r.SetGauge(fmt.Sprintf("g_%d", g), func() float64 { return float64(i) })
				r.Counter("spin_total").Add(1)
			}
		}(g)
	}

	for i := 0; i < 25; i++ {
		code, body := get(t, s.URL()+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: /metrics status %d", i, code)
		}
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if len(strings.Fields(line)) != 2 {
				t.Fatalf("scrape %d: malformed /metrics line %q", i, line)
			}
		}
		code, body = get(t, s.URL()+"/metrics.json")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: /metrics.json status %d", i, code)
		}
		var doc registryJSON
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("scrape %d: /metrics.json invalid: %v\n%.200s", i, err, body)
		}
		if code, _ := get(t, s.URL()+"/healthz"); code != http.StatusOK {
			t.Fatalf("scrape %d: /healthz status %d under live progress", i, code)
		}
	}
	close(stop)
	wg.Wait()
}
