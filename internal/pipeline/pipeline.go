// Package pipeline provides light-weight per-stage metrics for the
// learning pipeline: wall-clock and CPU time plus named counters for
// each stage (predicate abstraction, model construction). cmd/repro
// prints a stage table per experiment; the CPU column is what makes
// the parallel predicate engine's speedup visible — wall time drops
// while CPU time stays at the serial cost.
package pipeline

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Counter is one named measurement of a stage.
type Counter struct {
	Name  string
	Value int64
}

// StageMetrics is the record of one completed pipeline stage.
type StageMetrics struct {
	Name string
	// Wall is the stage's elapsed wall-clock time.
	Wall time.Duration
	// CPU is the process CPU time (user+system, all threads)
	// consumed during the stage; zero on platforms without rusage.
	CPU time.Duration
	// Counters are stage-specific counts (windows, memo hits, solver
	// calls, …) in insertion order.
	Counters []Counter
}

// Counter returns the named counter's value, or 0.
func (s *StageMetrics) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Metrics collects the stages of one pipeline run. The zero value is
// ready to use; methods are safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	stages []StageMetrics
}

// Start opens a span for one stage. End the span to record it.
func (m *Metrics) Start(name string) *Span {
	return &Span{m: m, name: name, wallStart: time.Now(), cpuStart: CPUTime()}
}

// Stages returns the recorded stages in completion order.
func (m *Metrics) Stages() []StageMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]StageMetrics(nil), m.stages...)
}

// String renders the stages as an aligned table.
func (m *Metrics) String() string { return Format(m.Stages()) }

// Format renders stage metrics as an aligned table: one row per
// stage, wall and CPU time, then the stage's counters.
func Format(stages []StageMetrics) string {
	var b strings.Builder
	for _, s := range stages {
		fmt.Fprintf(&b, "%-12s wall %10s  cpu %10s",
			s.Name, s.Wall.Round(time.Microsecond), s.CPU.Round(time.Microsecond))
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %s=%d", c.Name, c.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Span measures one in-progress stage.
type Span struct {
	m         *Metrics
	name      string
	wallStart time.Time
	cpuStart  time.Duration
	counters  []Counter
	idx       map[string]int // counter name → counters index, for AddCounter merging
}

// Add attaches a named counter to the stage (insertion order is
// preserved in the report). Repeated Adds of the same name append
// duplicate rows; use AddCounter for increments.
func (s *Span) Add(name string, v int64) *Span {
	s.counters = append(s.counters, Counter{Name: name, Value: v})
	return s
}

// AddCounter increments the named counter, merging by name: the first
// call appends the counter (preserving insertion order), later calls
// add into it, so per-item increments from the streaming path keep
// Counters bounded by the number of distinct names.
func (s *Span) AddCounter(name string, v int64) *Span {
	if s.idx == nil {
		s.idx = make(map[string]int, 8)
		for i, c := range s.counters {
			s.idx[c.Name] = i
		}
	}
	if i, ok := s.idx[name]; ok {
		s.counters[i].Value += v
		return s
	}
	s.idx[name] = len(s.counters)
	s.counters = append(s.counters, Counter{Name: name, Value: v})
	return s
}

// End closes the span and records the stage.
func (s *Span) End() StageMetrics {
	sm := StageMetrics{
		Name:     s.name,
		Wall:     time.Since(s.wallStart),
		CPU:      CPUTime() - s.cpuStart,
		Counters: s.counters,
	}
	s.m.mu.Lock()
	s.m.stages = append(s.m.stages, sm)
	s.m.mu.Unlock()
	return sm
}
