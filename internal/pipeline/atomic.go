// Atomic artifact writes: every file the pipeline or its commands
// produce (manifests, saved models, DOT renderings, NDJSON traces,
// checkpoints, generated traces) goes through the temp-file + fsync +
// rename pattern below, so a crash mid-write can never leave a torn
// file that passes for a real artifact at the destination path. Either
// the old content (or absence) survives intact, or the complete new
// content does.
package pipeline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile is an artifact file under construction. Writes go to a
// temporary file in the destination directory; Commit fsyncs and
// renames it into place, and Abort discards it. A process crash before
// Commit leaves the destination untouched.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic starts an atomic write of path. The caller must finish
// with Commit or Abort; until then the destination is untouched.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the temporary file's path (useful in error messages).
func (a *AtomicFile) Name() string { return a.f.Name() }

// Commit makes the written content durable and visible at the
// destination path: flush, fsync, close, rename, then a best-effort
// directory sync so the rename itself survives a crash.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("pipeline: atomic write of %s already finished", a.path)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := a.f.Chmod(0o644); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the temporary file, leaving the destination as it
// was. Safe to call after Commit (no-op), so it can sit in a defer.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// syncDir fsyncs a directory so a just-committed rename is durable.
// Best-effort: some platforms and filesystems reject directory fsync,
// and the rename itself is already atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// AtomicWriteFile writes path atomically: write produces the content
// into a temporary file which is fsynced and renamed over path only on
// success. On any error the destination keeps its previous content.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	af, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if err := write(af); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}
