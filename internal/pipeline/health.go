// Service health: Health turns the registry's raw monotonic counters
// into the two signals a supervisor needs for a long-running learner —
// "is it still making progress?" and "how often is the stream
// diverging from the model?" — exposed as gauges on the registry and
// as a 200/503 verdict on the metrics endpoint's /healthz. This is the
// supervision brick for `monitor -active` and the future learnd
// service: point a liveness probe at /healthz and a stalled ingest or
// wedged solver flips it without the process having to know it is
// stuck.
//
// Evaluation is scrape-driven: nothing ticks in the background. Each
// Status/gauge read re-reads the watched counters, notes when any of
// them last changed, and appends a divergence sample to a bounded ring
// from which the rolling rate is computed. A process nobody scrapes
// spends nothing.
package pipeline

import (
	"fmt"
	"sync"
	"time"
)

// healthRingCap bounds the divergence sample ring: at a typical 5–15s
// scrape interval, 128 samples cover 10+ minutes of history.
const healthRingCap = 128

// healthSampleMin is the minimum spacing between divergence samples,
// so a scrape burst does not flush the ring's history.
const healthSampleMin = time.Second

// progressWatch is one watched progress counter.
type progressWatch struct {
	name     string
	fn       func() float64
	last     float64
	lastMove time.Time
}

// divSample is one timestamped divergence-counter reading.
type divSample struct {
	t time.Time
	v float64
}

// Health evaluates liveness from watched registry counters. A nil
// *Health is disabled (Status reports ok). Methods are safe for
// concurrent use.
type Health struct {
	mu         sync.Mutex
	stallAfter time.Duration
	now        func() time.Time // test hook
	started    time.Time        // first evaluation; lazily set so the test clock applies
	progress   []progressWatch
	div        func() float64
	ring       []divSample
	ringN      int
}

// NewHealth returns a Health that reports stalled once no watched
// progress counter has moved for stallAfter (default 2 minutes when
// ≤ 0).
func NewHealth(stallAfter time.Duration) *Health {
	if stallAfter <= 0 {
		stallAfter = 2 * time.Minute
	}
	return &Health{stallAfter: stallAfter, now: time.Now}
}

// WatchProgress registers a progress signal: fn (typically a registry
// counter's Value) should increase while the process is doing useful
// work. The process counts as live while at least one watched signal
// keeps moving.
func (h *Health) WatchProgress(name string, fn func() float64) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.progress = append(h.progress, progressWatch{name: name, fn: fn, last: fn(), lastMove: h.now()})
	h.mu.Unlock()
}

// WatchDivergence registers the cumulative divergence counter whose
// rolling rate the divergence_rate_per_min gauge reports.
func (h *Health) WatchDivergence(fn func() float64) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.div = fn
	h.mu.Unlock()
}

// evaluate re-reads every watched signal. Callers hold h.mu.
func (h *Health) evaluate() (age time.Duration, rate float64) {
	now := h.now()
	if h.started.IsZero() {
		h.started = now
	}
	age = -1
	for i := range h.progress {
		w := &h.progress[i]
		if v := w.fn(); v != w.last {
			w.last = v
			w.lastMove = now
		}
		if a := now.Sub(w.lastMove); age < 0 || a < age {
			age = a
		}
	}
	if age < 0 {
		// Nothing watched. That is itself a stall signal: a monitor
		// whose progress counters were never registered must not
		// report healthy forever, so the clock runs from startup
		// (first evaluation) instead of sticking at zero.
		age = now.Sub(h.started)
	}
	if h.div != nil {
		v := h.div()
		if h.ringN == 0 || now.Sub(h.ring[(h.ringN-1)%healthRingCap].t) >= healthSampleMin {
			if len(h.ring) < healthRingCap {
				h.ring = append(h.ring, divSample{now, v})
			} else {
				h.ring[h.ringN%healthRingCap] = divSample{now, v}
			}
			h.ringN++
		}
		oldest := h.ring[0]
		if h.ringN > healthRingCap {
			oldest = h.ring[h.ringN%healthRingCap]
		}
		if dt := now.Sub(oldest.t); dt > 0 {
			rate = (v - oldest.v) / dt.Minutes()
		}
	}
	return age, rate
}

// Status evaluates liveness now: ok is false once every watched
// progress signal has been flat for stallAfter. detail is a one-line
// human/probe-readable explanation.
func (h *Health) Status() (ok bool, detail string) {
	if h == nil {
		return true, "ok"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	age, rate := h.evaluate()
	if age >= h.stallAfter {
		if len(h.progress) == 0 {
			return false, fmt.Sprintf("stalled: no progress watchers registered %s after startup (limit %s); divergence %.2f/min", age.Round(time.Second), h.stallAfter, rate)
		}
		return false, fmt.Sprintf("stalled: no progress for %s (limit %s); divergence %.2f/min", age.Round(time.Second), h.stallAfter, rate)
	}
	return true, fmt.Sprintf("ok: last progress %s ago; divergence %.2f/min", age.Round(time.Second), rate)
}

// Register exposes the health signals as gauges on reg:
// health_last_progress_age_seconds, health_divergence_rate_per_min and
// health_ok (1/0). Gauges re-evaluate at scrape time.
func (h *Health) Register(reg *Registry) {
	if h == nil || reg == nil {
		return
	}
	reg.SetGauge("health_last_progress_age_seconds", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		age, _ := h.evaluate()
		return age.Seconds()
	})
	reg.SetGauge("health_divergence_rate_per_min", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		_, rate := h.evaluate()
		return rate
	})
	reg.SetGauge("health_ok", func() float64 {
		if ok, _ := h.Status(); ok {
			return 1
		}
		return 0
	})
}
