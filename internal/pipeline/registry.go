// Registry: a process-wide (or per-run) collection of named counters,
// gauges and histograms, exportable as Prometheus text format and as
// JSON. It is deliberately tiny — no labels, no metric families, no
// dependency — because the pipeline's observability needs are a fixed
// set of scalars plus a handful of latency histograms, all of which
// must be recordable from hot paths with one atomic op.
//
// Nil discipline: a nil *Registry hands out nil *Counter64 and nil
// *Histogram, whose methods no-op, so instrumented code resolves its
// metrics once and records unconditionally; disabled telemetry costs a
// nil check per record and zero allocations.
package pipeline

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter64 is a monotonically increasing counter. A nil *Counter64
// ignores Add and reads as zero.
type Counter64 struct {
	v int64
}

// Add increments the counter. Nil-safe, atomic.
func (c *Counter64) Add(d int64) {
	if c != nil {
		atomic.AddInt64(&c.v, d)
	}
}

// Value reads the counter. Nil-safe, atomic.
func (c *Counter64) Value() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.v)
}

// Raw exposes the counter's cell for packages that accumulate via
// atomic.AddInt64 on a plain *int64 (see synth.Options.Work). Nil on a
// nil counter.
func (c *Counter64) Raw() *int64 {
	if c == nil {
		return nil
	}
	return &c.v
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled registry. Methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter64
	hists    map[string]*Histogram
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter64{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter64{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it with the unit on
// first use. Nil on a nil registry.
func (r *Registry) Histogram(name, unit string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name, unit)
		r.hists[name] = h
	}
	return h
}

// SetGauge registers (or replaces) a gauge: fn is evaluated at export
// time. No-op on a nil registry.
func (r *Registry) SetGauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// snapshot returns sorted name lists plus the maps, under one lock
// acquisition, so exports see a consistent membership (values are read
// atomically afterwards).
func (r *Registry) snapshot() (cnames, hnames, gnames []string, cs map[string]*Counter64, hs map[string]*Histogram, gs map[string]func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs = make(map[string]*Counter64, len(r.counters))
	for n, c := range r.counters {
		cnames = append(cnames, n)
		cs[n] = c
	}
	hs = make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hnames = append(hnames, n)
		hs[n] = h
	}
	gs = make(map[string]func() float64, len(r.gauges))
	for n, g := range r.gauges {
		gnames = append(gnames, n)
		gs[n] = g
	}
	sort.Strings(cnames)
	sort.Strings(hnames)
	sort.Strings(gnames)
	return
}

// Summaries digests every histogram, keyed by name. Empty map on nil.
func (r *Registry) Summaries() map[string]HistogramSummary {
	out := map[string]HistogramSummary{}
	if r == nil {
		return out
	}
	_, hnames, _, _, hs, _ := r.snapshot()
	for _, n := range hnames {
		out[n] = hs[n].Summary()
	}
	return out
}

// CounterValues snapshots every counter, keyed by name. Empty map on
// nil.
func (r *Registry) CounterValues() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	cnames, _, _, cs, _, _ := r.snapshot()
	for _, n := range cnames {
		out[n] = cs[n].Value()
	}
	return out
}

// promName sanitises a metric name for the Prometheus text format:
// anything outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count families.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	cnames, hnames, gnames, cs, hs, gs := r.snapshot()
	for _, n := range cnames {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, cs[n].Value()); err != nil {
			return err
		}
	}
	for _, n := range gnames {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gs[n]()); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		h := hs[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		var werr error
		h.forBuckets(func(upper, count int64) {
			if werr != nil {
				return
			}
			cum += count
			_, werr = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, upper, cum)
		})
		if werr != nil {
			return werr
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.count.Load(), pn, h.sum.Load(), pn, h.count.Load()); err != nil {
			return err
		}
	}
	return nil
}

// registryJSON is the /metrics.json document shape.
type registryJSON struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]float64          `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// WriteJSON renders the registry as one JSON object: counters, gauge
// values, and histogram summaries.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := registryJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r != nil {
		cnames, hnames, gnames, cs, hs, gs := r.snapshot()
		for _, n := range cnames {
			doc.Counters[n] = cs[n].Value()
		}
		for _, n := range gnames {
			doc.Gauges[n] = gs[n]()
		}
		for _, n := range hnames {
			doc.Histograms[n] = hs[n].Summary()
		}
	}
	return writeJSON(w, doc)
}

// Telemetry bundles the run's tracer and metric registry; it is what
// the pipeline layers thread through. A nil *Telemetry (and any nil
// field) is fully disabled: the accessor helpers return nil objects
// whose methods no-op, so instrumented code never branches on
// enablement beyond an implicit nil check.
type Telemetry struct {
	Tracer   *Tracer
	Registry *Registry
	Profiler *Profiler
}

// Trace returns the tracer (nil when disabled).
func (t *Telemetry) Trace() *Tracer {
	if t == nil {
		return nil
	}
	return t.Tracer
}

// Prof returns the threshold-triggered profiler (nil when disabled).
func (t *Telemetry) Prof() *Profiler {
	if t == nil {
		return nil
	}
	return t.Profiler
}

// Count returns the named registry counter (nil when disabled).
func (t *Telemetry) Count(name string) *Counter64 {
	if t == nil {
		return nil
	}
	return t.Registry.Counter(name)
}

// Hist returns the named registry histogram (nil when disabled).
func (t *Telemetry) Hist(name, unit string) *Histogram {
	if t == nil {
		return nil
	}
	return t.Registry.Histogram(name, unit)
}

// Gauge registers a gauge function (no-op when disabled).
func (t *Telemetry) Gauge(name string, fn func() float64) {
	if t == nil {
		return
	}
	t.Registry.SetGauge(name, fn)
}
