// Self-profiling: Profiler watches the latency of hot operations
// (solver rounds, window synthesis) and, when one exceeds its budget,
// captures pprof evidence — an immediate heap profile plus a bounded
// forward-looking CPU profile — written atomically next to the run
// record. A long run that goes slow therefore explains itself: the
// profile of the slow region is on disk before anyone re-runs with
// instrumentation.
//
// A CPU profile cannot be captured retroactively, so the trigger
// starts one covering the time just after the slow operation — on the
// stationary workloads this pipeline runs (the same solve/synthesis
// loop that just went over budget keeps executing), that window is
// representative of the regression.
//
// Overhead discipline mirrors the Tracer: a nil *Profiler no-ops, and
// the non-triggered path is one duration comparison.
package pipeline

import (
	"fmt"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// defaultCPUProfileDur bounds the forward CPU capture.
const defaultCPUProfileDur = 2 * time.Second

// defaultMaxCaptures bounds how many trigger events write profiles:
// the first few slow operations carry the signal; thousands of
// identical captures carry cost.
const defaultMaxCaptures = 2

// Profiler captures pprof profiles when an observed operation exceeds
// its latency budget. A nil *Profiler is disabled. Methods are safe
// for concurrent use.
type Profiler struct {
	dir    string
	prefix string
	budget time.Duration
	cpuDur time.Duration
	maxCap int

	mu       sync.Mutex
	hs       *HeapSampler
	captures int
	cpuBusy  bool
	files    []string
	errs     []error
	wg       sync.WaitGroup
}

// NewProfiler returns a profiler writing profiles into dir as
// <prefix>-{heap,cpu}-<n>.pprof whenever an Observe exceeds budget.
// A budget ≤ 0 disables triggering (returns nil).
func NewProfiler(dir, prefix string, budget time.Duration) *Profiler {
	if budget <= 0 {
		return nil
	}
	return &Profiler{
		dir:    dir,
		prefix: prefix,
		budget: budget,
		cpuDur: defaultCPUProfileDur,
		maxCap: defaultMaxCaptures,
	}
}

// SetHeapSampler attaches the run's heap sampler, which is re-sampled
// at trigger time so the reported peak heap and the captured heap
// profile describe the same moment.
func (p *Profiler) SetHeapSampler(hs *HeapSampler) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.hs = hs
	p.mu.Unlock()
}

// SetCPUDuration overrides the forward CPU capture window (tests use a
// short one).
func (p *Profiler) SetCPUDuration(d time.Duration) {
	if p == nil || d <= 0 {
		return
	}
	p.mu.Lock()
	p.cpuDur = d
	p.mu.Unlock()
}

// Budget returns the configured latency budget (0 when disabled).
func (p *Profiler) Budget() time.Duration {
	if p == nil {
		return 0
	}
	return p.budget
}

// Observe reports one operation's latency. Within budget it costs a
// comparison; over budget it captures a heap profile now and starts a
// bounded CPU profile, at most maxCaptures times per run.
func (p *Profiler) Observe(kind string, d time.Duration) {
	if p == nil || d < p.budget {
		return
	}
	p.trigger(kind)
}

// trigger is the slow path: capture under the lock so concurrent slow
// operations produce one coherent set of files.
func (p *Profiler) trigger(kind string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.captures >= p.maxCap {
		return
	}
	p.captures++
	n := p.captures
	// Re-sample the heap first so gauge readers and the profile agree
	// (the ticker-driven sampler may not have run since the slow op).
	p.hs.SampleNow()
	p.writeHeapLocked(kind, n)
	p.startCPULocked(kind, n)
}

// writeHeapLocked captures the heap profile atomically. Callers hold
// p.mu.
func (p *Profiler) writeHeapLocked(kind string, n int) {
	path := filepath.Join(p.dir, fmt.Sprintf("%s-%s-heap-%d.pprof", p.prefix, kind, n))
	af, err := CreateAtomic(path)
	if err != nil {
		p.errs = append(p.errs, err)
		return
	}
	if err := pprof.Lookup("heap").WriteTo(af, 0); err != nil {
		af.Abort()
		p.errs = append(p.errs, err)
		return
	}
	if err := af.Commit(); err != nil {
		p.errs = append(p.errs, err)
		return
	}
	p.files = append(p.files, path)
}

// startCPULocked starts a forward CPU capture unless one is already
// running (the runtime supports a single CPU profile at a time — this
// also loses gracefully to an in-flight /debug/pprof/profile scrape).
// Callers hold p.mu.
func (p *Profiler) startCPULocked(kind string, n int) {
	if p.cpuBusy {
		return
	}
	path := filepath.Join(p.dir, fmt.Sprintf("%s-%s-cpu-%d.pprof", p.prefix, kind, n))
	af, err := CreateAtomic(path)
	if err != nil {
		p.errs = append(p.errs, err)
		return
	}
	if err := pprof.StartCPUProfile(af); err != nil {
		af.Abort()
		p.errs = append(p.errs, err)
		return
	}
	p.cpuBusy = true
	dur := p.cpuDur
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		time.Sleep(dur)
		pprof.StopCPUProfile()
		p.mu.Lock()
		defer p.mu.Unlock()
		if err := af.Commit(); err != nil {
			p.errs = append(p.errs, err)
		} else {
			p.files = append(p.files, path)
		}
		p.cpuBusy = false
	}()
}

// Wait blocks until any in-flight CPU capture has been committed and
// returns the first capture error, if any. Call before writing the run
// record so Files is complete.
func (p *Profiler) Wait() error {
	if p == nil {
		return nil
	}
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.errs) > 0 {
		return p.errs[0]
	}
	return nil
}

// Files lists the committed profile paths, in capture order.
func (p *Profiler) Files() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.files...)
}

// Captures reports how many trigger events fired (committed or not).
func (p *Profiler) Captures() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures
}
