package pipeline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfilerTriggersOverBudget(t *testing.T) {
	dir := t.TempDir()
	p := NewProfiler(dir, "run", 10*time.Millisecond)
	p.SetCPUDuration(50 * time.Millisecond)
	hs := StartHeapSampler(time.Hour) // ticker never fires; only SampleNow
	defer hs.Stop()
	p.SetHeapSampler(hs)

	p.Observe("solve", time.Millisecond) // under budget: no capture
	if p.Captures() != 0 {
		t.Fatalf("under-budget observe captured %d", p.Captures())
	}
	p.Observe("solve", 20*time.Millisecond)
	if p.Captures() != 1 {
		t.Fatalf("over-budget observe captured %d, want 1", p.Captures())
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	files := p.Files()
	var heap, cpu bool
	for _, f := range files {
		base := filepath.Base(f)
		if strings.Contains(base, "-heap-") {
			heap = true
		}
		if strings.Contains(base, "-cpu-") {
			cpu = true
		}
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not on disk: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	if !heap || !cpu {
		t.Fatalf("files = %v, want a heap and a cpu profile", files)
	}
	// No stray temp files: everything went through the atomic path.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestProfilerCaptureCapAndNil(t *testing.T) {
	dir := t.TempDir()
	p := NewProfiler(dir, "run", time.Nanosecond)
	p.SetCPUDuration(10 * time.Millisecond)
	for i := 0; i < 10; i++ {
		p.Observe("window", time.Second)
	}
	if got := p.Captures(); got != defaultMaxCaptures {
		t.Fatalf("captures = %d, want cap %d", got, defaultMaxCaptures)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	var pn *Profiler
	pn.Observe("solve", time.Hour)
	pn.SetHeapSampler(nil)
	if pn.Files() != nil || pn.Captures() != 0 || pn.Wait() != nil || pn.Budget() != 0 {
		t.Fatal("nil profiler not inert")
	}
	if NewProfiler(dir, "x", 0) != nil {
		t.Fatal("zero budget should disable the profiler")
	}
}

func TestTelemetryProfAccessor(t *testing.T) {
	var tel *Telemetry
	if tel.Prof() != nil {
		t.Fatal("nil telemetry Prof != nil")
	}
	p := NewProfiler(t.TempDir(), "r", time.Second)
	tel = &Telemetry{Profiler: p}
	if tel.Prof() != p {
		t.Fatal("Prof accessor lost the profiler")
	}
}
