package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decodeNDJSON parses every line of a trace into generic maps.
func decodeNDJSON(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerEmitsSpansAndEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	run := tr.Start(0, "run", Str("tool", "test"))
	stage := tr.Start(run, "predicate")
	tr.Event(stage, "compliance", Int("grams", 2), Bool("ok", true), Float("rate", 1.5))
	tr.End(stage, Int("windows", 10))
	tr.End(run)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	evs := decodeNDJSON(t, buf.Bytes())
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6 (header + 2 starts + event + 2 ends)", len(evs))
	}
	if evs[0]["t"] != "trace_start" || evs[0]["unit"] != "us" {
		t.Errorf("header = %v", evs[0])
	}
	if evs[1]["t"] != "start" || evs[1]["name"] != "run" {
		t.Errorf("run start = %v", evs[1])
	}
	if attrs, ok := evs[1]["attrs"].(map[string]any); !ok || attrs["tool"] != "test" {
		t.Errorf("run start attrs = %v", evs[1]["attrs"])
	}
	if evs[2]["par"] != evs[1]["id"] {
		t.Errorf("stage parent %v != run id %v", evs[2]["par"], evs[1]["id"])
	}
	ev := evs[3]
	if ev["t"] != "event" || ev["name"] != "compliance" {
		t.Errorf("event = %v", ev)
	}
	attrs := ev["attrs"].(map[string]any)
	if attrs["grams"] != float64(2) || attrs["ok"] != true || attrs["rate"] != 1.5 {
		t.Errorf("event attrs = %v", attrs)
	}
	if evs[4]["t"] != "end" || evs[4]["id"] != evs[2]["id"] {
		t.Errorf("stage end = %v", evs[4])
	}
}

func TestTracerEscapesStrings(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event(0, `quote"back\slash`, Str("s", "tab\there\nnewline\x01ctl"))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := decodeNDJSON(t, buf.Bytes())
	ev := evs[1]
	if ev["name"] != `quote"back\slash` {
		t.Errorf("name round-trip = %q", ev["name"])
	}
	if got := ev["attrs"].(map[string]any)["s"]; got != "tab\there\nnewline\x01ctl" {
		t.Errorf("attr round-trip = %q", got)
	}
}

func TestTracerConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := tr.Start(0, "unit", Int("i", int64(i)))
				tr.End(id, Int("done", 1))
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := decodeNDJSON(t, buf.Bytes())
	if want := 1 + 8*50*2; len(evs) != want {
		t.Fatalf("got %d intact lines, want %d", len(evs), want)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Start(0, "x")
	if id != 0 {
		t.Fatalf("nil tracer span id = %d, want 0", id)
	}
	tr.End(id)
	tr.Event(0, "e")
	if err := tr.Flush(); err != nil {
		t.Fatalf("nil tracer Flush = %v", err)
	}
}

// TestNilTelemetryHotPathAllocs pins the disabled-telemetry fast path
// at zero allocations: the exact calls the per-window and per-solve
// hot paths make must cost a nil check and nothing else.
func TestNilTelemetryHotPathAllocs(t *testing.T) {
	var tel *Telemetry
	c := tel.Count("windows")
	h := tel.Hist("latency", "ns")
	tr := tel.Trace()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(123)
		if tr.Enabled() {
			t.Fatal("nil tracer enabled")
		}
		id := tr.Start(0, "unit")
		tr.End(id)
		tr.Event(0, "ev")
	})
	if allocs != 0 {
		t.Fatalf("nil-telemetry hot path allocates %.1f per run, want 0", allocs)
	}
}
