package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock returns a deterministic µs clock advancing by step per
// call.
func fakeClock(step int64) func() int64 {
	var n int64
	return func() int64 {
		n += step
		return n
	}
}

// emitSpans runs a fixed serial span workload against tr: n "unit"
// spans under one "run" root, plus a sprinkling of events.
func emitSpans(tr *Tracer, n int) {
	run := tr.Start(0, "run", Str("tool", "test"))
	for i := 0; i < n; i++ {
		id := tr.Start(run, "unit", Int("i", int64(i)))
		if i%10 == 0 {
			tr.Event(id, "tick", Int("i", int64(i)))
		}
		tr.End(id, Int("i", int64(i)))
	}
	tr.End(run)
}

// linesOf splits a trace into decoded NDJSON maps.
func linesOf(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerSamplingBoundsSpanVolume(t *testing.T) {
	const n = 500
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock(1))
	tr.SetPolicy(SamplePolicy{"unit": {Head: 4, Tail: 3, EveryN: 2}})
	emitSpans(tr, n)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var starts, ends, sampleLines, rollups int
	var sample, rollup map[string]any
	ids := map[float64]bool{}
	for _, m := range linesOf(t, buf.Bytes()) {
		switch m["t"] {
		case "start":
			if m["name"] == "unit" {
				starts++
				ids[m["id"].(float64)] = true
			}
		case "end":
			if ids[m["id"].(float64)] {
				ends++
			}
		case "sample":
			sampleLines++
			sample = m
		case "rollup":
			rollups++
			if m["kind"] == "unit" {
				rollup = m
			}
		}
	}
	if starts != ends {
		t.Fatalf("unbalanced sampled spans: %d starts, %d ends", starts, ends)
	}
	// Head 4 + tail 3 + mid-stream O(growEvery·log n): far below n.
	if starts >= n/5 {
		t.Fatalf("sampling kept %d of %d spans, want far fewer", starts, n)
	}
	if starts < 4+3 {
		t.Fatalf("sampling kept %d spans, want at least head+tail=7", starts)
	}
	if sampleLines != 1 {
		t.Fatalf("got %d sample lines, want 1", sampleLines)
	}
	if sample["kind"] != "unit" || sample["seen"] != float64(n) {
		t.Errorf("sample accounting = %v", sample)
	}
	if got := sample["written"].(float64) + sample["dropped"].(float64); got != n {
		t.Errorf("written+dropped = %v, want %d", got, n)
	}
	if sample["written"] != float64(starts) {
		t.Errorf("sample written = %v, file has %d", sample["written"], starts)
	}
	// Rollups cover every kind (run + unit) and are exact over ALL
	// spans, not just sampled ones.
	if rollups != 2 {
		t.Fatalf("got %d rollup lines, want 2 (run, unit)", rollups)
	}
	if rollup["count"] != float64(n) {
		t.Errorf("unit rollup count = %v, want %d (exact aggregate)", rollup["count"], n)
	}
}

func TestTracerSamplingKeepsHeadAndTail(t *testing.T) {
	const n = 200
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock(1))
	tr.SetPolicy(SamplePolicy{"unit": {Head: 3, Tail: 2, EveryN: 100000}})
	emitSpans(tr, n)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var kept []int
	for _, m := range linesOf(t, buf.Bytes()) {
		if m["t"] == "start" && m["name"] == "unit" {
			kept = append(kept, int(m["attrs"].(map[string]any)["i"].(float64)))
		}
	}
	want := []int{0, 1, 2, n - 2, n - 1} // head 3 in stream order, tail 2 drained at Close
	if len(kept) != len(want) {
		t.Fatalf("kept %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept %v, want %v", kept, want)
		}
	}
}

// TestTracerSampledFileDeterministic pins the tentpole guarantee: two
// runs of the same span sequence produce byte-identical trace files
// (under a deterministic clock; with the wall clock only timestamps
// differ, never which spans are kept).
func TestTracerSampledFileDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.SetClock(fakeClock(3))
		tr.SetPolicy(DefaultSamplePolicy())
		run := tr.Start(0, "run")
		for i := 0; i < 900; i++ {
			id := tr.Start(run, "window", Int("i", int64(i)))
			tr.End(id)
			id = tr.Start(run, "solve", Int("round", int64(i)))
			tr.End(id, Str("status", "SAT"))
		}
		tr.End(run)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different trace files")
	}
}

// TestTracerRollupsMatchUnsampled pins the other half: the rollup
// epilogue of a sampled trace is byte-identical to the one an
// unsampled tracer writes for the same span sequence — sampling drops
// span lines, never aggregate information.
func TestTracerRollupsMatchUnsampled(t *testing.T) {
	run := func(policy SamplePolicy) (rollups []string, size int) {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.SetClock(fakeClock(7))
		tr.SetPolicy(policy)
		emitSpans(tr, 2000)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if strings.HasPrefix(line, `{"t":"rollup"`) {
				rollups = append(rollups, line)
			}
		}
		return rollups, buf.Len()
	}
	sampled, sampledSize := run(SamplePolicy{"unit": {Head: 8, Tail: 4, EveryN: 4}})
	full, fullSize := run(nil)
	if len(sampled) == 0 {
		t.Fatal("no rollup lines in sampled trace")
	}
	if len(sampled) != len(full) {
		t.Fatalf("rollup count differs: sampled %d, full %d", len(sampled), len(full))
	}
	for i := range sampled {
		if sampled[i] != full[i] {
			t.Errorf("rollup %d differs:\nsampled: %s\nfull:    %s", i, sampled[i], full[i])
		}
	}
	if sampledSize*5 > fullSize {
		t.Errorf("sampled trace is %d bytes, full %d: want ≤ 1/5 on this workload", sampledSize, fullSize)
	}
}

func TestTracerCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetPolicy(DefaultSamplePolicy())
	id := tr.Start(0, "solve")
	tr.End(id)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatalf("second Close wrote %d more bytes", buf.Len()-n)
	}
	var tnil *Tracer
	if err := tnil.Close(); err != nil {
		t.Fatalf("nil Close = %v", err)
	}
}

func TestTracerRollupsAccessor(t *testing.T) {
	tr := NewTracer(&bytes.Buffer{})
	tr.SetClock(fakeClock(2))
	id := tr.Start(0, "solve")
	tr.End(id)
	r := tr.Rollups()
	if r["solve"].Count != 1 {
		t.Fatalf("Rollups = %+v, want solve count 1", r)
	}
	var tnil *Tracer
	if len(tnil.Rollups()) != 0 {
		t.Fatal("nil Rollups not empty")
	}
}
