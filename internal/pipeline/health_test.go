package pipeline

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a manually advanced clock for health tests.
type stepClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestHealthStallDetection(t *testing.T) {
	clk := &stepClock{now: time.Unix(1000, 0)}
	h := NewHealth(time.Minute)
	h.now = clk.Now
	var progress float64
	h.WatchProgress("windows", func() float64 { return progress })

	if ok, _ := h.Status(); !ok {
		t.Fatal("fresh health not ok")
	}
	// Progress keeps moving: stays ok across any span of time.
	for i := 0; i < 5; i++ {
		clk.Advance(30 * time.Second)
		progress++
		if ok, detail := h.Status(); !ok {
			t.Fatalf("moving progress reported stalled: %s", detail)
		}
	}
	// Flatline past the stall limit: flips to stalled.
	clk.Advance(2 * time.Minute)
	ok, detail := h.Status()
	if ok {
		t.Fatal("flat progress past limit still ok")
	}
	if !strings.Contains(detail, "stalled") {
		t.Fatalf("detail = %q", detail)
	}
	// Progress resumes: recovers.
	progress++
	if ok, _ := h.Status(); !ok {
		t.Fatal("resumed progress still stalled")
	}
}

// TestHealthZeroWatchersStall is the regression test for the
// "nothing watched ⇒ never stalled" bug: a monitor that never
// registered its progress counters used to report healthy forever.
// With zero watchers, the stall clock must run from startup.
func TestHealthZeroWatchersStall(t *testing.T) {
	clk := &stepClock{now: time.Unix(1000, 0)}
	h := NewHealth(time.Minute)
	h.now = clk.Now

	// Within the stall budget: still ok (startup grace).
	if ok, detail := h.Status(); !ok {
		t.Fatalf("fresh zero-watcher health not ok: %s", detail)
	}
	clk.Advance(30 * time.Second)
	if ok, detail := h.Status(); !ok {
		t.Fatalf("zero-watcher health stalled inside the limit: %s", detail)
	}
	// Past the budget with no watcher ever registered: stalled, with a
	// detail naming the cause.
	clk.Advance(time.Minute)
	ok, detail := h.Status()
	if ok {
		t.Fatal("zero-watcher health still ok past stallAfter")
	}
	if !strings.Contains(detail, "stalled") || !strings.Contains(detail, "no progress watchers") {
		t.Fatalf("detail = %q", detail)
	}

	// Registering a live watcher recovers it.
	var progress float64
	h.WatchProgress("windows", func() float64 { return progress })
	progress++
	if ok, detail := h.Status(); !ok {
		t.Fatalf("health with fresh watcher still stalled: %s", detail)
	}
}

func TestHealthDivergenceRate(t *testing.T) {
	clk := &stepClock{now: time.Unix(1000, 0)}
	h := NewHealth(time.Hour)
	h.now = clk.Now
	var div float64
	h.WatchDivergence(func() float64 { return div })
	h.Status() // first sample
	for i := 0; i < 10; i++ {
		clk.Advance(6 * time.Second)
		div += 2 // 2 divergences per 6s = 20/min
	}
	h.mu.Lock()
	_, rate := h.evaluate()
	h.mu.Unlock()
	if rate < 15 || rate > 25 {
		t.Fatalf("rolling divergence rate = %.2f/min, want ≈20", rate)
	}
}

func TestHealthGaugesAndNil(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(time.Minute)
	h.WatchProgress("obs", func() float64 { return 1 })
	h.WatchDivergence(func() float64 { return 0 })
	h.Register(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"health_ok", "health_last_progress_age_seconds", "health_divergence_rate_per_min"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}

	var hn *Health
	if ok, _ := hn.Status(); !ok {
		t.Fatal("nil health not ok")
	}
	hn.WatchProgress("x", func() float64 { return 0 })
	hn.WatchDivergence(nil)
	hn.Register(reg)
}

func TestHealthzEndpoint(t *testing.T) {
	reg := NewRegistry()
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// No health attached: always ok.
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("/healthz without health = %d", code)
	}

	clk := &stepClock{now: time.Unix(1000, 0)}
	h := NewHealth(time.Minute)
	h.now = clk.Now
	h.WatchProgress("obs", func() float64 { return 42 }) // constant → stalls
	srv.SetHealth(h)
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz fresh = %d %q", code, body)
	}
	clk.Advance(5 * time.Minute)
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "stalled") {
		t.Fatalf("/healthz stalled = %d %q", code, body)
	}
	var snil *MetricsServer
	snil.SetHealth(h) // nil-safe
}
