// Run manifests: one JSON artifact per learning run capturing the
// configuration, per-stage metrics, histogram summaries, final model
// statistics and input digests — the durable record EXPERIMENTS.md
// rows are generated from, written by `t2m -manifest` (and any other
// embedder of the pipeline). The schema is versioned and validated on
// read, so downstream tooling can rely on its shape.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ManifestVersion is the current manifest schema version; Validate
// rejects documents from a different major shape.
const ManifestVersion = 1

// InputDigest identifies one input artifact of the run.
type InputDigest struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
	Format string `json:"format,omitempty"`
}

// StageManifest is the manifest form of one StageMetrics record.
type StageManifest struct {
	Name     string           `json:"name"`
	WallNS   int64            `json:"wall_ns"`
	CPUNS    int64            `json:"cpu_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// ModelManifest captures the learned model's final statistics.
type ModelManifest struct {
	States            int   `json:"states"`
	Transitions       int   `json:"transitions"`
	Symbols           int   `json:"symbols"`
	Segments          int   `json:"segments"`
	SolverCalls       int   `json:"solver_calls"`
	Refinements       int   `json:"refinements"`
	AcceptRefinements int   `json:"accept_refinements"`
	SATConflicts      int64 `json:"sat_conflicts"`
	SATDecisions      int64 `json:"sat_decisions"`
	SATPropagations   int64 `json:"sat_propagations"`
	SATLearned        int64 `json:"sat_learned"`
}

// Manifest is the per-run artifact.
type Manifest struct {
	Version    int                         `json:"version"`
	Tool       string                      `json:"tool"`
	CreatedAt  string                      `json:"created_at"` // RFC3339
	Config     map[string]any              `json:"config,omitempty"`
	Inputs     []InputDigest               `json:"inputs,omitempty"`
	Stages     []StageManifest             `json:"stages"`
	Counters   map[string]int64            `json:"counters,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	Model      *ModelManifest              `json:"model,omitempty"`
}

// StageManifests converts recorded stage metrics into manifest rows.
func StageManifests(stages []StageMetrics) []StageManifest {
	out := make([]StageManifest, len(stages))
	for i, s := range stages {
		sm := StageManifest{Name: s.Name, WallNS: int64(s.Wall), CPUNS: int64(s.CPU)}
		if len(s.Counters) > 0 {
			sm.Counters = make(map[string]int64, len(s.Counters))
			for _, c := range s.Counters {
				sm.Counters[c.Name] += c.Value
			}
		}
		out[i] = sm
	}
	return out
}

// Validate checks the manifest's schema-level invariants: version,
// required identity fields, and per-stage sanity (named stages,
// non-negative times). It is the same check ReadManifest applies.
func (m *Manifest) Validate() error {
	if m == nil {
		return errors.New("pipeline: nil manifest")
	}
	if m.Version != ManifestVersion {
		return fmt.Errorf("pipeline: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Tool == "" {
		return errors.New("pipeline: manifest missing tool")
	}
	if m.CreatedAt == "" {
		return errors.New("pipeline: manifest missing created_at")
	}
	for i, s := range m.Stages {
		if s.Name == "" {
			return fmt.Errorf("pipeline: stage %d missing name", i)
		}
		if s.WallNS < 0 || s.CPUNS < 0 {
			return fmt.Errorf("pipeline: stage %q has negative time", s.Name)
		}
	}
	for name, h := range m.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("pipeline: histogram %q has negative count", name)
		}
	}
	return nil
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644) atomically: a crash or
// concurrent reader never sees a torn manifest, only the previous file
// or the complete new one.
func (m *Manifest) WriteFile(path string) error {
	return AtomicWriteFile(path, m.Write)
}

// ReadManifest parses and validates a manifest document.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("pipeline: manifest parse: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// FileDigest hashes one input file for the manifest's Inputs section.
// Non-regular inputs (stdin, pipes) get a path-only digest.
func FileDigest(path string) InputDigest {
	d := InputDigest{Path: path}
	f, err := os.Open(path)
	if err != nil {
		return d
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return d
	}
	d.SHA256 = hex.EncodeToString(h.Sum(nil))
	d.Bytes = n
	return d
}

// writeJSON is the shared plain-JSON writer for the registry export.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
