// Fixed-bucket histograms: power-of-two buckets over int64 values,
// maintained with atomics so the hot paths (window synthesis, solver
// calls, RLE run lengths) can record observations without a lock. The
// bucket layout is fixed at construction — no resizing, no allocation
// after creation — and quantile summaries (p50/p95/max) are estimated
// from the bucket counts, which is plenty for the order-of-magnitude
// latency questions the run manifest answers.
package pipeline

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count. The bucket boundaries are:
//
//	bucket 0:        values v ≤ 0 (quantile estimate: 0)
//	bucket i ≥ 1:    values v with bits.Len64(v) == i,
//	                 i.e. the half-open range [2^(i-1), 2^i)
//	bucket 63:       additionally absorbs anything ≥ 2^62 (overflow)
//
// So bucket 1 holds exactly {1}, bucket 2 holds {2,3}, bucket 3 holds
// {4..7}, and so on — 63 value buckets cover all of int64. Quantiles
// are estimated as the geometric midpoint lo+lo/2 of the rank bucket
// [lo, 2·lo), clamped to the exactly-tracked min/max, so any estimate
// is off by at most one bucket (a factor of 2) from the true value;
// TestHistogramQuantileAccuracy pins that bound.
const histBuckets = 64

// Histogram is a fixed-bucket histogram of int64 observations
// (latencies in nanoseconds, run lengths, …). A nil *Histogram is the
// disabled histogram: Observe and friends no-op. Methods are safe for
// concurrent use.
type Histogram struct {
	name string
	unit string

	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
}

func newHistogram(name, unit string) *Histogram {
	h := &Histogram{name: name, unit: unit}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	return h
}

// Name returns the histogram's registered name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Unit returns the unit label the histogram was registered with.
func (h *Histogram) Unit() string {
	if h == nil {
		return ""
	}
	return h.unit
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i (2^i − 1).
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value. Nil-safe: a nil histogram ignores it.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Since records the elapsed time from t0 in nanoseconds — the one-liner
// for latency call sites: defer-free, nil-safe.
func (h *Histogram) Since(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// HistogramSummary is the manifest- and JSON-facing digest of a
// histogram.
type HistogramSummary struct {
	Unit  string `json:"unit,omitempty"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90,omitempty"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
}

// Summary digests the histogram. Concurrent Observes may tear the
// totals slightly (count vs buckets); summaries are read at stage ends
// or scrape time, where that is immaterial.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	s := HistogramSummary{
		Unit:  h.unit,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.P50 = h.quantile(0.50, s.Count)
	s.P90 = h.quantile(0.90, s.Count)
	s.P95 = h.quantile(0.95, s.Count)
	s.P99 = h.quantile(0.99, s.Count)
	// The bucket estimate can exceed the true extremes; clamp to the
	// exactly-tracked min/max.
	if s.P50 < s.Min {
		s.P50 = s.Min
	}
	for _, p := range []*int64{&s.P50, &s.P90, &s.P95, &s.P99} {
		if *p > s.Max {
			*p = s.Max
		}
		if *p < s.Min {
			*p = s.Min
		}
	}
	return s
}

// quantile estimates the q-quantile from the bucket counts: find the
// bucket containing the rank and return its geometric midpoint.
func (h *Histogram) quantile(q float64, count int64) int64 {
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1) // bucket lower bound
			return lo + lo/2            // midpoint of [2^(i-1), 2^i)
		}
	}
	return h.max.Load()
}

// forBuckets calls f for each bucket in ascending order with the
// bucket's inclusive upper bound and its count (cumulative counting is
// the caller's business — Prometheus wants cumulative, JSON wants raw).
func (h *Histogram) forBuckets(f func(upper int64, count int64)) {
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			f(bucketUpper(i), c)
		}
	}
}
