package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Version:   ManifestVersion,
		Tool:      "t2m",
		CreatedAt: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).Format(time.RFC3339),
		Config:    map[string]any{"w": 3, "l": 2, "workers": 4, "portfolio": 2, "stream": true},
		Inputs:    []InputDigest{{Path: "trace.csv", SHA256: "abc", Bytes: 123, Format: "csv"}},
		Stages: []StageManifest{
			{Name: "predicate", WallNS: 1000, CPUNS: 900, Counters: map[string]int64{"windows": 10}},
			{Name: "model", WallNS: 2000, CPUNS: 1800, Counters: map[string]int64{"solver_calls": 3}},
		},
		Counters: map[string]int64{"predicate_windows_total": 10},
		Histograms: map[string]HistogramSummary{
			"solver_call_ns": {Unit: "ns", Count: 3, Sum: 300, Min: 50, Max: 200, P50: 96, P95: 192, P99: 192},
		},
		Model: &ModelManifest{States: 3, Transitions: 5, Symbols: 4, Segments: 6, SolverCalls: 3},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "t2m" || got.Model.States != 3 || len(got.Stages) != 2 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if got.Histograms["solver_call_ns"].P95 != 192 {
		t.Errorf("histogram summary lost: %+v", got.Histograms)
	}
	if got.Stages[0].Counters["windows"] != 10 {
		t.Errorf("stage counters lost: %+v", got.Stages[0])
	}
}

func TestManifestValidateRejects(t *testing.T) {
	cases := map[string]func(*Manifest){
		"wrong version": func(m *Manifest) { m.Version = 99 },
		"missing tool":  func(m *Manifest) { m.Tool = "" },
		"missing time":  func(m *Manifest) { m.CreatedAt = "" },
		"unnamed stage": func(m *Manifest) { m.Stages[0].Name = "" },
		"negative wall": func(m *Manifest) { m.Stages[1].WallNS = -1 },
		"negative count": func(m *Manifest) {
			h := m.Histograms["solver_call_ns"]
			h.Count = -1
			m.Histograms["solver_call_ns"] = h
		},
	}
	for name, mutate := range cases {
		m := sampleManifest()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid manifest", name)
		}
	}
	if _, err := ReadManifest(strings.NewReader("{not json")); err == nil {
		t.Error("ReadManifest accepted malformed JSON")
	}
}

func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := sampleManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadManifest(f); err != nil {
		t.Fatal(err)
	}
}

func TestStageManifests(t *testing.T) {
	var m Metrics
	m.Start("predicate").Add("windows", 10).Add("windows", 5).End()
	rows := StageManifests(m.Stages())
	if len(rows) != 1 || rows[0].Name != "predicate" {
		t.Fatalf("rows = %+v", rows)
	}
	// Duplicate Add rows merge in the manifest form.
	if rows[0].Counters["windows"] != 15 {
		t.Errorf("windows = %d, want 15", rows[0].Counters["windows"])
	}
	if rows[0].WallNS < 0 {
		t.Errorf("negative wall %d", rows[0].WallNS)
	}
}

func TestFileDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := FileDigest(path)
	if d.Bytes != 8 || len(d.SHA256) != 64 {
		t.Fatalf("digest = %+v", d)
	}
	if d2 := FileDigest(filepath.Join(t.TempDir(), "missing")); d2.SHA256 != "" || d2.Bytes != 0 {
		t.Fatalf("missing-file digest = %+v", d2)
	}
}
