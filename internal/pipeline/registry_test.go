package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramSummary(t *testing.T) {
	h := newHistogram("lat", "ns")
	for _, v := range []int64{1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 6 || s.Sum != 1110 {
		t.Fatalf("count/sum = %d/%d, want 6/1110", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if s.P50 < 1 || s.P50 > 100 {
		t.Errorf("p50 = %d, want within [1,100]", s.P50)
	}
	if s.P95 < 100 || s.P95 > 1000 {
		t.Errorf("p95 = %d, want within [100,1000]", s.P95)
	}
	if s.Unit != "ns" {
		t.Errorf("unit = %q", s.Unit)
	}
}

func TestHistogramZeroAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5)
	nilH.Since(time.Now())
	if s := nilH.Summary(); s.Count != 0 {
		t.Fatalf("nil summary count = %d", s.Count)
	}
	h := newHistogram("x", "")
	if s := h.Summary(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
	h.Observe(0)
	h.Observe(-5)
	s := h.Summary()
	if s.Count != 2 || s.Max != 0 {
		t.Fatalf("non-positive summary = %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram("lat", "ns")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Summary(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("windows_total")
	c.Add(3)
	r.Counter("windows_total").Add(2) // same counter
	if got := r.Counter("windows_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.SetGauge("heap_bytes", func() float64 { return 42.5 })
	r.Histogram("lat", "ns").Observe(7)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE windows_total counter", "windows_total 5",
		"# TYPE heap_bytes gauge", "heap_bytes 42.5",
		"# TYPE lat histogram", `lat_bucket{le="+Inf"} 1`, "lat_sum 7", "lat_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64            `json:"counters"`
		Gauges     map[string]float64          `json:"gauges"`
		Histograms map[string]HistogramSummary `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if doc.Counters["windows_total"] != 5 || doc.Gauges["heap_bytes"] != 42.5 || doc.Histograms["lat"].Count != 1 {
		t.Errorf("JSON doc = %+v", doc)
	}
}

func TestPromNameSanitises(t *testing.T) {
	if got := promName("solver.call-latency/ns"); got != "solver_call_latency_ns" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_9lives" {
		t.Errorf("promName leading digit = %q", got)
	}
}

func TestNilRegistryAndTelemetry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("y", "") != nil {
		t.Fatal("nil registry handed out live metrics")
	}
	r.SetGauge("g", func() float64 { return 0 })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js.Bytes()) {
		t.Fatal("nil registry JSON invalid")
	}

	var tel *Telemetry
	if tel.Trace() != nil || tel.Count("c") != nil || tel.Hist("h", "") != nil {
		t.Fatal("nil telemetry handed out live objects")
	}
	tel.Gauge("g", func() float64 { return 0 })
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Add(1)
				r.Histogram("h", "ns").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}
