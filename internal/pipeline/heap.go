package pipeline

import (
	"runtime"
	"sync"
	"time"
)

// HeapSampler periodically samples the live heap and records the peak,
// so the streaming pipeline can report peak resident memory as a stage
// counter without instrumenting every allocation site.
type HeapSampler struct {
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu      sync.Mutex
	peak    uint64
	current uint64
}

// StartHeapSampler begins sampling runtime.MemStats.HeapAlloc every
// interval (default 5ms when zero). Call Stop to end sampling and read
// the peak.
func StartHeapSampler(interval time.Duration) *HeapSampler {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	h := &HeapSampler{stop: make(chan struct{})}
	h.sample()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.sample()
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

func (h *HeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.mu.Lock()
	h.current = ms.HeapAlloc
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	h.mu.Unlock()
}

// SampleNow takes one immediate sample outside the ticker schedule and
// returns the live-heap size it observed. The Profiler calls it when a
// latency budget trips, so the captured heap profile and the reported
// peak agree even if the trigger falls between ticks. Nil-safe.
func (h *HeapSampler) SampleNow() uint64 {
	if h == nil {
		return 0
	}
	h.sample()
	return h.Current()
}

// Peak returns the largest live-heap size sampled so far, without
// stopping the sampler — the value behind the live heap gauge.
func (h *HeapSampler) Peak() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peak
}

// Current returns the most recent live-heap sample.
func (h *HeapSampler) Current() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.current
}

// Stop ends sampling (taking one final sample) and returns the peak
// observed live-heap size in bytes. Stop is idempotent: the first call
// shuts the sampler down, later calls return the same cached peak.
func (h *HeapSampler) Stop() uint64 {
	h.once.Do(func() {
		close(h.stop)
		h.wg.Wait()
		h.sample()
	})
	return h.Peak()
}
