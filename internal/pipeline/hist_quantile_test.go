package pipeline

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile returns the q-quantile of vs by the same rank rule the
// histogram uses (element at floor(q·n), clamped).
func exactQuantile(vs []int64, q float64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// TestHistogramQuantileAccuracy pins the documented accuracy bound:
// with power-of-two buckets, an estimated quantile lands in the same
// or an adjacent bucket as the exact value — never off by more than a
// factor of two — over distributions shaped like the pipeline's
// latency data.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]func(i int) int64{
		"constant":  func(int) int64 { return 4096 },
		"uniform":   func(int) int64 { return 1 + rng.Int63n(100000) },
		"linear":    func(i int) int64 { return int64(i + 1) },
		"powerlaw":  func(int) int64 { return int64(1) << uint(rng.Intn(20)) },
		"bimodal":   func(i int) int64 { if i%10 == 0 { return 1 << 20 }; return 100 },
		"smallvals": func(i int) int64 { return int64(i%3 + 1) },
	}
	for name, gen := range dists {
		h := newHistogram(name, "ns")
		var vs []int64
		for i := 0; i < 5000; i++ {
			v := gen(i)
			vs = append(vs, v)
			h.Observe(v)
		}
		s := h.Summary()
		for _, pq := range []struct {
			q   float64
			got int64
		}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
			exact := exactQuantile(vs, pq.q)
			if db := bucketIndex(pq.got) - bucketIndex(exact); db < -1 || db > 1 {
				t.Errorf("%s p%.0f: estimate %d (bucket %d) vs exact %d (bucket %d): off by %d buckets",
					name, pq.q*100, pq.got, bucketIndex(pq.got), exact, bucketIndex(exact), db)
			}
		}
		// min/max are tracked exactly, and estimates stay inside them.
		min, max := exactQuantile(vs, 0), vs[0]
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
		if s.Min != min || s.Max != max {
			t.Errorf("%s: summary min/max = %d/%d, exact %d/%d", name, s.Min, s.Max, min, max)
		}
		for _, p := range []int64{s.P50, s.P90, s.P95, s.P99} {
			if p < s.Min || p > s.Max {
				t.Errorf("%s: quantile %d outside [min=%d, max=%d]", name, p, s.Min, s.Max)
			}
		}
	}
}
