package pipeline

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempLeftovers lists files in dir that are not the named artifacts —
// i.e. abandoned temp files an atomic write must never leave behind.
func tempLeftovers(t *testing.T, dir string, want ...string) []string {
	t.Helper()
	keep := map[string]bool{}
	for _, w := range want {
		keep[w] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var extra []string
	for _, e := range entries {
		if !keep[e.Name()] {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")

	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}

	// Overwrite: the new content replaces the old in one step.
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after overwrite = %q, want %q", got, "second")
	}
	if extra := tempLeftovers(t, dir, "out.txt"); len(extra) != 0 {
		t.Errorf("leftover files after successful writes: %v", extra)
	}
}

func TestAtomicWriteFileErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial new content")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("failed write clobbered destination: %q", got)
	}
	if extra := tempLeftovers(t, dir, "out.txt"); len(extra) != 0 {
		t.Errorf("leftover temp files after failed write: %v", extra)
	}
}

func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	af, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(af.Name()), "out.txt.tmp") {
		t.Errorf("temp name %q does not advertise its destination", af.Name())
	}
	io.WriteString(af, "doomed")
	af.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("aborted write created the destination")
	}
	if extra := tempLeftovers(t, dir); len(extra) != 0 {
		t.Errorf("leftover temp files after abort: %v", extra)
	}
	// Abort after Abort (and after Commit) is a no-op, so it can sit in
	// a defer alongside an explicit finish.
	af.Abort()
}

func TestAtomicFileCommitTwice(t *testing.T) {
	dir := t.TempDir()
	af, err := CreateAtomic(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := af.Commit(); err == nil {
		t.Error("second Commit succeeded; want error")
	}
}
