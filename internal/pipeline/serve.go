// Live metrics export: an opt-in HTTP listener serving the registry in
// Prometheus text format at /metrics, as JSON at /metrics.json, and
// the standard net/http/pprof profiling handlers under /debug/pprof/,
// so a multi-hour learn can be scraped and profiled without
// restarting. Shared by cmd/t2m, cmd/monitor and cmd/repro via the
// -metrics-addr flag.
package pipeline

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// MetricsServer is a live /metrics + pprof endpoint bound to one
// registry.
type MetricsServer struct {
	// Addr is the bound listen address (host:port), resolved even when
	// the requested port was 0.
	Addr string

	srv    *http.Server
	ln     net.Listener
	health atomic.Pointer[Health]
}

// ServeMetrics starts an HTTP listener on addr (host:port; port 0
// picks a free port) serving reg. It returns once the listener is
// bound; requests are served on a background goroutine until Close.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pipeline: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	s := &MetricsServer{Addr: ln.Addr().String(), ln: ln}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, detail := s.health.Load().Status()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// SetHealth attaches (or replaces) the health evaluator behind
// /healthz; until one is set, /healthz reports ok. Safe to call while
// serving and on a nil server.
func (s *MetricsServer) SetHealth(h *Health) {
	if s == nil {
		return
	}
	s.health.Store(h)
}

// URL returns the server's base URL (http://host:port).
func (s *MetricsServer) URL() string { return "http://" + s.Addr }

// Close stops the listener. Safe to call on a nil server.
func (s *MetricsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
