// Structured run tracing: Tracer records hierarchical spans
// (run → stage → unit) and point events, emitting one machine-readable
// JSON object per line (NDJSON) to a caller-supplied writer. It is the
// low-overhead flight recorder behind `t2m -trace-out`: every unique
// window synthesis, every SAT solver round and every compliance
// refinement becomes one line that offline tooling can aggregate.
//
// Overhead discipline: a nil *Tracer is a valid, fully disabled tracer
// — every method is a nil-check no-op, so hot paths hold a possibly-nil
// tracer and call it unconditionally. Call sites that build attributes
// must guard with Enabled() so the attribute slice is never
// materialised when tracing is off; the AllocsPerRun test pins the
// disabled path at zero allocations.
//
// Event schema (one JSON object per line; see DESIGN.md §7):
//
//	{"t":"trace_start","wall":"RFC3339 time","unit":"us"}
//	{"t":"start","ts":1234,"id":7,"par":3,"name":"solve"}
//	{"t":"end","ts":1290,"id":7,"attrs":{"status":"SAT","conflicts":12}}
//	{"t":"event","ts":1300,"par":7,"name":"compliance","attrs":{"grams":2}}
//
// ts is microseconds since the trace_start line; id/par are span ids
// (0 = no parent). Attribute values are strings, integers, floats or
// booleans.
package pipeline

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span in a trace; zero means "no span" and is
// the parent of root spans.
type SpanID uint64

// attrKind discriminates Attr payloads.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrStr
	attrFloat
	attrBool
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Tracer writes NDJSON span/event lines. The zero value is not usable;
// call NewTracer. A nil *Tracer is the disabled tracer: every method
// no-ops. Methods are safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	buf   []byte // per-line scratch, reused under mu
	err   error  // first write error; subsequent lines are dropped
	next  atomic.Uint64
	epoch time.Time
}

// NewTracer returns a Tracer writing NDJSON lines to w, after emitting
// the trace_start header line. The caller owns w; call Flush before
// closing it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), epoch: time.Now()}
	t.mu.Lock()
	t.buf = append(t.buf[:0], `{"t":"trace_start","wall":`...)
	t.buf = appendJSONString(t.buf, t.epoch.Format(time.RFC3339Nano))
	t.buf = append(t.buf, `,"unit":"us"}`...)
	t.writeLine()
	t.mu.Unlock()
	return t
}

// Enabled reports whether the tracer records anything. Hot paths use
// it to skip attribute construction entirely when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span under parent (0 for a root span) and returns its
// id. On a nil tracer it returns 0.
func (t *Tracer) Start(parent SpanID, name string, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.next.Add(1))
	t.emit("start", id, parent, name, attrs)
	return id
}

// End closes the span, attaching the final attributes (durations,
// outcome counters).
func (t *Tracer) End(id SpanID, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("end", id, 0, "", attrs)
}

// Event records a point event under a span (0 for a top-level event).
func (t *Tracer) Event(parent SpanID, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit("event", 0, parent, name, attrs)
}

// Flush drains buffered lines to the underlying writer and returns the
// first error seen by any write.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// emit renders and writes one line.
func (t *Tracer) emit(typ string, id, parent SpanID, name string, attrs []Attr) {
	ts := time.Since(t.epoch).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := append(t.buf[:0], `{"t":"`...)
	b = append(b, typ...)
	b = append(b, `","ts":`...)
	b = strconv.AppendInt(b, ts, 10)
	if id != 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	if parent != 0 {
		b = append(b, `,"par":`...)
		b = strconv.AppendUint(b, uint64(parent), 10)
	}
	if name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
	}
	if len(attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			switch a.kind {
			case attrInt:
				b = strconv.AppendInt(b, a.i, 10)
			case attrStr:
				b = appendJSONString(b, a.s)
			case attrFloat:
				b = strconv.AppendFloat(b, a.f, 'g', -1, 64)
			case attrBool:
				b = strconv.AppendBool(b, a.i != 0)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	t.buf = b
	t.writeLine()
}

// writeLine appends the newline and writes t.buf. Callers hold t.mu.
func (t *Tracer) writeLine() {
	if t.err != nil {
		return
	}
	t.buf = append(t.buf, '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (strconv.AppendQuote emits Go escapes like
// \x1b that JSON rejects, so this is hand-rolled).
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			// Multi-byte UTF-8 sequences pass through byte-wise: JSON
			// strings are UTF-8 and need no escaping beyond the above.
			b = append(b, c)
		}
	}
	return append(b, '"')
}
