// Structured run tracing: Tracer records hierarchical spans
// (run → stage → unit) and point events, emitting one machine-readable
// JSON object per line (NDJSON) to a caller-supplied writer. It is the
// low-overhead flight recorder behind `t2m -trace-out`: every unique
// window synthesis, every SAT solver round and every compliance
// refinement becomes one line that offline tooling can aggregate.
//
// Overhead discipline: a nil *Tracer is a valid, fully disabled tracer
// — every method is a nil-check no-op, so hot paths hold a possibly-nil
// tracer and call it unconditionally. Call sites that build attributes
// must guard with Enabled() so the attribute slice is never
// materialised when tracing is off; the AllocsPerRun test pins the
// disabled path at zero allocations.
//
// Event schema (one JSON object per line; see DESIGN.md §7 and §18):
//
//	{"t":"trace_start","wall":"RFC3339 time","unit":"us"}
//	{"t":"start","ts":1234,"id":7,"par":3,"name":"solve"}
//	{"t":"end","ts":1290,"id":7,"attrs":{"status":"SAT","conflicts":12}}
//	{"t":"event","ts":1300,"par":7,"name":"compliance","attrs":{"grams":2}}
//	{"t":"sample","kind":"solve","head":64,"tail":32,"every":16,"seen":900,"written":210,"dropped":690}
//	{"t":"rollup","kind":"solve","count":900,"sum_us":4120,"min_us":1,"max_us":310,"p50_us":3,"p90_us":6,"p95_us":12,"p99_us":48}
//
// ts is microseconds since the trace_start line; id/par are span ids
// (0 = no parent). Attribute values are strings, integers, floats or
// booleans. sample and rollup lines carry no timestamp: they are
// emitted once by Close and must be byte-reproducible across runs.
//
// Bounded emission: a SamplePolicy caps the per-kind span volume for
// high-cardinality kinds (one "window" span per unique window, one
// "solve" span per solver round — O(steps) on a long trace). Sampled
// kinds keep their first Head spans, every stride-th span thereafter
// (the stride doubling every sampleGrowEvery mid-stream picks, so the
// in-stream volume is O(Head + log steps)), and the last Tail spans
// (drained by Close). The rollup line per kind is always exact — it
// aggregates every span's duration, sampled or not, through the same
// Histogram machinery the registry uses — so dropping span lines loses
// no aggregate information. Sampling decisions depend only on per-kind
// arrival counts, never on time, so two runs over the same input
// sample the same spans.
package pipeline

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span in a trace; zero means "no span" and is
// the parent of root spans.
type SpanID uint64

// attrKind discriminates Attr payloads.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrStr
	attrFloat
	attrBool
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrStr, s: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// SampleRule bounds the emitted span volume for one span kind. All
// spans of the kind still feed the kind's exact duration rollup; the
// rule only limits which individual start/end line pairs reach the
// file.
type SampleRule struct {
	// Head is the number of initial spans always written.
	Head int
	// Tail is the number of final spans written when the tracer is
	// closed (held in a ring until then).
	Tail int
	// EveryN is the initial mid-stream stride: after the head, the
	// EveryN-th span is written, then the stride doubles every
	// sampleGrowEvery written spans, bounding mid-stream volume at
	// O(sampleGrowEvery · log n). Values < 1 mean 1.
	EveryN int
}

// SamplePolicy maps span kind (name) to its sampling rule. Kinds
// absent from the policy are never sampled: every span is written.
type SamplePolicy map[string]SampleRule

// sampleGrowEvery is the adaptive schedule: after this many mid-stream
// spans written at one stride, the stride doubles.
const sampleGrowEvery = 8

// DefaultSamplePolicy bounds the two high-cardinality kinds — one
// "window" span per unique window and one "solve" span per solver
// round, both O(trace length) on high-cardinality inputs — keeping
// trace files O(kinds · log steps) instead of O(steps).
func DefaultSamplePolicy() SamplePolicy {
	return SamplePolicy{
		"window": {Head: 64, Tail: 32, EveryN: 16},
		"solve":  {Head: 64, Tail: 32, EveryN: 16},
	}
}

// openSpan tracks one started, not-yet-ended span: enough to compute
// its duration at End, plus the withheld start line when the sampling
// policy decided not to write it.
type openSpan struct {
	kind    string
	startUS int64
	written bool   // start line already on the wire
	pending []byte // rendered start line (newline-terminated) when !written
}

// kindState aggregates one span kind: the exact duration rollup, the
// sampling counters, and the tail ring of withheld line pairs.
type kindState struct {
	rule    SampleRule
	sampled bool
	hist    *Histogram // duration rollup in µs; exact over all spans

	seen      int64 // spans of this kind ended (rollup population is spans started and ended)
	started   int64 // spans of this kind started (drives head/stride decisions)
	written   int64 // span pairs written in-stream (head + mid-stream)
	drained   int64 // span pairs written from the tail ring by Close
	stride    int64
	nextMid   int64
	sinceGrow int64

	tail  [][]byte // ring of withheld start+end line pairs
	tailN int64    // total pairs pushed (ring evicts oldest)
}

// admit decides, from arrival order alone, whether the next span of
// this kind gets its lines written in-stream. Callers hold the tracer
// mutex, so the decision sequence is deterministic for serially
// emitted kinds.
func (st *kindState) admit() bool {
	st.started++
	if !st.sampled {
		return true
	}
	i := st.started
	if i <= int64(st.rule.Head) {
		return true
	}
	if i == st.nextMid {
		st.sinceGrow++
		if st.sinceGrow >= sampleGrowEvery {
			st.stride *= 2
			st.sinceGrow = 0
		}
		st.nextMid = i + st.stride
		return true
	}
	if i > st.nextMid { // Head shrank past a precomputed mid (cannot happen today; keep monotonic)
		st.nextMid = i + st.stride
	}
	return false
}

// Tracer writes NDJSON span/event lines. The zero value is not usable;
// call NewTracer. A nil *Tracer is the disabled tracer: every method
// no-ops. Methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	buf    []byte // per-line scratch, reused under mu
	err    error  // first write error; subsequent lines are dropped
	next   atomic.Uint64
	epoch  time.Time
	clock  func() int64 // µs since epoch; nil = wall clock
	header bool         // trace_start line written
	closed bool

	policy SamplePolicy
	open   map[SpanID]*openSpan
	kinds  map[string]*kindState
	names  []string    // kind names in first-seen order (sorted at Close)
	free   []*openSpan // openSpan recycling
}

// NewTracer returns a Tracer writing NDJSON lines to w. The
// trace_start header line is emitted lazily before the first line (so
// SetPolicy and SetClock can run first). The caller owns w; call Close
// (or at least Flush) before closing it.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{
		w:     bufio.NewWriter(w),
		epoch: time.Now(),
		open:  map[SpanID]*openSpan{},
		kinds: map[string]*kindState{},
	}
}

// SetPolicy installs the sampling policy. Must be called before the
// first span is started; a nil policy (the default) writes every span.
func (t *Tracer) SetPolicy(p SamplePolicy) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.policy = p
	t.mu.Unlock()
}

// SetClock replaces the tracer's timestamp source with fn, which must
// return microseconds since the start of the trace. A deterministic fn
// makes the whole trace file byte-reproducible (the wall field of the
// header is pinned to the epoch); the differential harness uses this
// to pin sampled-vs-full rollup identity. Must be called before the
// first line is written; fn must be safe for concurrent use.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// nowUS is the tracer's clock: microseconds since the epoch.
func (t *Tracer) nowUS() int64 {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.epoch).Microseconds()
}

// Enabled reports whether the tracer records anything. Hot paths use
// it to skip attribute construction entirely when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// kind returns (creating) the per-kind state for name. Callers hold
// t.mu.
func (t *Tracer) kind(name string) *kindState {
	st, ok := t.kinds[name]
	if !ok {
		st = &kindState{hist: newHistogram(name, "us")}
		if rule, sampled := t.policy[name]; sampled {
			if rule.EveryN < 1 {
				rule.EveryN = 1
			}
			if rule.Head < 0 {
				rule.Head = 0
			}
			if rule.Tail < 0 {
				rule.Tail = 0
			}
			st.rule = rule
			st.sampled = true
			st.stride = int64(rule.EveryN)
			st.nextMid = int64(rule.Head) + st.stride
			if rule.Tail > 0 {
				st.tail = make([][]byte, rule.Tail)
			}
		}
		t.kinds[name] = st
		t.names = append(t.names, name)
	}
	return st
}

// newOpen takes an openSpan from the free list (or allocates).
// Callers hold t.mu.
func (t *Tracer) newOpen(kind string, ts int64) *openSpan {
	var os *openSpan
	if n := len(t.free); n > 0 {
		os = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		os = &openSpan{}
	}
	os.kind, os.startUS, os.written = kind, ts, false
	os.pending = os.pending[:0]
	return os
}

// Start opens a span under parent (0 for a root span) and returns its
// id. On a nil tracer it returns 0.
func (t *Tracer) Start(parent SpanID, name string, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.next.Add(1))
	ts := t.nowUS()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureHeader()
	st := t.kind(name)
	os := t.newOpen(name, ts)
	if st.admit() {
		os.written = true
		st.written++
		t.buf = renderEvent(t.buf[:0], "start", ts, id, parent, name, attrs)
		t.writeLine()
	} else {
		os.pending = renderEvent(os.pending[:0], "start", ts, id, parent, name, attrs)
		os.pending = append(os.pending, '\n')
	}
	t.open[id] = os
	return id
}

// End closes the span, attaching the final attributes (durations,
// outcome counters). The span's duration always feeds its kind's
// rollup, whether or not its lines are written.
func (t *Tracer) End(id SpanID, attrs ...Attr) {
	if t == nil {
		return
	}
	ts := t.nowUS()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureHeader()
	os := t.open[id]
	if os == nil {
		// Unmatched end (or id 0): emit as-is, no rollup to feed.
		t.buf = renderEvent(t.buf[:0], "end", ts, id, 0, "", attrs)
		t.writeLine()
		return
	}
	delete(t.open, id)
	st := t.kinds[os.kind]
	st.seen++
	st.hist.Observe(ts - os.startUS)
	if os.written {
		t.buf = renderEvent(t.buf[:0], "end", ts, id, 0, "", attrs)
		t.writeLine()
	} else if st.rule.Tail > 0 {
		// Withheld pair: park start+end in the tail ring, evicting the
		// oldest. The ring slot's buffer is reused, so a dropped span
		// costs no steady-state allocation.
		slot := st.tailN % int64(st.rule.Tail)
		pair := append(st.tail[slot][:0], os.pending...)
		pair = renderEvent(pair, "end", ts, id, 0, "", attrs)
		st.tail[slot] = append(pair, '\n')
		st.tailN++
	}
	t.free = append(t.free, os)
}

// Event records a point event under a span (0 for a top-level event).
// Events are never sampled: they are rare (compliance, checkpoint,
// acceptance) and carry decisions, not volume.
func (t *Tracer) Event(parent SpanID, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	ts := t.nowUS()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureHeader()
	t.buf = renderEvent(t.buf[:0], "event", ts, 0, parent, name, attrs)
	t.writeLine()
}

// Flush drains buffered lines to the underlying writer and returns the
// first error seen by any write.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureHeader()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close finalises the trace: drains every sampled kind's tail ring,
// emits one timestamp-free "sample" accounting line per sampled kind
// and one exact "rollup" duration-aggregate line per kind (sorted by
// kind, so the epilogue is byte-reproducible), and flushes. Idempotent
// — the epilogue is written once; later calls only report the write
// error. Spans still open at Close are not rolled up (their duration
// is unknown) and their withheld start lines are discarded.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.flushLocked()
	}
	t.closed = true
	t.ensureHeader()
	sort.Strings(t.names)
	for _, name := range t.names {
		st := t.kinds[name]
		if st.tailN == 0 {
			continue
		}
		n := st.tailN
		if max := int64(st.rule.Tail); n > max {
			n = max
		}
		for i := st.tailN - n; i < st.tailN; i++ {
			t.writeRaw(st.tail[i%int64(st.rule.Tail)])
		}
		st.drained = n
	}
	for _, name := range t.names {
		st := t.kinds[name]
		if !st.sampled {
			continue
		}
		b := append(t.buf[:0], `{"t":"sample","kind":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"head":`...)
		b = strconv.AppendInt(b, int64(st.rule.Head), 10)
		b = append(b, `,"tail":`...)
		b = strconv.AppendInt(b, int64(st.rule.Tail), 10)
		b = append(b, `,"every":`...)
		b = strconv.AppendInt(b, int64(st.rule.EveryN), 10)
		b = append(b, `,"seen":`...)
		b = strconv.AppendInt(b, st.started, 10)
		b = append(b, `,"written":`...)
		b = strconv.AppendInt(b, st.written+st.drained, 10)
		b = append(b, `,"dropped":`...)
		b = strconv.AppendInt(b, st.started-st.written-st.drained, 10)
		b = append(b, '}')
		t.buf = b
		t.writeLine()
	}
	for _, name := range t.names {
		st := t.kinds[name]
		if st.seen == 0 {
			continue
		}
		s := st.hist.Summary()
		b := append(t.buf[:0], `{"t":"rollup","kind":`...)
		b = appendJSONString(b, name)
		b = append(b, `,"count":`...)
		b = strconv.AppendInt(b, s.Count, 10)
		b = append(b, `,"sum_us":`...)
		b = strconv.AppendInt(b, s.Sum, 10)
		b = append(b, `,"min_us":`...)
		b = strconv.AppendInt(b, s.Min, 10)
		b = append(b, `,"max_us":`...)
		b = strconv.AppendInt(b, s.Max, 10)
		b = append(b, `,"p50_us":`...)
		b = strconv.AppendInt(b, s.P50, 10)
		b = append(b, `,"p90_us":`...)
		b = strconv.AppendInt(b, s.P90, 10)
		b = append(b, `,"p95_us":`...)
		b = strconv.AppendInt(b, s.P95, 10)
		b = append(b, `,"p99_us":`...)
		b = strconv.AppendInt(b, s.P99, 10)
		b = append(b, '}')
		t.buf = b
		t.writeLine()
	}
	return t.flushLocked()
}

// Rollups returns the exact per-kind duration rollups (µs) accumulated
// so far, keyed by span kind — the same aggregates Close writes as
// rollup lines. Safe on a nil tracer (empty map).
func (t *Tracer) Rollups() map[string]HistogramSummary {
	out := map[string]HistogramSummary{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, st := range t.kinds {
		if st.seen > 0 {
			out[name] = st.hist.Summary()
		}
	}
	return out
}

// ensureHeader writes the trace_start line once. Callers hold t.mu.
func (t *Tracer) ensureHeader() {
	if t.header {
		return
	}
	t.header = true
	wall := t.epoch.Format(time.RFC3339Nano)
	if t.clock != nil {
		// Deterministic clock → deterministic header, so the whole file
		// is byte-reproducible.
		wall = "1970-01-01T00:00:00Z"
	}
	t.buf = append(t.buf[:0], `{"t":"trace_start","wall":`...)
	t.buf = appendJSONString(t.buf, wall)
	t.buf = append(t.buf, `,"unit":"us"}`...)
	t.writeLine()
}

// renderEvent renders one NDJSON line (no trailing newline) into dst.
func renderEvent(dst []byte, typ string, ts int64, id, parent SpanID, name string, attrs []Attr) []byte {
	b := append(dst, `{"t":"`...)
	b = append(b, typ...)
	b = append(b, `","ts":`...)
	b = strconv.AppendInt(b, ts, 10)
	if id != 0 {
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	if parent != 0 {
		b = append(b, `,"par":`...)
		b = strconv.AppendUint(b, uint64(parent), 10)
	}
	if name != "" {
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
	}
	if len(attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			switch a.kind {
			case attrInt:
				b = strconv.AppendInt(b, a.i, 10)
			case attrStr:
				b = appendJSONString(b, a.s)
			case attrFloat:
				b = strconv.AppendFloat(b, a.f, 'g', -1, 64)
			case attrBool:
				b = strconv.AppendBool(b, a.i != 0)
			}
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// writeLine appends the newline and writes t.buf. Callers hold t.mu.
func (t *Tracer) writeLine() {
	if t.err != nil {
		return
	}
	t.buf = append(t.buf, '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// writeRaw writes an already newline-terminated rendered line (or line
// pair). Callers hold t.mu.
func (t *Tracer) writeRaw(line []byte) {
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
	}
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (strconv.AppendQuote emits Go escapes like
// \x1b that JSON rejects, so this is hand-rolled).
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			// Multi-byte UTF-8 sequences pass through byte-wise: JSON
			// strings are UTF-8 and need no escaping beyond the above.
			b = append(b, c)
		}
	}
	return append(b, '"')
}
