package trace

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/expr"
)

// trackedReader records Close calls so the tests can prove Collect's
// error path releases the input and its success path does not.
type trackedReader struct {
	io.Reader
	closes   int
	closeErr error
}

func (t *trackedReader) Close() error {
	t.closes++
	return t.closeErr
}

// failingReader yields its prefix, then a read error — a truncated
// file or a torn pipe mid-stream.
type failingReader struct {
	io.Reader
	err error
}

func (f *failingReader) Read(p []byte) (int, error) {
	n, err := f.Reader.Read(p)
	if err == io.EOF {
		return n, f.err
	}
	return n, err
}

// TestCollectClosesOnError injects decode errors into every source
// type and asserts Collect closes the underlying reader exactly once —
// no leaked descriptors when a decode is abandoned mid-stream.
func TestCollectClosesOnError(t *testing.T) {
	cases := []struct {
		name string
		open func(r io.Reader) (Source, error)
		data string                    // decodes for a while, then fails
		wrap func(io.Reader) io.Reader // optional extra layer under the tracked closer
	}{
		{
			name: "csv bad field",
			open: func(r io.Reader) (Source, error) { return NewCSVSource(r) },
			data: "x:int\n1\n2\nnot-a-number\n",
		},
		{
			name: "csv short row",
			open: func(r io.Reader) (Source, error) { return NewCSVSource(r) },
			data: "x:int,y:int\n1,2\n3\n",
		},
		{
			name: "events read error",
			open: func(r io.Reader) (Source, error) { return NewEventsSource(r), nil },
			data: "open\nclose\n",
			wrap: func(r io.Reader) io.Reader { return &failingReader{Reader: r, err: errors.New("torn pipe")} },
		},
		{
			name: "ftrace bad line",
			open: func(r io.Reader) (Source, error) { return NewFtraceSource(r, "", nil), nil },
			data: "          task-1     [000] d..2.    42.000001: sched_switch\nnot an ftrace line\n",
		},
		{
			name: "vcd bad value change",
			open: func(r io.Reader) (Source, error) { return NewVCDSource(r, nil) },
			data: "$var wire 1 ! clk $end\n$enddefinitions $end\n$dumpvars\n1!\n$end\n#1\n0!\ngarbage\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var inner io.Reader = strings.NewReader(tc.data)
			if tc.wrap != nil {
				inner = tc.wrap(inner)
			}
			tr := &trackedReader{Reader: inner}
			src, err := tc.open(tr)
			if err != nil {
				t.Fatalf("constructor failed: %v", err)
			}
			if _, err := Collect(src); err == nil {
				t.Fatal("Collect succeeded, want decode error")
			}
			if tr.closes != 1 {
				t.Fatalf("underlying reader closed %d times, want 1", tr.closes)
			}
			// A second Close (a caller's defer) must not reach the
			// reader again.
			if err := src.(io.Closer).Close(); err != nil {
				t.Fatalf("idempotent Close: %v", err)
			}
			if tr.closes != 1 {
				t.Fatalf("Close not idempotent: reader closed %d times", tr.closes)
			}
		})
	}
}

// TestCollectLeavesSuccessOpen: when the whole stream decodes, the
// caller still owns the reader — Collect must not close it.
func TestCollectLeavesSuccessOpen(t *testing.T) {
	tr := &trackedReader{Reader: strings.NewReader("x:int\n1\n2\n3\n")}
	src, err := NewCSVSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("collected %d observations, want 3", got.Len())
	}
	if tr.closes != 0 {
		t.Fatalf("reader closed %d times on success, want 0", tr.closes)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.closes != 1 {
		t.Fatalf("explicit Close reached the reader %d times, want 1", tr.closes)
	}
}

// TestCollectJoinsCloseError: a failing Close on the error path is
// reported alongside the decode error, not swallowed and not
// replacing it.
func TestCollectJoinsCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	tr := &trackedReader{Reader: strings.NewReader("x:int\nbogus\n"), closeErr: closeErr}
	src, err := NewCSVSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(src)
	if err == nil {
		t.Fatal("Collect succeeded, want decode error")
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("close error not joined: %v", err)
	}
	if !strings.Contains(err.Error(), "bogus") && !strings.Contains(err.Error(), "invalid syntax") {
		t.Fatalf("decode error lost: %v", err)
	}
}

// TestCollectNonCloserSource: sources over plain byte readers (no
// Close method on the reader) still close without error, and Collect's
// error path tolerates sources that are not io.Closers at all.
func TestCollectNonCloserSource(t *testing.T) {
	src, err := NewCSVSource(strings.NewReader("x:int\nbogus\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(src); err == nil {
		t.Fatal("Collect succeeded, want decode error")
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close over a non-closer reader: %v", err)
	}

	// TraceSource has no Close; Collect must not require one. An
	// Append-path error needs a schema mismatch, which TraceSource
	// cannot produce, so exercise the happy path only.
	base := New(MustSchema(VarDef{Name: "x", Type: expr.Int}))
	if _, err := Collect(NewTraceSource(base)); err != nil {
		t.Fatalf("Collect over TraceSource: %v", err)
	}
}
