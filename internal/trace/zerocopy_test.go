package trace

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cloneObs copies an observation out of the decoder's reused buffer.
func cloneObs(obs Observation) Observation {
	return append(Observation(nil), obs...)
}

// collectCSV decodes a CSV byte stream through the given reader
// wrapper and returns the observations.
func collectCSV(t *testing.T, data []byte, zeroCopy bool) []Observation {
	t.Helper()
	var src *CSVSource
	var err error
	if zeroCopy {
		src, err = NewCSVSource(NewBytes(data))
	} else {
		src, err = NewCSVSource(bytes.NewReader(data))
	}
	if err != nil {
		t.Fatal(err)
	}
	var out []Observation
	for {
		obs, err := src.Next()
		if err != nil {
			break
		}
		out = append(out, cloneObs(obs))
	}
	return out
}

// TestCSVLongLines: lines far beyond any internal buffer size must
// decode — the old bufio.Scanner decoder capped line length; the liner
// grows without bound on both the reader and the zero-copy path.
func TestCSVLongLines(t *testing.T) {
	big := strings.Repeat("x", 300*1024) // 300 KiB, past the 64 KiB read buffer
	data := []byte("name:sym,count:int\n" +
		"small,1\n" +
		big + ",2\n" +
		"tail,3") // final line unterminated on purpose
	for _, zero := range []bool{false, true} {
		obs := collectCSV(t, data, zero)
		if len(obs) != 3 {
			t.Fatalf("zeroCopy=%v: decoded %d observations, want 3", zero, len(obs))
		}
		if got := obs[1][0].S; got != big {
			t.Errorf("zeroCopy=%v: long field came back %d bytes, want %d", zero, len(got), len(big))
		}
		if got := obs[2][0].S; got != "tail" {
			t.Errorf("zeroCopy=%v: final unterminated line decoded as %q", zero, got)
		}
	}
}

// TestOpenBytes: the mmap-or-read file source must serve the file's
// exact bytes, decode end-to-end, and tolerate double Close.
func TestOpenBytes(t *testing.T) {
	data := []byte("count:int\n0\n1\n2\n3\n")
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Data(), data) || b.Len() != len(data) {
		t.Fatalf("OpenBytes served %d bytes, want %d", b.Len(), len(data))
	}
	src, err := NewCSVSource(b)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Fatalf("decoded %d observations, want 4", tr.Len())
	}
	if got := src.BytesRead(); got != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", got, len(data))
	}
	// Collect closes the source, which closes b; closing again (and
	// directly) must stay a no-op.
	if err := b.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if b.Data() != nil {
		t.Error("Data non-nil after Close — borrowed slices would dangle silently")
	}
}

// TestCSVQuotedMatchesEncodingCSV cross-checks the hand-rolled quoted
// parser against encoding/csv on adversarial symbol values, on both
// decode paths. Expected values carry the decoder's documented
// TrimSpace semantics.
func TestCSVQuotedMatchesEncodingCSV(t *testing.T) {
	values := []string{
		"plain", "comma,inside", `say "hi"`, "multi\nline\nvalue",
		`""`, "trail ", " lead", "mix,\"of\nboth\"", "ünïcode",
	}
	r := rand.New(rand.NewSource(5))
	var table [][]string
	for i := 0; i < 200; i++ {
		table = append(table, []string{values[r.Intn(len(values))], values[r.Intn(len(values))]})
	}
	var buf bytes.Buffer
	buf.WriteString("a:sym,b:sym\n")
	cw := csv.NewWriter(&buf)
	if err := cw.WriteAll(table); err != nil {
		t.Fatal(err)
	}
	cw.Flush()
	data := buf.Bytes()

	// Reference: encoding/csv over the same body.
	cr := csv.NewReader(bytes.NewReader(data[strings.Index(string(data), "\n")+1:]))
	cr.FieldsPerRecord = 2
	want, err := cr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	for _, zero := range []bool{false, true} {
		obs := collectCSV(t, data, zero)
		if len(obs) != len(want) {
			t.Fatalf("zeroCopy=%v: decoded %d records, want %d", zero, len(obs), len(want))
		}
		for i, rec := range want {
			for j := range rec {
				if got, w := obs[i][j].S, strings.TrimSpace(rec[j]); got != w {
					t.Fatalf("zeroCopy=%v: record %d field %d: %q, want %q", zero, i, j, got, w)
				}
			}
		}
	}

	// Malformed quoting must error, not decode garbage.
	for _, bad := range []string{
		"a:sym\nval\"ue\n",     // bare quote in unquoted field
		"a:sym\n\"unclosed\n",  // missing closing quote
		"a:sym\n\"x\"tail,1\n", // extraneous quote
	} {
		src, err := NewCSVSource(NewBytes([]byte(bad)))
		if err != nil {
			continue // header rejection is fine too
		}
		if _, err := src.Next(); err == nil {
			t.Errorf("malformed %q decoded without error", bad)
		}
	}
}

// TestNextIDMatchesDecodeIntern: the raw-byte ID fast path must yield
// the identical ObsID stream (over fresh interners) as decoding plus
// interning, including when the two are interleaved mid-stream and
// when the interner changes identity.
func TestNextIDMatchesDecodeIntern(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("count:int,event:sym\n")
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&buf, "%d,e%d\n", i%7, i%3)
	}
	data := buf.Bytes()

	ref := NewInterner()
	srcA, err := NewCSVSource(NewBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	var wantIDs []ObsID
	for {
		obs, err := srcA.Next()
		if err != nil {
			break
		}
		wantIDs = append(wantIDs, ref.Intern(obs))
	}

	for _, mode := range []string{"all-id", "interleaved", "events-style-reset"} {
		in := NewInterner()
		srcB, err := NewCSVSource(NewBytes(data))
		if err != nil {
			t.Fatal(err)
		}
		var got []ObsID
		for i := 0; ; i++ {
			var id ObsID
			switch {
			case mode == "interleaved" && i%3 == 2:
				obs, err := srcB.Next()
				if err != nil {
					goto done
				}
				id = in.Intern(obs)
			case mode == "events-style-reset" && i == 2000:
				// Swap interners mid-stream: the cache must reset, not
				// serve ids minted against the old table. Re-interning in
				// id order preserves the numbering.
				fresh := NewInterner()
				for j := 0; j < in.Len(); j++ {
					fresh.Intern(in.Obs(ObsID(j)))
				}
				in = fresh
				fallthrough
			default:
				var err error
				id, err = srcB.NextID(in)
				if err != nil {
					goto done
				}
			}
			got = append(got, id)
		}
	done:
		if len(got) != len(wantIDs) {
			t.Fatalf("%s: %d ids, want %d", mode, len(got), len(wantIDs))
		}
		for i := range got {
			if got[i] != wantIDs[i] {
				t.Fatalf("%s: id %d = %d, want %d", mode, i, got[i], wantIDs[i])
			}
		}
	}
}

// TestCSVBlocks: block iteration must refuse quoted data, split
// quote-free data on line boundaries covering every byte, and decode
// block-by-block to the exact serial observation sequence.
func TestCSVBlocks(t *testing.T) {
	quoted := []byte("a:sym\n\"x,y\"\nplain\n")
	srcQ, err := NewCSVSource(NewBytes(quoted))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srcQ.Blocks(1 << 16); ok {
		t.Fatal("Blocks accepted a trace containing quotes")
	}

	var buf bytes.Buffer
	buf.WriteString("count:int,event:sym\n")
	for i := 0; i < 120_000; i++ {
		fmt.Fprintf(&buf, "%d,ev%d\n", i%9, i%4)
	}
	data := buf.Bytes()
	want := collectCSV(t, data, true)

	src, err := NewCSVSource(NewBytes(data))
	if err != nil {
		t.Fatal(err)
	}
	next, ok := src.Blocks(1 << 16)
	if !ok {
		t.Fatal("Blocks refused a quote-free trace")
	}
	var blocks [][]byte
	for {
		b, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatal("block not newline-aligned")
		}
		blocks = append(blocks, b)
	}
	if len(blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(blocks))
	}
	var joined []byte
	for _, b := range blocks {
		joined = append(joined, b...)
	}
	header := data[:bytes.IndexByte(data, '\n')+1]
	if !bytes.Equal(joined, data[len(header):]) {
		t.Fatal("blocks do not cover the body exactly")
	}

	dec := src.NewBlockDecoder()
	var got []Observation
	for _, b := range blocks {
		if err := dec.Decode(b, func(obs Observation) error {
			got = append(got, cloneObs(obs))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("block decode yields %d observations, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("observation %d field %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
