package trace

import (
	"testing"

	"repro/internal/expr"
)

func TestInternerDedupes(t *testing.T) {
	in := NewInterner()
	a := Observation{expr.IntVal(1), expr.BoolVal(true), expr.SymVal("x")}
	b := Observation{expr.IntVal(1), expr.BoolVal(true), expr.SymVal("x")}
	c := Observation{expr.IntVal(2), expr.BoolVal(true), expr.SymVal("x")}

	idA := in.Intern(a)
	if got := in.Intern(b); got != idA {
		t.Fatalf("equal observations interned to %d and %d", idA, got)
	}
	idC := in.Intern(c)
	if idC == idA {
		t.Fatalf("distinct observations share id %d", idA)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}

	// Canonical copies must not alias the (reusable) argument buffer.
	a[0] = expr.IntVal(99)
	canon := in.Obs(idA)
	if !canon[0].Equal(expr.IntVal(1)) {
		t.Fatalf("canonical observation aliases caller buffer: %v", canon)
	}
}

func TestInternerSteadyStateAllocs(t *testing.T) {
	in := NewInterner()
	obs := Observation{expr.IntVal(7), expr.SymVal("ev")}
	in.Intern(obs)
	allocs := testing.AllocsPerRun(100, func() {
		if in.Intern(obs) != 0 {
			t.Fatal("id changed")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Intern allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMakeWindowKey(t *testing.T) {
	small := []ObsID{1, 2, 3}
	if MakeWindowKey(small) != MakeWindowKey([]ObsID{1, 2, 3}) {
		t.Fatal("equal small windows produce different keys")
	}
	if MakeWindowKey(small) == MakeWindowKey([]ObsID{1, 2, 4}) {
		t.Fatal("distinct small windows collide")
	}
	// Same ids, different width: must not collide (trailing zeros).
	if MakeWindowKey([]ObsID{1, 2, 3, 0}) == MakeWindowKey(small) {
		t.Fatal("width-3 and width-4 windows collide")
	}

	big := make([]ObsID, maxArrayWindow+2)
	for i := range big {
		big[i] = ObsID(i * 7)
	}
	big2 := append([]ObsID(nil), big...)
	if MakeWindowKey(big) != MakeWindowKey(big2) {
		t.Fatal("equal wide windows produce different keys")
	}
	big2[len(big2)-1]++
	if MakeWindowKey(big) == MakeWindowKey(big2) {
		t.Fatal("distinct wide windows collide")
	}
}
