package trace

import (
	"bufio"
	"encoding/csv"
	"io"
)

// WriteCSV encodes the trace in the tool's CSV format. The header row
// declares each variable as name:type (type one of int, bool, sym),
// with an optional :input suffix for input-role variables; each
// subsequent row is one observation.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().Len())
	for i := 0; i < t.Schema().Len(); i++ {
		v := t.Schema().Var(i)
		header[i] = v.Name + ":" + v.Type.String()
		if v.Role == Input {
			header[i] += ":input"
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, t.Schema().Len())
	for i := 0; i < t.Len(); i++ {
		obs := t.At(i)
		for j, v := range obs {
			row[j] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace from the CSV format written by WriteCSV. It
// is Collect over the streaming CSVSource; callers that do not need
// the whole trace in memory should use the source directly.
func ReadCSV(r io.Reader) (*Trace, error) {
	src, err := NewCSVSource(r)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}

// WriteEvents encodes an event trace as one event name per line.
func WriteEvents(w io.Writer, t *Trace) error {
	events, err := t.Events()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if _, err := bw.WriteString(ev); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents decodes a one-event-per-line log into an event trace.
// Blank lines and lines starting with '#' are skipped. It is Collect
// over the streaming EventsSource.
func ReadEvents(r io.Reader) (*Trace, error) {
	return Collect(NewEventsSource(r))
}
