package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// WriteCSV encodes the trace in the tool's CSV format. The header row
// declares each variable as name:type (type one of int, bool, sym),
// with an optional :input suffix for input-role variables; each
// subsequent row is one observation.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().Len())
	for i := 0; i < t.Schema().Len(); i++ {
		v := t.Schema().Var(i)
		header[i] = v.Name + ":" + v.Type.String()
		if v.Role == Input {
			header[i] += ":input"
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, t.Schema().Len())
	for i := 0; i < t.Len(); i++ {
		obs := t.At(i)
		for j, v := range obs {
			row[j] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace from the CSV format written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace csv: reading header: %w", err)
	}
	vars := make([]VarDef, len(header))
	for i, h := range header {
		name, tyName, ok := strings.Cut(strings.TrimSpace(h), ":")
		if !ok {
			return nil, fmt.Errorf("trace csv: header field %q is not name:type[:input]", h)
		}
		role := State
		if rest, roleName, hasRole := strings.Cut(tyName, ":"); hasRole {
			tyName = rest
			switch roleName {
			case "input":
				role = Input
			case "state":
				// explicit default
			default:
				return nil, fmt.Errorf("trace csv: unknown role %q in header field %q", roleName, h)
			}
		}
		var ty expr.Type
		switch tyName {
		case "int":
			ty = expr.Int
		case "bool":
			ty = expr.Bool
		case "sym":
			ty = expr.Sym
		default:
			return nil, fmt.Errorf("trace csv: unknown type %q in header field %q", tyName, h)
		}
		vars[i] = VarDef{Name: name, Type: ty, Role: role}
	}
	schema, err := NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("trace csv: %w", err)
	}
	t := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace csv: line %d: %w", line, err)
		}
		if len(rec) != len(vars) {
			return nil, fmt.Errorf("trace csv: line %d has %d fields, want %d", line, len(rec), len(vars))
		}
		obs := make(Observation, len(rec))
		for j, field := range rec {
			field = strings.TrimSpace(field)
			switch vars[j].Type {
			case expr.Int:
				n, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", line, vars[j].Name, err)
				}
				obs[j] = expr.IntVal(n)
			case expr.Bool:
				b, err := strconv.ParseBool(field)
				if err != nil {
					return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", line, vars[j].Name, err)
				}
				obs[j] = expr.BoolVal(b)
			case expr.Sym:
				obs[j] = expr.SymVal(field)
			}
		}
		if err := t.Append(obs); err != nil {
			return nil, fmt.Errorf("trace csv: line %d: %w", line, err)
		}
	}
}

// WriteEvents encodes an event trace as one event name per line.
func WriteEvents(w io.Writer, t *Trace) error {
	events, err := t.Events()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		if _, err := bw.WriteString(ev); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents decodes a one-event-per-line log into an event trace.
// Blank lines and lines starting with '#' are skipped.
func ReadEvents(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var events []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		events = append(events, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace events: %w", err)
	}
	return FromEvents(events), nil
}
