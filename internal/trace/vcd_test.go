package trace

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

const sampleVCD = `$date today $end
$version repro test $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 " valid $end
$scope module fifo $end
$var reg 8 # count [7:0] $end
$upscope $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
0"
b00000000 #
$end
#10
1!
#20
0!
1"
b00000001 #
#30
1!
b00000010 #
#40
0!
0"
bz0000x11 #
`

func TestVCDSignals(t *testing.T) {
	sigs, err := VCDSignals(strings.NewReader(sampleVCD))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 3 {
		t.Fatalf("signals = %d, want 3", len(sigs))
	}
	if sigs[0].Name != "top.clk" || sigs[0].Width != 1 {
		t.Errorf("signal 0 = %+v", sigs[0])
	}
	if sigs[2].Name != "top.fifo.count" || sigs[2].Width != 8 {
		t.Errorf("signal 2 = %+v", sigs[2])
	}
}

func TestReadVCDAllSignals(t *testing.T) {
	tr, err := ReadVCD(strings.NewReader(sampleVCD), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Observations: dumpvars snapshot + four timestamps with changes.
	if tr.Len() != 5 {
		t.Fatalf("observations = %d, want 5", tr.Len())
	}
	if tr.Schema().Len() != 3 {
		t.Fatalf("schema vars = %d, want 3", tr.Schema().Len())
	}
	// 1-bit signals are Bool, the bus is Int.
	if tr.Schema().Var(0).Type != expr.Bool || tr.Schema().Var(2).Type != expr.Int {
		t.Error("schema types wrong")
	}
	// Values hold between changes: at #20, count becomes 1 and valid true.
	v, _ := tr.Value(2, "top.fifo.count")
	if v.I != 1 {
		t.Errorf("count at #20 = %d, want 1", v.I)
	}
	v, _ = tr.Value(2, "top.valid")
	if !v.B {
		t.Errorf("valid at #20 = %v, want true", v)
	}
	// clk held at #20's observation? clk changed to 0 at #20.
	v, _ = tr.Value(2, "top.clk")
	if v.B {
		t.Errorf("clk at #20 = %v, want false", v)
	}
	// x/z bits collapse to 0: z0000x11 → 00000011 = 3.
	v, _ = tr.Value(4, "top.fifo.count")
	if v.I != 3 {
		t.Errorf("count at #40 = %d, want 3", v.I)
	}
}

func TestReadVCDSelectedSignals(t *testing.T) {
	// Select by unambiguous last component and by full name.
	tr, err := ReadVCD(strings.NewReader(sampleVCD), []string{"count", "top.valid"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema().Len() != 2 {
		t.Fatalf("schema vars = %d, want 2", tr.Schema().Len())
	}
	if tr.Schema().Var(0).Name != "top.fifo.count" {
		t.Errorf("var 0 = %q", tr.Schema().Var(0).Name)
	}
	// Observations only at timestamps where a WATCHED signal changed:
	// dumpvars, #20, #30, #40 (clk-only changes at #10 are dropped).
	if tr.Len() != 4 {
		t.Fatalf("observations = %d, want 4", tr.Len())
	}
}

func TestReadVCDErrors(t *testing.T) {
	cases := []struct {
		name    string
		vcd     string
		signals []string
	}{
		{"empty", "", nil},
		{"no signals", "$enddefinitions $end\n#0\n", nil},
		{"unknown signal", sampleVCD, []string{"nope"}},
		{"ambiguous name", `$scope module a $end
$var wire 1 ! x $end
$upscope $end
$scope module b $end
$var wire 1 " x $end
$upscope $end
$enddefinitions $end
#0
1!
`, []string{"x"}},
		{"bad width", "$var wire zero ! x $end\n$enddefinitions $end\n#0\n1!\n", nil},
		{"no changes", sampleVCD[:strings.Index(sampleVCD, "$dumpvars")], nil},
		{"bad bus bit", `$var wire 4 ! n $end
$enddefinitions $end
#0
b10q1 !
`, nil},
	}
	for _, c := range cases {
		if _, err := ReadVCD(strings.NewReader(c.vcd), c.signals); err == nil {
			t.Errorf("%s: ReadVCD succeeded, want error", c.name)
		}
	}
}

func TestSanitizeVCDName(t *testing.T) {
	cases := map[string]string{
		"top.fifo.count": "top.fifo.count",
		"sig[3]":         "sig_3_",
		"9lives":         "_9lives",
		"a-b":            "a_b",
	}
	for in, want := range cases {
		if got := sanitizeVCDName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestVCDToLearning runs a learned model end to end from a synthetic
// waveform of an up/down counter.
func TestVCDToLearning(t *testing.T) {
	var b strings.Builder
	b.WriteString("$scope module dut $end\n$var reg 8 ! cnt $end\n$upscope $end\n$enddefinitions $end\n$dumpvars\nb0 !\n$end\n")
	x, dir := 0, 1
	for i := 0; i < 40; i++ {
		if x >= 5 {
			dir = -1
		} else if x <= 0 {
			dir = 1
		}
		x += dir
		b.WriteString("#" + strings.Repeat("1", 1+i%3) + "\n") // arbitrary times
		b.WriteString("b")
		for k := 7; k >= 0; k-- {
			if x&(1<<k) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteString(" !\n")
	}
	tr, err := ReadVCD(strings.NewReader(b.String()), []string{"cnt"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 41 {
		t.Fatalf("observations = %d, want 41", tr.Len())
	}
	for i := 0; i < tr.Steps(); i++ {
		a, _ := tr.Value(i, "dut.cnt")
		c, _ := tr.Value(i+1, "dut.cnt")
		d := c.I - a.I
		if d != 1 && d != -1 {
			t.Fatalf("step %d: %d -> %d", i, a.I, c.I)
		}
	}
}
