package trace

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFollowReaderTornLine is the injection test for the end-of-stream
// vs decode-error audit: a growing file whose final CSV record is torn
// (the producer has written half a row when the poll catches up) must
// not surface the partial record to the decoder — it is retried on the
// next poll and decoded once completed, never classified as a decode
// error.
func TestFollowReaderTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.csv")
	// Header, two complete rows, then a record torn mid-field: "3,3"
	// is the prefix of "3,30\n".
	if err := os.WriteFile(path, []byte("x:int,y:int\n1,10\n2,20\n3,3"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()

	fr := NewFollowReader(fi, FollowOptions{Poll: 5 * time.Millisecond, IdleExit: 500 * time.Millisecond})
	src, err := NewCSVSource(fr)
	if err != nil {
		t.Fatal(err)
	}

	// Complete the torn record and append one more row while the
	// reader is following.
	go func() {
		time.Sleep(50 * time.Millisecond)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Error(err)
			return
		}
		defer f.Close()
		if _, err := f.WriteString("0\n"); err != nil { // row 3 is now "3,30"
			t.Error(err)
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := f.WriteString("4,40\n"); err != nil {
			t.Error(err)
		}
	}()

	var xs, ys []int64
	for {
		obs, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode error on followed trace: %v", err)
		}
		xs = append(xs, obs[0].I)
		ys = append(ys, obs[1].I)
	}
	wantX, wantY := []int64{1, 2, 3, 4}, []int64{10, 20, 30, 40}
	if len(xs) != len(wantX) {
		t.Fatalf("decoded %d rows (%v / %v), want %d", len(xs), xs, ys, len(wantX))
	}
	for i := range wantX {
		if xs[i] != wantX[i] || ys[i] != wantY[i] {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
}

// TestFollowReaderCancelDropsTornTail: cancelling the context ends the
// stream promptly with io.EOF and never surfaces a held torn tail.
func TestFollowReaderCancelDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.csv")
	if err := os.WriteFile(path, []byte("x:int\n1\n2,torn-mid-reco"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()
	ctx, cancel := context.WithCancel(context.Background())
	fr := NewFollowReader(fi, FollowOptions{Poll: 5 * time.Millisecond, Context: ctx})

	time.AfterFunc(30*time.Millisecond, cancel)
	data, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if got, want := string(data), "x:int\n1\n"; got != want {
		t.Fatalf("surfaced %q, want only the complete lines %q", got, want)
	}
	// A read after the terminal EOF stays terminal.
	if n, err := fr.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF read = %d, %v", n, err)
	}
}

// TestFollowReaderIdleFlushesFinalLine: at idle exit an unterminated
// final line is surfaced (same contract as the decoders' liner), so a
// producer that omits the trailing newline still has its last record
// decoded.
func TestFollowReaderIdleFlushesFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grow.csv")
	if err := os.WriteFile(path, []byte("x:int\n1\n2"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()
	fr := NewFollowReader(fi, FollowOptions{Poll: 2 * time.Millisecond, IdleExit: 30 * time.Millisecond})
	data, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if got, want := string(data), "x:int\n1\n2"; got != want {
		t.Fatalf("surfaced %q, want %q", got, want)
	}
}
