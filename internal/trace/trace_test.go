package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func intSymSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		VarDef{Name: "x", Type: expr.Int},
		VarDef{Name: "ev", Type: expr.Sym},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(VarDef{Name: "x", Type: expr.Int}, VarDef{Name: "x", Type: expr.Sym}); err == nil {
		t.Error("duplicate variable accepted")
	}
	if _, err := NewSchema(VarDef{Name: "", Type: expr.Int}); err == nil {
		t.Error("empty variable name accepted")
	}
	s := intSymSchema(t)
	if got := s.Index("ev"); got != 1 {
		t.Errorf("Index(ev) = %d, want 1", got)
	}
	if got := s.Index("zzz"); got != -1 {
		t.Errorf("Index(zzz) = %d, want -1", got)
	}
	ty := s.Types()
	if ty["x"] != expr.Int || ty["ev"] != expr.Sym {
		t.Errorf("Types() = %v", ty)
	}
	if names := s.Names(); len(names) != 2 || names[0] != "x" || names[1] != "ev" {
		t.Errorf("Names() = %v", names)
	}
}

func TestAppendValidation(t *testing.T) {
	tr := New(intSymSchema(t))
	if err := tr.Append(Observation{expr.IntVal(1)}); err == nil {
		t.Error("short observation accepted")
	}
	if err := tr.Append(Observation{expr.SymVal("a"), expr.SymVal("b")}); err == nil {
		t.Error("mistyped observation accepted")
	}
	if err := tr.Append(Observation{expr.IntVal(1), expr.SymVal("read")}); err != nil {
		t.Errorf("valid observation rejected: %v", err)
	}
	if tr.Len() != 1 || tr.Steps() != 0 {
		t.Errorf("Len=%d Steps=%d, want 1, 0", tr.Len(), tr.Steps())
	}
}

func TestStepEnvAndHoldsAt(t *testing.T) {
	tr := New(intSymSchema(t))
	tr.MustAppend(Observation{expr.IntVal(3), expr.SymVal("read")})
	tr.MustAppend(Observation{expr.IntVal(2), expr.SymVal("write")})
	tr.MustAppend(Observation{expr.IntVal(3), expr.SymVal("read")})

	p := expr.MustParse("ev = 'read' && x' = x - 1", tr.Schema().Types())
	ok, err := tr.HoldsAt(p, 0)
	if err != nil || !ok {
		t.Errorf("HoldsAt step 0 = %v, %v; want true", ok, err)
	}
	ok, err = tr.HoldsAt(p, 1)
	if err != nil || ok {
		t.Errorf("HoldsAt step 1 = %v, %v; want false", ok, err)
	}

	// Non-bool predicate is an error.
	if _, err := tr.HoldsAt(expr.MustParse("x + 1", tr.Schema().Types()), 0); err == nil {
		t.Error("non-bool predicate accepted by HoldsAt")
	}

	// Observation mutation after Append must not alias the trace.
	obs := Observation{expr.IntVal(9), expr.SymVal("reset")}
	tr.MustAppend(obs)
	obs[0] = expr.IntVal(-1)
	if v, _ := tr.Value(3, "x"); v.I != 9 {
		t.Errorf("Append aliased caller storage: got %v", v)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New(intSymSchema(t))
	for i := 0; i < 10; i++ {
		tr.MustAppend(Observation{expr.IntVal(int64(i * i)), expr.SymVal([]string{"read", "write"}[i%2])})
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		for j := 0; j < tr.Schema().Len(); j++ {
			if !back.At(i)[j].Equal(tr.At(i)[j]) {
				t.Errorf("obs %d var %d: %v != %v", i, j, back.At(i)[j], tr.At(i)[j])
			}
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	schema := MustSchema(
		VarDef{Name: "a", Type: expr.Int},
		VarDef{Name: "b", Type: expr.Bool},
		VarDef{Name: "c", Type: expr.Sym},
	)
	syms := []string{"alpha", "beta", "gamma with space", "delta,comma"}
	f := func(ints []int64, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(schema)
		for _, n := range ints {
			tr.MustAppend(Observation{
				expr.IntVal(n),
				expr.BoolVal(r.Intn(2) == 0),
				expr.SymVal(syms[r.Intn(len(syms))]),
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			for j := 0; j < schema.Len(); j++ {
				if !back.At(i)[j].Equal(tr.At(i)[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVErrors(t *testing.T) {
	bad := []string{
		"",                                // no header
		"x\n1\n",                          // header missing type
		"x:float\n1\n",                    // unknown type
		"x:int\nnope\n",                   // bad int
		"x:int,y:int\n1\n",                // short row handled by csv reader/arity check
		"x:bool\nmaybe\n",                 // bad bool
		"x:int,x:int\n1,2\n",              // duplicate variable
		"x:int\n9999999999999999999999\n", // overflow
	}
	for _, src := range bad {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}

func TestEventsRoundTrip(t *testing.T) {
	tr := FromEvents([]string{"a", "b", "c", "a"})
	var buf bytes.Buffer
	if err := WriteEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(strings.NewReader("# comment\n" + buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := back.Events()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "a"}
	if len(evs) != len(want) {
		t.Fatalf("events %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("events %v, want %v", evs, want)
		}
	}
	// Events on a non-event trace fails.
	other := New(MustSchema(VarDef{Name: "x", Type: expr.Int}))
	if _, err := other.Events(); err == nil {
		t.Error("Events on int trace succeeded, want error")
	}
	if err := WriteEvents(&buf, other); err == nil {
		t.Error("WriteEvents on int trace succeeded, want error")
	}
}

func TestParseFtrace(t *testing.T) {
	log := `# tracer: nop
#
pi_stress-2314  [000] d..3  107.111195: sched_switch: prev_comm=pi_stress prev_state=S next_comm=rcu_preempt
pi_stress-2314  [000]  107.111207: sched_waking: comm=pi_stress pid=2314
<idle>-0  [000] d..3  107.111300: sched_switch: prev_comm=swapper next_comm=pi_stress
`
	evs, err := ParseFtrace(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3", len(evs))
	}
	if evs[0].Task != "pi_stress-2314" || evs[0].Name != "sched_switch" || evs[0].CPU != 0 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[0].Timestamp <= 107 || evs[0].Timestamp >= 108 {
		t.Errorf("event 0 timestamp = %v", evs[0].Timestamp)
	}
	if !strings.Contains(evs[0].Detail, "prev_comm=pi_stress") {
		t.Errorf("event 0 detail = %q", evs[0].Detail)
	}
	// Second line has no flags column and must still parse.
	if evs[1].Name != "sched_waking" {
		t.Errorf("event 1 = %+v", evs[1])
	}

	tr := FtraceToTrace(evs, "pi_stress-2314", nil)
	got, _ := tr.Events()
	if len(got) != 2 || got[0] != "sched_switch" || got[1] != "sched_waking" {
		t.Errorf("FtraceToTrace events = %v", got)
	}

	// Rename hook and drop via empty string.
	tr = FtraceToTrace(evs, "", func(ev FtraceEvent) string {
		if ev.Name == "sched_waking" {
			return ""
		}
		return "X_" + ev.Name
	})
	got, _ = tr.Events()
	if len(got) != 2 || got[0] != "X_sched_switch" || got[1] != "X_sched_switch" {
		t.Errorf("renamed events = %v", got)
	}
}

func TestParseFtraceErrors(t *testing.T) {
	bad := []string{
		"task",
		"task-1 (000) 1.0: ev: d",
		"task-1 [xx] 1.0: ev: d",
		"task-1 [000] notatime: ev: d",
		"task-1 [000]",
		"task-1 [000] d..3",
	}
	for _, line := range bad {
		if _, err := ParseFtrace(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseFtrace(%q) succeeded, want error", line)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := FromEvents([]string{"a", "b", "c", "d"})
	sub := tr.Slice(1, 3)
	evs, _ := sub.Events()
	if len(evs) != 2 || evs[0] != "b" || evs[1] != "c" {
		t.Errorf("Slice events = %v", evs)
	}
	if sub.Schema() != tr.Schema() {
		t.Error("Slice changed schema identity")
	}
}
