package trace

import (
	"bufio"
	"bytes"
	"io"
)

// liner yields one borrowed line at a time: the returned slice (without
// its terminating '\n') is valid only until the following call. It is
// the replacement for the bufio.Scanner loops the decoders used to
// run: lines of any length are supported (Scanner failed past its
// token limit), and the slice-backed implementation never copies the
// input at all.
type liner interface {
	// next returns the next line, or io.EOF after the last one. A final
	// line without a terminating newline is still returned.
	next() ([]byte, error)
	// consumed returns the number of input bytes handed out so far,
	// including line terminators — the decoders' BytesRead counter.
	consumed() int64
}

// newLiner picks the zero-copy slice implementation when the reader
// exposes its underlying buffer (a *Bytes: mmap'd file or in-memory
// slice) and the growing bufio implementation otherwise.
func newLiner(r io.Reader) liner {
	if b, ok := r.(*Bytes); ok {
		return &sliceLiner{data: b.Data()}
	}
	return &readLiner{br: bufio.NewReaderSize(r, 64*1024)}
}

// sliceLiner serves lines as subslices of one in-memory buffer.
type sliceLiner struct {
	data []byte
	pos  int
}

func (s *sliceLiner) next() ([]byte, error) {
	if s.pos >= len(s.data) {
		return nil, io.EOF
	}
	rest := s.data[s.pos:]
	if i := bytes.IndexByte(rest, '\n'); i >= 0 {
		s.pos += i + 1
		return rest[:i], nil
	}
	s.pos = len(s.data)
	return rest, nil
}

func (s *sliceLiner) consumed() int64 { return int64(s.pos) }

// rest returns the unconsumed tail of the buffer (the shardable
// sources split it into record-aligned blocks).
func (s *sliceLiner) remaining() []byte { return s.data[s.pos:] }

// skip advances past n already-handed-out bytes of the tail.
func (s *sliceLiner) skip(n int) { s.pos += n }

// readLiner serves lines from any io.Reader. Short lines are borrowed
// straight from the bufio buffer (no copy); lines longer than the
// buffer are accumulated into a growing scratch slice, so there is no
// upper bound on line length.
type readLiner struct {
	br   *bufio.Reader
	long []byte // scratch for lines longer than the bufio buffer
	n    int64
}

func (l *readLiner) next() ([]byte, error) {
	line, err := l.br.ReadSlice('\n')
	if err == nil {
		l.n += int64(len(line))
		return line[:len(line)-1], nil
	}
	if err == io.EOF {
		if len(line) == 0 {
			return nil, io.EOF
		}
		l.n += int64(len(line))
		return line, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// Long line: accumulate chunks into the scratch buffer.
	l.long = append(l.long[:0], line...)
	for {
		line, err = l.br.ReadSlice('\n')
		l.long = append(l.long, line...)
		switch err {
		case nil:
			l.n += int64(len(l.long))
			return l.long[:len(l.long)-1], nil
		case bufio.ErrBufferFull:
			// keep accumulating
		case io.EOF:
			l.n += int64(len(l.long))
			return l.long, nil
		default:
			return nil, err
		}
	}
}

func (l *readLiner) consumed() int64 { return l.n }
