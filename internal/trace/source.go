package trace

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
)

// Source is a pull iterator over the observations of one trace. It is
// the streaming counterpart of Trace: decoders yield observations one
// at a time, so a consumer that only needs a sliding window (the
// predicate windower) holds O(window) observations instead of the
// whole trace.
//
// Next returns io.EOF after the last observation. The returned slice
// is only valid until the following Next call — sources reuse their
// observation buffer — so consumers that retain values must copy them
// (the observation interner copies on first sight, which is the only
// copy the streaming pipeline makes).
type Source interface {
	// Schema declares the observed variables, fixed for the whole
	// stream.
	Schema() *Schema
	// Next returns the next observation, or io.EOF at end of stream.
	Next() (Observation, error)
}

// ByteSource is implemented by sources that read from a byte stream
// and can report ingestion progress; the pipeline surfaces the count
// as a bytes_read stage counter.
type ByteSource interface {
	BytesRead() int64
}

// Collect materialises a source into an in-memory Trace (the bridge
// back to the batch pipeline for small inputs and tests). On a decode
// error it closes the source (when the source supports Close) before
// returning: the stream is mid-record and unusable, and without the
// close an abandoned decode over an os.File would leak the descriptor.
// On success the source is left open — the caller owns its lifecycle.
func Collect(src Source) (*Trace, error) {
	t := New(src.Schema())
	for {
		obs, err := src.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, closeOnError(src, err)
		}
		// Sources reuse their observation buffer, so Append's
		// defensive copy is load-bearing here.
		if err := t.Append(obs); err != nil {
			return nil, closeOnError(src, err)
		}
	}
}

// closeOnError releases the source's underlying reader after a failed
// decode and carries any close failure alongside the original error.
func closeOnError(src Source, err error) error {
	if c, ok := src.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
	}
	return err
}

// sourceCloser gives a streaming decoder an idempotent Close that
// forwards to the reader it was constructed over, when that reader is
// itself an io.Closer (an os.File; not a bytes.Reader). Embedded by
// every decoder source so callers — and Collect's error path — can
// release the input without tracking the reader separately.
type sourceCloser struct {
	c      io.Closer
	closed bool
}

// newSourceCloser captures r's Close method if it has one.
func newSourceCloser(r io.Reader) sourceCloser {
	c, _ := r.(io.Closer)
	return sourceCloser{c: c}
}

// Close releases the underlying reader. It is idempotent: only the
// first call reaches the reader.
func (s *sourceCloser) Close() error {
	if s.closed || s.c == nil {
		s.closed = true
		return nil
	}
	s.closed = true
	return s.c.Close()
}

// TraceSource adapts an in-memory Trace to the Source interface (for
// tests and for feeding already-materialised traces through the
// streaming pipeline).
type TraceSource struct {
	tr *Trace
	i  int
}

// NewTraceSource returns a source yielding tr's observations in order.
func NewTraceSource(tr *Trace) *TraceSource { return &TraceSource{tr: tr} }

// Schema implements Source.
func (s *TraceSource) Schema() *Schema { return s.tr.Schema() }

// Next implements Source.
func (s *TraceSource) Next() (Observation, error) {
	if s.i >= s.tr.Len() {
		return nil, io.EOF
	}
	obs := s.tr.At(s.i)
	s.i++
	return obs, nil
}

// countingReader counts bytes as they are consumed; every streaming
// decoder wraps its input in one so ingestion progress is observable.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) BytesRead() int64 { return c.n.Load() }

// --- CSV -----------------------------------------------------------

// CSVSource streams the tool's CSV trace format (see WriteCSV): a
// name:type[:role] header row, one observation per subsequent row.
type CSVSource struct {
	sourceCloser
	cr     *csv.Reader
	bytes  *countingReader
	schema *Schema
	vars   []VarDef
	obs    Observation // reused between Next calls
	line   int
}

// NewCSVSource reads the header and returns a source over the rows.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	bytes := &countingReader{r: r}
	cr := csv.NewReader(bytes)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace csv: reading header: %w", err)
	}
	vars := make([]VarDef, len(header))
	for i, h := range header {
		name, tyName, ok := strings.Cut(strings.TrimSpace(h), ":")
		if !ok {
			return nil, fmt.Errorf("trace csv: header field %q is not name:type[:input]", h)
		}
		role := State
		if rest, roleName, hasRole := strings.Cut(tyName, ":"); hasRole {
			tyName = rest
			switch roleName {
			case "input":
				role = Input
			case "state":
				// explicit default
			default:
				return nil, fmt.Errorf("trace csv: unknown role %q in header field %q", roleName, h)
			}
		}
		var ty expr.Type
		switch tyName {
		case "int":
			ty = expr.Int
		case "bool":
			ty = expr.Bool
		case "sym":
			ty = expr.Sym
		default:
			return nil, fmt.Errorf("trace csv: unknown type %q in header field %q", tyName, h)
		}
		vars[i] = VarDef{Name: name, Type: ty, Role: role}
	}
	schema, err := NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("trace csv: %w", err)
	}
	return &CSVSource{
		sourceCloser: newSourceCloser(r),
		cr:           cr,
		bytes:        bytes,
		schema:       schema,
		vars:         vars,
		obs:          make(Observation, len(vars)),
		line:         1,
	}, nil
}

// Schema implements Source.
func (s *CSVSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *CSVSource) BytesRead() int64 { return s.bytes.BytesRead() }

// Next implements Source. The returned observation is reused by the
// following call.
func (s *CSVSource) Next() (Observation, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	s.line++
	if err != nil {
		return nil, fmt.Errorf("trace csv: line %d: %w", s.line, err)
	}
	if len(rec) != len(s.vars) {
		return nil, fmt.Errorf("trace csv: line %d has %d fields, want %d", s.line, len(rec), len(s.vars))
	}
	for j, field := range rec {
		field = strings.TrimSpace(field)
		switch s.vars[j].Type {
		case expr.Int:
			n, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", s.line, s.vars[j].Name, err)
			}
			s.obs[j] = expr.IntVal(n)
		case expr.Bool:
			b, err := strconv.ParseBool(field)
			if err != nil {
				return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", s.line, s.vars[j].Name, err)
			}
			s.obs[j] = expr.BoolVal(b)
		case expr.Sym:
			// ReuseRecord recycles the []string slice only; the field
			// strings are fresh per record, so retaining them is safe.
			s.obs[j] = expr.SymVal(field)
		}
	}
	return s.obs, nil
}

// --- Events --------------------------------------------------------

// EventsSource streams a one-event-per-line log (schema: event:sym).
// Blank lines and lines starting with '#' are skipped.
type EventsSource struct {
	sourceCloser
	sc     *bufio.Scanner
	bytes  *countingReader
	schema *Schema
	obs    Observation
}

// NewEventsSource returns a source over the event log.
func NewEventsSource(r io.Reader) *EventsSource {
	bytes := &countingReader{r: r}
	sc := bufio.NewScanner(bytes)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &EventsSource{
		sourceCloser: newSourceCloser(r),
		sc:           sc,
		bytes:        bytes,
		schema:       EventSchema(),
		obs:          make(Observation, 1),
	}
}

// Schema implements Source.
func (s *EventsSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *EventsSource) BytesRead() int64 { return s.bytes.BytesRead() }

// Next implements Source.
func (s *EventsSource) Next() (Observation, error) {
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s.obs[0] = expr.SymVal(line)
		return s.obs, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("trace events: %w", err)
	}
	return nil, io.EOF
}

// --- ftrace --------------------------------------------------------

// FtraceSource streams an ftrace-style log as an event trace for one
// task under analysis, without materialising the parsed event records:
// the projection of ParseFtrace + FtraceToTrace, line by line.
type FtraceSource struct {
	sourceCloser
	sc     *bufio.Scanner
	bytes  *countingReader
	schema *Schema
	task   string
	rename func(FtraceEvent) string
	obs    Observation
	lineNo int
}

// NewFtraceSource returns a source over the log. Events whose Task
// does not match task are dropped unless task is empty; rename
// optionally rewrites raw event names (empty result drops the event).
func NewFtraceSource(r io.Reader, task string, rename func(FtraceEvent) string) *FtraceSource {
	bytes := &countingReader{r: r}
	sc := bufio.NewScanner(bytes)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &FtraceSource{
		sourceCloser: newSourceCloser(r),
		sc:           sc,
		bytes:        bytes,
		schema:       EventSchema(),
		task:         task,
		rename:       rename,
		obs:          make(Observation, 1),
	}
}

// Schema implements Source.
func (s *FtraceSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *FtraceSource) BytesRead() int64 { return s.bytes.BytesRead() }

// Next implements Source.
func (s *FtraceSource) Next() (Observation, error) {
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseFtraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("ftrace: line %d: %w", s.lineNo, err)
		}
		if s.task != "" && ev.Task != s.task {
			continue
		}
		name := ev.Name
		if s.rename != nil {
			name = s.rename(ev)
		}
		if name == "" {
			continue
		}
		s.obs[0] = expr.SymVal(name)
		return s.obs, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("ftrace: %w", err)
	}
	return nil, io.EOF
}
