package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
)

// Source is a pull iterator over the observations of one trace. It is
// the streaming counterpart of Trace: decoders yield observations one
// at a time, so a consumer that only needs a sliding window (the
// predicate windower) holds O(window) observations instead of the
// whole trace.
//
// Next returns io.EOF after the last observation. The returned slice
// is only valid until the following Next call — sources reuse their
// observation buffer — so consumers that retain values must copy them
// (the observation interner copies on first sight, which is the only
// copy the streaming pipeline makes).
type Source interface {
	// Schema declares the observed variables, fixed for the whole
	// stream.
	Schema() *Schema
	// Next returns the next observation, or io.EOF at end of stream.
	Next() (Observation, error)
}

// ByteSource is implemented by sources that read from a byte stream
// and can report ingestion progress; the pipeline surfaces the count
// as a bytes_read stage counter.
type ByteSource interface {
	BytesRead() int64
}

// IDSource is a Source that can intern its own records: NextID returns
// the interned id of the next observation directly, or io.EOF. Sources
// implement it by keying a small cache on the raw record bytes, so a
// repeated record skips decoding and interning entirely — the dominant
// cost on long, repetition-heavy traces. The contract is exact
// equivalence with Next + in.Intern(obs): the same ids are assigned in
// the same first-sight order, so consumers may mix the two freely.
type IDSource interface {
	Source
	NextID(in *Interner) (ObsID, error)
}

// BlockSource is a Source whose remaining input can be handed out as
// contiguous, record-aligned byte blocks for parallel shard decoding
// (the streaming windower's sharded ingest path). Blocks are borrowed
// from the underlying buffer and decoded by per-worker BlockDecoders;
// concatenating the blocks in hand-out order reproduces the remaining
// input exactly, which is what makes the sharded merge deterministic.
type BlockSource interface {
	Source
	// Blocks returns a block iterator (each call yields the next block,
	// io.EOF at the end) and true, or nil and false when the source
	// cannot shard — it is not slice-backed, or the format needs
	// cross-record state. After a successful call the source's
	// Next/NextID must no longer be used.
	Blocks(target int) (func() ([]byte, error), bool)
	// NewBlockDecoder returns an independent decoder for one shard
	// worker; each worker must own exactly one.
	NewBlockDecoder() BlockDecoder
}

// BlockDecoder parses one block at a time, emitting its observations
// in record order. The emitted slice is reused between calls, exactly
// like Source.Next.
type BlockDecoder interface {
	Decode(block []byte, emit func(Observation) error) error
}

// Collect materialises a source into an in-memory Trace (the bridge
// back to the batch pipeline for small inputs and tests). On a decode
// error it closes the source (when the source supports Close) before
// returning: the stream is mid-record and unusable, and without the
// close an abandoned decode over an os.File would leak the descriptor.
// On success the source is left open — the caller owns its lifecycle.
func Collect(src Source) (*Trace, error) {
	t := New(src.Schema())
	for {
		obs, err := src.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, closeOnError(src, err)
		}
		// Sources reuse their observation buffer, so Append's
		// defensive copy is load-bearing here.
		if err := t.Append(obs); err != nil {
			return nil, closeOnError(src, err)
		}
	}
}

// closeOnError releases the source's underlying reader after a failed
// decode and carries any close failure alongside the original error.
func closeOnError(src Source, err error) error {
	if c, ok := src.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
	}
	return err
}

// sourceCloser gives a streaming decoder an idempotent Close that
// forwards to the reader it was constructed over, when that reader is
// itself an io.Closer (an os.File or a *Bytes mapping; not a
// bytes.Reader). Embedded by every decoder source so callers — and
// Collect's error path — can release the input without tracking the
// reader separately.
type sourceCloser struct {
	c      io.Closer
	closed bool
}

// newSourceCloser captures r's Close method if it has one.
func newSourceCloser(r io.Reader) sourceCloser {
	c, _ := r.(io.Closer)
	return sourceCloser{c: c}
}

// Close releases the underlying reader. It is idempotent: only the
// first call reaches the reader.
func (s *sourceCloser) Close() error {
	if s.closed || s.c == nil {
		s.closed = true
		return nil
	}
	s.closed = true
	return s.c.Close()
}

// TraceSource adapts an in-memory Trace to the Source interface (for
// tests and for feeding already-materialised traces through the
// streaming pipeline).
type TraceSource struct {
	tr *Trace
	i  int
}

// NewTraceSource returns a source yielding tr's observations in order.
func NewTraceSource(tr *Trace) *TraceSource { return &TraceSource{tr: tr} }

// Schema implements Source.
func (s *TraceSource) Schema() *Schema { return s.tr.Schema() }

// Next implements Source.
func (s *TraceSource) Next() (Observation, error) {
	if s.i >= s.tr.Len() {
		return nil, io.EOF
	}
	obs := s.tr.At(s.i)
	s.i++
	return obs, nil
}

// countingReader counts bytes as they are consumed; byte-stream
// decoders that cannot use the line reader (the VCD tokenizer) wrap
// their input in one so ingestion progress stays observable.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) BytesRead() int64 { return c.n.Load() }

// idCacheMax bounds the raw-record id caches: past this many distinct
// records a source stops adding entries (lookups still hit). The bound
// only matters for adversarial inputs where distinct record texts
// vastly outnumber distinct observations.
const idCacheMax = 1 << 20

// --- fast field parsing -------------------------------------------

// parseIntBytes parses a base-10 signed integer, accepting exactly the
// inputs strconv.ParseInt(s, 10, 64) accepts. The boolean is false on
// any malformed or overflowing input; callers fall back to strconv for
// the error value.
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	const cutoff = math.MaxUint64/10 + 1
	var un uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if un >= cutoff {
			return 0, false
		}
		un = un*10 + uint64(c-'0')
	}
	max := uint64(math.MaxInt64)
	if neg {
		max++
	}
	if un > max {
		return 0, false
	}
	if neg {
		return -int64(un), true
	}
	return int64(un), true
}

// parseBoolBytes accepts exactly strconv.ParseBool's vocabulary.
func parseBoolBytes(b []byte) (bool, bool) {
	switch len(b) {
	case 1:
		switch b[0] {
		case '1', 't', 'T':
			return true, true
		case '0', 'f', 'F':
			return false, true
		}
	case 4:
		if string(b) == "true" || string(b) == "TRUE" || string(b) == "True" {
			return true, true
		}
	case 5:
		if string(b) == "false" || string(b) == "FALSE" || string(b) == "False" {
			return false, true
		}
	}
	return false, false
}

// --- CSV -----------------------------------------------------------

// csvRow decodes one CSV record at a time: field splitting on borrowed
// byte slices, integer/boolean parsing without intermediate strings,
// and a symbol cache so repeated symbolic values share one string.
// One csvRow backs the CSVSource; independent copies back the shard
// decoders of the parallel ingest path.
type csvRow struct {
	vars     []VarDef
	obs      Observation // reused between records
	fields   [][]byte    // reused field-split scratch
	quoted   []byte      // scratch for unescaping quoted fields
	symCache map[string]string
}

func newCSVRow(vars []VarDef) *csvRow {
	return &csvRow{
		vars:     vars,
		obs:      make(Observation, len(vars)),
		fields:   make([][]byte, 0, len(vars)),
		symCache: map[string]string{},
	}
}

// splitRecord splits a record (one physical line with no quotes, or a
// joined multi-line quoted record) into r.fields. Quote handling
// follows encoding/csv: a field starting with '"' runs to the closing
// quote with "" as the escape; a bare quote inside an unquoted field
// is an error.
func (r *csvRow) splitRecord(rec []byte, hasQuote bool) error {
	r.fields = r.fields[:0]
	if !hasQuote {
		for {
			i := indexByte(rec, ',')
			if i < 0 {
				r.fields = append(r.fields, rec)
				return nil
			}
			r.fields = append(r.fields, rec[:i])
			rec = rec[i+1:]
		}
	}
	r.quoted = r.quoted[:0]
	for {
		field, rest, err := r.splitQuoted(rec)
		if err != nil {
			return err
		}
		r.fields = append(r.fields, field)
		if rest == nil {
			return nil
		}
		rec = rest
	}
}

// splitQuoted consumes one field of a record known to contain quotes.
// rest is nil after the final field.
func (r *csvRow) splitQuoted(rec []byte) (field, rest []byte, err error) {
	if len(rec) == 0 || rec[0] != '"' {
		// Unquoted field: runs to the next comma; a quote inside it is
		// malformed (encoding/csv's ErrBareQuote).
		i := indexByte(rec, ',')
		f := rec
		if i >= 0 {
			f = rec[:i]
			rest = rec[i+1:]
		}
		if indexByte(f, '"') >= 0 {
			return nil, nil, errors.New(`bare " in non-quoted field`)
		}
		return f, rest, nil
	}
	// Quoted field: unescape into the shared scratch buffer.
	start := len(r.quoted)
	body := rec[1:]
	for {
		i := indexByte(body, '"')
		if i < 0 {
			return nil, nil, errors.New(`missing closing " in quoted field`)
		}
		r.quoted = append(r.quoted, body[:i]...)
		body = body[i+1:]
		if len(body) > 0 && body[0] == '"' {
			r.quoted = append(r.quoted, '"')
			body = body[1:]
			continue
		}
		// Closing quote: next must be a comma or end of record.
		switch {
		case len(body) == 0:
			return r.quoted[start:], nil, nil
		case body[0] == ',':
			return r.quoted[start:], body[1:], nil
		default:
			return nil, nil, errors.New(`extraneous " in quoted field`)
		}
	}
}

// decode parses the split fields into the reused observation.
func (r *csvRow) decode(line int) (Observation, error) {
	if len(r.fields) != len(r.vars) {
		return nil, fmt.Errorf("trace csv: line %d has %d fields, want %d", line, len(r.fields), len(r.vars))
	}
	for j, field := range r.fields {
		field = trimSpace(field)
		switch r.vars[j].Type {
		case expr.Int:
			n, ok := parseIntBytes(field)
			if !ok {
				_, err := strconv.ParseInt(string(field), 10, 64)
				return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", line, r.vars[j].Name, err)
			}
			r.obs[j] = expr.IntVal(n)
		case expr.Bool:
			b, ok := parseBoolBytes(field)
			if !ok {
				_, err := strconv.ParseBool(string(field))
				return nil, fmt.Errorf("trace csv: line %d, variable %q: %w", line, r.vars[j].Name, err)
			}
			r.obs[j] = expr.BoolVal(b)
		case expr.Sym:
			s, ok := r.symCache[string(field)]
			if !ok {
				s = string(field)
				r.symCache[s] = s
			}
			r.obs[j] = expr.SymVal(s)
		}
	}
	return r.obs, nil
}

// trimSpace strips leading and trailing whitespace with the same
// vocabulary strings.TrimSpace used in the old decoder (full Unicode,
// with bytes.TrimSpace's ASCII fast path).
func trimSpace(b []byte) []byte { return bytes.TrimSpace(b) }

func indexByte(b []byte, c byte) int { return bytes.IndexByte(b, c) }

// CSVSource streams the tool's CSV trace format (see WriteCSV): a
// name:type[:role] header row, one observation per subsequent row.
// Decoding scans borrowed byte slices — zero-copy over a *Bytes input
// (mmap'd file or in-memory buffer), buffer-borrowed lines otherwise —
// with no limit on line length.
type CSVSource struct {
	sourceCloser
	ln     liner
	schema *Schema
	row    *csvRow
	line   int // physical line number, for error positions

	// raw-record id cache (IDSource): raw bytes of a seen record → the
	// id its observation interned to.
	idCache  map[string]ObsID
	idIntern *Interner

	rawScratch []byte // joined multi-line quoted records
}

// NewCSVSource reads the header and returns a source over the rows.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	s := &CSVSource{
		sourceCloser: newSourceCloser(r),
		ln:           newLiner(r),
	}
	hdr := newCSVRow(nil)
	raw, hasQuote, err := s.nextRaw()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("trace csv: reading header: %w", err)
	}
	if err := hdr.splitRecord(raw, hasQuote); err != nil {
		return nil, fmt.Errorf("trace csv: reading header: %w", err)
	}
	vars := make([]VarDef, len(hdr.fields))
	for i, h := range hdr.fields {
		name, tyName, ok := strings.Cut(string(trimSpace(h)), ":")
		if !ok {
			return nil, fmt.Errorf("trace csv: header field %q is not name:type[:input]", h)
		}
		role := State
		if rest, roleName, hasRole := strings.Cut(tyName, ":"); hasRole {
			tyName = rest
			switch roleName {
			case "input":
				role = Input
			case "state":
				// explicit default
			default:
				return nil, fmt.Errorf("trace csv: unknown role %q in header field %q", roleName, h)
			}
		}
		var ty expr.Type
		switch tyName {
		case "int":
			ty = expr.Int
		case "bool":
			ty = expr.Bool
		case "sym":
			ty = expr.Sym
		default:
			return nil, fmt.Errorf("trace csv: unknown type %q in header field %q", tyName, h)
		}
		vars[i] = VarDef{Name: name, Type: ty, Role: role}
	}
	schema, err := NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("trace csv: %w", err)
	}
	s.schema = schema
	s.row = newCSVRow(vars)
	return s, nil
}

// Schema implements Source.
func (s *CSVSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *CSVSource) BytesRead() int64 { return s.ln.consumed() }

// nextRaw returns the next logical record's bytes: the next non-empty
// line (with a trailing '\r' stripped), joined with its continuation
// lines when an open quoted field spans lines. The returned slice is
// borrowed and valid until the next call. hasQuote reports whether the
// record contains a '"' (selecting the slow split path).
func (s *CSVSource) nextRaw() ([]byte, bool, error) {
	for {
		line, err := s.ln.next()
		if err != nil {
			return nil, false, err
		}
		s.line++
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue // encoding/csv skips blank lines
		}
		q := indexByte(line, '"')
		if q < 0 {
			return line, false, nil
		}
		if !openQuote(line) {
			return line, true, nil
		}
		// A quoted field continues past this line: join lines until the
		// quote closes (or input ends, which the splitter reports).
		s.rawScratch = append(s.rawScratch[:0], line...)
		for openQuote(s.rawScratch) {
			cont, err := s.ln.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, false, err
			}
			s.line++
			if n := len(cont); n > 0 && cont[n-1] == '\r' {
				cont = cont[:n-1]
			}
			s.rawScratch = append(s.rawScratch, '\n')
			s.rawScratch = append(s.rawScratch, cont...)
		}
		return s.rawScratch, true, nil
	}
}

// openQuote reports whether the record ends inside an open quoted
// field.
func openQuote(rec []byte) bool {
	inQuote := false
	for i := 0; i < len(rec); i++ {
		c := rec[i]
		if !inQuote {
			if c == '"' {
				// Only a quote at field start opens a quoted field;
				// a stray quote mid-field is an error the splitter
				// reports, not a continuation.
				if i == 0 || rec[i-1] == ',' {
					inQuote = true
				}
			}
			continue
		}
		if c == '"' {
			if i+1 < len(rec) && rec[i+1] == '"' {
				i++ // escaped quote
				continue
			}
			inQuote = false
		}
	}
	return inQuote
}

// Next implements Source. The returned observation is reused by the
// following call.
func (s *CSVSource) Next() (Observation, error) {
	raw, hasQuote, err := s.nextRaw()
	if err != nil {
		return nil, err
	}
	return s.decodeRaw(raw, hasQuote)
}

func (s *CSVSource) decodeRaw(raw []byte, hasQuote bool) (Observation, error) {
	if err := s.row.splitRecord(raw, hasQuote); err != nil {
		return nil, fmt.Errorf("trace csv: line %d: %w", s.line, err)
	}
	return s.row.decode(s.line)
}

// NextID implements IDSource: repeated raw records skip decoding and
// interning via a byte-keyed cache, preserving exact id-assignment
// order (the cache is consulted before Intern, and filled from it).
func (s *CSVSource) NextID(in *Interner) (ObsID, error) {
	if s.idIntern != in {
		s.idIntern = in
		s.idCache = make(map[string]ObsID)
	}
	raw, hasQuote, err := s.nextRaw()
	if err != nil {
		return 0, err
	}
	if id, ok := s.idCache[string(raw)]; ok {
		return id, nil
	}
	obs, err := s.decodeRaw(raw, hasQuote)
	if err != nil {
		return 0, err
	}
	id := in.Intern(obs)
	if len(s.idCache) < idCacheMax {
		s.idCache[string(raw)] = id
	}
	return id, nil
}

// Blocks implements BlockSource: over a slice-backed input with no
// quoted fields, the remaining rows are handed out as line-aligned
// blocks of roughly target bytes.
func (s *CSVSource) Blocks(target int) (func() ([]byte, error), bool) {
	sl, ok := s.ln.(*sliceLiner)
	if !ok {
		return nil, false
	}
	rest := sl.remaining()
	for _, c := range rest {
		if c == '"' {
			// Quoted fields may span lines; block alignment on '\n'
			// would tear records. The quote scan is one pass over the
			// input, far cheaper than the decode it guards.
			return nil, false
		}
	}
	if target < 64*1024 {
		target = 64 * 1024
	}
	return func() ([]byte, error) {
		rest := sl.remaining()
		if len(rest) == 0 {
			return nil, io.EOF
		}
		n := target
		if n >= len(rest) {
			n = len(rest)
		} else {
			// Extend to the end of the current line.
			for n < len(rest) && rest[n-1] != '\n' {
				n++
			}
		}
		sl.skip(n)
		return rest[:n], nil
	}, true
}

// NewBlockDecoder implements BlockSource.
func (s *CSVSource) NewBlockDecoder() BlockDecoder {
	return &csvBlockDecoder{row: newCSVRow(s.row.vars)}
}

type csvBlockDecoder struct {
	row *csvRow
}

// Decode implements BlockDecoder. Blocks are quote-free by
// construction (Blocks refuses inputs containing quotes).
func (d *csvBlockDecoder) Decode(block []byte, emit func(Observation) error) error {
	ln := sliceLiner{data: block}
	for {
		line, err := ln.next()
		if err == io.EOF {
			return nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		if err := d.row.splitRecord(line, false); err != nil {
			return fmt.Errorf("trace csv: %w", err)
		}
		obs, err := d.row.decode(0)
		if err != nil {
			return err
		}
		if err := emit(obs); err != nil {
			return err
		}
	}
}

// --- Events --------------------------------------------------------

// EventsSource streams a one-event-per-line log (schema: event:sym).
// Blank lines and lines starting with '#' are skipped. Lines of any
// length are accepted (the old Scanner path failed past 1MiB).
type EventsSource struct {
	sourceCloser
	ln     liner
	schema *Schema
	obs    Observation

	symCache map[string]string
	idCache  map[string]ObsID
	idIntern *Interner
}

// NewEventsSource returns a source over the event log.
func NewEventsSource(r io.Reader) *EventsSource {
	return &EventsSource{
		sourceCloser: newSourceCloser(r),
		ln:           newLiner(r),
		schema:       EventSchema(),
		obs:          make(Observation, 1),
		symCache:     map[string]string{},
	}
}

// Schema implements Source.
func (s *EventsSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *EventsSource) BytesRead() int64 { return s.ln.consumed() }

// nextEvent returns the next non-blank, non-comment line, trimmed.
func (s *EventsSource) nextEvent() ([]byte, error) {
	for {
		line, err := s.ln.next()
		if err != nil {
			if err != io.EOF {
				return nil, fmt.Errorf("trace events: %w", err)
			}
			return nil, io.EOF
		}
		line = trimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		return line, nil
	}
}

// Next implements Source.
func (s *EventsSource) Next() (Observation, error) {
	line, err := s.nextEvent()
	if err != nil {
		return nil, err
	}
	name, ok := s.symCache[string(line)]
	if !ok {
		name = string(line)
		s.symCache[name] = name
	}
	s.obs[0] = expr.SymVal(name)
	return s.obs, nil
}

// NextID implements IDSource (event alphabets are small, so the cache
// answers almost every line).
func (s *EventsSource) NextID(in *Interner) (ObsID, error) {
	if s.idIntern != in {
		s.idIntern = in
		s.idCache = make(map[string]ObsID)
	}
	line, err := s.nextEvent()
	if err != nil {
		return 0, err
	}
	if id, ok := s.idCache[string(line)]; ok {
		return id, nil
	}
	name, ok := s.symCache[string(line)]
	if !ok {
		name = string(line)
		s.symCache[name] = name
	}
	s.obs[0] = expr.SymVal(name)
	id := in.Intern(s.obs)
	if len(s.idCache) < idCacheMax {
		s.idCache[name] = id
	}
	return id, nil
}

// --- ftrace --------------------------------------------------------

// FtraceSource streams an ftrace-style log as an event trace for one
// task under analysis, without materialising the parsed event records:
// the projection of ParseFtrace + FtraceToTrace, line by line.
type FtraceSource struct {
	sourceCloser
	ln     liner
	schema *Schema
	task   string
	rename func(FtraceEvent) string
	obs    Observation
	lineNo int
}

// NewFtraceSource returns a source over the log. Events whose Task
// does not match task are dropped unless task is empty; rename
// optionally rewrites raw event names (empty result drops the event).
func NewFtraceSource(r io.Reader, task string, rename func(FtraceEvent) string) *FtraceSource {
	return &FtraceSource{
		sourceCloser: newSourceCloser(r),
		ln:           newLiner(r),
		schema:       EventSchema(),
		task:         task,
		rename:       rename,
		obs:          make(Observation, 1),
	}
}

// Schema implements Source.
func (s *FtraceSource) Schema() *Schema { return s.schema }

// BytesRead implements ByteSource.
func (s *FtraceSource) BytesRead() int64 { return s.ln.consumed() }

// Next implements Source.
func (s *FtraceSource) Next() (Observation, error) {
	for {
		raw, err := s.ln.next()
		if err != nil {
			if err != io.EOF {
				return nil, fmt.Errorf("ftrace: %w", err)
			}
			return nil, io.EOF
		}
		s.lineNo++
		raw = trimSpace(raw)
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		ev, err := parseFtraceLine(string(raw))
		if err != nil {
			return nil, fmt.Errorf("ftrace: line %d: %w", s.lineNo, err)
		}
		if s.task != "" && ev.Task != s.task {
			continue
		}
		name := ev.Name
		if s.rename != nil {
			name = s.rename(ev)
		}
		if name == "" {
			continue
		}
		s.obs[0] = expr.SymVal(name)
		return s.obs, nil
	}
}
