package trace

import (
	"bytes"
	"context"
	"io"
	"time"
)

// FollowReader turns a growing file into an endless io.Reader for the
// live-monitoring path: on EOF it polls for appended data instead of
// finishing, and it only ever surfaces whole lines. Bytes past the
// last '\n' are held back until their terminator arrives, so a torn
// final line — a record the producer is still writing when the poll
// catches up with it — is retried on the next poll rather than handed
// to a decoder that would misparse it as a short record (a fatal
// decode error, or worse, a phantom divergence).
//
// The stream ends (io.EOF) only when the context is cancelled or no
// new data has arrived for the idle-exit window. At idle exit a held
// unterminated tail is surfaced as a final line (the same contract as
// the decoders' liner: a final line without '\n' still counts); on
// cancellation it is dropped, since the read is being aborted.
type FollowReader struct {
	r     io.Reader
	poll  time.Duration
	idle  time.Duration
	ctx   context.Context
	buf   []byte // complete-line bytes ready to surface
	pos   int    // read position in buf
	held  []byte // bytes past the last '\n', not yet surfaced
	chunk []byte
	err   error
	last  time.Time // when data last arrived

	now   func() time.Time    // test hooks
	sleep func(time.Duration) // (default time.Now / interruptible sleep)
}

// FollowOptions tunes a FollowReader. The zero value polls every 200ms
// and follows forever (until the context, when set, is cancelled).
type FollowOptions struct {
	// Poll is the delay between size checks once the reader has
	// caught up with the file. Default 200ms.
	Poll time.Duration
	// IdleExit ends the stream after this long without new data;
	// zero follows forever.
	IdleExit time.Duration
	// Context, when non-nil, ends the stream when cancelled.
	Context context.Context
}

// NewFollowReader wraps r (typically an *os.File open on a growing
// trace) for live following.
func NewFollowReader(r io.Reader, opts FollowOptions) *FollowReader {
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Millisecond
	}
	f := &FollowReader{
		r:     r,
		poll:  opts.Poll,
		idle:  opts.IdleExit,
		ctx:   opts.Context,
		chunk: make([]byte, 64*1024),
		now:   time.Now,
	}
	f.sleep = f.ctxSleep
	return f
}

// ctxSleep pauses for one poll interval, waking early on cancellation.
func (f *FollowReader) ctxSleep(d time.Duration) {
	if f.ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.ctx.Done():
	}
}

func (f *FollowReader) cancelled() bool {
	if f.ctx == nil {
		return false
	}
	select {
	case <-f.ctx.Done():
		return true
	default:
		return false
	}
}

// Read surfaces buffered complete lines, refilling from the underlying
// reader — and polling across its EOF — as needed.
func (f *FollowReader) Read(p []byte) (int, error) {
	for {
		if f.pos < len(f.buf) {
			n := copy(p, f.buf[f.pos:])
			f.pos += n
			return n, nil
		}
		if f.err != nil {
			return 0, f.err
		}
		if f.last.IsZero() {
			f.last = f.now()
		}
		n, err := f.r.Read(f.chunk)
		if n > 0 {
			f.last = f.now()
			f.held = append(f.held, f.chunk[:n]...)
			if i := bytes.LastIndexByte(f.held, '\n'); i >= 0 {
				f.buf = append(f.buf[:0], f.held[:i+1]...)
				f.pos = 0
				f.held = f.held[:copy(f.held, f.held[i+1:])]
			}
			continue
		}
		switch {
		case err == nil:
			// A zero-byte read without error; treat like a caught-up
			// poll so a misbehaving reader cannot spin us.
			f.sleep(f.poll)
		case err == io.EOF:
			if f.cancelled() {
				f.err = io.EOF // aborting: drop any torn tail
				return 0, f.err
			}
			if f.idle > 0 && f.now().Sub(f.last) >= f.idle {
				// Idle exit: the producer is done. Surface a held
				// unterminated tail as the final line, then end.
				f.err = io.EOF
				if len(f.held) > 0 {
					f.buf = append(f.buf[:0], f.held...)
					f.pos = 0
					f.held = f.held[:0]
					continue
				}
				return 0, f.err
			}
			f.sleep(f.poll)
			if f.cancelled() {
				f.err = io.EOF
				return 0, f.err
			}
		default:
			f.err = err
			return 0, f.err
		}
	}
}
