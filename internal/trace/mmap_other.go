//go:build !unix

package trace

import (
	"errors"
	"os"
)

// mapFile always fails on platforms without mmap support; OpenBytes
// falls back to reading the file into memory.
func mapFile(*os.File) (*Bytes, error) {
	return nil, errors.New("trace: mmap not supported on this platform")
}
