// Package trace defines the execution-trace model of the learner: a
// trace is a finite sequence of observations, each observation a
// valuation of a fixed, user-chosen vector of variables (Section II of
// the paper). The package also provides the step environments that let
// transition predicates over X ∪ X′ be evaluated directly against
// consecutive observation pairs, plus encoders/decoders for the two
// on-disk formats used by the command-line tools (CSV for numeric
// traces, one-event-per-line logs for event traces) and a parser for
// ftrace-style scheduler logs.
package trace

import (
	"fmt"

	"repro/internal/expr"
)

// Role distinguishes state variables, whose next value the system
// computes (and predicate synthesis models as var' = next(X)), from
// input variables, which the environment drives: an input's next value
// is not a function of the observation, so learned predicates may
// guard on it but never constrain its primed copy. The paper's
// integrator benchmark observes the input ip and the state op.
type Role uint8

// Variable roles; the zero value is State.
const (
	State Role = iota
	Input
)

// String names the role.
func (r Role) String() string {
	if r == Input {
		return "input"
	}
	return "state"
}

// VarDef declares one observed variable: its name, value type, and
// role.
type VarDef struct {
	Name string
	Type expr.Type
	Role Role
}

// Schema is the ordered list of observed variables shared by every
// observation of a trace. The order fixes the meaning of observation
// indices.
type Schema struct {
	vars  []VarDef
	index map[string]int
}

// NewSchema builds a schema from variable definitions. Duplicate or
// empty names are rejected.
func NewSchema(vars ...VarDef) (*Schema, error) {
	s := &Schema{vars: append([]VarDef(nil), vars...), index: make(map[string]int, len(vars))}
	for i, v := range s.vars {
		if v.Name == "" {
			return nil, fmt.Errorf("schema: variable %d has empty name", i)
		}
		if _, dup := s.index[v.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate variable %q", v.Name)
		}
		s.index[v.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(vars ...VarDef) *Schema {
	s, err := NewSchema(vars...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of variables.
func (s *Schema) Len() int { return len(s.vars) }

// Var returns the i-th variable definition.
func (s *Schema) Var(i int) VarDef { return s.vars[i] }

// Index returns the position of the named variable, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Types returns the name→type map in the form the expression parser
// consumes.
func (s *Schema) Types() map[string]expr.Type {
	m := make(map[string]expr.Type, len(s.vars))
	for _, v := range s.vars {
		m[v.Name] = v.Type
	}
	return m
}

// Equal reports whether two schemas declare the same variables (name,
// type and role) in the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.vars) != len(o.vars) {
		return false
	}
	for i := range s.vars {
		if s.vars[i] != o.vars[i] {
			return false
		}
	}
	return true
}

// Names returns the variable names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.vars))
	for i, v := range s.vars {
		out[i] = v.Name
	}
	return out
}

// Observation is a valuation of the schema variables at one time step,
// indexed in schema order.
type Observation []expr.Value

// Trace is a sequence of observations over a common schema.
type Trace struct {
	schema *Schema
	obs    []Observation
}

// New returns an empty trace over the schema.
func New(schema *Schema) *Trace {
	return &Trace{schema: schema}
}

// Schema returns the trace's variable schema.
func (t *Trace) Schema() *Schema { return t.schema }

// Len returns the number of observations.
func (t *Trace) Len() int { return len(t.obs) }

// Steps returns the number of observation pairs, max(Len-1, 0) — the
// length of the word the trace induces over the paper's alphabet.
func (t *Trace) Steps() int {
	if len(t.obs) < 2 {
		return 0
	}
	return len(t.obs) - 1
}

// At returns the i-th observation.
func (t *Trace) At(i int) Observation { return t.obs[i] }

// Value returns the value of the named variable at observation i.
func (t *Trace) Value(i int, name string) (expr.Value, bool) {
	j := t.schema.Index(name)
	if j < 0 || i < 0 || i >= len(t.obs) {
		return expr.Value{}, false
	}
	return t.obs[i][j], true
}

// validate checks an observation's arity and types against the schema.
func (t *Trace) validate(obs Observation) error {
	if len(obs) != t.schema.Len() {
		return fmt.Errorf("trace: observation has %d values, schema has %d variables", len(obs), t.schema.Len())
	}
	for i, v := range obs {
		if want := t.schema.Var(i).Type; v.T != want {
			return fmt.Errorf("trace: value %d (%s) has type %s, schema variable %q wants %s",
				i, v, v.T, t.schema.Var(i).Name, want)
		}
	}
	return nil
}

// Append adds an observation, validating arity and types against the
// schema. The observation is copied, so the caller may reuse its
// slice; decoders that hand over ownership use AppendOwned instead.
func (t *Trace) Append(obs Observation) error {
	if err := t.validate(obs); err != nil {
		return err
	}
	t.obs = append(t.obs, append(Observation(nil), obs...))
	return nil
}

// AppendOwned adds an observation without copying it. The caller
// transfers ownership: the slice must not be mutated afterwards. This
// is the fast path for decoders that already allocate one fresh slice
// per observation — Append would copy it a second time.
func (t *Trace) AppendOwned(obs Observation) error {
	if err := t.validate(obs); err != nil {
		return err
	}
	t.obs = append(t.obs, obs)
	return nil
}

// MustAppend is Append that panics on error; trace generators use it
// because their schemas are static.
func (t *Trace) MustAppend(obs Observation) {
	if err := t.Append(obs); err != nil {
		panic(err)
	}
}

// AppendVals appends an observation given in schema order as plain
// values. The variadic slice is owned by the call, so no defensive
// copy is made.
func (t *Trace) AppendVals(vals ...expr.Value) error {
	return t.AppendOwned(Observation(vals))
}

// Slice returns a sub-trace view of observations [from, to). The
// returned trace shares observation storage with the receiver.
func (t *Trace) Slice(from, to int) *Trace {
	return &Trace{schema: t.schema, obs: t.obs[from:to]}
}

// WithRoles returns a view of the trace whose schema assigns the given
// roles to the named variables (unnamed variables keep their role).
// Parsers like ReadVCD cannot know which signals are environment-driven
// inputs, so callers adjust roles afterwards; unknown names error.
func (t *Trace) WithRoles(roles map[string]Role) (*Trace, error) {
	vars := make([]VarDef, t.schema.Len())
	for i := range vars {
		vars[i] = t.schema.Var(i)
	}
	for name, role := range roles {
		i := t.schema.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("trace: WithRoles: unknown variable %q", name)
		}
		vars[i].Role = role
	}
	schema, err := NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	return &Trace{schema: schema, obs: t.obs}, nil
}

// StepEnv returns an expression environment for step i, in which
// unprimed variables read observation i and primed variables read
// observation i+1. It panics if i is not a valid step.
func (t *Trace) StepEnv(i int) StepEnv {
	if i < 0 || i+1 >= len(t.obs) {
		panic(fmt.Sprintf("trace: step %d out of range [0,%d)", i, t.Steps()))
	}
	return StepEnv{schema: t.schema, cur: t.obs[i], next: t.obs[i+1]}
}

// StepEnv is an expr.Env over one observation pair of a trace. It is
// the concrete form of the paper's alphabet symbol a_i : (X ∪ X′) → D.
type StepEnv struct {
	schema    *Schema
	cur, next Observation
}

// Lookup implements expr.Env.
func (e StepEnv) Lookup(name string, primed bool) (expr.Value, bool) {
	i := e.schema.Index(name)
	if i < 0 {
		return expr.Value{}, false
	}
	if primed {
		return e.next[i], true
	}
	return e.cur[i], true
}

// HoldsAt reports whether predicate p (over X ∪ X′) holds on step i of
// the trace. Evaluation errors are returned rather than swallowed so
// that schema/predicate mismatches surface in tests.
func (t *Trace) HoldsAt(p expr.Expr, i int) (bool, error) {
	v, err := p.Eval(t.StepEnv(i))
	if err != nil {
		return false, err
	}
	if v.T != expr.Bool {
		return false, fmt.Errorf("trace: predicate %s evaluated to %s, want bool", p, v.T)
	}
	return v.B, nil
}

// EventSchema is the schema used by single-variable event traces: one
// symbol variable named "event".
func EventSchema() *Schema {
	return MustSchema(VarDef{Name: "event", Type: expr.Sym})
}

// FromEvents builds an event trace (schema: event:sym) from a sequence
// of event names.
func FromEvents(events []string) *Trace {
	t := New(EventSchema())
	// One backing array for all observations: event traces are the
	// longest inputs and each observation is a single symbol.
	vals := make([]expr.Value, len(events))
	for i, ev := range events {
		vals[i] = expr.SymVal(ev)
		t.obs = append(t.obs, Observation(vals[i:i+1:i+1]))
	}
	return t
}

// FromObservations builds a trace over schema from observations the
// caller hands over without copying. The observations must already be
// schema-conformant (arity and types); the streaming windower uses it
// to wrap canonical interned observations into windows with zero value
// copies.
func FromObservations(schema *Schema, obs []Observation) *Trace {
	return &Trace{schema: schema, obs: obs}
}

// Events extracts the event-name sequence from a trace whose schema
// contains a Sym variable named "event".
func (t *Trace) Events() ([]string, error) {
	i := t.schema.Index("event")
	if i < 0 || t.schema.Var(i).Type != expr.Sym {
		return nil, fmt.Errorf("trace: schema has no sym variable %q", "event")
	}
	out := make([]string, len(t.obs))
	for j, obs := range t.obs {
		out[j] = obs[i].S
	}
	return out, nil
}
