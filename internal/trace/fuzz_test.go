package trace

import (
	"bytes"
	"testing"
)

// FuzzVCD feeds arbitrary bytes to the VCD header and change-dump
// parsers. Malformed input must come back as an error, never a panic;
// a successful parse must yield a self-consistent trace.
func FuzzVCD(f *testing.F) {
	f.Add([]byte(sampleVCD))
	f.Add([]byte("$enddefinitions $end\n#0\n"))
	f.Add([]byte("$scope module m $end\n$var wire 1 ! a $end\n"))
	f.Add([]byte("$var wire 1 ! a $end\n$enddefinitions $end\nx!\nb101 !\n#5\n1!"))
	f.Add([]byte("$timescale"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		sigs, err := VCDSignals(bytes.NewReader(data))
		if err == nil {
			for _, sg := range sigs {
				if sg.Name == "" {
					t.Fatalf("VCDSignals returned unnamed signal %+v", sg)
				}
			}
		}
		tr, err := ReadVCD(bytes.NewReader(data), nil)
		if err == nil && tr != nil {
			if tr.Len() > 0 && tr.Schema().Len() == 0 {
				t.Fatalf("trace with %d observations but empty schema", tr.Len())
			}
		}
		// A signal filter exercises selectSignals' matching paths.
		_, _ = ReadVCD(bytes.NewReader(data), []string{"top.clk", "no.such.signal"})
	})
}
