//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. Empty and irregular files (pipes, sockets)
// report an error so OpenBytes falls back to plain reads. The returned
// Bytes carries the munmap as its release hook; lifetime rules are
// documented on Bytes.
func mapFile(f *os.File) (*Bytes, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if !st.Mode().IsRegular() || size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Bytes{data: data, release: func() error { return syscall.Munmap(data) }}, nil
}
