package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// VCD support: hardware simulators and emulators dump waveforms as
// IEEE 1364 value change dumps, and the paper's motivation —
// transaction-level models of HW/SW interaction learned from virtual-
// platform runs — makes VCD a first-class trace source. ReadVCD
// samples selected signals into a Trace: one observation per timestamp
// at which any watched signal changes, with unchanged signals holding
// their previous value.

// VCDSignal describes one declared signal of a VCD file.
type VCDSignal struct {
	ID    string // the short identifier code used in the change section
	Name  string // hierarchical name, e.g. "top.fifo.count"
	Width int    // bits
}

// ReadVCD parses a value change dump and samples the named signals
// into a trace. Signal names match the declared hierarchical name
// (scopes joined with '.') or, as a convenience, its last component
// when unambiguous. An empty signals list watches every declared
// signal. One-bit signals become Bool variables; buses become Int
// variables (two's-complement interpretation is not applied: bus
// values are parsed as unsigned). Unknown/high-impedance bits (x, z)
// are read as 0, the usual four-to-two-state collapse.
func ReadVCD(r io.Reader, signals []string) (*Trace, error) {
	src, err := NewVCDSource(r, signals)
	if err != nil {
		return nil, err
	}
	tr, err := Collect(src)
	if err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("vcd: no value changes for the watched signals")
	}
	return tr, nil
}

// VCDSignals lists the signals declared in a VCD header, for tooling
// that lets a user pick what to observe.
func VCDSignals(r io.Reader) ([]VCDSignal, error) {
	p := &vcdParser{
		br:     bufio.NewReader(r),
		byID:   map[string][]int{},
		byName: map[string]int{},
	}
	if err := p.parseHeader(); err != nil {
		return nil, err
	}
	return p.signals, nil
}

type vcdParser struct {
	br      *bufio.Reader
	signals []VCDSignal
	scope   []string

	// selection state
	watch  []int            // indices into signals, in schema order
	byID   map[string][]int // id code → watch positions
	byName map[string]int
	schema *Schema

	tok []byte // scratch for tokenBytes
}

// parseHeader consumes declarations through $enddefinitions.
func (p *vcdParser) parseHeader() error {
	for {
		tok, err := p.token()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("vcd: unexpected EOF in header")
			}
			return err
		}
		switch tok {
		case "$scope":
			// $scope module name $end
			if _, err := p.token(); err != nil { // scope type
				return err
			}
			name, err := p.token()
			if err != nil {
				return err
			}
			p.scope = append(p.scope, name)
			if err := p.expectEnd(); err != nil {
				return err
			}
		case "$upscope":
			if len(p.scope) > 0 {
				p.scope = p.scope[:len(p.scope)-1]
			}
			if err := p.expectEnd(); err != nil {
				return err
			}
		case "$var":
			// $var type width id name [range] $end
			if _, err := p.token(); err != nil { // var type
				return err
			}
			widthTok, err := p.token()
			if err != nil {
				return err
			}
			width, err := strconv.Atoi(widthTok)
			if err != nil || width <= 0 {
				return fmt.Errorf("vcd: bad width %q", widthTok)
			}
			id, err := p.token()
			if err != nil {
				return err
			}
			name, err := p.token()
			if err != nil {
				return err
			}
			full := name
			if len(p.scope) > 0 {
				full = strings.Join(p.scope, ".") + "." + name
			}
			p.signals = append(p.signals, VCDSignal{ID: id, Name: full, Width: width})
			// Consume tokens (possibly a bit range) until $end.
			for {
				t, err := p.token()
				if err != nil {
					return err
				}
				if t == "$end" {
					break
				}
			}
		case "$enddefinitions":
			if err := p.expectEnd(); err != nil {
				return err
			}
			return nil
		default:
			if strings.HasPrefix(tok, "$") {
				// Skip sections like $date, $version, $timescale,
				// $comment.
				for {
					t, err := p.token()
					if err != nil {
						return err
					}
					if t == "$end" {
						break
					}
				}
			}
			// Stray tokens before $enddefinitions are ignored.
		}
	}
}

func (p *vcdParser) expectEnd() error {
	t, err := p.token()
	if err != nil {
		return err
	}
	if t != "$end" {
		return fmt.Errorf("vcd: expected $end, got %q", t)
	}
	return nil
}

// selectSignals resolves the requested names and builds the trace
// schema.
func (p *vcdParser) selectSignals(names []string) error {
	if len(p.signals) == 0 {
		return fmt.Errorf("vcd: no signals declared")
	}
	if len(names) == 0 {
		for i := range p.signals {
			p.watch = append(p.watch, i)
		}
	} else {
		// Index by full name and by unambiguous last component.
		byFull := map[string]int{}
		byLast := map[string]int{}
		lastDup := map[string]bool{}
		for i, s := range p.signals {
			byFull[s.Name] = i
			last := s.Name
			if j := strings.LastIndexByte(last, '.'); j >= 0 {
				last = last[j+1:]
			}
			if _, dup := byLast[last]; dup {
				lastDup[last] = true
			}
			byLast[last] = i
		}
		for _, name := range names {
			if i, ok := byFull[name]; ok {
				p.watch = append(p.watch, i)
				continue
			}
			if i, ok := byLast[name]; ok && !lastDup[name] {
				p.watch = append(p.watch, i)
				continue
			}
			if lastDup[name] {
				return fmt.Errorf("vcd: signal name %q is ambiguous; use the full hierarchical name", name)
			}
			return fmt.Errorf("vcd: signal %q not declared", name)
		}
	}

	vars := make([]VarDef, len(p.watch))
	for pos, i := range p.watch {
		s := p.signals[i]
		ty := expr.Int
		if s.Width == 1 {
			ty = expr.Bool
		}
		vars[pos] = VarDef{Name: sanitizeVCDName(s.Name), Type: ty}
		p.byID[s.ID] = append(p.byID[s.ID], pos)
	}
	schema, err := NewSchema(vars...)
	if err != nil {
		return fmt.Errorf("vcd: %w", err)
	}
	p.schema = schema
	return nil
}

// sanitizeVCDName rewrites a hierarchical signal name into a predicate
// identifier (the expression language accepts letters, digits, '_'
// and '.').
func sanitizeVCDName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r == '.' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// VCDSource streams the value-change section of a VCD file as one
// observation per timestamp with changes to watched signals (the same
// sampling ReadVCD materialises). The observation buffer is reused
// between Next calls.
type VCDSource struct {
	sourceCloser
	p       *vcdParser
	bytes   *countingReader
	cur     Observation
	bits    []byte // scratch for a change's value bits
	dirty   bool
	started bool
	done    bool
}

// NewVCDSource parses the VCD header, resolves the watched signals
// (empty watches all; see ReadVCD for the matching rules) and returns
// a source over the value changes.
func NewVCDSource(r io.Reader, signals []string) (*VCDSource, error) {
	bytes := &countingReader{r: r}
	p := &vcdParser{
		br:     bufio.NewReader(bytes),
		byID:   map[string][]int{},
		byName: map[string]int{},
	}
	if err := p.parseHeader(); err != nil {
		return nil, err
	}
	if err := p.selectSignals(signals); err != nil {
		return nil, err
	}
	cur := make(Observation, p.schema.Len())
	for i := range cur {
		if p.schema.Var(i).Type == expr.Bool {
			cur[i] = expr.BoolVal(false)
		} else {
			cur[i] = expr.IntVal(0)
		}
	}
	return &VCDSource{sourceCloser: newSourceCloser(r), p: p, bytes: bytes, cur: cur}, nil
}

// Schema implements Source.
func (s *VCDSource) Schema() *Schema { return s.p.schema }

// BytesRead implements ByteSource.
func (s *VCDSource) BytesRead() int64 { return s.bytes.BytesRead() }

// apply folds one value change into the current observation.
func (s *VCDSource) apply(positions []int, bits []byte) error {
	for _, pos := range positions {
		if s.p.schema.Var(pos).Type == expr.Bool {
			s.cur[pos] = expr.BoolVal(len(bits) == 1 && bits[0] == '1')
		} else {
			v, err := parseVCDBits(bits)
			if err != nil {
				return err
			}
			s.cur[pos] = expr.IntVal(v)
		}
		s.dirty = true
	}
	return nil
}

// Next implements Source: it consumes value-change tokens until a
// timestamp boundary completes an observation.
func (s *VCDSource) Next() (Observation, error) {
	if s.done {
		return nil, io.EOF
	}
	p := s.p
	for {
		tok, err := p.tokenBytes()
		if err == io.EOF {
			s.done = true
			if s.started && s.dirty {
				s.dirty = false
				return s.cur, nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		switch {
		case tok[0] == '#':
			emit := s.started && s.dirty
			s.started = true
			if emit {
				s.dirty = false
				return s.cur, nil
			}
		case isDumpSection(tok):
			s.started = true // initial snapshot counts as a timestamp
		case string(tok) == "$end":
			// end of a dump section
		case tok[0] == '$':
			// Skip unknown sections. The scratch token is reused, so the
			// section keyword need not survive the scan.
			for {
				t, err := p.tokenBytes()
				if err != nil {
					return nil, fmt.Errorf("vcd: %w", err)
				}
				if string(t) == "$end" {
					break
				}
			}
		case tok[0] == 'b' || tok[0] == 'B':
			// The bus bits live in the scratch buffer the id token will
			// overwrite; stash them first.
			s.bits = append(s.bits[:0], tok[1:]...)
			id, err := p.tokenBytes()
			if err != nil {
				return nil, fmt.Errorf("vcd: bus change missing id: %w", err)
			}
			if positions, ok := p.byID[string(id)]; ok {
				if err := s.apply(positions, s.bits); err != nil {
					return nil, err
				}
			}
		case tok[0] == 'r' || tok[0] == 'R':
			// Real change: consume the id, unsupported as a variable.
			if _, err := p.tokenBytes(); err != nil {
				return nil, fmt.Errorf("vcd: real change missing id: %w", err)
			}
		case tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' || tok[0] == 'X' || tok[0] == 'z' || tok[0] == 'Z':
			// Scalar change: value and id are glued.
			if len(tok) < 2 {
				return nil, fmt.Errorf("vcd: malformed scalar change %q", tok)
			}
			if positions, ok := p.byID[string(tok[1:])]; ok {
				s.bits = append(s.bits[:0], lowerBit(tok[0]))
				if err := s.apply(positions, s.bits); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("vcd: unexpected token %q in change section", tok)
		}
	}
}

// isDumpSection matches the dump-control keywords that open an
// observation snapshot.
func isDumpSection(tok []byte) bool {
	switch string(tok) {
	case "$dumpvars", "$dumpall", "$dumpon", "$dumpoff":
		return true
	}
	return false
}

// lowerBit lower-cases a scalar value character (X→x, Z→z).
func lowerBit(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// parseVCDBits parses a binary bus value; x and z bits collapse to 0.
func parseVCDBits(bits []byte) (int64, error) {
	if len(bits) == 0 {
		return 0, fmt.Errorf("vcd: empty bus value")
	}
	if len(bits) > 63 {
		return 0, fmt.Errorf("vcd: bus value %q wider than 63 bits", bits)
	}
	var v int64
	for _, r := range bits {
		v <<= 1
		switch r {
		case '1':
			v |= 1
		case '0', 'x', 'X', 'z', 'Z':
		default:
			return 0, fmt.Errorf("vcd: bad bit %q in bus value %q", r, bits)
		}
	}
	return v, nil
}

// token returns the next whitespace-delimited token as a string (used
// by the header parser, where tokens are retained).
func (p *vcdParser) token() (string, error) {
	b, err := p.tokenBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// tokenBytes returns the next whitespace-delimited token borrowed from
// the parser's scratch buffer: valid only until the following call.
// The change-section decoder runs on these, so steady-state decoding
// allocates no per-token strings.
func (p *vcdParser) tokenBytes() ([]byte, error) {
	p.tok = p.tok[:0]
	// Skip whitespace.
	for {
		c, err := p.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			p.tok = append(p.tok, c)
			break
		}
	}
	for {
		c, err := p.br.ReadByte()
		if err == io.EOF {
			return p.tok, nil
		}
		if err != nil {
			return nil, err
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			return p.tok, nil
		}
		p.tok = append(p.tok, c)
	}
}
