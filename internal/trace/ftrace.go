package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// FtraceEvent is one record of an ftrace-style log: the task that was
// running, a timestamp, the event name, and the raw detail field.
type FtraceEvent struct {
	Task      string  // "comm-pid"
	CPU       int     // reporting CPU
	Timestamp float64 // seconds
	Name      string  // event name, e.g. "sched_switch"
	Detail    string  // remainder of the line after "event: "
}

// ParseFtrace parses logs in the format emitted by the Linux ftrace
// function/event tracer (and by internal/systems/rtlinux, which mimics
// it):
//
//	<task>-<pid> [<cpu>] <flags> <timestamp>: <event>: <detail>
//
// Header lines starting with '#' and blank lines are skipped. The
// flags column is optional, matching both `trace` and `trace_pipe`
// output variants.
func ParseFtrace(r io.Reader) ([]FtraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []FtraceEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseFtraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("ftrace: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ftrace: %w", err)
	}
	return out, nil
}

func parseFtraceLine(line string) (FtraceEvent, error) {
	var ev FtraceEvent

	// Task column (may itself contain '-'; pid is the final dash
	// separated field before whitespace).
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return ev, fmt.Errorf("too few columns in %q", line)
	}
	ev.Task = fields[0]

	// CPU column: "[000]".
	i := 1
	cpu := fields[i]
	if !strings.HasPrefix(cpu, "[") || !strings.HasSuffix(cpu, "]") {
		return ev, fmt.Errorf("missing cpu column in %q", line)
	}
	if _, err := fmt.Sscanf(cpu, "[%d]", &ev.CPU); err != nil {
		return ev, fmt.Errorf("bad cpu column %q", cpu)
	}
	i++

	// Optional irq/preempt flags column, e.g. "d..3".
	if i < len(fields) && !strings.HasSuffix(fields[i], ":") {
		i++
	}
	if i >= len(fields) {
		return ev, fmt.Errorf("missing timestamp in %q", line)
	}

	// Timestamp column: "123.456789:".
	ts := strings.TrimSuffix(fields[i], ":")
	if _, err := fmt.Sscanf(ts, "%f", &ev.Timestamp); err != nil {
		return ev, fmt.Errorf("bad timestamp %q", fields[i])
	}
	i++
	if i >= len(fields) {
		return ev, fmt.Errorf("missing event name in %q", line)
	}

	// Event name column: "sched_switch:".
	name := fields[i]
	ev.Name = strings.TrimSuffix(name, ":")
	i++
	ev.Detail = strings.Join(fields[i:], " ")
	return ev, nil
}

// FtraceToTrace projects a parsed ftrace log onto an event trace for a
// single task under analysis. Events whose Task does not match task
// are dropped unless task is empty, in which case all events are kept.
// The rename map optionally rewrites raw event names to model-level
// names (e.g. "sched_switch" with a matching prev task to
// "sched_switch_suspend"); unmapped names pass through unchanged.
func FtraceToTrace(events []FtraceEvent, task string, rename func(FtraceEvent) string) *Trace {
	var names []string
	for _, ev := range events {
		if task != "" && ev.Task != task {
			continue
		}
		name := ev.Name
		if rename != nil {
			name = rename(ev)
		}
		if name == "" {
			continue
		}
		names = append(names, name)
	}
	return FromEvents(names)
}
