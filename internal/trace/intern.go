package trace

import (
	"encoding/binary"
	"sync"

	"repro/internal/expr"
)

// ObsID is the interned identity of a distinct Observation. Ids are
// dense and assigned in first-sight order, so they double as stable
// indices into the interner's canonical table.
type ObsID int32

// Interner hash-conses observations: each distinct observation (by
// value equality under the schema) maps to one ObsID and one canonical
// copy. Window identity then becomes a fixed-size array of ids that is
// compared and hashed without any string building, which is what makes
// streaming window dedup allocation-free after warm-up.
//
// The interner is safe for concurrent use; the streaming windower's
// dispatcher is the only writer in practice, but monitors may intern
// from several goroutines.
type Interner struct {
	mu    sync.Mutex
	obs   map[string]ObsID // key: little-endian value-id encoding
	canon []Observation    // ObsID → canonical copy (read-only)
	vals  valueTable
	buf   []byte // reused key-encoding buffer
}

// valueTable interns expr-level values into dense int32 ids.
// expr.Value is comparable, so a plain map works; symbol strings are
// retained by the map key, which is the single copy the pipeline keeps.
type valueTable struct {
	ids map[expr.Value]int32
}

func (t *valueTable) intern(v expr.Value) int32 {
	if id, ok := t.ids[v]; ok {
		return id
	}
	id := int32(len(t.ids))
	t.ids[v] = id
	return id
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		obs:  make(map[string]ObsID),
		vals: valueTable{ids: make(map[expr.Value]int32)},
	}
}

// Intern returns the id of obs, assigning the next dense id and taking
// a canonical copy on first sight. The argument may be a reused buffer
// (the Source contract); the interner never retains it.
func (in *Interner) Intern(obs Observation) ObsID {
	in.mu.Lock()
	defer in.mu.Unlock()
	// Encode the observation as the little-endian concatenation of its
	// value ids. Map lookup with string(buf) does not allocate (the
	// compiler recognises the pattern), so the steady state — every
	// observation already seen — does no allocation at all.
	buf := in.buf[:0]
	for _, v := range obs {
		id := in.vals.intern(v)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	in.buf = buf
	if id, ok := in.obs[string(buf)]; ok {
		return id
	}
	id := ObsID(len(in.canon))
	in.obs[string(buf)] = id
	in.canon = append(in.canon, append(Observation(nil), obs...))
	return id
}

// Obs returns the canonical observation for id. The returned slice is
// shared and must be treated as read-only.
func (in *Interner) Obs(id ObsID) Observation {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.canon[id]
}

// Len returns the number of distinct observations interned so far.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.canon)
}

// Canon returns the canonical observations in id order (ObsID i maps
// to the i-th element). Checkpointing serialises exactly this list:
// because ids are assigned in first-sight order, and the first sight
// of every value happens inside the first sight of some observation,
// re-interning the list in order on an empty Interner reproduces both
// the observation and the value tables bit-for-bit. The returned
// slice is fresh; its observations are the shared read-only canonical
// copies.
func (in *Interner) Canon() []Observation {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Observation(nil), in.canon...)
}

// CanonSince returns the canonical observations with id ≥ n as a
// capacity-capped subslice of the canonical table: no copy, and safe
// to read even while the interner keeps growing, because later Intern
// calls only append past the captured length (if the append relocates
// the table, the captured slice keeps the old backing array; the
// entries themselves are never mutated). The sharded ingest path uses
// this to ship each block's newly-seen observations to the merger.
func (in *Interner) CanonSince(n int) []Observation {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.canon[n:len(in.canon):len(in.canon)]
}

// maxArrayWindow is the window width the array-backed WindowKey form
// covers; wider windows (rare — the paper uses w ≤ 4) fall back to a
// string-encoded key.
const maxArrayWindow = 12

// WindowKey is the comparable identity of one w-window of observations:
// for w ≤ maxArrayWindow a fixed-size array of interned ids (zero
// allocation to build, compare or hash), otherwise a string encoding.
// Keys are only comparable between windows of the same width produced
// by the same Interner; trailing zero slots in the array form are
// unambiguous because every window in one generator shares w.
type WindowKey struct {
	n uint8
	a [maxArrayWindow]ObsID
	s string
}

// MakeWindowKey builds the key for a window given its interned ids in
// position order.
func MakeWindowKey(ids []ObsID) WindowKey {
	var k WindowKey
	if len(ids) <= maxArrayWindow {
		k.n = uint8(len(ids))
		copy(k.a[:], ids)
		return k
	}
	buf := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	k.s = string(buf)
	return k
}

// IDs returns the interned ids the key was built from, in position
// order, decoding whichever representation the key uses. It is the
// inverse of MakeWindowKey (checkpoints serialise memo keys through
// it): MakeWindowKey(k.IDs()) == k.
func (k WindowKey) IDs() []ObsID {
	if k.s != "" {
		ids := make([]ObsID, len(k.s)/4)
		for i := range ids {
			ids[i] = ObsID(binary.LittleEndian.Uint32([]byte(k.s[4*i : 4*i+4])))
		}
		return ids
	}
	ids := make([]ObsID, k.n)
	copy(ids, k.a[:k.n])
	return ids
}
