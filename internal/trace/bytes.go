package trace

import (
	"io"
	"os"
)

// Bytes is a read-only byte buffer behind the zero-copy ingestion
// path: decoders built over a *Bytes scan borrowed slices of the
// underlying data instead of copying through bufio. The buffer is
// either an mmap'd file (OpenBytes on platforms that support it) or a
// plain in-memory slice (NewBytes, and the portable read fallback).
//
// Ownership: the *Bytes owns the mapping. Close releases it; every
// slice borrowed from Data — including observations still held by a
// decoder — is invalid afterwards, so callers must close only after
// the consuming source is done. Decoders wrap the *Bytes in their
// sourceCloser, so the usual Collect/defer-Close discipline releases
// the mapping exactly once.
type Bytes struct {
	data    []byte
	off     int
	release func() error
}

// NewBytes wraps an in-memory slice. The slice is borrowed, not
// copied; the caller must not mutate it while the Bytes is in use.
func NewBytes(data []byte) *Bytes { return &Bytes{data: data} }

// OpenBytes maps the named file read-only. On platforms with mmap the
// file contents are mapped (no read-time copies at all); elsewhere —
// and for files that cannot be mapped, such as pipes — it falls back
// to reading the whole file into memory. Either way the result serves
// the zero-copy decode path.
func OpenBytes(path string) (*Bytes, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if b, err := mapFile(f); err == nil {
		return b, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return &Bytes{data: data}, nil
}

// Data returns the full underlying buffer. The slice is borrowed from
// the mapping and must not be retained past Close.
func (b *Bytes) Data() []byte { return b.data }

// Len returns the buffer length.
func (b *Bytes) Len() int { return len(b.data) }

// Read implements io.Reader so a *Bytes can feed any decoder that has
// no zero-copy path (the VCD tokenizer, external consumers).
func (b *Bytes) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Close releases the mapping (a no-op for plain slices). Idempotent.
func (b *Bytes) Close() error {
	rel := b.release
	b.release = nil
	b.data = nil
	if rel != nil {
		return rel()
	}
	return nil
}
