// Live-maintenance wiring: MaintainSource drives an unbounded trace
// source through the predicate generator into a live.Maintainer, the
// streaming counterpart of LearnSource that never waits for
// end-of-stream to learn. The maintainer's model after any prefix is
// byte-identical to LearnSource over that prefix (same generator, same
// sequence, same canonical search — see internal/live).
package core

import (
	"errors"

	"repro/internal/live"
	"repro/internal/trace"
)

// NewMaintainer returns a live model maintainer bound to this
// pipeline's learn configuration (options, context, telemetry), ready
// to be fed by MaintainSource.
func (p *Pipeline) NewMaintainer(opts live.Options) (*live.Maintainer, error) {
	opts.Learn = p.opts.Learn
	if opts.Telemetry == nil {
		opts.Telemetry = p.opts.Telemetry
	}
	return live.NewMaintainer(opts)
}

// MaintainSource streams src through the pipeline's predicate
// generator into the maintainer, revising the model as runs arrive,
// until the source ends (for a followed file: its follower's idle exit
// or context cancellation). On a clean end the maintainer's model
// covers the entire consumed stream.
func (p *Pipeline) MaintainSource(src trace.Source, m *live.Maintainer) error {
	var err error
	if ctx := p.opts.Context; ctx != nil {
		err = p.gen.SequenceSource(&ctxSource{src: src, ctx: ctx}, m.Feed)
	} else {
		err = p.gen.SequenceSource(src, m.Feed)
	}
	if err != nil {
		return p.interrupted("predicate", err)
	}
	return m.Finish()
}

// LiveModel wraps the maintainer's current automaton as a Model bound
// to this pipeline, so the live result can be persisted with
// WriteModel and checked against further traces exactly like a batch
// model. The model file is byte-identical to the one a batch relearn
// over the same stream would save.
func (p *Pipeline) LiveModel(m *live.Maintainer) (*Model, error) {
	a := m.Model()
	if a == nil {
		return nil, errors.New("core: live maintainer has no model yet")
	}
	st := m.Stats()
	return &Model{
		Automaton:      a,
		Alphabet:       m.Alphabet(),
		States:         st.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     st,
		pipeline:       p,
	}, nil
}
