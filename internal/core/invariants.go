package core

import (
	"fmt"
	"sort"

	"repro/internal/automaton"
	"repro/internal/expr"
	"repro/internal/trace"
)

// State-invariant extraction — the paper's concluding prospect: learned
// models can seed inductive-invariant synthesis. Running the training
// trace through the automaton assigns each observation to the model
// state the run is in; per state, the observed variable ranges become
// a candidate invariant (an over-approximation of the state's concrete
// configurations, exact on the trace by construction).

// StateInvariant is the candidate invariant of one model state.
type StateInvariant struct {
	State automaton.State
	// Expr is the invariant as a predicate over current-state
	// variables (nil when the state was never visited by the run).
	Expr expr.Expr
	// Visits is the number of observations assigned to the state.
	Visits int
}

// StateInvariants runs the trace through the model and derives one
// candidate invariant per visited state: interval bounds for integer
// variables, value sets for symbolic variables (as equality
// disjunctions, up to maxSymValues alternatives, beyond which the
// variable is dropped from the invariant), and constants for boolean
// variables that never vary.
func (m *Model) StateInvariants(tr *trace.Trace, maxSymValues int) ([]StateInvariant, error) {
	if maxSymValues <= 0 {
		maxSymValues = 4
	}
	preds, err := m.pipeline.gen.Sequence(tr)
	if err != nil {
		return nil, err
	}
	schema := m.pipeline.schema

	nVars := schema.Len()
	type acc struct {
		visits int
		ints   []intRange
		syms   []map[string]bool
		bools  []map[bool]bool
	}
	accs := map[automaton.State]*acc{}
	get := func(q automaton.State) *acc {
		a, ok := accs[q]
		if !ok {
			a = &acc{
				ints:  make([]intRange, nVars),
				syms:  make([]map[string]bool, nVars),
				bools: make([]map[bool]bool, nVars),
			}
			for i := 0; i < nVars; i++ {
				a.syms[i] = map[string]bool{}
				a.bools[i] = map[bool]bool{}
			}
			accs[q] = a
		}
		return a
	}
	record := func(q automaton.State, obs trace.Observation) {
		a := get(q)
		a.visits++
		for i, v := range obs {
			switch v.T {
			case expr.Int:
				r := &a.ints[i]
				if !r.seen || v.I < r.lo {
					r.lo = v.I
				}
				if !r.seen || v.I > r.hi {
					r.hi = v.I
				}
				r.seen = true
			case expr.Sym:
				a.syms[i][v.S] = true
			case expr.Bool:
				a.bools[i][v.B] = true
			}
		}
	}

	// Walk the run; observation i belongs to the state before
	// consuming predicate i (predicate i summarises the window that
	// starts at observation i). The final w−1 observations are
	// interior to the last window and belong to the final state.
	cur := m.Automaton.Initial()
	for i, pr := range preds {
		record(cur, tr.At(i))
		succ := m.Automaton.Successors(cur, pr.Key)
		if len(succ) == 0 {
			return nil, fmt.Errorf("core: trace leaves the model at position %d (%s); invariants require a conforming trace", i, pr.Key)
		}
		cur = succ[0]
	}
	for i := len(preds); i < tr.Len(); i++ {
		record(cur, tr.At(i))
	}

	var out []StateInvariant
	for q, a := range accs {
		inv := buildInvariant(schema, a.ints, a.syms, a.bools, maxSymValues)
		out = append(out, StateInvariant{State: q, Expr: inv, Visits: a.visits})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].State < out[j].State })
	return out, nil
}

func buildInvariant(schema *trace.Schema, ints []intRange, syms []map[string]bool, bools []map[bool]bool, maxSymValues int) expr.Expr {
	var conjuncts []expr.Expr
	for i := 0; i < schema.Len(); i++ {
		vd := schema.Var(i)
		v := expr.NewVar(vd.Name, vd.Type)
		switch vd.Type {
		case expr.Int:
			r := ints[i]
			if !r.seen {
				continue
			}
			switch {
			case r.lo == r.hi:
				conjuncts = append(conjuncts, expr.Eq(v, expr.IntLit(r.lo)))
			default:
				conjuncts = append(conjuncts,
					expr.And(expr.Le(expr.IntLit(r.lo), v), expr.Le(v, expr.IntLit(r.hi))))
			}
		case expr.Sym:
			if len(syms[i]) == 0 || len(syms[i]) > maxSymValues {
				continue
			}
			vals := make([]string, 0, len(syms[i]))
			for s := range syms[i] {
				vals = append(vals, s)
			}
			sort.Strings(vals)
			var disj expr.Expr
			for _, s := range vals {
				eq := expr.Eq(v, expr.SymLit(s))
				if disj == nil {
					disj = expr.Expr(eq)
				} else {
					disj = expr.Or(disj, eq)
				}
			}
			conjuncts = append(conjuncts, disj)
		case expr.Bool:
			if len(bools[i]) != 1 {
				continue
			}
			for b := range bools[i] {
				conjuncts = append(conjuncts, expr.Eq(v, expr.BoolLit(b)))
			}
		}
	}
	if len(conjuncts) == 0 {
		return expr.BoolLit(true)
	}
	inv := conjuncts[0]
	for _, c := range conjuncts[1:] {
		inv = expr.And(inv, c)
	}
	return inv
}

// intRange accumulates the observed bounds of one integer variable.
type intRange struct {
	lo, hi int64
	seen   bool
}
