// Streaming pipeline entry points: LearnSource and Model.CheckSource
// drive the whole trace-file → model path off a trace.Source, so
// resident memory is O(window + unique windows + unique grams + RLE
// runs) instead of O(trace length). Determinism: the streaming
// windower and the RLE learner are bit-for-bit equivalent to the batch
// paths (see internal/predicate/stream.go and internal/learn/rle.go),
// so LearnSource over a source and Learn over the collected trace
// produce identical automata.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/trace"
)

// LearnSource runs the full pipeline on a streamed trace. The model's
// P field is nil — the expanded predicate sequence is deliberately
// never materialised — and the predicate stage metrics gain streaming
// counters: observations, bytes_read (when the source reads a byte
// stream), obs_per_sec and peak_heap.
//
// With Options.Checkpoint enabled the run is periodically snapshotted
// (and possibly resumed — see checkpoint.go); with Options.Context set
// it is cancellable at observation and solver-round boundaries. Both
// paths produce models byte-identical to a plain uninterrupted run.
func (p *Pipeline) LearnSource(src trace.Source) (*Model, error) {
	var metrics pipeline.Metrics
	tel := p.opts.Telemetry
	ttr := tel.Trace()
	run := ttr.Start(0, "run")
	before := p.gen.Stats()
	hs := pipeline.StartHeapSampler(0)
	sp := metrics.Start("predicate")
	stage := p.startStage(run, "predicate")
	wallStart := time.Now()
	abort := func() {
		hs.Stop()
		ttr.End(stage)
		ttr.End(run)
	}

	// Live gauges: heap from the sampler (its cached values stay
	// readable after Stop), observation throughput from the windows
	// counter. Registered per run; later runs simply replace them.
	tel.Gauge("heap_bytes", func() float64 { return float64(hs.Current()) })
	tel.Gauge("peak_heap_bytes", func() float64 { return float64(hs.Peak()) })
	windows := tel.Count("predicate_windows_total")
	tel.Gauge("obs_per_sec", func() float64 {
		secs := time.Since(wallStart).Seconds()
		if secs <= 0 {
			return 0
		}
		return float64(windows.Value()) / secs
	})
	hRunLen := tel.Hist("predicate_run_len", "windows")

	var drv *ckptDriver
	if p.opts.Checkpoint.Enabled() {
		var err error
		if drv, err = newCkptDriver(p, p.opts.Checkpoint); err != nil {
			abort()
			return nil, err
		}
		drv.runSpan = run
	}

	seq := learn.NewSeq()
	alphabet := make(map[string]*predicate.Predicate)
	var resumeLearn *learn.CheckpointState
	if drv != nil && drv.from != nil {
		var err error
		if seq, alphabet, resumeLearn, err = drv.restore(); err != nil {
			abort()
			return nil, err
		}
	}
	// Predicates are interned, so their pointers are the cheap identity:
	// cache the per-predicate symbol id and alphabet insertion to avoid
	// hashing the (long) predicate key on every run.
	symIDs := map[*predicate.Predicate]int{}
	emit := func(r predicate.Run) error {
		id, ok := symIDs[r.Pred]
		if !ok {
			alphabet[r.Pred.Key] = r.Pred
			id = seq.InternSym(r.Pred.Key)
			symIDs[r.Pred] = id
		}
		seq.AppendID(id, r.Count)
		hRunLen.Observe(int64(r.Count))
		return nil
	}
	var err error
	if drv != nil {
		drv.seq = seq
		err = drv.ingest(src, emit)
	} else if ctx := p.opts.Context; ctx != nil {
		err = p.gen.SequenceSource(&ctxSource{src: src, ctx: ctx}, emit)
	} else {
		err = p.gen.SequenceSource(src, emit)
	}
	if err != nil {
		abort()
		return nil, p.interrupted("predicate", err)
	}
	d := p.gen.Stats().Minus(before)
	observations := int64(d.Windows) + int64(p.gen.Window()) - 1
	sp.Add("windows", int64(d.Windows)).
		Add("memo_hits", int64(d.MemoHits)).
		Add("unique_windows", int64(d.UniqueWindows)).
		Add("synth_calls", int64(d.SynthCalls)).
		Add("seed_hits", int64(d.SeedHits)).
		Add("observations", observations)
	if bs, ok := src.(trace.ByteSource); ok {
		sp.Add("bytes_read", bs.BytesRead())
	}
	if secs := time.Since(wallStart).Seconds(); secs > 0 {
		rate := float64(observations) / secs
		sp.Add("obs_per_sec", int64(rate))
		// Freeze the throughput gauge at the stage's final rate so a
		// lingering /metrics endpoint reports the run, not the decay.
		tel.Gauge("obs_per_sec", func() float64 { return rate })
	}
	sp.Add("runs", int64(seq.Runs())).
		Add("peak_heap", int64(hs.Stop())).
		End()
	endPredicateStage(ttr, stage, d)

	sp = metrics.Start("model")
	lo := p.opts.Learn
	lo.TraceSpan = p.startStage(run, "model")
	if drv != nil {
		drv.freezeIngest()
		lo.Resume = resumeLearn
		lo.Checkpoint = drv.learnHook
	}
	res, err := learn.GenerateModelSeqs([]*learn.Seq{seq}, lo)
	endModelStage(ttr, lo.TraceSpan, res)
	ttr.End(run)
	if err != nil {
		if ierr := p.interrupted("model", err); ierr != err {
			return nil, ierr
		}
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	return &Model{
		Automaton:      res.Automaton,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// LearnSources runs the streaming pipeline over several traces of the
// same system — the streaming counterpart of LearnAll, and the fold
// step of the active-probing loop: each probe round relearns from
// [seed trace, probe trace] without materialising either predicate
// sequence. Sequences are run-length encoded per source and solved
// together, so the result is byte-identical to LearnAll over the
// collected traces.
//
// Checkpointing is not supported here: the checkpoint driver snapshots
// one source's ingestion front. Callers that need crash safety around
// multi-trace learning (the active loop) get it at a coarser grain —
// every round's relearn is a complete, atomic LearnSources run, so a
// crash rolls back to the previous round's model.
func (p *Pipeline) LearnSources(srcs []trace.Source) (*Model, error) {
	if len(srcs) == 0 {
		return nil, errors.New("core: no sources")
	}
	if p.opts.Checkpoint.Enabled() {
		return nil, errors.New("core: checkpointing is not supported for multi-source learning")
	}
	var metrics pipeline.Metrics
	ttr := p.opts.Telemetry.Trace()
	run := ttr.Start(0, "run")
	before := p.gen.Stats()
	sp := metrics.Start("predicate")
	stage := p.startStage(run, "predicate")
	alphabet := make(map[string]*predicate.Predicate)
	seqs := make([]*learn.Seq, len(srcs))
	for i, src := range srcs {
		seq := learn.NewSeq()
		symIDs := map[*predicate.Predicate]int{}
		emit := func(r predicate.Run) error {
			id, ok := symIDs[r.Pred]
			if !ok {
				alphabet[r.Pred.Key] = r.Pred
				id = seq.InternSym(r.Pred.Key)
				symIDs[r.Pred] = id
			}
			seq.AppendID(id, r.Count)
			return nil
		}
		var err error
		if ctx := p.opts.Context; ctx != nil {
			err = p.gen.SequenceSource(&ctxSource{src: src, ctx: ctx}, emit)
		} else {
			err = p.gen.SequenceSource(src, emit)
		}
		if err != nil {
			ttr.End(stage)
			ttr.End(run)
			return nil, p.interrupted("predicate", fmt.Errorf("source %d: %w", i, err))
		}
		seqs[i] = seq
	}
	d := p.gen.Stats().Minus(before)
	endPredicateStage(ttr, stage, d)
	predicateSpan(sp, d)

	sp = metrics.Start("model")
	lo := p.opts.Learn
	lo.TraceSpan = p.startStage(run, "model")
	res, err := learn.GenerateModelSeqs(seqs, lo)
	endModelStage(ttr, lo.TraceSpan, res)
	ttr.End(run)
	if err != nil {
		if ierr := p.interrupted("model", err); ierr != err {
			return nil, ierr
		}
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	return &Model{
		Automaton:      res.Automaton,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// errCheckDone aborts the predicate stream once CheckSource has found
// its violation; it never escapes.
var errCheckDone = errors.New("core: check finished")

// CheckSource abstracts a streamed trace with the model's predicate
// generator and runs it through the automaton, returning the first
// violation or nil. It is Check for sources: the trace is never
// materialised, so arbitrarily long live traces can be monitored in
// bounded memory.
func (m *Model) CheckSource(src trace.Source) (*Violation, error) {
	known := map[string]bool{}
	for _, sym := range m.Automaton.Symbols() {
		known[sym] = true
	}
	cur := m.Automaton.Initial()
	pos := 0
	var s trace.Source = src
	if ctx := m.pipeline.opts.Context; ctx != nil {
		s = &ctxSource{src: src, ctx: ctx}
	}
	var v *Violation
	err := m.pipeline.gen.SequenceSource(s, func(r predicate.Run) error {
		for i := 0; i < r.Count; i++ {
			succ := m.Automaton.Successors(cur, r.Pred.Key)
			if len(succ) == 0 {
				v = &Violation{
					Position:    pos,
					Predicate:   r.Pred.Key,
					KnownSymbol: known[r.Pred.Key],
					State:       cur,
				}
				return errCheckDone
			}
			if succ[0] == cur {
				// Self-loop: the rest of the run stays put.
				pos += r.Count - i
				break
			}
			cur = succ[0]
			pos++
		}
		return nil
	})
	if err != nil && !errors.Is(err, errCheckDone) {
		return nil, err
	}
	return v, nil
}
