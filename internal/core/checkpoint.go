// Checkpointed streaming ingestion: this file drives LearnSource when
// core.Options.Checkpoint is enabled. The source is consumed in
// bounded epochs (Config.Every observations per SequenceSource call);
// each epoch boundary is a quiescent point — the windower and all its
// worker goroutines have returned, so the generator, the RLE run log
// and the consumed-observation count are mutually consistent at any
// worker count — and that is where ingest-phase checkpoints are
// written. Epochs change nothing observable: the next epoch's source
// first replays the last w−1 observations (no hashing, no counting) so
// the first new observation completes exactly the next unprocessed
// window, and learn.Seq.Append merges runs split at the boundary, so
// the final model is byte-identical to a single-pass run.
//
// Resume fast-forwards the source past the checkpointed offset,
// re-hashing the skipped prefix and refusing to continue unless it
// matches the checkpoint's running input digest; the generator,
// run log and (in the model phase) the refinement state are restored
// from the snapshot and the run continues as if never interrupted.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"maps"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/expr"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/trace"
)

// defaultEpoch is the ingest checkpoint interval in observations when
// Config.Every is zero.
const defaultEpoch = 100000

// renderSchema renders a schema the way model files do
// ("name:type[:input]" fields, comma-joined); checkpoints store it so
// resume can refuse a schema mismatch without parsing anything.
func renderSchema(schema *trace.Schema) string {
	fields := make([]string, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		v := schema.Var(i)
		f := v.Name + ":" + v.Type.String()
		if v.Role == trace.Input {
			f += ":input"
		}
		fields[i] = f
	}
	return strings.Join(fields, ",")
}

// ckptDriver owns everything checkpoint-specific about one LearnSource
// run: the running input digest, the priming ring, the epoch loop, the
// checkpoint manager and the learn-stage write hook.
type ckptDriver struct {
	p      *Pipeline
	cfg    checkpoint.Config
	man    *checkpoint.Manager
	from   *checkpoint.LoadResult // nil on a fresh run
	every  int
	schema string

	h      hash.Hash // running SHA-256 over consumed observations
	encBuf []byte
	offset int64

	// ring holds owned copies of the last w−1 consumed observations,
	// oldest evicted first: the priming prefix for the next epoch.
	ring    []trace.Observation
	ringN   int
	ringPos int

	pending trace.Observation // owned, prefetched across an epoch boundary

	seq *learn.Seq // the run log LearnSource is building (shared)

	// Ingestion state frozen at the ingest→model transition, reused by
	// every model-phase write.
	frozenPred *predicate.SnapshotState
	frozenSeq  *learn.SeqState

	// Learn-hook write dedup: skip writes whose refinement state is
	// unchanged (stats-only rounds), unless enough time has passed.
	wroteLearn     bool
	lastN          int
	lastBlocked    int
	lastSegments   int
	lastAnchors    int
	lastLearnWrite time.Time

	tr         *pipeline.Tracer
	runSpan    pipeline.SpanID
	cWrites    *pipeline.Counter64
	cBytes     *pipeline.Counter64
	hWriteNS   *pipeline.Histogram
	lastSeq    atomic.Int64
	lastOffset atomic.Int64
}

// newCkptDriver validates the configuration (and, when resuming, the
// checkpoint's compatibility with this run) and opens the checkpoint
// manager — a fresh chain, or a continuation of the loaded one.
func newCkptDriver(p *Pipeline, cfg checkpoint.Config) (*ckptDriver, error) {
	w := p.gen.Window()
	every := cfg.Every
	if every == 0 {
		every = defaultEpoch
	}
	if every < w {
		every = w
	}
	d := &ckptDriver{
		p:      p,
		cfg:    cfg,
		every:  every,
		schema: renderSchema(p.schema),
		h:      sha256.New(),
		ring:   make([]trace.Observation, w-1),
	}
	if cfg.From != nil {
		st := cfg.From.State
		if st.Schema != "" && st.Schema != d.schema {
			return nil, fmt.Errorf("core: resume: checkpoint schema %q does not match run schema %q", st.Schema, d.schema)
		}
		if len(st.Config) > 0 && len(cfg.Params) > 0 && !maps.Equal(st.Config, cfg.Params) {
			return nil, fmt.Errorf("core: resume: checkpoint was taken with different parameters (checkpoint %v, run %v)", st.Config, cfg.Params)
		}
		if st.Predicate == nil || st.SeqRLE == nil {
			return nil, errors.New("core: resume: checkpoint is missing pipeline state")
		}
		d.from = cfg.From
		d.man = checkpoint.ResumeManager(cfg.Dir, cfg.From)
	} else {
		man, err := checkpoint.NewManager(cfg.Dir)
		if err != nil {
			return nil, err
		}
		d.man = man
	}
	tel := p.opts.Telemetry
	d.tr = tel.Trace()
	d.cWrites = tel.Count("checkpoint_writes_total")
	d.cBytes = tel.Count("checkpoint_bytes_total")
	d.hWriteNS = tel.Hist("checkpoint_write_ns", "ns")
	d.lastSeq.Store(-1)
	tel.Gauge("checkpoint_last_seq", func() float64 { return float64(d.lastSeq.Load()) })
	tel.Gauge("checkpoint_last_offset", func() float64 { return float64(d.lastOffset.Load()) })
	return d, nil
}

// restore rebuilds the pipeline state a resumed run continues from:
// the predicate generator (interner, memo, alphabet, seeds, counters),
// the RLE run log, and the learn-stage refinement state if the
// checkpoint reached the model phase.
func (d *ckptDriver) restore() (*learn.Seq, map[string]*predicate.Predicate, *learn.CheckpointState, error) {
	st := d.from.State
	alphabet, err := d.p.gen.Restore(st.Predicate)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: resume: %w", err)
	}
	seq, err := learn.NewSeqFromState(st.SeqRLE)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: resume: %w", err)
	}
	return seq, alphabet, st.Learn, nil
}

// note accounts one newly consumed observation: running digest, ring,
// offset. Primed (replayed) observations never pass through here.
func (d *ckptDriver) note(obs trace.Observation) {
	b := d.encBuf[:0]
	b = binary.AppendUvarint(b, uint64(len(obs)))
	for _, v := range obs {
		b = append(b, byte(v.T))
		switch v.T {
		case expr.Int:
			b = binary.LittleEndian.AppendUint64(b, uint64(v.I))
		case expr.Bool:
			if v.B {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		default:
			b = binary.AppendUvarint(b, uint64(len(v.S)))
			b = append(b, v.S...)
		}
	}
	d.encBuf = b
	d.h.Write(b)
	if len(d.ring) > 0 {
		slot := d.ring[d.ringPos]
		d.ring[d.ringPos] = append(slot[:0], obs...)
		d.ringPos = (d.ringPos + 1) % len(d.ring)
		if d.ringN < len(d.ring) {
			d.ringN++
		}
	}
	d.offset++
}

// prime returns the last min(w−1, consumed) observations, oldest
// first — the replay prefix for the next epoch. The slices are the
// live ring slots; they are only overwritten by note, which the epoch
// source never calls before the whole prefix has been replayed.
func (d *ckptDriver) prime() []trace.Observation {
	out := make([]trace.Observation, 0, d.ringN)
	for i := 0; i < d.ringN; i++ {
		out = append(out, d.ring[(d.ringPos-d.ringN+i+2*len(d.ring))%len(d.ring)])
	}
	return out
}

// fastForward consumes the checkpointed prefix from the source,
// re-hashing it, and refuses to resume unless the hash matches the
// checkpoint's — the guarantee that a resumed run is continuing over
// the same input it started on.
func (d *ckptDriver) fastForward(src trace.Source) error {
	st := d.from.State
	ctx := d.p.opts.Context
	for i := int64(0); i < st.Offset; i++ {
		if ctx != nil && i&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		obs, err := src.Next()
		if err == io.EOF {
			return fmt.Errorf("core: resume: input ends after %d observations but checkpoint offset is %d — input changed since the checkpoint", i, st.Offset)
		}
		if err != nil {
			return err
		}
		d.note(obs)
	}
	if got := hex.EncodeToString(d.h.Sum(nil)); got != st.ObsSHA256 {
		return fmt.Errorf("core: resume: input prefix digest %s does not match checkpoint digest %s — refusing to resume over a different input", got, st.ObsSHA256)
	}
	return nil
}

// prefetch pulls one observation ahead of the next epoch, so an
// end-of-input lands the run in the model phase instead of starting an
// epoch that cannot contain a single new observation. Returns true at
// end of input.
func (d *ckptDriver) prefetch(src trace.Source) (bool, error) {
	obs, err := src.Next()
	if err == io.EOF {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	d.pending = append(trace.Observation(nil), obs...)
	return false, nil
}

// ingest streams the whole source through the generator in epochs,
// checkpointing at each boundary. On return the generator and d.seq
// hold the complete ingestion state (or an error is pending and no
// checkpoint was written for the incomplete epoch).
func (d *ckptDriver) ingest(src trace.Source, emit func(predicate.Run) error) error {
	ctx := d.p.opts.Context
	if d.from != nil {
		if err := d.fastForward(src); err != nil {
			return err
		}
	}
	eof, err := d.prefetch(src)
	if err != nil {
		return err
	}
	if eof {
		if d.from != nil {
			if d.from.State.Phase == checkpoint.PhaseIngest {
				return fmt.Errorf("core: resume: input ends at checkpoint offset %d mid-ingestion — input changed since the checkpoint", d.offset)
			}
			return nil // model-phase checkpoint: ingestion already complete
		}
		// Empty input on a fresh run: run one empty epoch so the
		// canonical shorter-than-window error surfaces.
	}
	for {
		es := &epochSource{
			drv:    d,
			src:    src,
			prime:  d.prime(),
			budget: d.every,
			ctx:    ctx,
			eof:    eof,
		}
		es.pending, d.pending = d.pending, nil
		if err := d.p.gen.SequenceSource(es, emit); err != nil {
			return err
		}
		if es.eof {
			return nil
		}
		eof, err = d.prefetch(src)
		if err != nil {
			return err
		}
		if eof {
			// The run log is complete; the model-phase checkpoint the
			// learn hook writes supersedes an ingest one here.
			return nil
		}
		if err := d.write(checkpoint.PhaseIngest, nil); err != nil {
			return err
		}
	}
}

// freezeIngest caches the completed ingestion state for reuse by every
// model-phase checkpoint (it no longer changes once the source is
// drained).
func (d *ckptDriver) freezeIngest() {
	d.frozenPred = d.p.gen.Snapshot()
	d.frozenSeq = d.seq.State()
}

// learnHook is installed as learn.Options.Checkpoint: it persists the
// refinement state at solver-round boundaries, skipping rounds whose
// refinement state is unchanged (unless 5s have passed, to keep the
// chain's timestamps fresh on long solves).
func (d *ckptDriver) learnHook(ls *learn.CheckpointState) error {
	anchors := 0
	for _, a := range ls.Anchored {
		if a {
			anchors++
		}
	}
	changed := !d.wroteLearn ||
		ls.N != d.lastN ||
		len(ls.Blocked) != d.lastBlocked ||
		len(ls.Segments) != d.lastSegments ||
		anchors != d.lastAnchors
	if !changed && time.Since(d.lastLearnWrite) < 5*time.Second {
		return nil
	}
	if err := d.write(checkpoint.PhaseModel, ls); err != nil {
		return err
	}
	d.wroteLearn = true
	d.lastN = ls.N
	d.lastBlocked = len(ls.Blocked)
	d.lastSegments = len(ls.Segments)
	d.lastAnchors = anchors
	d.lastLearnWrite = time.Now()
	return nil
}

// write assembles and atomically persists one checkpoint.
func (d *ckptDriver) write(phase string, ls *learn.CheckpointState) error {
	st := &checkpoint.State{
		Tool:      d.cfg.Tool,
		Phase:     phase,
		Config:    d.cfg.Params,
		Schema:    d.schema,
		Input:     d.cfg.Input,
		Offset:    d.offset,
		ObsSHA256: hex.EncodeToString(d.h.Sum(nil)),
	}
	if phase == checkpoint.PhaseModel {
		st.Predicate = d.frozenPred
		st.SeqRLE = d.frozenSeq
		st.Learn = ls
	} else {
		st.Predicate = d.p.gen.Snapshot()
		st.SeqRLE = d.seq.State()
	}
	var span pipeline.SpanID
	if d.tr.Enabled() {
		span = d.tr.Start(d.runSpan, "checkpoint",
			pipeline.Str("phase", phase),
			pipeline.Int("offset", d.offset))
	}
	t0 := time.Now()
	n, err := d.man.Write(st)
	d.hWriteNS.Since(t0)
	if d.tr.Enabled() {
		d.tr.End(span,
			pipeline.Int("seq", int64(st.Seq)),
			pipeline.Int("bytes", n))
	}
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	d.cWrites.Add(1)
	d.cBytes.Add(n)
	d.lastSeq.Store(int64(st.Seq))
	d.lastOffset.Store(d.offset)
	return nil
}

// epochSource feeds the windower one bounded epoch: first the replay
// prefix (the previous epoch's last w−1 observations, not re-counted),
// then up to budget new observations from the underlying source, then
// EOF. All driver accounting (hash, ring, offset) happens here, on the
// single goroutine the windower reads the source from.
type epochSource struct {
	drv     *ckptDriver
	src     trace.Source
	prime   []trace.Observation
	pi      int
	pending trace.Observation // first new observation, prefetched
	budget  int
	took    int
	eof     bool
	ctx     context.Context
}

func (es *epochSource) Schema() *trace.Schema { return es.src.Schema() }

func (es *epochSource) Next() (trace.Observation, error) {
	if es.pi < len(es.prime) {
		obs := es.prime[es.pi]
		es.pi++
		return obs, nil
	}
	if es.budget <= 0 || es.eof {
		return nil, io.EOF
	}
	if es.ctx != nil && es.took&1023 == 0 {
		if err := es.ctx.Err(); err != nil {
			return nil, err
		}
	}
	var obs trace.Observation
	if es.pending != nil {
		obs, es.pending = es.pending, nil
	} else {
		o, err := es.src.Next()
		if err == io.EOF {
			es.eof = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		obs = o
	}
	es.drv.note(obs)
	es.budget--
	es.took++
	return obs, nil
}

// ctxSource makes a plain (non-checkpointed) streaming run cancellable
// between observations.
type ctxSource struct {
	src  trace.Source
	ctx  context.Context
	took int
}

func (s *ctxSource) Schema() *trace.Schema { return s.src.Schema() }

func (s *ctxSource) Next() (trace.Observation, error) {
	if s.took&255 == 0 {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
	}
	s.took++
	return s.src.Next()
}

// interrupted wraps err with the stage the run was cancelled in when
// the run context is done; otherwise it returns err unchanged.
func (p *Pipeline) interrupted(stage string, err error) error {
	if ctx := p.opts.Context; ctx != nil && ctx.Err() != nil {
		return fmt.Errorf("core: interrupted at stage %s: %w", stage, err)
	}
	return err
}
