// Package core wires the paper's pipeline together: trace →
// transition-predicate sequence (internal/predicate) → SAT-based
// minimal automaton (internal/learn). It is the home of the paper's
// primary contribution; the repository-root package repro is a thin
// façade over it.
//
// Beyond learning, the package implements the monitoring application
// the paper motivates for the RT-Linux benchmark (de Oliveira et al.
// use hand-drawn kernel models as runtime monitors): a learned Model
// can Check fresh traces of the same system and report the first
// behaviour the model does not explain, which is either a coverage
// gap or a regression.
package core

import (
	"errors"
	"fmt"

	"repro/internal/automaton"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/trace"
)

// Options configures a Pipeline. Zero values select the paper's
// defaults (see the field docs of predicate.Options and
// learn.Options).
type Options struct {
	Predicate predicate.Options
	Learn     learn.Options
}

// Pipeline learns models from traces over one schema. The predicate
// generator is stateful (window memoisation, next-function seeds), so
// learning several traces of the same system through one Pipeline
// yields a consistent predicate alphabet.
type Pipeline struct {
	schema *trace.Schema
	opts   Options
	gen    *predicate.Generator
}

// NewPipeline returns a pipeline for the schema.
func NewPipeline(schema *trace.Schema, opts Options) (*Pipeline, error) {
	gen, err := predicate.NewGenerator(schema, opts.Predicate)
	if err != nil {
		return nil, err
	}
	return &Pipeline{schema: schema, opts: opts, gen: gen}, nil
}

// Generator exposes the pipeline's predicate generator.
func (p *Pipeline) Generator() *predicate.Generator { return p.gen }

// Model is a learned model bound to its pipeline, so it can abstract
// and check further traces.
type Model struct {
	Automaton *automaton.NFA
	P         []string
	Alphabet  map[string]*predicate.Predicate
	States    int

	PredicateStats predicate.Stats
	LearnStats     learn.Stats
	// Stages is the per-stage metrics report for this learning run:
	// wall/CPU time and counters for the predicate-abstraction and
	// model-construction stages.
	Stages []pipeline.StageMetrics

	pipeline *Pipeline
}

// SetWorkers sets the worker count the model's predicate generator
// uses when abstracting further traces (Check); see
// predicate.Options.Workers.
func (m *Model) SetWorkers(n int) { m.pipeline.gen.SetWorkers(n) }

// predicateSpan ends a predicate-abstraction span with the stage's
// counters, computed as the generator-stats delta across the stage.
func predicateSpan(sp *pipeline.Span, d predicate.Stats) {
	sp.Add("windows", int64(d.Windows)).
		Add("memo_hits", int64(d.MemoHits)).
		Add("unique_windows", int64(d.UniqueWindows)).
		Add("synth_calls", int64(d.SynthCalls)).
		Add("seed_hits", int64(d.SeedHits)).
		End()
}

// modelSpan ends a model-construction span with the solver counters.
func modelSpan(sp *pipeline.Span, s learn.Stats) {
	sp.Add("segments", int64(s.Segments)).
		Add("solver_calls", int64(s.SolverCalls)).
		Add("refinements", int64(s.Refinements+s.AcceptRefinements)).
		Add("sat_conflicts", s.SATConflicts).
		Add("sat_decisions", s.SATDecisions).
		Add("sat_propagations", s.SATPropagations).
		Add("sat_learned", s.SATLearned).
		Add("states", int64(s.FinalStates)).
		End()
}

// Learn runs the full pipeline on one trace.
func (p *Pipeline) Learn(tr *trace.Trace) (*Model, error) {
	if tr == nil || tr.Len() < 2 {
		return nil, errors.New("core: trace must have at least 2 observations")
	}
	var metrics pipeline.Metrics
	before := p.gen.Stats()
	sp := metrics.Start("predicate")
	preds, err := p.gen.Sequence(tr)
	if err != nil {
		return nil, err
	}
	predicateSpan(sp, p.gen.Stats().Minus(before))
	P := make([]string, len(preds))
	alphabet := make(map[string]*predicate.Predicate)
	for i, pr := range preds {
		P[i] = pr.Key
		alphabet[pr.Key] = pr
	}
	sp = metrics.Start("model")
	res, err := learn.GenerateModel(P, p.opts.Learn)
	if err != nil {
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	return &Model{
		Automaton:      res.Automaton,
		P:              P,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// LearnAll learns one model from several traces of the same system —
// independent runs all starting in the same initial state, exercising
// behaviours one run alone may miss. Predicate abstraction is shared
// (one alphabet) and the learned automaton accepts every run.
func (p *Pipeline) LearnAll(trs []*trace.Trace) (*Model, error) {
	if len(trs) == 0 {
		return nil, errors.New("core: no traces")
	}
	var metrics pipeline.Metrics
	before := p.gen.Stats()
	sp := metrics.Start("predicate")
	Ps := make([][]string, len(trs))
	alphabet := make(map[string]*predicate.Predicate)
	for i, tr := range trs {
		if tr == nil || tr.Len() < 2 {
			return nil, fmt.Errorf("core: trace %d must have at least 2 observations", i)
		}
		preds, err := p.gen.Sequence(tr)
		if err != nil {
			return nil, fmt.Errorf("core: trace %d: %w", i, err)
		}
		P := make([]string, len(preds))
		for j, pr := range preds {
			P[j] = pr.Key
			alphabet[pr.Key] = pr
		}
		Ps[i] = P
	}
	predicateSpan(sp, p.gen.Stats().Minus(before))
	sp = metrics.Start("model")
	res, err := learn.GenerateModelMulti(Ps, p.opts.Learn)
	if err != nil {
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	var flat []string
	for _, P := range Ps {
		flat = append(flat, P...)
	}
	return &Model{
		Automaton:      res.Automaton,
		P:              flat,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// Violation reports the first behaviour of a checked trace that the
// model does not explain.
type Violation struct {
	// Position is the predicate-sequence index at which the run
	// died (≈ the trace observation index of the window).
	Position int
	// Predicate is the unexplained predicate.
	Predicate string
	// KnownSymbol reports whether the predicate occurs anywhere in
	// the model (false means entirely novel behaviour; true means a
	// known behaviour in an unexpected context).
	KnownSymbol bool
	// State is the model state the run was in.
	State automaton.State
}

// Error renders the violation.
func (v *Violation) Error() string {
	kind := "novel behaviour"
	if v.KnownSymbol {
		kind = "known behaviour in unexpected context"
	}
	return fmt.Sprintf("monitor: %s at position %d: %s (model state q%d)",
		kind, v.Position, v.Predicate, v.State+1)
}

// Check abstracts a fresh trace with the model's own predicate
// generator and runs it through the automaton, returning the first
// violation, or nil when the model explains the whole trace. The
// paper's monitoring application: learned kernel models checking live
// scheduler traces.
func (m *Model) Check(tr *trace.Trace) (*Violation, error) {
	preds, err := m.pipeline.gen.Sequence(tr)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, sym := range m.Automaton.Symbols() {
		known[sym] = true
	}
	cur := m.Automaton.Initial()
	for i, pr := range preds {
		succ := m.Automaton.Successors(cur, pr.Key)
		if len(succ) == 0 {
			return &Violation{
				Position:    i,
				Predicate:   pr.Key,
				KnownSymbol: known[pr.Key],
				State:       cur,
			}, nil
		}
		cur = succ[0]
	}
	return nil, nil
}

// Explain returns, for every automaton transition, one witness step
// index of the trace where the transition's predicate holds —
// documentation for each learned edge.
func (m *Model) Explain(tr *trace.Trace) (map[string]int, error) {
	witness := map[string]int{}
	for _, sym := range m.Automaton.Symbols() {
		pr, ok := m.Alphabet[sym]
		if !ok {
			continue
		}
		for step := 0; step < tr.Steps(); step++ {
			holds, err := tr.HoldsAt(pr.Expr, step)
			if err != nil {
				return nil, err
			}
			if holds {
				witness[sym] = step
				break
			}
		}
	}
	return witness, nil
}
