// Package core wires the paper's pipeline together: trace →
// transition-predicate sequence (internal/predicate) → SAT-based
// minimal automaton (internal/learn). It is the home of the paper's
// primary contribution; the repository-root package repro is a thin
// façade over it.
//
// Beyond learning, the package implements the monitoring application
// the paper motivates for the RT-Linux benchmark (de Oliveira et al.
// use hand-drawn kernel models as runtime monitors): a learned Model
// can Check fresh traces of the same system and report the first
// behaviour the model does not explain, which is either a coverage
// gap or a regression.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/automaton"
	"repro/internal/checkpoint"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/synthcache"
	"repro/internal/trace"
)

// Options configures a Pipeline. Zero values select the paper's
// defaults (see the field docs of predicate.Options and
// learn.Options).
type Options struct {
	Predicate predicate.Options
	Learn     learn.Options
	// Telemetry attaches a run tracer and metric registry to every
	// learning run of the pipeline: run → stage → unit spans in the
	// trace, counters and latency histograms in the registry. Nil
	// disables all recording at near-zero cost; telemetry never
	// changes results.
	Telemetry *pipeline.Telemetry
	// Context cancels learning and checking runs at safe boundaries:
	// between observations during ingestion, inside synthesis, and
	// between solver rounds during model construction. Nil means never
	// cancelled. Cancellation surfaces as an "interrupted at stage X"
	// error and never leaves partial state behind.
	Context context.Context
	// Checkpoint enables periodic crash-consistent snapshots of
	// LearnSource runs, and resume from them (see internal/checkpoint
	// and checkpoint.go). The zero value disables checkpointing.
	Checkpoint checkpoint.Config
}

// Pipeline learns models from traces over one schema. The predicate
// generator is stateful (window memoisation, next-function seeds), so
// learning several traces of the same system through one Pipeline
// yields a consistent predicate alphabet.
type Pipeline struct {
	schema *trace.Schema
	opts   Options
	gen    *predicate.Generator
}

// NewPipeline returns a pipeline for the schema.
func NewPipeline(schema *trace.Schema, opts Options) (*Pipeline, error) {
	if opts.Context != nil {
		opts.Predicate.Context = opts.Context
		opts.Learn.Context = opts.Context
	}
	gen, err := predicate.NewGenerator(schema, opts.Predicate)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{schema: schema, opts: opts, gen: gen}
	if opts.Telemetry != nil {
		p.SetTelemetry(opts.Telemetry)
	}
	return p, nil
}

// SetTelemetry attaches (or replaces) the pipeline's telemetry after
// construction — the monitor path loads a persisted model first and
// attaches telemetry afterwards. Must not run concurrently with a
// learning run.
func (p *Pipeline) SetTelemetry(tel *pipeline.Telemetry) {
	p.opts.Telemetry = tel
	p.opts.Learn.Telemetry = tel
	p.gen.SetTelemetry(tel, 0)
}

// startStage opens a stage trace span under the run span and points
// the predicate generator's unit spans at it. Returns the span id (0
// when tracing is off).
func (p *Pipeline) startStage(run pipeline.SpanID, name string) pipeline.SpanID {
	tr := p.opts.Telemetry.Trace()
	if !tr.Enabled() {
		return 0
	}
	id := tr.Start(run, name)
	if name == "predicate" {
		p.gen.SetTelemetry(p.opts.Telemetry, id)
	}
	return id
}

// Generator exposes the pipeline's predicate generator.
func (p *Pipeline) Generator() *predicate.Generator { return p.gen }

// Model is a learned model bound to its pipeline, so it can abstract
// and check further traces.
type Model struct {
	Automaton *automaton.NFA
	P         []string
	Alphabet  map[string]*predicate.Predicate
	States    int

	PredicateStats predicate.Stats
	LearnStats     learn.Stats
	// Stages is the per-stage metrics report for this learning run:
	// wall/CPU time and counters for the predicate-abstraction and
	// model-construction stages.
	Stages []pipeline.StageMetrics

	pipeline *Pipeline
}

// SetWorkers sets the worker count the model's predicate generator
// uses when abstracting further traces (Check); see
// predicate.Options.Workers.
func (m *Model) SetWorkers(n int) { m.pipeline.gen.SetWorkers(n) }

// SetTelemetry attaches telemetry to the model's pipeline for the
// monitoring path (Check/CheckSource on a loaded model).
func (m *Model) SetTelemetry(tel *pipeline.Telemetry) { m.pipeline.SetTelemetry(tel) }

// SetContext attaches a cancellation context to the model's pipeline
// for the monitoring path: CheckSource stops between observations and
// in-flight synthesis aborts when ctx is cancelled.
func (m *Model) SetContext(ctx context.Context) {
	m.pipeline.opts.Context = ctx
	m.pipeline.gen.SetContext(ctx)
}

// SetSynthCache attaches a cross-run synthesis cache to the model's
// predicate generator for the monitoring path, so abstracting fresh
// traces of a known system reuses windows synthesised by any earlier
// run sharing the cache directory (see internal/synthcache).
func (m *Model) SetSynthCache(c *synthcache.Cache) { m.pipeline.gen.SetSynthCache(c) }

// BuildManifest assembles the run-manifest skeleton for this model:
// per-stage metrics, the registry's counters and histogram summaries,
// and the final model statistics. The caller fills in tool identity,
// created_at, config and inputs before writing (see pipeline.Manifest).
func (m *Model) BuildManifest(tel *pipeline.Telemetry) *pipeline.Manifest {
	man := &pipeline.Manifest{
		Version: pipeline.ManifestVersion,
		Stages:  pipeline.StageManifests(m.Stages),
	}
	mm := &pipeline.ModelManifest{
		States:            m.States,
		Symbols:           len(m.Alphabet),
		Segments:          m.LearnStats.Segments,
		SolverCalls:       m.LearnStats.SolverCalls,
		Refinements:       m.LearnStats.Refinements,
		AcceptRefinements: m.LearnStats.AcceptRefinements,
		SATConflicts:      m.LearnStats.SATConflicts,
		SATDecisions:      m.LearnStats.SATDecisions,
		SATPropagations:   m.LearnStats.SATPropagations,
		SATLearned:        m.LearnStats.SATLearned,
	}
	if m.Automaton != nil {
		mm.Transitions = m.Automaton.NumTransitions()
	}
	man.Model = mm
	if tel != nil && tel.Registry != nil {
		man.Counters = tel.Registry.CounterValues()
		man.Histograms = tel.Registry.Summaries()
	}
	return man
}

// predicateSpan ends a predicate-abstraction span with the stage's
// counters, computed as the generator-stats delta across the stage.
func predicateSpan(sp *pipeline.Span, d predicate.Stats) {
	sp.Add("windows", int64(d.Windows)).
		Add("memo_hits", int64(d.MemoHits)).
		Add("unique_windows", int64(d.UniqueWindows)).
		Add("synth_calls", int64(d.SynthCalls)).
		Add("seed_hits", int64(d.SeedHits)).
		End()
}

// endPredicateStage closes a predicate stage trace span with the
// generator-stats delta of the stage.
func endPredicateStage(tr *pipeline.Tracer, id pipeline.SpanID, d predicate.Stats) {
	if !tr.Enabled() {
		return
	}
	tr.End(id,
		pipeline.Int("windows", int64(d.Windows)),
		pipeline.Int("memo_hits", int64(d.MemoHits)),
		pipeline.Int("unique_windows", int64(d.UniqueWindows)),
		pipeline.Int("synth_calls", int64(d.SynthCalls)),
		pipeline.Int("seed_hits", int64(d.SeedHits)))
}

// endModelStage closes a model stage trace span with the search's
// solver counters (res may be nil on failed runs).
func endModelStage(tr *pipeline.Tracer, id pipeline.SpanID, res *learn.Result) {
	if !tr.Enabled() {
		return
	}
	if res == nil {
		tr.End(id, pipeline.Bool("ok", false))
		return
	}
	s := res.Stats
	tr.End(id,
		pipeline.Int("states", int64(s.FinalStates)),
		pipeline.Int("segments", int64(s.Segments)),
		pipeline.Int("solver_calls", int64(s.SolverCalls)),
		pipeline.Int("refinements", int64(s.Refinements+s.AcceptRefinements)),
		pipeline.Int("sat_conflicts", s.SATConflicts))
}

// modelSpan ends a model-construction span with the solver counters.
func modelSpan(sp *pipeline.Span, s learn.Stats) {
	sp.Add("segments", int64(s.Segments)).
		Add("solver_calls", int64(s.SolverCalls)).
		Add("refinements", int64(s.Refinements+s.AcceptRefinements)).
		Add("sat_conflicts", s.SATConflicts).
		Add("sat_decisions", s.SATDecisions).
		Add("sat_propagations", s.SATPropagations).
		Add("sat_learned", s.SATLearned).
		Add("states", int64(s.FinalStates)).
		End()
}

// Learn runs the full pipeline on one trace.
func (p *Pipeline) Learn(tr *trace.Trace) (*Model, error) {
	if tr == nil || tr.Len() < 2 {
		return nil, errors.New("core: trace must have at least 2 observations")
	}
	var metrics pipeline.Metrics
	ttr := p.opts.Telemetry.Trace()
	run := ttr.Start(0, "run")
	before := p.gen.Stats()
	sp := metrics.Start("predicate")
	stage := p.startStage(run, "predicate")
	preds, err := p.gen.Sequence(tr)
	if err != nil {
		ttr.End(stage)
		ttr.End(run)
		return nil, err
	}
	d := p.gen.Stats().Minus(before)
	endPredicateStage(ttr, stage, d)
	predicateSpan(sp, d)
	P := make([]string, len(preds))
	alphabet := make(map[string]*predicate.Predicate)
	for i, pr := range preds {
		P[i] = pr.Key
		alphabet[pr.Key] = pr
	}
	sp = metrics.Start("model")
	lo := p.opts.Learn
	lo.TraceSpan = p.startStage(run, "model")
	res, err := learn.GenerateModel(P, lo)
	endModelStage(ttr, lo.TraceSpan, res)
	ttr.End(run)
	if err != nil {
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	return &Model{
		Automaton:      res.Automaton,
		P:              P,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// LearnAll learns one model from several traces of the same system —
// independent runs all starting in the same initial state, exercising
// behaviours one run alone may miss. Predicate abstraction is shared
// (one alphabet) and the learned automaton accepts every run.
func (p *Pipeline) LearnAll(trs []*trace.Trace) (*Model, error) {
	if len(trs) == 0 {
		return nil, errors.New("core: no traces")
	}
	var metrics pipeline.Metrics
	ttr := p.opts.Telemetry.Trace()
	run := ttr.Start(0, "run")
	before := p.gen.Stats()
	sp := metrics.Start("predicate")
	stage := p.startStage(run, "predicate")
	Ps := make([][]string, len(trs))
	alphabet := make(map[string]*predicate.Predicate)
	for i, tr := range trs {
		if tr == nil || tr.Len() < 2 {
			ttr.End(stage)
			ttr.End(run)
			return nil, fmt.Errorf("core: trace %d must have at least 2 observations", i)
		}
		preds, err := p.gen.Sequence(tr)
		if err != nil {
			ttr.End(stage)
			ttr.End(run)
			return nil, fmt.Errorf("core: trace %d: %w", i, err)
		}
		P := make([]string, len(preds))
		for j, pr := range preds {
			P[j] = pr.Key
			alphabet[pr.Key] = pr
		}
		Ps[i] = P
	}
	d := p.gen.Stats().Minus(before)
	endPredicateStage(ttr, stage, d)
	predicateSpan(sp, d)
	sp = metrics.Start("model")
	lo := p.opts.Learn
	lo.TraceSpan = p.startStage(run, "model")
	res, err := learn.GenerateModelMulti(Ps, lo)
	endModelStage(ttr, lo.TraceSpan, res)
	ttr.End(run)
	if err != nil {
		return nil, fmt.Errorf("core: model construction: %w", err)
	}
	modelSpan(sp, res.Stats)
	var flat []string
	for _, P := range Ps {
		flat = append(flat, P...)
	}
	return &Model{
		Automaton:      res.Automaton,
		P:              flat,
		Alphabet:       alphabet,
		States:         res.Stats.FinalStates,
		PredicateStats: p.gen.Stats(),
		LearnStats:     res.Stats,
		Stages:         metrics.Stages(),
		pipeline:       p,
	}, nil
}

// Violation reports the first behaviour of a checked trace that the
// model does not explain.
type Violation struct {
	// Position is the predicate-sequence index at which the run
	// died (≈ the trace observation index of the window).
	Position int
	// Predicate is the unexplained predicate.
	Predicate string
	// KnownSymbol reports whether the predicate occurs anywhere in
	// the model (false means entirely novel behaviour; true means a
	// known behaviour in an unexpected context).
	KnownSymbol bool
	// State is the model state the run was in.
	State automaton.State
}

// Error renders the violation.
func (v *Violation) Error() string {
	kind := "novel behaviour"
	if v.KnownSymbol {
		kind = "known behaviour in unexpected context"
	}
	return fmt.Sprintf("monitor: %s at position %d: %s (model state q%d)",
		kind, v.Position, v.Predicate, v.State+1)
}

// Abstract maps a trace to its predicate-key sequence using the
// model's own generator, so the keys are alphabet-consistent with the
// model's transition labels. Windows unseen during learning are
// synthesized on the fly (and get fresh keys the automaton cannot
// know); the active prober uses this to locate and report divergences
// with their surrounding symbol context.
func (m *Model) Abstract(tr *trace.Trace) ([]string, error) {
	preds, err := m.pipeline.gen.Sequence(tr)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(preds))
	for i, pr := range preds {
		keys[i] = pr.Key
	}
	return keys, nil
}

// Check abstracts a fresh trace with the model's own predicate
// generator and runs it through the automaton, returning the first
// violation, or nil when the model explains the whole trace. The
// paper's monitoring application: learned kernel models checking live
// scheduler traces.
func (m *Model) Check(tr *trace.Trace) (*Violation, error) {
	preds, err := m.pipeline.gen.Sequence(tr)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, sym := range m.Automaton.Symbols() {
		known[sym] = true
	}
	cur := m.Automaton.Initial()
	for i, pr := range preds {
		succ := m.Automaton.Successors(cur, pr.Key)
		if len(succ) == 0 {
			return &Violation{
				Position:    i,
				Predicate:   pr.Key,
				KnownSymbol: known[pr.Key],
				State:       cur,
			}, nil
		}
		cur = succ[0]
	}
	return nil, nil
}

// Explain returns, for every automaton transition, one witness step
// index of the trace where the transition's predicate holds —
// documentation for each learned edge.
func (m *Model) Explain(tr *trace.Trace) (map[string]int, error) {
	witness := map[string]int{}
	for _, sym := range m.Automaton.Symbols() {
		pr, ok := m.Alphabet[sym]
		if !ok {
			continue
		}
		for step := 0; step < tr.Steps(); step++ {
			holds, err := tr.HoldsAt(pr.Expr, step)
			if err != nil {
				return nil, err
			}
			if holds {
				witness[sym] = step
				break
			}
		}
	}
	return witness, nil
}
