package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/trace"
)

func TestStateInvariantsCounter(t *testing.T) {
	tr := counterTrace(t, 60)
	p := testPipeline(t, tr.Schema())
	m, err := p.Learn(tr)
	if err != nil {
		t.Fatal(err)
	}
	invs, err := m.StateInvariants(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) == 0 {
		t.Fatal("no invariants")
	}
	totalVisits := 0
	for _, inv := range invs {
		totalVisits += inv.Visits
		if inv.Expr == nil {
			t.Fatalf("state q%d has nil invariant", inv.State+1)
		}
		// The invariant must be a predicate over current variables
		// only (no primed references).
		for name, v := range expr.Vars(inv.Expr) {
			if v.Primed {
				t.Errorf("invariant references primed variable %s", name)
			}
		}
	}
	if totalVisits != tr.Len() {
		t.Errorf("visits sum to %d, trace has %d observations", totalVisits, tr.Len())
	}
	// Soundness on the trace: replay and check each observation
	// satisfies its state's invariant.
	preds, err := p.gen.Sequence(tr)
	if err != nil {
		t.Fatal(err)
	}
	invOf := map[int]expr.Expr{}
	for _, inv := range invs {
		invOf[int(inv.State)] = inv.Expr
	}
	cur := m.Automaton.Initial()
	checkObs := func(i int, q int) {
		env := expr.MapEnv{Cur: map[string]expr.Value{}}
		for j := 0; j < tr.Schema().Len(); j++ {
			env.Cur[tr.Schema().Var(j).Name] = tr.At(i)[j]
		}
		v, err := invOf[q].Eval(env)
		if err != nil || !v.B {
			t.Fatalf("observation %d violates invariant of q%d: %v %v", i, q+1, v, err)
		}
	}
	for i, pr := range preds {
		checkObs(i, int(cur))
		succ := m.Automaton.Successors(cur, pr.Key)
		if len(succ) == 0 {
			t.Fatal("trace leaves model")
		}
		cur = succ[0]
	}
	checkObs(tr.Len()-1, int(cur))

	// The counter's value range must be bounded by the trace range
	// in every invariant: 1..5.
	for _, inv := range invs {
		s := inv.Expr.String()
		if s == "true" {
			t.Errorf("state q%d has trivial invariant", inv.State+1)
		}
	}
}

func TestStateInvariantsEventTrace(t *testing.T) {
	p := testPipeline(t, trace.EventSchema())
	var evs []string
	for i := 0; i < 10; i++ {
		evs = append(evs, "a", "b")
	}
	m, err := p.Learn(trace.FromEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	invs, err := m.StateInvariants(trace.FromEvents(evs), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range invs {
		if inv.Expr == nil {
			t.Fatalf("nil invariant for q%d", inv.State+1)
		}
	}
	// A non-conforming trace errors.
	if _, err := m.StateInvariants(trace.FromEvents([]string{"a", "a", "b"}), 2); err == nil {
		t.Error("non-conforming trace accepted")
	}
}
