package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/automaton"
	"repro/internal/expr"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/trace"
)

// Model persistence: a line-oriented text format ("t2m-model v1") that
// captures everything needed to reload a learned model and keep using
// it as a monitor on fresh traces of the same system —
//
//   - the trace schema (names, types, roles),
//   - the predicate-generator configuration (window) and its
//     accumulated next-function seeds, so a reloaded model abstracts
//     fresh traces to the same predicate text it was learned with,
//   - the predicate alphabet (canonical expression strings, which the
//     expression parser round-trips),
//   - the automaton (state count, initial state, transitions), and
//   - a trailing "genstate" line holding the full generator snapshot
//     (interner + window memo + seeds, the checkpoint encoding of
//     DESIGN.md note 14) as one JSON object.
//
// The genstate section is what makes a reload abstraction-faithful:
// seeds alone are not enough, because synthesis with the *final* seed
// pool can pick a later-seeded expression for an early window that was
// originally synthesized before that seed existed (observed on the
// serial port's mixed-event windows, where the reloaded model then
// rejected its own training trace). Restoring the memo replays every
// learned window to its original predicate exactly; only genuinely
// novel windows reach the synthesizer. Files without the section (from
// older writers) still load, with the old seeds-only behaviour.
//
// The format is deliberately human-readable; learned models are design
// artifacts people review (the one JSON line is the machine-shaped
// tail).

const modelMagic = "t2m-model v1"

// WriteModel serialises the model.
func WriteModel(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, modelMagic)

	schema := m.pipeline.schema
	fields := make([]string, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		v := schema.Var(i)
		f := v.Name + ":" + v.Type.String()
		if v.Role == trace.Input {
			f += ":input"
		}
		fields[i] = f
	}
	fmt.Fprintf(bw, "schema %s\n", strings.Join(fields, ","))
	fmt.Fprintf(bw, "window %d\n", m.pipeline.gen.Window())
	fmt.Fprintf(bw, "states %d\n", m.Automaton.NumStates())
	fmt.Fprintf(bw, "initial %d\n", m.Automaton.Initial())

	// Alphabet in first-seen order, referenced by index below.
	symbols := m.Automaton.Symbols()
	symID := make(map[string]int, len(symbols))
	fmt.Fprintf(bw, "alphabet %d\n", len(symbols))
	for i, sym := range symbols {
		symID[sym] = i
		fmt.Fprintf(bw, "p%d %s\n", i, sym)
	}

	trs := m.Automaton.Transitions()
	fmt.Fprintf(bw, "transitions %d\n", len(trs))
	for _, tr := range trs {
		fmt.Fprintf(bw, "%d p%d %d\n", tr.From, symID[tr.Symbol], tr.To)
	}

	seeds := m.pipeline.gen.Seeds()
	names := make([]string, 0, len(seeds))
	total := 0
	for name, es := range seeds {
		names = append(names, name)
		total += len(es)
	}
	sort.Strings(names)
	fmt.Fprintf(bw, "seeds %d\n", total)
	for _, name := range names {
		for _, e := range seeds[name] {
			fmt.Fprintf(bw, "%s %s\n", name, e)
		}
	}

	js, err := json.Marshal(m.pipeline.gen.Snapshot())
	if err != nil {
		return fmt.Errorf("model: generator snapshot: %w", err)
	}
	fmt.Fprintf(bw, "genstate %s\n", js)
	return bw.Flush()
}

// ReadModel deserialises a model written by WriteModel. The returned
// model carries a fresh Pipeline primed with the saved seeds, so Check
// and Explain behave as on the original.
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := func() (string, error) {
		for sc.Scan() {
			l := strings.TrimSpace(sc.Text())
			if l != "" {
				return l, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	l, err := line()
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	if l != modelMagic {
		return nil, fmt.Errorf("model: bad magic %q", l)
	}

	// schema
	l, err = line()
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	rest, ok := strings.CutPrefix(l, "schema ")
	if !ok {
		return nil, fmt.Errorf("model: expected schema line, got %q", l)
	}
	var vars []trace.VarDef
	for _, f := range strings.Split(rest, ",") {
		parts := strings.Split(f, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("model: bad schema field %q", f)
		}
		var ty expr.Type
		switch parts[1] {
		case "int":
			ty = expr.Int
		case "bool":
			ty = expr.Bool
		case "sym":
			ty = expr.Sym
		default:
			return nil, fmt.Errorf("model: bad type in schema field %q", f)
		}
		role := trace.State
		if len(parts) == 3 {
			if parts[2] != "input" {
				return nil, fmt.Errorf("model: bad role in schema field %q", f)
			}
			role = trace.Input
		}
		vars = append(vars, trace.VarDef{Name: parts[0], Type: ty, Role: role})
	}
	schema, err := trace.NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	types := schema.Types()

	intField := func(prefix string) (int, error) {
		l, err := line()
		if err != nil {
			return 0, err
		}
		rest, ok := strings.CutPrefix(l, prefix+" ")
		if !ok {
			return 0, fmt.Errorf("expected %q line, got %q", prefix, l)
		}
		return strconv.Atoi(rest)
	}

	window, err := intField("window")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	states, err := intField("states")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	initial, err := intField("initial")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	nfa, err := automaton.New(states, automaton.State(initial))
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}

	nAlpha, err := intField("alphabet")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	symbols := make([]string, nAlpha)
	alphabet := make(map[string]*predicate.Predicate, nAlpha)
	exprs := make(map[string]expr.Expr, nAlpha)
	for i := 0; i < nAlpha; i++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		tag, text, ok := strings.Cut(l, " ")
		if !ok || tag != fmt.Sprintf("p%d", i) {
			return nil, fmt.Errorf("model: bad alphabet line %q", l)
		}
		e, err := expr.Parse(text, types)
		if err != nil {
			return nil, fmt.Errorf("model: alphabet entry %d: %w", i, err)
		}
		symbols[i] = e.String()
		if symbols[i] != text {
			return nil, fmt.Errorf("model: alphabet entry %d is not canonical: %q vs %q", i, text, symbols[i])
		}
		alphabet[text] = &predicate.Predicate{Expr: e, Key: text}
		exprs[text] = e
	}

	nTrans, err := intField("transitions")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	for i := 0; i < nTrans; i++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		parts := strings.Fields(l)
		if len(parts) != 3 || !strings.HasPrefix(parts[1], "p") {
			return nil, fmt.Errorf("model: bad transition line %q", l)
		}
		from, err1 := strconv.Atoi(parts[0])
		sym, err2 := strconv.Atoi(parts[1][1:])
		to, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || sym < 0 || sym >= nAlpha {
			return nil, fmt.Errorf("model: bad transition line %q", l)
		}
		if err := nfa.AddTransition(automaton.State(from), symbols[sym], automaton.State(to)); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
	}

	nSeeds, err := intField("seeds")
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	seeds := map[string][]expr.Expr{}
	for i := 0; i < nSeeds; i++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		name, text, ok := strings.Cut(l, " ")
		if !ok || schema.Index(name) < 0 {
			return nil, fmt.Errorf("model: bad seed line %q", l)
		}
		e, err := expr.Parse(text, types)
		if err != nil {
			return nil, fmt.Errorf("model: seed %d: %w", i, err)
		}
		seeds[name] = append(seeds[name], e)
	}

	// Optional generator-state tail: the full interner + window-memo
	// snapshot. When present it supersedes the seeds section (which it
	// also contains) and makes the reload abstraction-faithful.
	var snap *predicate.SnapshotState
	if l, err := line(); err == nil {
		rest, ok := strings.CutPrefix(l, "genstate ")
		if !ok {
			return nil, fmt.Errorf("model: unexpected trailing line %q", l)
		}
		snap = &predicate.SnapshotState{}
		if err := json.Unmarshal([]byte(rest), snap); err != nil {
			return nil, fmt.Errorf("model: genstate: %w", err)
		}
	} else if err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("model: %w", err)
	}

	pipeline, err := NewPipeline(schema, Options{
		Predicate: predicate.Options{Window: window},
		Learn:     learn.Options{Segmented: true},
	})
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	if snap != nil {
		if _, err := pipeline.gen.Restore(snap); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
	} else {
		pipeline.gen.SetSeeds(seeds)
	}

	return &Model{
		Automaton: nfa,
		Alphabet:  alphabet,
		States:    states,
		pipeline:  pipeline,
	}, nil
}
