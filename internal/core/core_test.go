package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/trace"
)

func testPipeline(t *testing.T, schema *trace.Schema) *Pipeline {
	t.Helper()
	p, err := NewPipeline(schema, Options{Learn: learn.Options{Segmented: true}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(trace.EventSchema(), Options{
		Predicate: predicate.Options{Window: 1},
	}); err == nil {
		t.Error("window 1 accepted")
	}
	p := testPipeline(t, trace.EventSchema())
	if _, err := p.Learn(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := p.Learn(trace.FromEvents([]string{"a"})); err == nil {
		t.Error("1-observation trace accepted")
	}
}

func TestLearnAndCheck(t *testing.T) {
	p := testPipeline(t, trace.EventSchema())
	var evs []string
	for i := 0; i < 10; i++ {
		evs = append(evs, "a", "b")
	}
	m, err := p.Learn(trace.FromEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	if m.States == 0 || len(m.P) != len(evs)-1 {
		t.Fatalf("model: states=%d |P|=%d", m.States, len(m.P))
	}
	v, err := m.Check(trace.FromEvents([]string{"a", "b", "a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("conforming trace flagged: %v", v)
	}
	v, err = m.Check(trace.FromEvents([]string{"a", "a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("aa not flagged")
	}
	if v.Position != 1 || !v.KnownSymbol {
		t.Errorf("violation = %+v, want position 1, known symbol", v)
	}
}

func TestCheckSchemaMismatch(t *testing.T) {
	p := testPipeline(t, trace.EventSchema())
	m, err := p.Learn(trace.FromEvents([]string{"a", "b", "a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	other := trace.New(trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int}))
	other.MustAppend(trace.Observation{expr.IntVal(1)})
	other.MustAppend(trace.Observation{expr.IntVal(2)})
	other.MustAppend(trace.Observation{expr.IntVal(3)})
	if _, err := m.Check(other); err == nil {
		t.Error("mismatched schema accepted by Check")
	}
}

func TestExplainAllSymbols(t *testing.T) {
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	tr := trace.New(schema)
	for _, v := range []int64{1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3, 4, 5, 4, 3, 2, 1} {
		tr.MustAppend(trace.Observation{expr.IntVal(v)})
	}
	p := testPipeline(t, schema)
	m, err := p.Learn(tr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Explain(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(m.Automaton.Symbols()) {
		t.Errorf("witnesses for %d of %d symbols", len(w), len(m.Automaton.Symbols()))
	}
	for sym, step := range w {
		pr := m.Alphabet[sym]
		ok, err := tr.HoldsAt(pr.Expr, step)
		if err != nil || !ok {
			t.Errorf("witness step %d for %q does not satisfy it (%v)", step, sym, err)
		}
	}
}

func TestPipelineSharedAlphabet(t *testing.T) {
	schema := trace.EventSchema()
	p := testPipeline(t, schema)
	m1, err := p.Learn(trace.FromEvents([]string{"x", "y", "x", "y", "x"}))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Learn(trace.FromEvents([]string{"y", "x", "y", "x", "y"}))
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.Alphabet {
		if _, ok := m2.Alphabet[k]; !ok {
			t.Errorf("alphabet diverged: %q missing from second model", k)
		}
	}
	if p.Generator() == nil {
		t.Error("nil generator")
	}
}
