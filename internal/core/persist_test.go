package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/automaton"
	"repro/internal/expr"
	"repro/internal/trace"
)

func counterTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	schema := trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
	tr := trace.New(schema)
	x, dir := int64(1), int64(1)
	for i := 0; i < n; i++ {
		tr.MustAppend(trace.Observation{expr.IntVal(x)})
		if x >= 5 {
			dir = -1
		} else if x <= 1 {
			dir = 1
		}
		x += dir
	}
	return tr
}

func TestModelRoundTrip(t *testing.T) {
	tr := counterTrace(t, 40)
	p := testPipeline(t, tr.Schema())
	m, err := p.Learn(tr)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadModel: %v\nserialised:\n%s", err, buf.String())
	}

	if !automaton.Equivalent(m.Automaton, loaded.Automaton) {
		t.Errorf("automaton changed:\noriginal:\n%s\nloaded:\n%s", m.Automaton, loaded.Automaton)
	}
	if loaded.States != m.States {
		t.Errorf("states %d, want %d", loaded.States, m.States)
	}
	if len(loaded.Alphabet) != len(m.Alphabet) {
		t.Errorf("alphabet %d, want %d", len(loaded.Alphabet), len(m.Alphabet))
	}

	// The loaded model must monitor identically: same verdicts on a
	// conforming and a violating trace.
	conforming := counterTrace(t, 25)
	v1, err := m.Check(conforming)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := loaded.Check(conforming)
	if err != nil {
		t.Fatal(err)
	}
	if (v1 == nil) != (v2 == nil) {
		t.Errorf("verdicts differ on conforming trace: %v vs %v", v1, v2)
	}
	// A trace that jumps by 2 violates both.
	bad := trace.New(tr.Schema())
	for _, x := range []int64{1, 2, 3, 5, 3, 2} {
		bad.MustAppend(trace.Observation{expr.IntVal(x)})
	}
	v1, _ = m.Check(bad)
	v2, _ = loaded.Check(bad)
	if v1 == nil || v2 == nil {
		t.Fatalf("violation missed: original %v, loaded %v", v1, v2)
	}
	if v1.Position != v2.Position || v1.Predicate != v2.Predicate {
		t.Errorf("violations differ: %+v vs %+v", v1, v2)
	}
}

func TestModelRoundTripEventSchema(t *testing.T) {
	p := testPipeline(t, trace.EventSchema())
	var evs []string
	for i := 0; i < 12; i++ {
		evs = append(evs, "a", "b", "c")
	}
	m, err := p.Learn(trace.FromEvents(evs))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !automaton.Equivalent(m.Automaton, loaded.Automaton) {
		t.Error("automaton changed")
	}
	v, err := loaded.Check(trace.FromEvents([]string{"a", "b", "c", "a"}))
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Errorf("conforming trace flagged after reload: %v", v)
	}
}

func TestReadModelErrors(t *testing.T) {
	bad := []string{
		"",
		"wrong magic\n",
		"t2m-model v1\nnoschema\n",
		"t2m-model v1\nschema x:float\n",
		"t2m-model v1\nschema x:int:bogus\n",
		"t2m-model v1\nschema x:int\nwindow z\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 5\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 0\nalphabet 1\nq0 x' = x\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 0\nalphabet 1\np0 x'' = = x\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 0\nalphabet 1\np0 x' = x\ntransitions 1\n0 p9 0\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 0\nalphabet 1\np0 x' = x\ntransitions 1\n0 p0 7\n",
		"t2m-model v1\nschema x:int\nwindow 3\nstates 1\ninitial 0\nalphabet 0\ntransitions 0\nseeds 1\nzz x\n",
	}
	for _, src := range bad {
		if _, err := ReadModel(strings.NewReader(src)); err == nil {
			t.Errorf("ReadModel accepted:\n%s", src)
		}
	}
}

func TestSeedsSurviveReload(t *testing.T) {
	tr := counterTrace(t, 40)
	p := testPipeline(t, tr.Schema())
	m, err := p.Learn(tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x x + 1") {
		t.Errorf("serialised model missing the x+1 seed:\n%s", buf.String())
	}
	loaded, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seeds := loaded.pipeline.gen.Seeds()
	if len(seeds["x"]) == 0 {
		t.Error("seeds not restored")
	}
}
