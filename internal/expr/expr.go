package expr

import "fmt"

// Op enumerates the operators of the predicate language.
type Op uint8

// Operators. Arithmetic operators apply to Int operands; comparison
// operators compare Int (all six) or Bool/Sym (equality only); logical
// operators apply to Bool operands.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpNeg
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpIte
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpNeg: "-",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||", OpNot: "!", OpIte: "ite",
}

// String returns the surface syntax of the operator.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Expr is an immutable expression tree node. Implementations are Lit,
// Var, Unary, Binary and Ite. Expressions compare equal exactly when
// their canonical String forms are equal.
type Expr interface {
	// Type returns the static type of the expression. Expressions
	// produced by this package are always well-typed.
	Type() Type
	// Eval evaluates the expression in env.
	Eval(env Env) (Value, error)
	// Size is the node count, used by the synthesizer to rank
	// candidate expressions by conciseness.
	Size() int
	// String renders canonical surface syntax that the package
	// parser accepts; it doubles as the structural identity key.
	String() string
	// appendTo appends the canonical form to b and returns the
	// extended slice; the []byte plumbing keeps composite printing
	// (And-chains, window predicates) down to one allocation per
	// String call instead of one per node.
	appendTo(b []byte) []byte
}

// Lit is a literal constant.
type Lit struct {
	Val Value
}

// IntLit returns an integer literal expression.
func IntLit(i int64) *Lit { return &Lit{Val: IntVal(i)} }

// BoolLit returns a boolean literal expression.
func BoolLit(b bool) *Lit { return &Lit{Val: BoolVal(b)} }

// SymLit returns a symbol literal expression.
func SymLit(s string) *Lit { return &Lit{Val: SymVal(s)} }

// Type implements Expr.
func (l *Lit) Type() Type { return l.Val.T }

// Eval implements Expr.
func (l *Lit) Eval(Env) (Value, error) { return l.Val, nil }

// Size implements Expr.
func (l *Lit) Size() int { return 1 }

// String implements Expr.
func (l *Lit) String() string { return string(l.appendTo(nil)) }

func (l *Lit) appendTo(b []byte) []byte {
	if l.Val.T == Sym {
		// Symbols are quoted so that event names can never be
		// confused with variable references.
		b = append(b, '\'')
		b = append(b, l.Val.S...)
		return append(b, '\'')
	}
	return l.Val.AppendString(b)
}

// Var references a trace variable, either its current value (Primed
// false, written `x`) or its next-state value (Primed true, written
// `x'`).
type Var struct {
	Name   string
	Primed bool
	T      Type
}

// NewVar returns a reference to the current value of a variable.
func NewVar(name string, t Type) *Var { return &Var{Name: name, T: t} }

// NewPrimedVar returns a reference to the next-state value of a variable.
func NewPrimedVar(name string, t Type) *Var { return &Var{Name: name, Primed: true, T: t} }

// Type implements Expr.
func (v *Var) Type() Type { return v.T }

// Eval implements Expr.
func (v *Var) Eval(env Env) (Value, error) {
	val, ok := env.Lookup(v.Name, v.Primed)
	if !ok {
		return Value{}, evalErrf(v, "unbound variable")
	}
	if val.T != v.T {
		return Value{}, evalErrf(v, "bound to %s value %s, want %s", val.T, val, v.T)
	}
	return val, nil
}

// Size implements Expr.
func (v *Var) Size() int { return 1 }

// String implements Expr.
func (v *Var) String() string { return string(v.appendTo(nil)) }

func (v *Var) appendTo(b []byte) []byte {
	b = append(b, v.Name...)
	if v.Primed {
		b = append(b, '\'')
	}
	return b
}

// Unary applies OpNeg (Int → Int) or OpNot (Bool → Bool).
type Unary struct {
	Op Op
	X  Expr
}

// Neg returns the arithmetic negation of x. Negation of an integer
// literal folds to a literal so that -5 has a single canonical form
// shared with the parser.
func Neg(x Expr) Expr {
	if lit, ok := x.(*Lit); ok && lit.Val.T == Int {
		return IntLit(-lit.Val.I)
	}
	return &Unary{Op: OpNeg, X: x}
}

// Not returns the logical negation of x.
func Not(x Expr) *Unary { return &Unary{Op: OpNot, X: x} }

// Type implements Expr.
func (u *Unary) Type() Type {
	if u.Op == OpNot {
		return Bool
	}
	return Int
}

// Eval implements Expr.
func (u *Unary) Eval(env Env) (Value, error) {
	x, err := u.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch u.Op {
	case OpNeg:
		if x.T != Int {
			return Value{}, evalErrf(u, "operand of - is %s, want int", x.T)
		}
		return IntVal(-x.I), nil
	case OpNot:
		if x.T != Bool {
			return Value{}, evalErrf(u, "operand of ! is %s, want bool", x.T)
		}
		return BoolVal(!x.B), nil
	default:
		return Value{}, evalErrf(u, "bad unary operator %s", u.Op)
	}
}

// Size implements Expr.
func (u *Unary) Size() int { return 1 + u.X.Size() }

// String implements Expr.
func (u *Unary) String() string { return string(u.appendTo(nil)) }

func (u *Unary) appendTo(b []byte) []byte {
	b = append(b, u.Op.String()...)
	b = append(b, '(')
	b = u.X.appendTo(b)
	return append(b, ')')
}

// Binary applies a binary operator to two operands. Well-typedness
// rules: arithmetic needs Int operands; ordering comparisons need Int
// operands; equality needs same-typed operands; logic needs Bool.
type Binary struct {
	Op   Op
	L, R Expr
}

// Add returns l + r.
func Add(l, r Expr) *Binary { return &Binary{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) *Binary { return &Binary{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) *Binary { return &Binary{Op: OpMul, L: l, R: r} }

// Eq returns l = r.
func Eq(l, r Expr) *Binary { return &Binary{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) *Binary { return &Binary{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) *Binary { return &Binary{Op: OpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) *Binary { return &Binary{Op: OpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) *Binary { return &Binary{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) *Binary { return &Binary{Op: OpGe, L: l, R: r} }

// And returns l && r.
func And(l, r Expr) *Binary { return &Binary{Op: OpAnd, L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) *Binary { return &Binary{Op: OpOr, L: l, R: r} }

// Type implements Expr.
func (e *Binary) Type() Type {
	switch e.Op {
	case OpAdd, OpSub, OpMul:
		return Int
	default:
		return Bool
	}
}

// Eval implements Expr.
func (e *Binary) Eval(env Env) (Value, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators before evaluating the right
	// operand, mirroring conventional semantics.
	switch e.Op {
	case OpAnd:
		if l.T != Bool {
			return Value{}, evalErrf(e, "left operand of && is %s, want bool", l.T)
		}
		if !l.B {
			return BoolVal(false), nil
		}
	case OpOr:
		if l.T != Bool {
			return Value{}, evalErrf(e, "left operand of || is %s, want bool", l.T)
		}
		if l.B {
			return BoolVal(true), nil
		}
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case OpAdd, OpSub, OpMul:
		if l.T != Int || r.T != Int {
			return Value{}, evalErrf(e, "operands of %s are %s,%s, want int,int", e.Op, l.T, r.T)
		}
		switch e.Op {
		case OpAdd:
			return IntVal(l.I + r.I), nil
		case OpSub:
			return IntVal(l.I - r.I), nil
		default:
			return IntVal(l.I * r.I), nil
		}
	case OpEq:
		if l.T != r.T {
			return Value{}, evalErrf(e, "comparing %s with %s", l.T, r.T)
		}
		return BoolVal(l.Equal(r)), nil
	case OpNe:
		if l.T != r.T {
			return Value{}, evalErrf(e, "comparing %s with %s", l.T, r.T)
		}
		return BoolVal(!l.Equal(r)), nil
	case OpLt, OpLe, OpGt, OpGe:
		if l.T != Int || r.T != Int {
			return Value{}, evalErrf(e, "operands of %s are %s,%s, want int,int", e.Op, l.T, r.T)
		}
		switch e.Op {
		case OpLt:
			return BoolVal(l.I < r.I), nil
		case OpLe:
			return BoolVal(l.I <= r.I), nil
		case OpGt:
			return BoolVal(l.I > r.I), nil
		default:
			return BoolVal(l.I >= r.I), nil
		}
	case OpAnd:
		if r.T != Bool {
			return Value{}, evalErrf(e, "right operand of && is %s, want bool", r.T)
		}
		return BoolVal(r.B), nil
	case OpOr:
		if r.T != Bool {
			return Value{}, evalErrf(e, "right operand of || is %s, want bool", r.T)
		}
		return BoolVal(r.B), nil
	default:
		return Value{}, evalErrf(e, "bad binary operator %s", e.Op)
	}
}

// Size implements Expr.
func (e *Binary) Size() int { return 1 + e.L.Size() + e.R.Size() }

// String implements Expr.
func (e *Binary) String() string { return string(e.appendTo(nil)) }

// precedence levels for printing and parsing; higher binds tighter.
func precedence(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul:
		return 5
	default:
		return 6
	}
}

func (e *Binary) appendTo(b []byte) []byte {
	b = appendOperand(b, e.L, precedence(e.Op), false)
	b = append(b, ' ')
	b = append(b, e.Op.String()...)
	b = append(b, ' ')
	return appendOperand(b, e.R, precedence(e.Op), true)
}

// appendOperand appends child, parenthesised when its top-level
// operator binds no tighter than the parent. Binary operators here are
// treated as left-associative, so a right child at equal precedence is
// also parenthesised; this keeps printing unambiguous and
// round-trippable.
func appendOperand(b []byte, child Expr, parentPrec int, rightChild bool) []byte {
	var childPrec int
	switch c := child.(type) {
	case *Binary:
		childPrec = precedence(c.Op)
	default:
		childPrec = 6
	}
	need := childPrec < parentPrec || (rightChild && childPrec == parentPrec)
	if need {
		b = append(b, '(')
	}
	b = child.appendTo(b)
	if need {
		b = append(b, ')')
	}
	return b
}

// Ite is the conditional expression ite(cond, then, else). Then and
// Else must share a type, which is the type of the whole expression.
type Ite struct {
	Cond, Then, Else Expr
}

// NewIte returns ite(cond, then, els).
func NewIte(cond, then, els Expr) *Ite { return &Ite{Cond: cond, Then: then, Else: els} }

// Type implements Expr.
func (e *Ite) Type() Type { return e.Then.Type() }

// Eval implements Expr.
func (e *Ite) Eval(env Env) (Value, error) {
	c, err := e.Cond.Eval(env)
	if err != nil {
		return Value{}, err
	}
	if c.T != Bool {
		return Value{}, evalErrf(e, "condition is %s, want bool", c.T)
	}
	if c.B {
		return e.Then.Eval(env)
	}
	return e.Else.Eval(env)
}

// Size implements Expr.
func (e *Ite) Size() int { return 1 + e.Cond.Size() + e.Then.Size() + e.Else.Size() }

// String implements Expr.
func (e *Ite) String() string { return string(e.appendTo(nil)) }

func (e *Ite) appendTo(b []byte) []byte {
	b = append(b, "ite("...)
	b = e.Cond.appendTo(b)
	b = append(b, ", "...)
	b = e.Then.appendTo(b)
	b = append(b, ", "...)
	b = e.Else.appendTo(b)
	return append(b, ')')
}

// Vars returns the set of variable references occurring in e, as a map
// from "name" or "name'" to the Var node.
func Vars(e Expr) map[string]*Var {
	out := map[string]*Var{}
	collectVars(e, out)
	return out
}

func collectVars(e Expr, out map[string]*Var) {
	switch n := e.(type) {
	case *Var:
		out[n.String()] = n
	case *Unary:
		collectVars(n.X, out)
	case *Binary:
		collectVars(n.L, out)
		collectVars(n.R, out)
	case *Ite:
		collectVars(n.Cond, out)
		collectVars(n.Then, out)
		collectVars(n.Else, out)
	}
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}
