package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var testTypes = map[string]Type{
	"x": Int, "y": Int, "ev": Sym, "flag": Bool,
}

func env(x, y int64, ev string, flag bool, xn, yn int64) MapEnv {
	return MapEnv{
		Cur: map[string]Value{
			"x": IntVal(x), "y": IntVal(y), "ev": SymVal(ev), "flag": BoolVal(flag),
		},
		Next: map[string]Value{
			"x": IntVal(xn), "y": IntVal(yn),
		},
	}
}

func TestEvalArithmetic(t *testing.T) {
	e := env(3, 4, "read", true, 5, 6)
	cases := []struct {
		src  string
		want Value
	}{
		{"x + y", IntVal(7)},
		{"x - y", IntVal(-1)},
		{"x * y", IntVal(12)},
		{"-(x)", IntVal(-3)},
		{"x + y * y", IntVal(19)},
		{"(x + y) * y", IntVal(28)},
		{"x' + y'", IntVal(11)},
		{"x' = x + 2", BoolVal(true)},
		{"x < y", BoolVal(true)},
		{"x <= 3", BoolVal(true)},
		{"x > y", BoolVal(false)},
		{"x >= 3", BoolVal(true)},
		{"x != y", BoolVal(true)},
		{"ev = 'read'", BoolVal(true)},
		{"ev != 'write'", BoolVal(true)},
		{"flag && x = 3", BoolVal(true)},
		{"flag || x = 99", BoolVal(true)},
		{"!(flag)", BoolVal(false)},
		{"ite(x < y, x, y)", IntVal(3)},
		{"ite(x > y, x, y)", IntVal(4)},
		{"ite(ev = 'read', x - 1, x + 1)", IntVal(2)},
		{"true", BoolVal(true)},
		{"false", BoolVal(false)},
		{"x - y - 1", IntVal(-2)}, // left associativity
	}
	for _, c := range cases {
		ex, err := Parse(c.src, testTypes)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := ex.Eval(e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Eval(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	// Unbound variable.
	ex := NewVar("z", Int)
	if _, err := ex.Eval(MapEnv{}); err == nil {
		t.Error("Eval of unbound variable succeeded, want error")
	}
	// Type mismatch surfaced at evaluation time when constructed
	// directly (bypassing the parser's checker).
	bad := Add(IntLit(1), BoolLit(true))
	if _, err := bad.Eval(MapEnv{}); err == nil {
		t.Error("Eval(1 + true) succeeded, want error")
	}
	// Wrongly-typed binding.
	e := MapEnv{Cur: map[string]Value{"x": SymVal("oops")}}
	if _, err := NewVar("x", Int).Eval(e); err == nil {
		t.Error("Eval of sym-bound int variable succeeded, want error")
	}
}

func TestShortCircuit(t *testing.T) {
	// Right operand references an unbound variable; short-circuit
	// evaluation must not touch it.
	unbound := NewVar("nope", Bool)
	if v, err := And(BoolLit(false), unbound).Eval(MapEnv{}); err != nil || v.B {
		t.Errorf("false && nope = %v, %v; want false, nil", v, err)
	}
	if v, err := Or(BoolLit(true), unbound).Eval(MapEnv{}); err != nil || !v.B {
		t.Errorf("true || nope = %v, %v; want true, nil", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x +",
		"x + * y",
		"(x",
		"z + 1",            // unknown variable
		"x && y",           // int operands to &&
		"flag + 1",         // bool operand to +
		"ev < 'read'",      // ordering on symbols
		"ite(x, y, y)",     // non-bool condition
		"ite(flag, x, ev)", // branch type mismatch
		"x = ev",           // cross-type equality
		"'unterminated",
		"x $ y",
		"x 1",
	}
	for _, src := range bad {
		if e, err := Parse(src, testTypes); err == nil {
			t.Errorf("Parse(%q) = %s, want error", src, e)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"x' = x + 1",
		"x' = ite(x >= 128, x - 1, x + 1)",
		"(x = 5 && y = 1) || (x = -5 && y = -1)",
		"ev = 'sched_waking' && x' = 0",
		"x - (y - 1)",
		"x - y - 1",
		"-(x) + y",
		"!(flag) && true",
		"x * (y + 2)",
	}
	for _, src := range srcs {
		e1, err := Parse(src, testTypes)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		s1 := e1.String()
		e2, err := Parse(s1, testTypes)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("round trip of %q: printed %q then %q", src, s1, s2)
		}
	}
}

// randExpr builds a random well-typed expression of the requested type
// over testTypes variables, for property testing.
func randExpr(r *rand.Rand, want Type, depth int) Expr {
	if depth <= 0 {
		switch want {
		case Int:
			if r.Intn(2) == 0 {
				return IntLit(int64(r.Intn(21) - 10))
			}
			if r.Intn(2) == 0 {
				return NewVar("x", Int)
			}
			return &Var{Name: "y", Primed: r.Intn(2) == 0, T: Int}
		case Bool:
			if r.Intn(3) == 0 {
				return BoolLit(r.Intn(2) == 0)
			}
			return NewVar("flag", Bool)
		default:
			if r.Intn(2) == 0 {
				return SymLit([]string{"read", "write", "reset"}[r.Intn(3)])
			}
			return NewVar("ev", Sym)
		}
	}
	switch want {
	case Int:
		switch r.Intn(5) {
		case 0:
			return Add(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		case 1:
			return Sub(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		case 2:
			return Mul(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		case 3:
			return Neg(randExpr(r, Int, depth-1))
		default:
			return NewIte(randExpr(r, Bool, depth-1), randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		}
	case Bool:
		switch r.Intn(7) {
		case 0:
			return And(randExpr(r, Bool, depth-1), randExpr(r, Bool, depth-1))
		case 1:
			return Or(randExpr(r, Bool, depth-1), randExpr(r, Bool, depth-1))
		case 2:
			return Not(randExpr(r, Bool, depth-1))
		case 3:
			return Eq(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		case 4:
			return Lt(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		case 5:
			return Eq(randExpr(r, Sym, 0), randExpr(r, Sym, 0))
		default:
			return Le(randExpr(r, Int, depth-1), randExpr(r, Int, depth-1))
		}
	default:
		return randExpr(r, Sym, 0)
	}
}

func randEnv(r *rand.Rand) MapEnv {
	return env(
		int64(r.Intn(21)-10), int64(r.Intn(21)-10),
		[]string{"read", "write", "reset"}[r.Intn(3)],
		r.Intn(2) == 0,
		int64(r.Intn(21)-10), int64(r.Intn(21)-10),
	)
}

// Property: printing then reparsing preserves both the canonical form
// and the value on random environments.
func TestPropertyPrintParseEval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		for _, ty := range []Type{Int, Bool} {
			e := randExpr(r, ty, 3)
			src := e.String()
			back, err := Parse(src, testTypes)
			if err != nil {
				t.Fatalf("reparse %q: %v", src, err)
			}
			if back.String() != src {
				t.Fatalf("canonical form changed: %q -> %q", src, back.String())
			}
			ev := randEnv(r)
			v1, err1 := e.Eval(ev)
			v2, err2 := back.Eval(ev)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("eval disagreement on %q: %v vs %v", src, err1, err2)
			}
			if err1 == nil && !v1.Equal(v2) {
				t.Fatalf("value disagreement on %q: %s vs %s", src, v1, v2)
			}
		}
	}
}

// Property: Simplify preserves value on random environments and never
// increases size.
func TestPropertySimplify(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		for _, ty := range []Type{Int, Bool} {
			e := randExpr(r, ty, 4)
			s := Simplify(e)
			if s.Size() > e.Size() {
				t.Fatalf("Simplify grew %q (%d) to %q (%d)", e, e.Size(), s, s.Size())
			}
			if s.Type() != e.Type() {
				t.Fatalf("Simplify changed type of %q: %s -> %s", e, e.Type(), s.Type())
			}
			for j := 0; j < 8; j++ {
				ev := randEnv(r)
				v1, err1 := e.Eval(ev)
				v2, err2 := s.Eval(ev)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("Simplify changed eval outcome of %q -> %q: %v vs %v", e, s, err1, err2)
				}
				if err1 == nil && !v1.Equal(v2) {
					t.Fatalf("Simplify changed value of %q -> %q: %s vs %s", e, s, v1, v2)
				}
			}
		}
	}
}

func TestSimplifyCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x + 0", "x"},
		{"0 + x", "x"},
		{"x - 0", "x"},
		{"x - x", "0"},
		{"x * 1", "x"},
		{"1 * x", "x"},
		{"x * 0", "0"},
		{"true && flag", "flag"},
		{"flag && false", "false"},
		{"flag || true", "true"},
		{"false || flag", "flag"},
		{"flag && flag", "flag"},
		{"!(!(flag))", "flag"},
		{"x = x", "true"},
		{"x < x", "false"},
		{"x <= x", "true"},
		{"ite(true, x, y)", "x"},
		{"ite(flag, x, x)", "x"},
		{"1 + 2 * 3", "7"},
		{"ite(3 < 2, x, y + 0)", "y"},
	}
	for _, c := range cases {
		e := MustParse(c.in, testTypes)
		got := Simplify(e).String()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestVars(t *testing.T) {
	e := MustParse("x' = ite(ev = 'read', x - 1, y + 1)", testTypes)
	vs := Vars(e)
	for _, want := range []string{"x'", "x", "y", "ev"} {
		if _, ok := vs[want]; !ok {
			t.Errorf("Vars missing %q (got %v)", want, vs)
		}
	}
	if len(vs) != 4 {
		t.Errorf("Vars returned %d entries, want 4", len(vs))
	}
}

func TestSize(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"x", 1},
		{"5", 1},
		{"x + 1", 3},
		{"ite(flag, x, y)", 4},
		{"x' = x + 1", 5},
	}
	for _, c := range cases {
		if got := MustParse(c.src, testTypes).Size(); got != c.want {
			t.Errorf("Size(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestSymbolQuotingNoCollision(t *testing.T) {
	// A symbol literal spelled like a variable must stay a literal.
	e := MustParse("ev = 'x'", testTypes)
	if !strings.Contains(e.String(), "'x'") {
		t.Errorf("symbol literal lost quoting: %q", e)
	}
	v, err := e.Eval(MapEnv{Cur: map[string]Value{"ev": SymVal("x")}})
	if err != nil || !v.B {
		t.Errorf("ev = 'x' with ev bound to x: got %v, %v", v, err)
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParse("x' = ite(ev = 'read', x - 1, x + 1)", testTypes)
	s := Simplify(Substitute(e, "ev", SymVal("read")))
	if got := s.String(); got != "x' = x - 1" {
		t.Errorf("Substitute read = %q, want x' = x - 1", got)
	}
	s = Simplify(Substitute(e, "ev", SymVal("write")))
	if got := s.String(); got != "x' = x + 1" {
		t.Errorf("Substitute write = %q, want x' = x + 1", got)
	}
	// Primed occurrences untouched; unrelated names untouched.
	e2 := MustParse("x' = x + y", testTypes)
	if got := Substitute(e2, "x", IntVal(5)).String(); got != "x' = 5 + y" {
		t.Errorf("Substitute x = %q, want x' = 5 + y", got)
	}
	if got := Substitute(e2, "zzz", IntVal(5)); got != e2 {
		t.Errorf("Substitute of absent var changed expression")
	}
}

// TestQuickValueEquality: Value.Equal is reflexive and symmetric over
// quick-generated values, and String is injective per type for ints.
func TestQuickValueEquality(t *testing.T) {
	f := func(a, b int64, s1, s2 string, x, y bool) bool {
		vals := []Value{
			IntVal(a), IntVal(b), SymVal(s1), SymVal(s2), BoolVal(x), BoolVal(y),
		}
		for _, v := range vals {
			if !v.Equal(v) {
				return false
			}
		}
		for _, v := range vals {
			for _, w := range vals {
				if v.Equal(w) != w.Equal(v) {
					return false
				}
			}
		}
		if (a == b) != IntVal(a).Equal(IntVal(b)) {
			return false
		}
		if IntVal(a).Equal(BoolVal(x)) || SymVal(s1).Equal(IntVal(a)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstituteGround: substituting every free current-state
// variable yields an expression whose value no longer depends on the
// environment's current bindings.
func TestQuickSubstituteGround(t *testing.T) {
	f := func(x, y, xn int64) bool {
		e := MustParse("x' = x + y", testTypes)
		g := Substitute(Substitute(e, "x", IntVal(x)), "y", IntVal(y))
		env1 := MapEnv{
			Cur:  map[string]Value{"x": IntVal(999), "y": IntVal(-999)},
			Next: map[string]Value{"x": IntVal(xn)},
		}
		env2 := MapEnv{Next: map[string]Value{"x": IntVal(xn)}}
		v1, err1 := g.Eval(env1)
		v2, err2 := g.Eval(env2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1.Equal(v2) && v1.B == (xn == x+y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
