// Package expr implements the typed expression language used for
// transition predicates on learned automata.
//
// Expressions are immutable trees over three value types: integers,
// booleans and symbols (interned strings used for enumeration-valued
// trace variables such as event names). Every expression can be
// evaluated against an environment binding current (x) and primed (x')
// trace variables, printed canonically, parsed back, sized for
// minimality comparisons, and simplified.
//
// The package is the common currency between the program synthesizer
// (internal/synth), the predicate abstraction (internal/predicate) and
// the model learner (internal/learn): the synthesizer produces the
// smallest Expr consistent with a set of input/output examples and the
// learner treats canonically-printed expressions as alphabet symbols.
package expr

import (
	"fmt"
	"strconv"
)

// Type identifies the value type of an expression or trace variable.
type Type uint8

// The three value types of the predicate language.
const (
	Int Type = iota // 64-bit signed integers
	Bool
	Sym // interned strings (event names, enum states)
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case Sym:
		return "sym"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a runtime value of the predicate language. The zero Value is
// the integer 0.
type Value struct {
	T Type
	I int64  // valid when T == Int
	B bool   // valid when T == Bool
	S string // valid when T == Sym
}

// IntVal returns an integer Value.
func IntVal(i int64) Value { return Value{T: Int, I: i} }

// BoolVal returns a boolean Value.
func BoolVal(b bool) Value { return Value{T: Bool, B: b} }

// SymVal returns a symbol Value.
func SymVal(s string) Value { return Value{T: Sym, S: s} }

// Equal reports whether two values have the same type and content.
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	switch v.T {
	case Int:
		return v.I == o.I
	case Bool:
		return v.B == o.B
	case Sym:
		return v.S == o.S
	}
	return false
}

// String formats the value as it appears in predicate source text. It
// is a thin wrapper over AppendString; hot paths that build composite
// keys should call AppendString on a reused buffer instead.
func (v Value) String() string {
	switch v.T {
	case Bool:
		// Shared constants: no allocation.
		if v.B {
			return "true"
		}
		return "false"
	case Sym:
		return v.S
	default:
		return string(v.AppendString(nil))
	}
}

// AppendString appends the value's canonical text to b and returns the
// extended slice, allocating only when b runs out of capacity (the
// append contract). It is the allocation-free building block behind
// String and the canonical-form printers.
func (v Value) AppendString(b []byte) []byte {
	switch v.T {
	case Int:
		return strconv.AppendInt(b, v.I, 10)
	case Bool:
		if v.B {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case Sym:
		return append(b, v.S...)
	default:
		b = append(b, "Value("...)
		b = strconv.AppendUint(b, uint64(v.T), 10)
		return append(b, ')')
	}
}

// Env supplies variable bindings during evaluation. Lookup reports the
// value of the named trace variable; primed selects the next-state copy
// (x' rather than x). The boolean result is false when the variable is
// not bound, which evaluation surfaces as an *EvalError.
type Env interface {
	Lookup(name string, primed bool) (Value, bool)
}

// MapEnv is a simple Env backed by two maps. A nil map is treated as
// empty. It is convenient for tests and for single-step evaluation.
type MapEnv struct {
	Cur  map[string]Value // bindings for unprimed variables
	Next map[string]Value // bindings for primed variables
}

// Lookup implements Env.
func (e MapEnv) Lookup(name string, primed bool) (Value, bool) {
	m := e.Cur
	if primed {
		m = e.Next
	}
	v, ok := m[name]
	return v, ok
}

// EvalError describes a failed evaluation: an unbound variable or a
// type mismatch between an operator and its operands.
type EvalError struct {
	Expr Expr   // the sub-expression that failed
	Msg  string // human-readable cause
}

// Error implements the error interface.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval %s: %s", e.Expr, e.Msg)
}

func evalErrf(ex Expr, format string, args ...any) error {
	return &EvalError{Expr: ex, Msg: fmt.Sprintf(format, args...)}
}
