package expr

// Simplify returns an equivalent expression with standard algebraic
// rewrites applied bottom-up:
//
//   - constant folding on every operator,
//   - arithmetic identities (x+0, x-0, 0+x, x*1, 1*x, x*0, 0*x, x-x),
//   - boolean identities (true&&p, false||p, !!p, p&&p, p||p, …),
//   - comparison of an expression with itself (x = x → true, x < x → false),
//   - ite with a constant condition or identical branches.
//
// Simplify never changes the type of the expression and, because
// operands of && and || here are total (no side conditions beyond
// typing), never changes its value on any well-typed environment.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case *Lit, *Var:
		return e
	case *Unary:
		x := Simplify(n.X)
		if lit, ok := x.(*Lit); ok {
			switch n.Op {
			case OpNeg:
				if lit.Val.T == Int {
					return IntLit(-lit.Val.I)
				}
			case OpNot:
				if lit.Val.T == Bool {
					return BoolLit(!lit.Val.B)
				}
			}
		}
		if n.Op == OpNot {
			if inner, ok := x.(*Unary); ok && inner.Op == OpNot {
				return inner.X // !!p → p
			}
		}
		if n.Op == OpNeg {
			if inner, ok := x.(*Unary); ok && inner.Op == OpNeg {
				return inner.X // -(-x) → x
			}
		}
		if x == n.X {
			return n
		}
		return &Unary{Op: n.Op, X: x}
	case *Binary:
		l, r := Simplify(n.L), Simplify(n.R)
		if s := simplifyBinary(n.Op, l, r); s != nil {
			return s
		}
		if l == n.L && r == n.R {
			return n
		}
		return &Binary{Op: n.Op, L: l, R: r}
	case *Ite:
		c, t, f := Simplify(n.Cond), Simplify(n.Then), Simplify(n.Else)
		if lit, ok := c.(*Lit); ok && lit.Val.T == Bool {
			if lit.Val.B {
				return t
			}
			return f
		}
		if Equal(t, f) {
			return t
		}
		if c == n.Cond && t == n.Then && f == n.Else {
			return n
		}
		return NewIte(c, t, f)
	default:
		return e
	}
}

func simplifyBinary(op Op, l, r Expr) Expr {
	ll, lok := l.(*Lit)
	rl, rok := r.(*Lit)

	// Full constant folding.
	if lok && rok {
		if v, err := (&Binary{Op: op, L: l, R: r}).Eval(MapEnv{}); err == nil {
			return &Lit{Val: v}
		}
	}

	isInt := func(lit *Lit, want int64) bool { return lit != nil && lit.Val.T == Int && lit.Val.I == want }
	isBool := func(lit *Lit, want bool) bool { return lit != nil && lit.Val.T == Bool && lit.Val.B == want }
	var lLit, rLit *Lit
	if lok {
		lLit = ll
	}
	if rok {
		rLit = rl
	}

	switch op {
	case OpAdd:
		if isInt(lLit, 0) {
			return r
		}
		if isInt(rLit, 0) {
			return l
		}
	case OpSub:
		if isInt(rLit, 0) {
			return l
		}
		if Equal(l, r) {
			return IntLit(0)
		}
	case OpMul:
		if isInt(lLit, 1) {
			return r
		}
		if isInt(rLit, 1) {
			return l
		}
		if isInt(lLit, 0) || isInt(rLit, 0) {
			return IntLit(0)
		}
	case OpAnd:
		if isBool(lLit, true) {
			return r
		}
		if isBool(rLit, true) {
			return l
		}
		if isBool(lLit, false) || isBool(rLit, false) {
			return BoolLit(false)
		}
		if Equal(l, r) {
			return l
		}
	case OpOr:
		if isBool(lLit, false) {
			return r
		}
		if isBool(rLit, false) {
			return l
		}
		if isBool(lLit, true) || isBool(rLit, true) {
			return BoolLit(true)
		}
		if Equal(l, r) {
			return l
		}
	case OpEq, OpLe, OpGe:
		if Equal(l, r) {
			return BoolLit(true)
		}
	case OpNe, OpLt, OpGt:
		if Equal(l, r) {
			return BoolLit(false)
		}
	}
	return nil
}
