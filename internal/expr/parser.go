package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the canonical surface syntax produced by Expr.String.
//
// Grammar (precedence climbing, lowest first):
//
//	expr    := or
//	or      := and { "||" and }
//	and     := cmp { "&&" cmp }
//	cmp     := sum [ ("="|"!="|"<"|"<="|">"|">=") sum ]
//	sum     := term { ("+"|"-") term }
//	term    := factor { "*" factor }
//	factor  := "-" "(" expr ")" | "!" "(" expr ")" | "-" factor
//	         | "ite" "(" expr "," expr "," expr ")"
//	         | "(" expr ")" | int | "true" | "false"
//	         | "'" sym "'" | ident ["'"]
//
// types gives the type of each trace variable; identifiers not present
// in types are a parse error. Symbols ('quoted') parse as Sym literals.
func Parse(src string, types map[string]Type) (Expr, error) {
	p := &parser{types: types}
	if err := p.lex(src); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parse %q: trailing input at %q", src, p.peek().text)
	}
	if err := checkTypes(e); err != nil {
		return nil, fmt.Errorf("parse %q: %w", src, err)
	}
	return e, nil
}

// MustParse is Parse that panics on error; intended for tests and
// static tables.
func MustParse(src string, types map[string]Type) Expr {
	e, err := Parse(src, types)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokInt
	tokIdent
	tokSym
	tokOp     // punctuation operator
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	toks  []token
	i     int
	types map[string]Type
}

func (p *parser) lex(src string) error {
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			p.toks = append(p.toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			p.toks = append(p.toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			p.toks = append(p.toks, token{tokComma, ",", i})
			i++
		case c == '\'':
			j := strings.IndexByte(src[i+1:], '\'')
			if j < 0 {
				return fmt.Errorf("lex %q: unterminated symbol at %d", src, i)
			}
			p.toks = append(p.toks, token{tokSym, src[i+1 : i+1+j], i})
			i += j + 2
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			p.toks = append(p.toks, token{tokInt, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			text := src[i:j]
			// A trailing apostrophe marks a primed variable;
			// it belongs to the identifier token.
			if j < len(src) && src[j] == '\'' {
				// Only when not opening a symbol literal:
				// symbols always follow an operator, never an
				// identifier, so an apostrophe directly after
				// identifier characters is a prime.
				text += "'"
				j++
			}
			p.toks = append(p.toks, token{tokIdent, text, i})
			i = j
		default:
			for _, op := range [...]string{"&&", "||", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "!"} {
				if strings.HasPrefix(src[i:], op) {
					p.toks = append(p.toks, token{tokOp, op, i})
					i += len(op)
					goto next
				}
			}
			return fmt.Errorf("lex %q: unexpected character %q at %d", src, c, i)
		next:
		}
	}
	p.toks = append(p.toks, token{tokEOF, "", len(src)})
	return nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptOp(text string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("expected %s at %d, found %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

var cmpOps = map[string]Op{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.i++
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseSum() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = Add(l, r)
		case p.acceptOp("-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = Sub(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("*") {
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Mul(l, r)
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokOp && t.text == "-":
		p.i++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals so that -5 parses as a literal,
		// matching the canonical printer.
		if lit, ok := x.(*Lit); ok && lit.Val.T == Int {
			return IntLit(-lit.Val.I), nil
		}
		return Neg(x), nil
	case t.kind == tokOp && t.text == "!":
		p.i++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	case t.kind == tokLParen:
		p.i++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokInt:
		p.i++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("integer literal %q at %d: %w", t.text, t.pos, err)
		}
		return IntLit(v), nil
	case t.kind == tokSym:
		p.i++
		return SymLit(t.text), nil
	case t.kind == tokIdent:
		p.i++
		switch t.text {
		case "true":
			return BoolLit(true), nil
		case "false":
			return BoolLit(false), nil
		case "ite":
			if _, err := p.expect(tokLParen, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, ","); err != nil {
				return nil, err
			}
			then, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokComma, ","); err != nil {
				return nil, err
			}
			els, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return nil, err
			}
			return NewIte(cond, then, els), nil
		}
		name, primed := strings.CutSuffix(t.text, "'")
		ty, ok := p.types[name]
		if !ok {
			return nil, fmt.Errorf("unknown variable %q at %d", name, t.pos)
		}
		return &Var{Name: name, Primed: primed, T: ty}, nil
	default:
		return nil, fmt.Errorf("unexpected token %q at %d", t.text, t.pos)
	}
}

// checkTypes verifies static well-typedness of a parsed expression.
func checkTypes(e Expr) error {
	switch n := e.(type) {
	case *Lit, *Var:
		return nil
	case *Unary:
		if err := checkTypes(n.X); err != nil {
			return err
		}
		want := Int
		if n.Op == OpNot {
			want = Bool
		}
		if n.X.Type() != want {
			return fmt.Errorf("operand of %s has type %s, want %s", n.Op, n.X.Type(), want)
		}
		return nil
	case *Binary:
		if err := checkTypes(n.L); err != nil {
			return err
		}
		if err := checkTypes(n.R); err != nil {
			return err
		}
		lt, rt := n.L.Type(), n.R.Type()
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpLt, OpLe, OpGt, OpGe:
			if lt != Int || rt != Int {
				return fmt.Errorf("operands of %s have types %s,%s, want int,int", n.Op, lt, rt)
			}
		case OpEq, OpNe:
			if lt != rt {
				return fmt.Errorf("operands of %s have mismatched types %s,%s", n.Op, lt, rt)
			}
		case OpAnd, OpOr:
			if lt != Bool || rt != Bool {
				return fmt.Errorf("operands of %s have types %s,%s, want bool,bool", n.Op, lt, rt)
			}
		}
		return nil
	case *Ite:
		if err := checkTypes(n.Cond); err != nil {
			return err
		}
		if err := checkTypes(n.Then); err != nil {
			return err
		}
		if err := checkTypes(n.Else); err != nil {
			return err
		}
		if n.Cond.Type() != Bool {
			return fmt.Errorf("ite condition has type %s, want bool", n.Cond.Type())
		}
		if n.Then.Type() != n.Else.Type() {
			return fmt.Errorf("ite branches have mismatched types %s,%s", n.Then.Type(), n.Else.Type())
		}
		return nil
	default:
		return fmt.Errorf("unknown expression node %T", e)
	}
}
