package expr

// Substitute returns e with every occurrence of the unprimed variable
// name replaced by the literal value. Primed occurrences are left
// untouched. The predicate generator uses this to fold event guards
// into synthesized update functions (e.g. under the guard
// event = 'read', the update ite(event = 'read', x-1, x+1) folds to
// x-1 after a Simplify pass).
func Substitute(e Expr, name string, value Value) Expr {
	switch n := e.(type) {
	case *Lit:
		return e
	case *Var:
		if n.Name == name && !n.Primed {
			return &Lit{Val: value}
		}
		return e
	case *Unary:
		x := Substitute(n.X, name, value)
		if x == n.X {
			return n
		}
		return &Unary{Op: n.Op, X: x}
	case *Binary:
		l := Substitute(n.L, name, value)
		r := Substitute(n.R, name, value)
		if l == n.L && r == n.R {
			return n
		}
		return &Binary{Op: n.Op, L: l, R: r}
	case *Ite:
		c := Substitute(n.Cond, name, value)
		t := Substitute(n.Then, name, value)
		f := Substitute(n.Else, name, value)
		if c == n.Cond && t == n.Then && f == n.Else {
			return n
		}
		return NewIte(c, t, f)
	default:
		return e
	}
}
