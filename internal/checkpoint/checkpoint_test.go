package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample returns a minimal valid state for format-level tests; the
// generator/learn sections are exercised by the end-to-end resume
// tests at the repository root.
func sample(offset int64) *State {
	return &State{
		Version:   Version,
		Tool:      "test",
		Phase:     PhaseIngest,
		Offset:    offset,
		ObsSHA256: strings.Repeat("ab", 32),
		Config:    map[string]string{"w": "3"},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, sum, err := Encode(sample(42))
	if err != nil {
		t.Fatal(err)
	}
	st, gotSum, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != sum {
		t.Errorf("decode hash %s, encode hash %s", gotSum, sum)
	}
	if st.Offset != 42 || st.Phase != PhaseIngest || st.Tool != "test" {
		t.Errorf("round trip lost fields: %+v", st)
	}
	if st.Config["w"] != "3" {
		t.Errorf("config lost: %v", st.Config)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data, _, err := Encode(sample(7))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"bit flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-5] ^= 0x01
			return c
		},
		"no header":     func(b []byte) []byte { return []byte("not a checkpoint") },
		"wrong version": func(b []byte) []byte { return append([]byte("t2m-checkpoint v99 sha256=00 bytes=2\n{}"), nil...) },
		"extra bytes":   func(b []byte) []byte { return append(append([]byte(nil), b...), "junk"...) },
	}
	for name, mutate := range cases {
		if _, _, err := Decode(mutate(data)); err == nil {
			t.Errorf("%s: Decode accepted damaged file", name)
		}
	}
}

func TestDecodeRejectsBadState(t *testing.T) {
	for name, st := range map[string]*State{
		"bad phase":       {Version: Version, Phase: "warmup", Offset: 1},
		"negative offset": {Version: Version, Phase: PhaseIngest, Offset: -1},
	} {
		data, _, err := Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted invalid state", name)
		}
	}
}

func TestManagerChainsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sums []string
	for i := 0; i < 5; i++ {
		st := sample(int64(100 * i))
		n, err := m.Write(st)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("write %d reported %d bytes", i, n)
		}
		if st.Seq != i {
			t.Errorf("write %d stamped seq %d", i, st.Seq)
		}
		_, sum, err := Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, sum)
	}

	// Only the keep-window survives.
	paths, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != KeepDefault {
		t.Errorf("%d checkpoints retained, want %d: %v", len(paths), KeepDefault, paths)
	}

	// Load returns the newest, and its chain link is the predecessor's
	// payload hash.
	lr, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lr.State.Seq != 4 || lr.State.Offset != 400 {
		t.Errorf("loaded seq %d offset %d, want 4/400", lr.State.Seq, lr.State.Offset)
	}
	if lr.State.PrevSHA256 != sums[3] {
		t.Errorf("chain broken: prev %s, want %s", lr.State.PrevSHA256, sums[3])
	}
}

func TestLoadFallsBackPastCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Write(sample(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn newest file: truncate it mid-payload.
	newest := filepath.Join(dir, "ckpt-00000001.t2mc")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	lr, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lr.State.Seq != 0 {
		t.Errorf("loaded seq %d, want the surviving checkpoint 0", lr.State.Seq)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}

	// A directory with only invalid checkpoint files is a different,
	// louder failure: every rejection reason is reported.
	bad := filepath.Join(dir, "ckpt-00000000.t2mc")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(dir)
	if err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("all-invalid dir: err = %v, want a rejection report", err)
	}
}

func TestNewManagerClearsStaleRun(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "ckpt-00000007.t2mc")
	if err := os.WriteFile(stale, []byte("from an old run"), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(other, []byte("kept"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale checkpoint from a previous run survived NewManager")
	}
	if _, err := os.Stat(other); err != nil {
		t.Error("NewManager removed a non-checkpoint file")
	}
}

func TestResumeManagerContinuesChain(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(sample(10)); err != nil {
		t.Fatal(err)
	}
	lr, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	rm := ResumeManager(dir, lr)
	st := sample(20)
	if _, err := rm.Write(st); err != nil {
		t.Fatal(err)
	}
	if st.Seq != lr.State.Seq+1 {
		t.Errorf("resumed write stamped seq %d, want %d", st.Seq, lr.State.Seq+1)
	}
	if st.PrevSHA256 != lr.SHA256 {
		t.Errorf("resumed write chains to %s, want the loaded payload %s", st.PrevSHA256, lr.SHA256)
	}
}
