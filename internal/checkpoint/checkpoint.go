// Package checkpoint implements crash-consistent snapshots of a
// streaming learning run. A checkpoint file captures everything the
// pipeline needs to continue from an observation offset — the interned
// observation tables and synthesis memo (predicate.SnapshotState), the
// RLE predicate-run log (learn.SeqState), and, once ingestion is
// complete, the model-search refinement state (learn.CheckpointState)
// — so a run killed at step 900k of a multi-million-step trace resumes
// where it stopped and still produces a model byte-identical to an
// uninterrupted run (see internal/core/checkpoint.go for the resume
// driver and DESIGN.md note 14 for the determinism argument).
//
// File format: one header line
//
//	t2m-checkpoint v1 sha256=<hex> bytes=<n>
//
// followed by exactly <n> bytes of JSON payload whose SHA-256 is
// <hex>. Files are written atomically (temp + fsync + rename), so a
// crash mid-write leaves the previous checkpoint intact; a truncated
// or bit-flipped file fails the length or hash check and is rejected.
// Each payload additionally records the SHA-256 of its predecessor's
// payload (a hash chain) and the input-file digest from the run
// manifest, tying a checkpoint sequence to one run over one input.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Version is the checkpoint format version this package reads and
// writes.
const Version = 1

const (
	headerMagic = "t2m-checkpoint"
	filePrefix  = "ckpt-"
	fileSuffix  = ".t2mc"
)

// Phases of a learning run a checkpoint can capture.
const (
	// PhaseIngest: the source is still being streamed; the snapshot
	// holds the generator and run-log state after Offset observations.
	PhaseIngest = "ingest"
	// PhaseModel: ingestion is complete; the snapshot additionally
	// freezes the final ingestion state and (optionally) carries the
	// model-search refinement state.
	PhaseModel = "model"
)

// State is one checkpoint: the serialisable progress of a streaming
// learning run at a consistent boundary.
type State struct {
	Version int `json:"version"`
	// Tool identifies the writer ("t2m", "repro"); informational.
	Tool string `json:"tool,omitempty"`
	// Seq is the checkpoint's sequence number within the run, starting
	// at 0; file names embed it.
	Seq int `json:"seq"`
	// PrevSHA256 chains to the previous checkpoint's payload hash
	// (empty for the first).
	PrevSHA256 string    `json:"prev_sha256,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	// Phase is PhaseIngest or PhaseModel.
	Phase string `json:"phase"`
	// Config records the learning parameters the run was started with;
	// resume refuses a mismatch (a checkpoint resumed under different
	// parameters would produce a silently different model).
	Config map[string]string `json:"config,omitempty"`
	// Schema is the rendered trace schema ("name:type[:input]" fields,
	// comma-joined — the model-file rendering); resume refuses a
	// mismatch.
	Schema string `json:"schema,omitempty"`
	// Input ties the chain to the input file when the driver knows it
	// (same digest the run manifest records).
	Input *pipeline.InputDigest `json:"input,omitempty"`
	// Offset is the number of observations consumed from the source.
	Offset int64 `json:"offset"`
	// ObsSHA256 is the running SHA-256 over the length-prefixed value
	// encodings of the first Offset observations. Resume re-hashes the
	// observations it fast-forwards past and refuses a mismatch, so a
	// checkpoint can never silently continue over a different input.
	ObsSHA256 string `json:"obs_sha256,omitempty"`
	// Predicate is the generator snapshot (interner, memo, alphabet,
	// seeds, counters).
	Predicate *predicate.SnapshotState `json:"predicate,omitempty"`
	// SeqRLE is the predicate-run log emitted so far.
	SeqRLE *learn.SeqState `json:"seq_rle,omitempty"`
	// Learn is the model-search refinement state (PhaseModel only,
	// and only once the search has reached a round boundary).
	Learn *learn.CheckpointState `json:"learn,omitempty"`
}

// ErrNoCheckpoint is returned by Load when the directory contains no
// checkpoint files at all (as opposed to only invalid ones).
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// Config is how a pipeline run opts into checkpointing (see
// core.Options.Checkpoint). The zero value disables it.
type Config struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the ingestion epoch length in observations — how often
	// ingest-phase checkpoints are taken. Zero means 100000; values
	// below the observation window are raised to it.
	Every int
	// Tool is the writer identity recorded in each file.
	Tool string
	// Input, when known, ties the chain to the input file (the digest
	// the run manifest records).
	Input *pipeline.InputDigest
	// Params are the run parameters recorded in each checkpoint and
	// verified on resume.
	Params map[string]string
	// From, when non-nil, resumes the run from this loaded checkpoint
	// instead of starting a fresh chain.
	From *LoadResult
}

// Enabled reports whether the configuration turns checkpointing on.
func (c Config) Enabled() bool { return c.Dir != "" || c.From != nil }

// Encode renders st as header line + JSON payload and returns the
// file bytes and the payload's SHA-256 (hex).
func Encode(st *State) ([]byte, string, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(payload)
	hexSum := hex.EncodeToString(sum[:])
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s v%d sha256=%s bytes=%d\n", headerMagic, Version, hexSum, len(payload))
	buf.Write(payload)
	return buf.Bytes(), hexSum, nil
}

// Decode parses and verifies one checkpoint file: header shape,
// version, payload length, payload hash, then the JSON itself and its
// structural invariants. It returns the state and the payload hash.
func Decode(data []byte) (*State, string, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, "", errors.New("checkpoint: missing header line")
	}
	header := string(data[:nl])
	payload := data[nl+1:]

	var version, length int
	var hexSum string
	n, err := fmt.Sscanf(header, headerMagic+" v%d sha256=%s bytes=%d", &version, &hexSum, &length)
	if err != nil || n != 3 {
		return nil, "", fmt.Errorf("checkpoint: malformed header %q", header)
	}
	if version != Version {
		return nil, "", fmt.Errorf("checkpoint: unsupported version %d (have %d)", version, Version)
	}
	if len(payload) != length {
		return nil, "", fmt.Errorf("checkpoint: truncated payload: header says %d bytes, file has %d", length, len(payload))
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != hexSum {
		return nil, "", fmt.Errorf("checkpoint: payload hash mismatch: header %s, content %s", hexSum, got)
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, "", fmt.Errorf("checkpoint: payload: %w", err)
	}
	if st.Version != Version {
		return nil, "", fmt.Errorf("checkpoint: payload version %d does not match header", st.Version)
	}
	if st.Phase != PhaseIngest && st.Phase != PhaseModel {
		return nil, "", fmt.Errorf("checkpoint: unknown phase %q", st.Phase)
	}
	if st.Offset < 0 {
		return nil, "", fmt.Errorf("checkpoint: negative offset %d", st.Offset)
	}
	return &st, hexSum, nil
}

// LoadResult is a loaded-and-verified checkpoint plus its provenance.
type LoadResult struct {
	State  *State
	Path   string
	SHA256 string // payload hash, the chain link for the next write
}

// LoadFile loads and verifies a single checkpoint file.
func LoadFile(path string) (*LoadResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, sum, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &LoadResult{State: st, Path: path, SHA256: sum}, nil
}

// Load returns the newest valid checkpoint in dir. Invalid files
// (torn, truncated, corrupt) are skipped with their reasons collected;
// if the directory has checkpoint files but none verify, the error
// describes every rejection. ErrNoCheckpoint means the directory holds
// no checkpoint files at all.
func Load(dir string) (*LoadResult, error) {
	paths, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	// Newest first: names embed a fixed-width sequence number, so the
	// lexicographic order is the write order.
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	var reasons []string
	for _, path := range paths {
		lr, err := LoadFile(path)
		if err != nil {
			reasons = append(reasons, err.Error())
			continue
		}
		return lr, nil
	}
	return nil, fmt.Errorf("checkpoint: no valid checkpoint in %s: %s", dir, strings.Join(reasons, "; "))
}

// listCheckpoints returns the checkpoint file paths in dir, unsorted.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, filePrefix) && strings.HasSuffix(name, fileSuffix) {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	return paths, nil
}

// Manager writes a run's checkpoint sequence into one directory:
// monotonic sequence numbers, hash-chained payloads, atomic file
// writes, pruning of superseded files.
type Manager struct {
	dir  string
	seq  int    // next sequence number
	prev string // payload hash of the last written checkpoint
	keep int    // checkpoints retained after a write
}

// KeepDefault is how many most-recent checkpoints a Manager retains.
// More than one, so that if the newest file is lost or damaged the run
// falls back one checkpoint instead of restarting from zero.
const KeepDefault = 3

// NewManager starts a fresh checkpoint sequence in dir, creating it if
// needed and removing checkpoint files from any previous run (they
// belong to a different chain; resuming across chains is what
// ResumeManager is for).
func NewManager(dir string) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stale, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	for _, path := range stale {
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("checkpoint: removing stale %s: %w", path, err)
		}
	}
	return &Manager{dir: dir, keep: KeepDefault}, nil
}

// ResumeManager continues the checkpoint sequence a loaded checkpoint
// belongs to: subsequent writes get increasing sequence numbers and
// chain to the loaded payload.
func ResumeManager(dir string, from *LoadResult) *Manager {
	return &Manager{dir: dir, seq: from.State.Seq + 1, prev: from.SHA256, keep: KeepDefault}
}

// Write stamps st with the sequence position (Version, Seq,
// PrevSHA256, CreatedAt), writes it atomically, prunes superseded
// files and returns the file size in bytes.
func (m *Manager) Write(st *State) (int64, error) {
	st.Version = Version
	st.Seq = m.seq
	st.PrevSHA256 = m.prev
	st.CreatedAt = time.Now().UTC()
	data, sum, err := Encode(st)
	if err != nil {
		return 0, err
	}
	path := filepath.Join(m.dir, fmt.Sprintf("%s%08d%s", filePrefix, st.Seq, fileSuffix))
	err = pipeline.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return 0, err
	}
	m.seq++
	m.prev = sum
	m.prune()
	return int64(len(data)), nil
}

// prune removes checkpoints older than the keep-window. Best-effort:
// a leftover old checkpoint is harmless (Load prefers newer files).
func (m *Manager) prune() {
	floor := m.seq - m.keep
	if floor <= 0 {
		return
	}
	paths, err := listCheckpoints(m.dir)
	if err != nil {
		return
	}
	for _, path := range paths {
		var seq int
		base := filepath.Base(path)
		if _, err := fmt.Sscanf(base, filePrefix+"%d"+fileSuffix, &seq); err == nil && seq < floor {
			os.Remove(path)
		}
	}
}
