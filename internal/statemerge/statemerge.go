// Package statemerge implements the state-merge model-inference
// baselines the paper compares against (Section VI and Table II):
//
//   - BuildPTA — the prefix tree acceptor shared by all variants;
//   - KTails — the classic Biermann–Feldman kTails algorithm: states
//     with identical length-≤k future languages are merged until a
//     fixpoint;
//   - EDSM — red-blue (blue-fringe) evidence-driven state merging: the
//     merge with the most overlapping evidence is taken first, and
//     low-evidence blue states are promoted;
//   - MINT — the classifier-driven EDSM variant of the MINT tool:
//     a data classifier is trained to predict the next event from the
//     current event, and a merge is vetoed when the classifier
//     disagrees on the merged states' predictions.
//
// The paper's MINT runs operate on the raw trace alphabet (no
// synthesized predicates), take minutes to hours on long traces, and
// fail to produce models for the >20k-observation benchmarks; Options.
// Timeout reproduces that behaviour envelope honestly.
package statemerge

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/automaton"
)

// Options configures the baselines.
type Options struct {
	// K is the kTails horizon. Zero means 2.
	K int
	// EvidenceThreshold is the minimum EDSM merge score; blue
	// states whose best merge scores lower are promoted to red.
	// Zero means 1.
	EvidenceThreshold int
	// ClassifierContext is the history length (in events) the MINT
	// classifier conditions on when predicting the next event. Zero
	// means 2. Longer contexts block more merges and yield larger,
	// more exact models — the regime the paper's MINT runs exhibit
	// (91 states for USB Attach, 377 for the counter).
	ClassifierContext int
	// Timeout bounds the run; zero means none. Exceeding it returns
	// ErrTimeout — the paper's "no model" entries.
	Timeout time.Duration
}

// Result is a baseline outcome.
type Result struct {
	Automaton *automaton.NFA
	States    int
	Merges    int
	Duration  time.Duration
}

// ErrTimeout is returned when Options.Timeout elapses.
var ErrTimeout = errors.New("statemerge: timeout")

// pta is a mutable prefix-tree acceptor with union-find state merging
// and deterministic folding.
type pta struct {
	next   []map[string]int
	parent []int // union-find
	start  time.Time
	stop   time.Time
	merges int
}

func newPTA(words [][]string) *pta {
	p := &pta{}
	root := p.newState()
	for _, w := range words {
		cur := root
		for _, sym := range w {
			child, ok := p.next[cur][sym]
			if !ok {
				child = p.newState()
				p.next[cur][sym] = child
			}
			cur = child
		}
	}
	return p
}

func (p *pta) newState() int {
	id := len(p.next)
	p.next = append(p.next, map[string]int{})
	p.parent = append(p.parent, id)
	return id
}

func (p *pta) find(x int) int {
	for p.parent[x] != x {
		p.parent[x] = p.parent[p.parent[x]]
		x = p.parent[x]
	}
	return x
}

// fold merges state b into a and deterministically folds their
// subtrees, the standard merge operation of state-merge algorithms.
// It returns the number of state pairs merged.
func (p *pta) fold(a, b int) int {
	a, b = p.find(a), p.find(b)
	if a == b {
		return 0
	}
	p.parent[b] = a
	p.merges++
	count := 1
	// Merge b's transitions into a, folding shared targets. Nested
	// folds can merge a itself into another state, so a is re-resolved
	// through find on every iteration; writing to a stale representative
	// would silently drop transitions.
	for sym, tb := range p.next[b] {
		ra := p.find(a)
		if ta, ok := p.next[ra][sym]; ok {
			count += p.fold(ta, tb)
			continue
		}
		p.next[ra][sym] = tb
	}
	return count
}

// score computes the EDSM evidence for merging b into a without
// mutating the tree: the number of state pairs that would fold. When
// class is non-nil (the MINT variant), the walk also acts as the
// consistency check: if any folded pair lands on states with different
// classifier predictions the merge is rejected (score -1) — without
// this, a single compatible surface merge would cascade subtree folds
// straight through incompatible states and collapse the model.
func (p *pta) score(a, b int, class func(int) string) int {
	a, b = p.find(a), p.find(b)
	if a == b {
		return 0
	}
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	ok := true
	var rec func(a, b int) int
	rec = func(a, b int) int {
		a, b = p.find(a), p.find(b)
		if a == b || !ok {
			return 0
		}
		pr := pair{a, b}
		if seen[pr] {
			return 0
		}
		seen[pr] = true
		if class != nil && class(a) != class(b) {
			ok = false
			return 0
		}
		n := 1
		for sym, tb := range p.next[b] {
			if ta, ok := p.next[a][sym]; ok {
				n += rec(ta, tb)
			}
		}
		return n
	}
	n := rec(a, b)
	if !ok {
		return -1
	}
	return n
}

// toNFA freezes the merged tree into an automaton with compacted state
// numbers; the root maps to the initial state.
func (p *pta) toNFA() *automaton.NFA {
	ids := map[int]automaton.State{}
	var order []int
	var visit func(x int)
	visit = func(x int) {
		x = p.find(x)
		if _, ok := ids[x]; ok {
			return
		}
		ids[x] = automaton.State(len(order))
		order = append(order, x)
		syms := make([]string, 0, len(p.next[x]))
		for sym := range p.next[x] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			visit(p.next[x][sym])
		}
	}
	visit(0)
	m := automaton.MustNew(len(order), ids[p.find(0)])
	for _, x := range order {
		for sym, t := range p.next[x] {
			m.MustAddTransition(ids[x], sym, ids[p.find(t)])
		}
	}
	return m
}

func (p *pta) expired() bool {
	return !p.stop.IsZero() && time.Now().After(p.stop)
}

// BuildPTA constructs the prefix tree acceptor for the given words and
// returns it as an automaton (no merging). Exposed because Table II's
// "states before merging" discussion references PTA sizes.
func BuildPTA(words [][]string) *automaton.NFA {
	return newPTA(words).toNFA()
}

// KTails runs the classic kTails algorithm: repeatedly merge all
// states whose sets of outgoing symbol sequences of length ≤ k are
// identical, until no two states are equivalent.
func KTails(words [][]string, opts Options) (*Result, error) {
	k := opts.K
	if k == 0 {
		k = 2
	}
	start := time.Now()
	p := newPTA(words)
	p.start = start
	if opts.Timeout > 0 {
		p.stop = start.Add(opts.Timeout)
	}
	for {
		if p.expired() {
			return nil, ErrTimeout
		}
		groups := map[string][]int{}
		var live []int
		for s := range p.next {
			if p.find(s) == s {
				live = append(live, s)
			}
		}
		for _, s := range live {
			sig := p.tailSignature(s, k)
			groups[sig] = append(groups[sig], s)
		}
		merged := false
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			for _, s := range g[1:] {
				if p.find(g[0]) != p.find(s) {
					p.fold(g[0], s)
					merged = true
				}
			}
			if p.expired() {
				return nil, ErrTimeout
			}
		}
		if !merged {
			break
		}
	}
	m := p.toNFA()
	return &Result{Automaton: m, States: m.NumStates(), Merges: p.merges, Duration: time.Since(start)}, nil
}

// tailSignature renders the sorted set of outgoing symbol sequences of
// length ≤ k from state s.
func (p *pta) tailSignature(s int, k int) string {
	var tails []string
	var rec func(x int, prefix string, depth int)
	rec = func(x int, prefix string, depth int) {
		x = p.find(x)
		if len(p.next[x]) == 0 || depth == k {
			tails = append(tails, prefix+"$")
			return
		}
		syms := make([]string, 0, len(p.next[x]))
		for sym := range p.next[x] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			rec(p.next[x][sym], prefix+sym+"\x00", depth+1)
		}
	}
	rec(s, "", 0)
	sort.Strings(tails)
	return strings.Join(tails, "\x01")
}

// EDSM runs red-blue evidence-driven state merging on positive data:
// the highest-evidence (blue, red) merge is taken when it meets the
// threshold, otherwise the blue state is promoted to red.
func EDSM(words [][]string, opts Options) (*Result, error) {
	return redBlue(words, opts, nil)
}

// MINT runs the classifier-driven EDSM variant: a frequency classifier
// predicting the next event from the last ClassifierContext incoming
// events is trained on the words, and merges between states whose
// predicted next events differ are vetoed (scored zero). The context
// length mirrors the expressive data classifiers the MINT tool trains:
// with context 1 the partition is coarse and models collapse; with the
// default context 2 predictions carry direction/phase information and
// the resulting models stay large, as in the paper's Table II.
func MINT(words [][]string, opts Options) (*Result, error) {
	k := opts.ClassifierContext
	if k == 0 {
		k = 2
	}
	// Train the classifier: k-gram of incoming symbols → most
	// frequent successor symbol.
	counts := map[string]map[string]int{}
	for _, w := range words {
		for i := 0; i+1 < len(w); i++ {
			lo := i + 1 - k
			if lo < 0 {
				lo = 0
			}
			ctx := strings.Join(w[lo:i+1], "\x00")
			m, ok := counts[ctx]
			if !ok {
				m = map[string]int{}
				counts[ctx] = m
			}
			m[w[i+1]]++
		}
	}
	predict := map[string]string{}
	for ctx, m := range counts {
		best, bestN := "", -1
		keys := make([]string, 0, len(m))
		for s := range m {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		for _, s := range keys {
			if m[s] > bestN {
				best, bestN = s, m[s]
			}
		}
		predict[ctx] = best
	}
	return redBlue(words, opts, &classifier{k: k, predict: predict})
}

// classifier is the trained MINT next-event predictor.
type classifier struct {
	k       int
	predict map[string]string
}

// redBlue is the shared blue-fringe driver. When cls is non-nil,
// merges between states with different classifier predictions are
// vetoed (the MINT variant).
func redBlue(words [][]string, opts Options, cls *classifier) (*Result, error) {
	threshold := opts.EvidenceThreshold
	if threshold == 0 {
		threshold = 1
	}
	start := time.Now()
	p := newPTA(words)
	p.start = start
	if opts.Timeout > 0 {
		p.stop = start.Add(opts.Timeout)
	}

	// ctx[s] is the k-gram of tree-edge symbols entering s: the
	// classifier's state feature (contexts are fixed by the PTA and
	// survive merging — a merged state keeps its representative's
	// context, which is sound because the veto already ensured equal
	// predictions).
	var ctx []string
	if cls != nil {
		ctx = make([]string, len(p.next))
		type item struct {
			state int
			path  []string
		}
		queue := []item{{state: 0}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			syms := make([]string, 0, len(p.next[it.state]))
			for sym := range p.next[it.state] {
				syms = append(syms, sym)
			}
			sort.Strings(syms)
			for _, sym := range syms {
				t := p.next[it.state][sym]
				path := append(append([]string(nil), it.path...), sym)
				if len(path) > cls.k {
					path = path[len(path)-cls.k:]
				}
				ctx[t] = strings.Join(path, "\x00")
				queue = append(queue, item{state: t, path: path})
			}
		}
	}
	stateClass := func(s int) string {
		if cls == nil {
			return ""
		}
		return cls.predict[ctx[s]]
	}

	red := []int{0}
	isRed := map[int]bool{0: true}
	for {
		if p.expired() {
			return nil, ErrTimeout
		}
		// Blue fringe: non-red successors of red states.
		blueSet := map[int]bool{}
		var blue []int
		for _, r := range red {
			r = p.find(r)
			syms := make([]string, 0, len(p.next[r]))
			for sym := range p.next[r] {
				syms = append(syms, sym)
			}
			sort.Strings(syms)
			for _, sym := range syms {
				t := p.find(p.next[r][sym])
				if !isRed[t] && !blueSet[t] {
					blueSet[t] = true
					blue = append(blue, t)
				}
			}
		}
		if len(blue) == 0 {
			break
		}
		// Score the first blue state against every red state.
		b := blue[0]
		bestRed, bestScore := -1, -1
		var class func(int) string
		if cls != nil {
			class = stateClass
		}
		for _, r := range red {
			r = p.find(r)
			if cls != nil && stateClass(r) != stateClass(b) {
				continue // classifier veto
			}
			sc := p.score(r, b, class)
			if sc > bestScore {
				bestRed, bestScore = r, sc
			}
			if p.expired() {
				return nil, ErrTimeout
			}
		}
		if bestRed >= 0 && bestScore >= threshold {
			p.fold(bestRed, b)
		} else {
			red = append(red, b)
			isRed[b] = true
		}
	}
	m := p.toNFA()
	return &Result{Automaton: m, States: m.NumStates(), Merges: p.merges, Duration: time.Since(start)}, nil
}

// WordFromTrace is a convenience adapter: Table II feeds the baselines
// the same symbol sequences the learner consumes.
func WordFromTrace(symbols []string) [][]string { return [][]string{symbols} }

// Describe summarises a result for the experiment tables.
func (r *Result) Describe() string {
	return fmt.Sprintf("states=%d merges=%d duration=%s", r.States, r.Merges, r.Duration.Round(time.Millisecond))
}
