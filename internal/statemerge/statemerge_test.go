package statemerge

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestBuildPTASingleTrace(t *testing.T) {
	// One trace yields a chain PTA: n+1 states for n symbols.
	m := BuildPTA([][]string{{"a", "b", "a"}})
	if m.NumStates() != 4 {
		t.Errorf("chain PTA states = %d, want 4", m.NumStates())
	}
	if !m.Accepts([]string{"a", "b", "a"}) {
		t.Error("PTA rejects its trace")
	}
	if !m.Accepts([]string{"a", "b"}) {
		t.Error("PTA rejects a prefix (all states accepting)")
	}
	if m.Accepts([]string{"b"}) {
		t.Error("PTA accepts an unseen word")
	}
}

func TestBuildPTASharedPrefixes(t *testing.T) {
	words := [][]string{
		{"a", "b"},
		{"a", "c"},
		{"a", "b", "d"},
	}
	m := BuildPTA(words)
	// Root, a, ab, ac, abd = 5 states.
	if m.NumStates() != 5 {
		t.Errorf("PTA states = %d, want 5", m.NumStates())
	}
	for _, w := range words {
		if !m.Accepts(w) {
			t.Errorf("PTA rejects %v", w)
		}
	}
}

func TestKTailsMergesCycle(t *testing.T) {
	// A strongly periodic trace collapses to the period under kTails.
	var word []string
	for i := 0; i < 30; i++ {
		word = append(word, []string{"a", "b", "c"}[i%3])
	}
	res, err := KTails([][]string{word}, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.States > 6 {
		t.Errorf("kTails states = %d, want a small cycle (≤6)\n%s", res.States, res.Automaton)
	}
	if !res.Automaton.Accepts(word) {
		t.Error("kTails result rejects training word")
	}
	if res.Merges == 0 {
		t.Error("no merges recorded")
	}
}

func TestKTailsKControlsGeneralisation(t *testing.T) {
	var word []string
	for i := 0; i < 40; i++ {
		word = append(word, []string{"x", "y"}[i%2])
	}
	r1, err := KTails([][]string{word}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := KTails([][]string{word}, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.States > r3.States {
		t.Errorf("k=1 gave %d states, k=3 gave %d: larger k must not merge more", r1.States, r3.States)
	}
}

func TestEDSMAcceptsTraining(t *testing.T) {
	words := [][]string{
		{"open", "read", "read", "close"},
		{"open", "write", "close"},
		{"open", "read", "write", "read", "close"},
	}
	res, err := EDSM(words, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		if !res.Automaton.Accepts(w) {
			t.Errorf("EDSM rejects training word %v\n%s", w, res.Automaton)
		}
	}
	pta := BuildPTA(words)
	if res.States >= pta.NumStates() {
		t.Errorf("EDSM did not reduce PTA: %d vs %d states", res.States, pta.NumStates())
	}
}

func TestEDSMThresholdPromotes(t *testing.T) {
	words := [][]string{{"a", "b", "c", "d", "e"}}
	// With a very high threshold nothing merges: the result is the PTA.
	res, err := EDSM(words, Options{EvidenceThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 6 {
		t.Errorf("high-threshold EDSM states = %d, want PTA size 6", res.States)
	}
	if res.Merges != 0 {
		t.Errorf("high-threshold EDSM merged %d", res.Merges)
	}
}

func TestMINTClassifierVeto(t *testing.T) {
	// Alternating ab-word: the classifier predicts b after a and a
	// after b; states reached by a and by b must never merge.
	var word []string
	for i := 0; i < 20; i++ {
		word = append(word, []string{"a", "b"}[i%2])
	}
	res, err := MINT([][]string{word}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Automaton.Accepts(word) {
		t.Error("MINT rejects training word")
	}
	if res.States < 2 {
		t.Errorf("MINT states = %d, want >= 2 (a/b classes must stay apart)", res.States)
	}
	if res.States > 4 {
		t.Errorf("MINT states = %d, want small", res.States)
	}
}

func TestTimeout(t *testing.T) {
	// A long random word with a zero-ish budget must time out.
	r := rand.New(rand.NewSource(3))
	word := make([]string, 20000)
	for i := range word {
		word[i] = string(rune('a' + r.Intn(8)))
	}
	if _, err := EDSM([][]string{word}, Options{Timeout: time.Microsecond}); !errors.Is(err, ErrTimeout) {
		t.Errorf("EDSM err = %v, want ErrTimeout", err)
	}
	if _, err := KTails([][]string{word}, Options{Timeout: time.Microsecond}); !errors.Is(err, ErrTimeout) {
		t.Errorf("KTails err = %v, want ErrTimeout", err)
	}
}

// TestPropertyMergedAcceptsTraining: all three algorithms must accept
// every training word (state merging only generalises, never forgets).
func TestPropertyMergedAcceptsTraining(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 20; trial++ {
		nWords := 1 + r.Intn(3)
		words := make([][]string, nWords)
		for i := range words {
			n := 3 + r.Intn(15)
			w := make([]string, n)
			for j := range w {
				w[j] = alphabet[r.Intn(len(alphabet))]
			}
			words[i] = w
		}
		pta := BuildPTA(words)
		for name, run := range map[string]func([][]string, Options) (*Result, error){
			"ktails": KTails, "edsm": EDSM, "mint": MINT,
		} {
			res, err := run(words, Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			for _, w := range words {
				if !res.Automaton.Accepts(w) {
					t.Errorf("trial %d: %s rejects %v", trial, name, w)
				}
			}
			if res.States > pta.NumStates() {
				t.Errorf("trial %d: %s grew the PTA (%d > %d)", trial, name, res.States, pta.NumStates())
			}
		}
	}
}

func TestWordFromTrace(t *testing.T) {
	w := WordFromTrace([]string{"a", "b"})
	if len(w) != 1 || len(w[0]) != 2 {
		t.Errorf("WordFromTrace = %v", w)
	}
}

func TestDescribe(t *testing.T) {
	res, err := KTails([][]string{{"a", "a", "a"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Describe() == "" {
		t.Error("empty description")
	}
}

func benchWord(n int) [][]string {
	word := make([]string, n)
	for i := range word {
		word[i] = []string{"a", "b", "c", "d"}[i%4]
	}
	return [][]string{word}
}

func BenchmarkKTails2k(b *testing.B) {
	words := benchWord(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KTails(words, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMINT2k(b *testing.B) {
	words := benchWord(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MINT(words, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
