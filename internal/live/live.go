// Package live maintains a learned model as a live object over an
// unbounded predicate stream — the paper's monitor finally running
// indefinitely instead of replaying a finished trace. A Maintainer
// consumes the RLE runs predicate.Generator.SequenceSource emits and
// keeps three invariants:
//
//   - fast path: runs the current model already explains are checked
//     by stepping the automaton in O(1) per run (self-loops absorb
//     whole runs) with zero solver work;
//   - extension: genuinely new unique segments extend the retained
//     solver portfolio incrementally (learn.Live), and the revised
//     model is byte-identical to a batch relearn over the same prefix;
//   - re-minimization: every ReminimizeEvery new segments — and always
//     when extension would be unsound (new symbol, stale blocked gram)
//     or insufficient (N must grow) — the minimal-N search re-runs
//     from scratch over the whole sequence.
//
// Each revision that changes the model appends an entry to a bounded
// version history (monotone counter, model digest, segment watermark),
// and every step the current model cannot explain raises a structured
// divergence event. Both surface through telemetry counters
// (live_version_total, live_divergence_total) so the health endpoint's
// divergence gauge and the run log see them.
package live

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/automaton"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// Options configures a Maintainer.
type Options struct {
	// Learn configures the underlying searches. Segmented is forced on
	// (live maintenance is defined over the segmented encoding) and
	// Telemetry is inherited from Options.Telemetry.
	Learn learn.Options
	// ReminimizeEvery forces a full re-minimization once this many new
	// unique segments have accumulated since the last one; 0 never
	// forces (re-minimization still happens whenever incremental
	// extension would be unsound or the state count must grow). The
	// learned model is byte-identical at every setting — the policy
	// only trades revision latency against retained-solver drift.
	ReminimizeEvery int
	// MaxVersions bounds the retained version history and divergence
	// event list (the counters keep exact totals). 0 means 64.
	MaxVersions int
	// Telemetry records version/divergence counters and the
	// re-minimization latency histogram. Nil disables recording.
	Telemetry *pipeline.Telemetry
	// OnVersion, when non-nil, observes every accepted version as it
	// is created (the monitor's "live: version ..." lines).
	OnVersion func(Version)
	// OnDivergence, when non-nil, observes every divergence event.
	OnDivergence func(Divergence)
}

// Version is one entry of the model version history: an accepted
// revision that changed the model, with the watermark of evidence it
// covers. Digest is the sha256 of the automaton's canonical text, so
// two versions are byte-identical iff their digests match.
type Version struct {
	Version     int    `json:"version"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Digest      string `json:"digest"`
	// Watermark: the revision covers exactly the first Steps expanded
	// observations (Runs RLE runs, Segments unique base segments).
	Steps       int64 `json:"steps"`
	Runs        int   `json:"runs"`
	Segments    int   `json:"segments"`
	Reminimized bool  `json:"reminimized"`
}

// Divergence is a structured non-compliance event: the model version
// current at the time could not explain the symbol at Step.
type Divergence struct {
	// Step is the 0-based expanded position of the unexplained symbol.
	Step int64 `json:"step"`
	// Symbol is the predicate key the model has no transition for.
	Symbol string `json:"symbol"`
	// KnownSymbol reports whether the symbol occurs anywhere in the
	// model (false means entirely novel behaviour).
	KnownSymbol bool `json:"known_symbol"`
	// State is the model state the run was in.
	State automaton.State `json:"state"`
	// ModelVersion is the version that failed to explain the step.
	ModelVersion int `json:"model_version"`
}

func (d Divergence) String() string {
	kind := "novel behaviour"
	if d.KnownSymbol {
		kind = "known behaviour in unexpected context"
	}
	return fmt.Sprintf("%s at step %d: %s (model v%d state q%d)",
		kind, d.Step, d.Symbol, d.ModelVersion, d.State+1)
}

// Maintainer keeps one model current over a predicate stream. Not safe
// for concurrent use; SequenceSource's emit callback is serial.
type Maintainer struct {
	opts Options
	lv   *learn.Live

	alphabet map[string]*predicate.Predicate
	symIDs   map[*predicate.Predicate]int

	cur      automaton.State // fast-path state after the consumed prefix
	known    map[string]bool // symbols occurring anywhere in the model
	steps    int64           // expanded observations consumed
	version  int             // monotone version counter
	lastDig  string
	versions []Version // last MaxVersions entries
	diverges []Divergence
	divTotal int64
	segsNew  int // new segments since the last re-minimization

	cVersions *pipeline.Counter64
	cDiverges *pipeline.Counter64
	hReminNS  *pipeline.Histogram
}

// NewMaintainer returns a Maintainer over an initially empty stream.
func NewMaintainer(opts Options) (*Maintainer, error) {
	if opts.MaxVersions <= 0 {
		opts.MaxVersions = 64
	}
	opts.Learn.Segmented = true
	if opts.Telemetry != nil {
		opts.Learn.Telemetry = opts.Telemetry
	}
	lv, err := learn.NewLive(opts.Learn)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	return &Maintainer{
		opts:      opts,
		lv:        lv,
		alphabet:  map[string]*predicate.Predicate{},
		symIDs:    map[*predicate.Predicate]int{},
		cVersions: tel.Count("live_version_total"),
		cDiverges: tel.Count("live_divergence_total"),
		hReminNS:  tel.Hist("live_reminimize_ns", "ns"),
	}, nil
}

// Feed consumes one RLE run of the predicate stream — the emit
// callback for predicate.Generator.SequenceSource. The current model
// is stepped over the run first (divergences are raised against the
// version that was live when the step arrived), then the run extends
// the maintained sequence, and a revision runs if and only if the run
// carried new evidence or the model failed to explain it.
func (m *Maintainer) Feed(r predicate.Run) error {
	diverged := m.step(r.Pred.Key, r.Count)
	if id, ok := m.symIDs[r.Pred]; ok {
		m.segsNew += m.lv.AppendID(id, r.Count)
	} else {
		// Predicates are interned, so the pointer is the cheap
		// identity: cache the symbol id to skip hashing the (long)
		// predicate key on every run.
		m.alphabet[r.Pred.Key] = r.Pred
		m.segsNew += m.lv.Append(r.Pred.Key, r.Count)
		m.symIDs[r.Pred] = m.lv.SymbolID(r.Pred.Key)
	}
	m.steps += int64(r.Count)

	if !m.lv.Ready() {
		return nil
	}
	if !diverged && !m.lv.Dirty() {
		return nil // fast path: explained, nothing new
	}
	return m.revise()
}

// step runs the fast path: the current model consumes the run from the
// maintained state, raising a divergence event on the first step it
// cannot explain. Runs absorbed by a self-loop cost O(1).
func (m *Maintainer) step(key string, count int) (diverged bool) {
	model := m.lv.Model()
	if model == nil || count <= 0 {
		return false
	}
	for i := 0; i < count; i++ {
		succ := model.Successors(m.cur, key)
		if len(succ) == 0 {
			m.divergence(Divergence{
				Step:         m.steps + int64(i),
				Symbol:       key,
				KnownSymbol:  m.known[key],
				State:        m.cur,
				ModelVersion: m.version,
			})
			return true
		}
		if succ[0] == m.cur {
			break // self-loop absorbs the rest of the run
		}
		m.cur = succ[0]
	}
	return false
}

func (m *Maintainer) divergence(d Divergence) {
	m.divTotal++
	m.cDiverges.Add(1)
	m.diverges = append(m.diverges, d)
	if len(m.diverges) > m.opts.MaxVersions {
		m.diverges = m.diverges[len(m.diverges)-m.opts.MaxVersions:]
	}
	if m.opts.OnDivergence != nil {
		m.opts.OnDivergence(d)
	}
}

// revise brings the model up to date with the maintained sequence and
// resynchronises the fast-path state, recording a new version when the
// model actually changed.
func (m *Maintainer) revise() error {
	force := m.opts.ReminimizeEvery > 0 && m.segsNew >= m.opts.ReminimizeEvery
	t0 := time.Now()
	remin, err := m.lv.Revise(force)
	if err != nil {
		return err
	}
	if remin {
		m.hReminNS.Since(t0)
		m.segsNew = 0
	}
	cur, ok := m.lv.Walk()
	if !ok {
		return errors.New("live: revised model rejects its own prefix")
	}
	m.cur = cur

	model := m.lv.Model()
	sum := sha256.Sum256([]byte(model.String()))
	dig := hex.EncodeToString(sum[:])
	if dig == m.lastDig {
		return nil
	}
	m.lastDig = dig
	m.version++
	m.cVersions.Add(1)
	m.known = map[string]bool{}
	for _, sym := range model.Symbols() {
		m.known[sym] = true
	}
	v := Version{
		Version:     m.version,
		States:      model.NumStates(),
		Transitions: model.NumTransitions(),
		Digest:      dig,
		Steps:       m.steps,
		Runs:        m.lv.Runs(),
		Segments:    m.lv.Segments(),
		Reminimized: remin,
	}
	m.versions = append(m.versions, v)
	if len(m.versions) > m.opts.MaxVersions {
		m.versions = m.versions[len(m.versions)-m.opts.MaxVersions:]
	}
	if m.opts.OnVersion != nil {
		m.opts.OnVersion(v)
	}
	return nil
}

// Finish runs a final revision if any evidence is still pending (Feed
// revises eagerly, so this is normally a no-op) and returns an error
// when the stream was too short to learn from at all.
func (m *Maintainer) Finish() error {
	if !m.lv.Ready() {
		return fmt.Errorf("live: stream too short to learn from (%d observations, need the segmentation window)", m.lv.Len())
	}
	if m.lv.Dirty() {
		return m.revise()
	}
	return nil
}

// Model returns the current automaton (nil before the first version).
func (m *Maintainer) Model() *automaton.NFA { return m.lv.Model() }

// Version returns the current version counter (0 before any model).
func (m *Maintainer) Version() int { return m.version }

// Versions returns the retained version history, oldest first (at most
// MaxVersions entries; the version counter is exact regardless).
func (m *Maintainer) Versions() []Version {
	return append([]Version(nil), m.versions...)
}

// Divergences returns the total divergence count and the retained
// event tail, oldest first.
func (m *Maintainer) Divergences() (int64, []Divergence) {
	return m.divTotal, append([]Divergence(nil), m.diverges...)
}

// Steps returns the number of expanded observations consumed.
func (m *Maintainer) Steps() int64 { return m.steps }

// Alphabet returns the predicates interned from the stream, by key.
func (m *Maintainer) Alphabet() map[string]*predicate.Predicate {
	out := make(map[string]*predicate.Predicate, len(m.alphabet))
	for k, v := range m.alphabet {
		out[k] = v
	}
	return out
}

// Stats returns the cumulative search effort across all revisions.
func (m *Maintainer) Stats() learn.Stats { return m.lv.Stats() }

// Checkpoint snapshots the current search state; see learn.Live.
func (m *Maintainer) Checkpoint() *learn.CheckpointState { return m.lv.Checkpoint() }
