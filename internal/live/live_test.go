package live

import (
	"strings"
	"testing"

	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
)

// feeder interns predicates by key so repeated symbols hit the
// pointer-identity fast path, exactly like the generator's stream.
type feeder struct {
	t     *testing.T
	m     *Maintainer
	preds map[string]*predicate.Predicate
}

func newFeeder(t *testing.T, m *Maintainer) *feeder {
	return &feeder{t: t, m: m, preds: map[string]*predicate.Predicate{}}
}

func (f *feeder) feed(key string, count int) {
	f.t.Helper()
	p, ok := f.preds[key]
	if !ok {
		p = &predicate.Predicate{Key: key}
		f.preds[key] = p
	}
	if err := f.m.Feed(predicate.Run{Pred: p, Count: count}); err != nil {
		f.t.Fatalf("Feed(%s×%d): %v", key, count, err)
	}
}

// TestMaintainerMatchesBatchAtEveryVersion: at every version boundary,
// a fresh batch GenerateModelSeqs over the watermarked prefix must
// produce the byte-identical automaton.
func TestMaintainerMatchesBatchAtEveryVersion(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := learn.Options{Workers: workers}
		if workers > 1 {
			opts.Portfolio = 4
		}
		m, err := NewMaintainer(Options{Learn: opts})
		if err != nil {
			t.Fatal(err)
		}
		f := newFeeder(t, m)
		var word []string
		emitted := 0
		m.opts.OnVersion = func(v Version) {
			emitted++
			prefix := word[:v.Steps]
			batchOpts := opts
			batchOpts.Segmented = true
			seq := learn.NewSeq()
			for _, s := range prefix {
				seq.Append(s, 1)
			}
			res, err := learn.GenerateModelSeqs([]*learn.Seq{seq}, batchOpts)
			if err != nil {
				t.Fatalf("workers=%d v%d: batch over %d steps: %v", workers, v.Version, v.Steps, err)
			}
			if lm, bm := m.Model().String(), res.Automaton.String(); lm != bm {
				t.Fatalf("workers=%d v%d (steps %d): live vs batch:\n%s\nvs\n%s",
					workers, v.Version, v.Steps, lm, bm)
			}
		}
		// A protocol-ish stream whose behaviour widens over time.
		script := []struct {
			key   string
			count int
		}{
			{"send", 1}, {"ack", 1}, {"send", 1}, {"ack", 1},
			{"send", 1}, {"ack", 1}, {"timeout", 1},
			{"send", 1}, {"ack", 1}, {"send", 1}, {"ack", 1}, {"timeout", 1},
			{"send", 1}, {"send", 1}, {"ack", 1}, // retry: new behaviour
			{"send", 1}, {"ack", 1}, {"timeout", 1},
		}
		for _, s := range script {
			for i := 0; i < s.count; i++ {
				word = append(word, s.key)
			}
			f.feed(s.key, s.count)
		}
		if err := m.Finish(); err != nil {
			t.Fatal(err)
		}
		if emitted == 0 || m.Version() == 0 {
			t.Fatalf("workers=%d: no versions emitted", workers)
		}
	}
}

// TestMaintainerFastPathZeroSolverCalls pins the acceptance criterion:
// once the stream settles into behaviour the model already explains,
// further runs cost zero solver calls and create no versions.
func TestMaintainerFastPathZeroSolverCalls(t *testing.T) {
	tel := &pipeline.Telemetry{Registry: pipeline.NewRegistry()}
	m, err := NewMaintainer(Options{Learn: learn.Options{Workers: 1}, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(t, m)
	for i := 0; i < 10; i++ {
		f.feed("z", 1)
		f.feed("p", 2)
	}
	calls := m.Stats().SolverCalls
	if calls == 0 {
		t.Fatal("warmup made no solver calls")
	}
	version := m.Version()
	if version == 0 {
		t.Fatal("warmup produced no version")
	}
	diverges := tel.Count("live_divergence_total").Value()
	for i := 0; i < 100; i++ {
		f.feed("z", 1)
		f.feed("p", 2)
	}
	if got := m.Stats().SolverCalls; got != calls {
		t.Fatalf("already-accepted runs made %d solver calls", got-calls)
	}
	if m.Version() != version {
		t.Fatalf("already-accepted runs bumped version %d → %d", version, m.Version())
	}
	if got := tel.Count("live_version_total").Value(); got != int64(version) {
		t.Fatalf("live_version_total = %d, want %d", got, version)
	}
	if got := tel.Count("live_divergence_total").Value(); got != diverges {
		t.Fatalf("already-accepted runs raised %d divergences", got-diverges)
	}
}

// TestMaintainerDivergenceEvent: a step the current model cannot
// explain raises a structured event against the version that was live,
// then the revision absorbs the new behaviour (version bump, and the
// same behaviour no longer diverges).
func TestMaintainerDivergenceEvent(t *testing.T) {
	tel := &pipeline.Telemetry{Registry: pipeline.NewRegistry()}
	var events []Divergence
	m, err := NewMaintainer(Options{
		Learn:        learn.Options{Workers: 1},
		Telemetry:    tel,
		OnDivergence: func(d Divergence) { events = append(events, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(t, m)
	for i := 0; i < 10; i++ {
		f.feed("z", 1)
		f.feed("p", 2)
	}
	vBefore := m.Version()
	stepsBefore := m.Steps()
	warmupEvents := len(events) // the first cycle wrap is itself novel
	f.feed("crash", 1)          // entirely novel behaviour
	if len(events) != warmupEvents+1 {
		t.Fatalf("got %d new divergence events, want 1", len(events)-warmupEvents)
	}
	d := events[len(events)-1]
	if d.Step != stepsBefore {
		t.Fatalf("divergence step = %d, want %d", d.Step, stepsBefore)
	}
	if d.Symbol != "crash" || d.KnownSymbol {
		t.Fatalf("divergence = %+v, want novel symbol crash", d)
	}
	if d.ModelVersion != vBefore {
		t.Fatalf("divergence against version %d, want %d", d.ModelVersion, vBefore)
	}
	if m.Version() <= vBefore {
		t.Fatal("divergent behaviour did not produce a new version")
	}
	if got := tel.Count("live_divergence_total").Value(); got != int64(len(events)) {
		t.Fatalf("live_divergence_total = %d, want %d", got, len(events))
	}
	if !strings.Contains(d.String(), "novel behaviour") {
		t.Fatalf("event rendering %q", d.String())
	}
	// The revised model absorbs the new behaviour: after a couple of
	// settle cycles (a recurrence in a new context may diverge once
	// more), repeating the same pattern diverges no further.
	for i := 0; i < 3; i++ {
		f.feed("z", 1)
		f.feed("p", 2)
		f.feed("crash", 1)
	}
	total, _ := m.Divergences()
	for i := 0; i < 5; i++ {
		f.feed("z", 1)
		f.feed("p", 2)
		f.feed("crash", 1)
	}
	finalTotal, _ := m.Divergences()
	if finalTotal != total {
		t.Fatalf("settled behaviour still diverging: %d → %d", total, finalTotal)
	}
}

// TestMaintainerHistoryBounded: the version ring and divergence tail
// stay within MaxVersions while the counters stay exact.
func TestMaintainerHistoryBounded(t *testing.T) {
	m, err := NewMaintainer(Options{Learn: learn.Options{Workers: 1}, MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(t, m)
	// Keep introducing fresh symbols: every one forces a revision (and
	// a new version) plus one divergence once a model exists.
	syms := []string{"a", "b", "c", "d", "e"}
	for _, s := range syms {
		f.feed(s, 3)
	}
	if m.Version() <= 2 {
		t.Fatalf("only %d versions; workload too tame for the bound", m.Version())
	}
	vs := m.Versions()
	if len(vs) != 2 {
		t.Fatalf("retained %d versions, want 2", len(vs))
	}
	if vs[len(vs)-1].Version != m.Version() {
		t.Fatalf("newest retained version %d, counter %d", vs[len(vs)-1].Version, m.Version())
	}
	total, tail := m.Divergences()
	if int64(len(tail)) > 2 {
		t.Fatalf("retained %d divergence events, want ≤ 2", len(tail))
	}
	if total < int64(len(tail)) {
		t.Fatalf("total %d < retained %d", total, len(tail))
	}
	if m.Finish() != nil {
		t.Fatal("Finish on settled maintainer failed")
	}
}

// TestMaintainerTooShort: a stream shorter than the segmentation
// window cannot be learned from and Finish says so.
func TestMaintainerTooShort(t *testing.T) {
	m, err := NewMaintainer(Options{Learn: learn.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f := newFeeder(t, m)
	f.feed("a", 2)
	if err := m.Finish(); err == nil || !strings.Contains(err.Error(), "too short") {
		t.Fatalf("Finish = %v, want too-short error", err)
	}
}
