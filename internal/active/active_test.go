package active_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/pipeline"
	"repro/internal/predicate"
	"repro/internal/systems"
	"repro/internal/trace"
)

// learnPassive learns a model from a trace through a fresh pipeline —
// the reference the active loop must converge to.
func learnPassive(t *testing.T, tr *trace.Trace, copts core.Options) *core.Model {
	t.Helper()
	pl, err := core.NewPipeline(tr.Schema(), copts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.LearnSource(trace.NewTraceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustOpen(t *testing.T, name string) systems.Scheduler {
	t.Helper()
	sys, err := systems.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// roundSummary renders a round's deterministic fields (everything but
// wall time) for cross-configuration comparison.
func roundSummary(rounds []active.Round) string {
	var b strings.Builder
	for _, r := range rounds {
		dist := "-"
		if r.Distinction != nil {
			dist = fmt.Sprintf("%v/%v", r.Distinction.Word, r.Distinction.ASurvives)
		}
		fmt.Fprintf(&b, "r%d len=%d verdict=%q relearned=%v states=%d dist=%s witness=%q\n",
			r.Round, r.ProbeLen, r.Verdict.String(), r.Relearned, r.States, dist, r.WitnessOutcome)
	}
	return b.String()
}

// TestRefineReachesPassiveFixpoint is the acceptance criterion: for
// each simulated system, starting from a model learned on a
// deliberately truncated trace, the active loop stabilizes within the
// round budget and the final model is byte-identical to the model
// learned passively from the full canonical trace — at every worker
// count and with the portfolio solver on.
func TestRefineReachesPassiveFixpoint(t *testing.T) {
	cases := []struct {
		name     string
		truncate int // seed = canonical trace truncated to this many observations
	}{
		{"counter", 100}, // ascent only: the model has never seen either turn
		{"fifo", 6},      // one ascent and the top turn; the bottom turn is missing
		{"serial", 300},
		{"usbslot", 12}, // the first attach cycle and a partial second
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := mustOpen(t, tc.name)
			n := systems.CanonicalObservations(tc.name)
			full, err := systems.DriveSchedule(sys, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			ref := learnPassive(t, full, core.Options{})
			seed := full.Slice(0, tc.truncate)

			configs := []struct {
				label     string
				workers   int
				portfolio int
			}{
				{"serial-solver-w1", 1, 0},
				{"parallel-w4", 4, 0},
				{"portfolio-w4", 4, 2},
			}
			var baseline string
			for _, cfg := range configs {
				copts := core.Options{
					Predicate: predicate.Options{Workers: cfg.workers},
					Learn:     learn.Options{Portfolio: cfg.portfolio},
				}
				res, err := active.Refine(sys, seed, copts, active.Options{ProbeCap: n})
				if err != nil {
					t.Fatalf("%s: %v", cfg.label, err)
				}
				if !res.Stabilized {
					t.Fatalf("%s: did not stabilize in %d rounds:\n%s",
						cfg.label, len(res.Rounds), roundSummary(res.Rounds))
				}
				diverged := 0
				for _, r := range res.Rounds {
					if !r.Verdict.Conforms {
						diverged++
					}
				}
				if diverged == 0 {
					t.Errorf("%s: truncated seed produced no diverging round", cfg.label)
				}
				if got, want := res.Model.Automaton.String(), ref.Automaton.String(); got != want {
					t.Errorf("%s: stabilized model differs from passive full-trace model:\ngot:\n%s\nwant:\n%s\nrounds:\n%s",
						cfg.label, got, want, roundSummary(res.Rounds))
				}
				if res.FinalProbeLen != n {
					t.Errorf("%s: final probe length %d, want cap %d", cfg.label, res.FinalProbeLen, n)
				}
				// The last round is the certificate: conforming, no
				// refinement, no distinguishing word.
				last := res.Rounds[len(res.Rounds)-1]
				if !last.Verdict.Conforms || last.Relearned || last.Distinction != nil {
					t.Errorf("%s: last round is not a fixpoint certificate:\n%s", cfg.label, roundSummary(res.Rounds))
				}
				summary := roundSummary(res.Rounds)
				if baseline == "" {
					baseline = summary
				} else if summary != baseline {
					t.Errorf("%s: rounds differ from w1 baseline:\ngot:\n%s\nwant:\n%s", cfg.label, summary, baseline)
				}
			}
		})
	}
}

// TestRefineFixpointSanity: one probe round on a model learned from
// the complete canonical trace finds no counterexample and stabilizes
// immediately.
func TestRefineFixpointSanity(t *testing.T) {
	for _, name := range systems.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys := mustOpen(t, name)
			n := systems.CanonicalObservations(name)
			full, err := systems.DriveSchedule(sys, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := active.Refine(sys, full, core.Options{}, active.Options{ProbeCap: n})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stabilized || len(res.Rounds) != 1 {
				t.Fatalf("complete model: stabilized=%v in %d rounds, want 1:\n%s",
					res.Stabilized, len(res.Rounds), roundSummary(res.Rounds))
			}
			if r := res.Rounds[0]; !r.Verdict.Conforms || r.Relearned {
				t.Fatalf("complete model: round 1 = %s", roundSummary(res.Rounds))
			}
		})
	}
}

// TestRefineTelemetry checks the probe-round instrumentation: round
// and divergence counters, the stabilization counter, and the
// distinguishing-length histogram.
func TestRefineTelemetry(t *testing.T) {
	sys := mustOpen(t, "fifo")
	n := systems.CanonicalObservations("fifo")
	full, err := systems.DriveSchedule(sys, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	tel := &pipeline.Telemetry{Registry: pipeline.NewRegistry()}
	res, err := active.Refine(sys, full.Slice(0, 6), core.Options{Telemetry: tel}, active.Options{ProbeCap: n})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stabilized {
		t.Fatalf("did not stabilize:\n%s", roundSummary(res.Rounds))
	}
	vals := tel.Registry.CounterValues()
	if got := vals["active_rounds_total"]; got != int64(len(res.Rounds)) {
		t.Errorf("active_rounds_total = %d, want %d", got, len(res.Rounds))
	}
	if vals["active_divergences_total"] < 1 {
		t.Errorf("active_divergences_total = %d, want >= 1", vals["active_divergences_total"])
	}
	if vals["active_stabilized_total"] != 1 {
		t.Errorf("active_stabilized_total = %d, want 1", vals["active_stabilized_total"])
	}
	if vals["active_probe_observations_total"] < int64(n) {
		t.Errorf("active_probe_observations_total = %d, want >= %d", vals["active_probe_observations_total"], n)
	}
}

// TestRefineValidation covers the argument checks.
func TestRefineValidation(t *testing.T) {
	sys := mustOpen(t, "counter")
	n := systems.CanonicalObservations("counter")
	full, err := systems.DriveSchedule(sys, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := active.Refine(sys, nil, core.Options{}, active.Options{}); err == nil {
		t.Error("nil seed accepted")
	}
	if _, err := active.Refine(sys, full.Slice(0, 1), core.Options{}, active.Options{}); err == nil {
		t.Error("1-observation seed accepted")
	}
	other := mustOpen(t, "serial")
	otherTrace, err := systems.DriveSchedule(other, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := active.Refine(sys, otherTrace, core.Options{}, active.Options{}); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestConformance covers the verdict path directly: a complete model
// explains its own trace; a truncated model names the diverging step,
// predicate and witness context.
func TestConformance(t *testing.T) {
	sys := mustOpen(t, "fifo")
	n := systems.CanonicalObservations("fifo")
	full, err := systems.DriveSchedule(sys, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	m := learnPassive(t, full, core.Options{})
	v, err := active.Conformance(m, full)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Conforms || v.String() != "conforms" {
		t.Fatalf("complete model verdict = %+v", v)
	}

	// A model that has only seen the ascent must diverge on the full
	// trace, at the top turn or later.
	mt := learnPassive(t, full.Slice(0, 4), core.Options{})
	v, err = active.Conformance(mt, full)
	if err != nil {
		t.Fatal(err)
	}
	if v.Conforms {
		t.Fatal("truncated model conforms to full trace")
	}
	if v.Step <= 0 || v.Predicate == "" || len(v.Witness) == 0 {
		t.Fatalf("divergence verdict incomplete: %+v", v)
	}
	if s := v.String(); !strings.Contains(s, "diverges at step") {
		t.Fatalf("String() = %q", s)
	}
	if last := v.Witness[len(v.Witness)-1]; last != v.Predicate {
		t.Fatalf("witness %v does not end in the diverging predicate %q", v.Witness, v.Predicate)
	}
}
