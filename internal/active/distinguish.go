// SAT search for distinguishing input sequences: the equivalence
// check of the active-learning loop. Two successive hypothesis
// automata are unrolled side by side over a shared symbolic word
// (a product encoding, depth-bounded like the paper's CBMC unrolling
// of the learner's hypothesis), and the solver is asked for a word one
// automaton can run to the end while the other has died. Iterating the
// depth from 1 up yields a shortest such word; fixing the word's
// symbols greedily in alphabet order under the solver's assumptions
// interface makes the result the lexicographically least one — fully
// deterministic tie-breaking, so probe rounds are reproducible.
package active

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/sat"
)

// Distinction is a shortest distinguishing word between two automata:
// running Word from both initial states, one automaton survives every
// step while the other has no transition at some step.
type Distinction struct {
	// Word is the lexicographically least shortest distinguishing
	// word, over the union of the two automata's alphabets.
	Word []string
	// ASurvives reports which automaton runs Word to the end: true
	// means a survives and b dies, false the converse.
	ASurvives bool
}

// Distinguish searches for a shortest distinguishing word of length at
// most maxDepth between two deterministic automata. It returns nil
// when none exists up to that depth — the loop's bounded-equivalence
// fixpoint certificate. Ties are broken deterministically: shortest
// first, then the automaton order (a-survives before b-survives), then
// lexicographically least in the union-alphabet order.
func Distinguish(a, b *automaton.NFA, maxDepth int) (*Distinction, error) {
	if !a.IsDeterministic() || !b.IsDeterministic() {
		return nil, fmt.Errorf("active: distinguish requires deterministic automata")
	}
	sigma := unionAlphabet(a, b)
	if len(sigma) == 0 {
		return nil, nil
	}
	for d := 1; d <= maxDepth; d++ {
		u := unroll(a, b, sigma, d)
		for _, aSurvives := range []bool{true, false} {
			target := u.target(aSurvives)
			if u.s.SolveAssuming(target...) != sat.Sat {
				continue
			}
			word, err := u.lexLeastWord(target)
			if err != nil {
				return nil, err
			}
			return &Distinction{Word: word, ASurvives: aSurvives}, nil
		}
	}
	return nil, nil
}

// unionAlphabet merges the two automata's symbol lists, a's first (in
// its first-seen order), then b's extras in b's order — a canonical
// order for the lex-least extraction.
func unionAlphabet(a, b *automaton.NFA) []string {
	sigma := a.Symbols()
	seen := make(map[string]bool, len(sigma))
	for _, s := range sigma {
		seen[s] = true
	}
	for _, s := range b.Symbols() {
		if !seen[s] {
			seen[s] = true
			sigma = append(sigma, s)
		}
	}
	return sigma
}

// unrolling is the depth-d product encoding: one-hot symbol choice
// variables per step, and per automaton a one-hot state-or-dead
// valuation per time point whose evolution the transition clauses
// force to follow the chosen word.
type unrolling struct {
	s     *sat.Solver
	sigma []string
	sym   [][]int // sym[t][k]: word symbol t is sigma[k]
	deadA []int   // deadA[t]: a has died by time t
	deadB []int
}

// unroll builds the encoding for word length d.
func unroll(a, b *automaton.NFA, sigma []string, d int) *unrolling {
	u := &unrolling{s: sat.New(), sigma: sigma}
	u.sym = make([][]int, d)
	for t := range u.sym {
		u.sym[t] = newVars(u.s, len(sigma))
		exactlyOne(u.s, u.sym[t])
	}
	u.deadA = u.encodeRun(a, d)
	u.deadB = u.encodeRun(b, d)
	return u
}

// encodeRun adds the run variables and clauses for one deterministic
// automaton and returns its dead-by-time-t variables.
func (u *unrolling) encodeRun(m *automaton.NFA, d int) []int {
	n := m.NumStates()
	q := make([][]int, d+1)
	dead := make([]int, d+1)
	for t := 0; t <= d; t++ {
		q[t] = newVars(u.s, n)
		dead[t] = u.s.NewVar()
		exactlyOne(u.s, append(append([]int(nil), q[t]...), dead[t]))
	}
	// The run starts in the initial state; with the exactly-one
	// constraint this pins the whole time-0 valuation.
	u.s.AddClause(sat.Pos(q[0][int(m.Initial())]))
	for t := 0; t < d; t++ {
		// Death is absorbing.
		u.s.AddClause(sat.Neg(dead[t]), sat.Pos(dead[t+1]))
		for i := 0; i < n; i++ {
			for k, symb := range u.sigma {
				succ := m.Successors(automaton.State(i), symb)
				if len(succ) > 0 {
					u.s.AddClause(sat.Neg(q[t][i]), sat.Neg(u.sym[t][k]), sat.Pos(q[t+1][int(succ[0])]))
				} else {
					u.s.AddClause(sat.Neg(q[t][i]), sat.Neg(u.sym[t][k]), sat.Pos(dead[t+1]))
				}
			}
		}
	}
	return dead
}

// target returns the query assumptions: one automaton dead at the
// final time point, the other still alive.
func (u *unrolling) target(aSurvives bool) []sat.Lit {
	d := len(u.deadA) - 1
	if aSurvives {
		return []sat.Lit{sat.Neg(u.deadA[d]), sat.Pos(u.deadB[d])}
	}
	return []sat.Lit{sat.Pos(u.deadA[d]), sat.Neg(u.deadB[d])}
}

// lexLeastWord fixes the word's symbols greedily, first position
// first, lowest alphabet index first, keeping the target satisfiable —
// the canonical witness among all words of this length.
func (u *unrolling) lexLeastWord(target []sat.Lit) ([]string, error) {
	fixed := append([]sat.Lit(nil), target...)
	word := make([]string, 0, len(u.sym))
	for t := range u.sym {
		found := false
		for k := range u.sigma {
			if u.s.SolveAssuming(append(fixed, sat.Pos(u.sym[t][k]))...) == sat.Sat {
				fixed = append(fixed, sat.Pos(u.sym[t][k]))
				word = append(word, u.sigma[k])
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("active: lex extraction lost satisfiability at position %d", t)
		}
	}
	return word, nil
}

// newVars allocates n fresh solver variables.
func newVars(s *sat.Solver, n int) []int {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	return vars
}

// exactlyOne constrains exactly one of the variables to be true
// (pairwise encoding; the sets here are alphabet- or state-sized).
func exactlyOne(s *sat.Solver, vars []int) {
	lits := make([]sat.Lit, len(vars))
	for i, v := range vars {
		lits[i] = sat.Pos(v)
	}
	s.AddClause(lits...)
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			s.AddClause(sat.Neg(vars[i]), sat.Neg(vars[j]))
		}
	}
}
