// Package active closes the learning loop the paper leaves open: the
// learned model interrogates the system it was learned from. Starting
// from a hypothesis learned on a (possibly truncated) trace, each
// round drives the system's canonical workload schedule further than
// before, checks the hypothesis against the observed probe trace,
// folds the probe back through the streaming learner
// (core.LearnSources), and asks the SAT engine for a distinguishing
// word between the successive hypotheses (see distinguish.go). The
// loop reaches its fixpoint when a full-budget probe conforms and no
// distinguishing word up to the configured depth exists — a bounded
// conformance certificate in the sense of the authors' follow-up work
// on active model learning.
//
// Because probes replay the same deterministic schedule from reset,
// every probe is a prefix extension of the canonical benchmark trace;
// the predicate generator therefore synthesizes windows in the same
// order a passive run over the full trace would, and the stabilized
// model is byte-identical to the passively learned one.
package active

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/pipeline"
	"repro/internal/systems"
	"repro/internal/trace"
)

// Options tunes the refinement loop. Zero values select defaults.
type Options struct {
	// Depth bounds the distinguishing-word search between successive
	// hypotheses (default 8).
	Depth int
	// MaxRounds bounds the number of probe rounds (default 16).
	MaxRounds int
	// ProbeStart is the first probe's length in observations
	// (default: twice the seed trace, at least 16).
	ProbeStart int
	// ProbeCap is the probe length budget; the loop only stabilizes
	// once a cap-length probe conforms (default: eight times the seed
	// trace, at least 1024).
	ProbeCap int
	// Seed selects the schedule seed (0 = the system's default).
	Seed int64
}

// withDefaults fills in zero fields from the seed trace length.
func (o Options) withDefaults(seedLen int) Options {
	if o.Depth <= 0 {
		o.Depth = 8
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 16
	}
	if o.ProbeCap <= 0 {
		o.ProbeCap = 8 * seedLen
		if o.ProbeCap < 1024 {
			o.ProbeCap = 1024
		}
	}
	if o.ProbeStart <= 0 {
		o.ProbeStart = 2 * seedLen
		if o.ProbeStart < 16 {
			o.ProbeStart = 16
		}
	}
	if o.ProbeStart > o.ProbeCap {
		o.ProbeStart = o.ProbeCap
	}
	return o
}

// Verdict is the outcome of checking one probe trace against a
// hypothesis: either the model explains the whole probe, or it
// diverges at a step, reported with the surrounding symbol context.
type Verdict struct {
	// Conforms is true when the model explains the whole probe.
	Conforms bool
	// Step is the predicate-sequence index of the divergence.
	Step int
	// Predicate is the unexplained predicate at Step.
	Predicate string
	// KnownSymbol reports whether the predicate occurs elsewhere in
	// the model (known behaviour in an unexpected context) or is
	// entirely novel.
	KnownSymbol bool
	// Witness is the symbol sequence ending at the divergence (up to
	// witnessContext symbols of context plus the unexplained one).
	Witness []string
}

// witnessContext is how many explained symbols of context a divergence
// witness carries.
const witnessContext = 4

// String renders the verdict as the conformance line cmd/monitor and
// cmd/probe print.
func (v *Verdict) String() string {
	if v.Conforms {
		return "conforms"
	}
	kind := "novel behaviour"
	if v.KnownSymbol {
		kind = "known behaviour in unexpected context"
	}
	return fmt.Sprintf("diverges at step %d (%s): %v", v.Step, kind, v.Witness)
}

// Conformance checks a probe trace against the model and reports the
// verdict. The probe is abstracted with the model's own predicate
// generator, so divergences are located in the model's alphabet.
func Conformance(m *core.Model, probe *trace.Trace) (*Verdict, error) {
	P, err := m.Abstract(probe)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, sym := range m.Automaton.Symbols() {
		known[sym] = true
	}
	cur := m.Automaton.Initial()
	for i, sym := range P {
		succ := m.Automaton.Successors(cur, sym)
		if len(succ) == 0 {
			lo := i - witnessContext
			if lo < 0 {
				lo = 0
			}
			return &Verdict{
				Step:        i,
				Predicate:   sym,
				KnownSymbol: known[sym],
				Witness:     append([]string(nil), P[lo:i+1]...),
			}, nil
		}
		cur = succ[0]
	}
	return &Verdict{Conforms: true}, nil
}

// Round reports one probe round.
type Round struct {
	// Round is the 1-based round number.
	Round int
	// ProbeLen is the probe length (observations) of this round.
	ProbeLen int
	// Verdict is the conformance check of the probe against the
	// round's starting hypothesis.
	Verdict *Verdict
	// Relearned reports whether folding the probe changed the
	// hypothesis automaton. A conforming probe's fold is a no-op (the
	// previous model remains the lexicographically least solution of
	// the grown constraint set), so this tracks real refinements.
	Relearned bool
	// States is the hypothesis state count after the round.
	States int
	// Distinction is the shortest distinguishing word between the
	// round's starting and ending hypotheses; nil when the hypothesis
	// is stable up to the search depth.
	Distinction *Distinction
	// WitnessOutcome reports what happened when the distinguishing
	// word was driven back into the system as a targeted probe:
	// "realized" (the system exhibits it — the old hypothesis was
	// incomplete) or "refused at step K" (the system rejects it — the
	// surviving hypothesis overapproximates). Empty when the word
	// could not be concretised into inputs (non-event systems).
	WitnessOutcome string
	// Wall is the round's wall-clock time.
	Wall time.Duration
}

// Result is the outcome of a refinement run.
type Result struct {
	// Model is the final hypothesis.
	Model *core.Model
	// Rounds are the per-round reports, in order.
	Rounds []Round
	// Stabilized reports whether the fixpoint was reached: a
	// cap-length probe conformed and no distinguishing word up to
	// Depth separates the last two hypotheses. False means the round
	// budget ran out first.
	Stabilized bool
	// FinalProbeLen is the last probe length driven.
	FinalProbeLen int
}

// Refine runs the counterexample-guided refinement loop: learn a
// hypothesis from the seed trace, then probe / check / fold until the
// fixpoint or the round budget. The pipeline options control the
// learner (workers, portfolio, telemetry, context); checkpointing is
// rejected here — each round's relearn is already atomic (see
// core.LearnSources).
func Refine(sys systems.Scheduler, seed *trace.Trace, copts core.Options, opts Options) (*Result, error) {
	if seed == nil || seed.Len() < 2 {
		return nil, errors.New("active: seed trace must have at least 2 observations")
	}
	if !seed.Schema().Equal(sys.Schema()) {
		return nil, fmt.Errorf("active: seed schema %v does not match system %s schema %v",
			seed.Schema().Names(), sys.Name(), sys.Schema().Names())
	}
	if copts.Checkpoint.Enabled() {
		return nil, errors.New("active: checkpointing is not supported inside the probe loop; snapshot the seed learn separately")
	}
	opts = opts.withDefaults(seed.Len())
	pl, err := core.NewPipeline(seed.Schema(), copts)
	if err != nil {
		return nil, err
	}
	tel := copts.Telemetry
	ttr := tel.Trace()
	cRounds := tel.Count("active_rounds_total")
	cDiverged := tel.Count("active_divergences_total")
	cStable := tel.Count("active_stabilized_total")
	cProbeObs := tel.Count("active_probe_observations_total")
	hDistLen := tel.Hist("active_distinguishing_len", "symbols")
	hRound := tel.Hist("active_round", "ns")

	model, err := pl.LearnSource(trace.NewTraceSource(seed))
	if err != nil {
		return nil, fmt.Errorf("active: seed learn: %w", err)
	}

	res := &Result{}
	probeLen := opts.ProbeStart
	for r := 1; r <= opts.MaxRounds; r++ {
		t0 := time.Now()
		span := ttr.Start(0, "probe_round", pipeline.Int("round", int64(r)), pipeline.Int("probe_len", int64(probeLen)))
		probe, err := systems.DriveSchedule(sys, opts.Seed, probeLen)
		if err != nil {
			ttr.End(span)
			return nil, fmt.Errorf("active: round %d: %w", r, err)
		}
		cProbeObs.Add(int64(probe.Len()))
		verdict, err := Conformance(model, probe)
		if err != nil {
			ttr.End(span)
			return nil, fmt.Errorf("active: round %d: conformance: %w", r, err)
		}
		prev := model
		if !verdict.Conforms {
			cDiverged.Add(1)
		}
		// Fold every probe, conforming or not. A conforming probe's
		// windows are already explained, so its fold returns the
		// byte-identical automaton (the previous model stays the
		// lex-least solution of the grown constraint set); a diverging
		// probe's fold is the refinement step. Always folding means the
		// stabilized hypothesis was learned from [seed, cap-length
		// probe] — the same constraint set a passive learn over the full
		// canonical trace produces.
		model, err = pl.LearnSources([]trace.Source{trace.NewTraceSource(seed), trace.NewTraceSource(probe)})
		if err != nil {
			ttr.End(span)
			return nil, fmt.Errorf("active: round %d: fold relearn: %w", r, err)
		}
		relearned := model.Automaton.String() != prev.Automaton.String()
		dist, err := Distinguish(prev.Automaton, model.Automaton, opts.Depth)
		if err != nil {
			ttr.End(span)
			return nil, fmt.Errorf("active: round %d: %w", r, err)
		}
		outcome := ""
		if dist != nil {
			hDistLen.Observe(int64(len(dist.Word)))
			outcome = probeWitness(sys, model, dist.Word)
		}
		round := Round{
			Round:          r,
			ProbeLen:       probe.Len(),
			Verdict:        verdict,
			Relearned:      relearned,
			States:         model.States,
			Distinction:    dist,
			WitnessOutcome: outcome,
			Wall:           time.Since(t0),
		}
		res.Rounds = append(res.Rounds, round)
		cRounds.Add(1)
		hRound.Since(t0)
		ttr.End(span,
			pipeline.Bool("conforms", verdict.Conforms),
			pipeline.Bool("relearned", relearned),
			pipeline.Int("states", int64(model.States)),
			pipeline.Int("dist_len", distLen(dist)))

		if verdict.Conforms && !relearned && dist == nil && probe.Len() >= opts.ProbeCap {
			res.Stabilized = true
			cStable.Add(1)
		}
		res.FinalProbeLen = probe.Len()
		if res.Stabilized {
			break
		}
		// Grow the probe: double, but never land short of just past a
		// divergence point, and never past the cap.
		next := 2 * probeLen
		if !verdict.Conforms && verdict.Step+seedMargin(seed) > next {
			next = verdict.Step + seedMargin(seed)
		}
		if next > opts.ProbeCap {
			next = opts.ProbeCap
		}
		probeLen = next
	}
	res.Model = model
	return res, nil
}

// seedMargin is how far past a divergence the next probe must reach so
// the fold covers the diverging window with context.
func seedMargin(seed *trace.Trace) int {
	m := seed.Len() / 4
	if m < 16 {
		m = 16
	}
	return m
}

// distLen is the span attribute for a possibly-nil distinction.
func distLen(d *Distinction) int64 {
	if d == nil {
		return 0
	}
	return int64(len(d.Word))
}

// probeWitness concretises a distinguishing word into an input
// sequence and drives it against the system from reset — the
// "synthesized test case" half of active testing. Only event-schema
// systems admit the mapping (their predicate alphabet constrains the
// event variable directly); for others it returns "".
func probeWitness(sys systems.Scheduler, m *core.Model, word []string) string {
	inputs, ok := witnessInputs(m, sys, word)
	if !ok {
		return ""
	}
	if _, err := systems.Drive(sys, inputs); err != nil {
		// How far the system followed before refusing.
		for k := range inputs {
			if _, err := systems.Drive(sys, inputs[:k+1]); err != nil {
				return fmt.Sprintf("refused at step %d", k)
			}
		}
		return "refused at step 0"
	}
	return "realized"
}

// pairEnv evaluates an event-trace predicate against a candidate
// (event, event') pair.
type pairEnv struct {
	name      string
	cur, next string
}

// Lookup implements expr.Env.
func (e pairEnv) Lookup(name string, primed bool) (expr.Value, bool) {
	if name != e.name {
		return expr.Value{}, false
	}
	if primed {
		return expr.SymVal(e.next), true
	}
	return expr.SymVal(e.cur), true
}

// witnessInputs searches for an input sequence whose predicate
// abstraction is the given word: events e_0 … e_d such that word[i]
// holds on the pair (e_i, e_{i+1}). Only single-symbol-variable
// (event) schemas are attempted; candidates are tried in the system's
// input order, so the result is deterministic.
func witnessInputs(m *core.Model, sys systems.Probeable, word []string) ([]string, bool) {
	sch := sys.Schema()
	if sch.Len() != 1 || sch.Var(0).Type != expr.Sym {
		return nil, false
	}
	name := sch.Var(0).Name
	cands := sys.Inputs()
	exprs := make([]expr.Expr, len(word))
	for i, sym := range word {
		pr := m.Alphabet[sym]
		if pr == nil {
			return nil, false
		}
		exprs[i] = pr.Expr
	}
	seq := make([]string, len(word)+1)
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(seq) {
			return true
		}
		for _, c := range cands {
			if i > 0 {
				v, err := exprs[i-1].Eval(pairEnv{name: name, cur: seq[i-1], next: c})
				if err != nil || v.T != expr.Bool || !v.B {
					continue
				}
			}
			seq[i] = c
			if dfs(i + 1) {
				return true
			}
		}
		return false
	}
	if !dfs(0) {
		return nil, false
	}
	return seq, true
}
