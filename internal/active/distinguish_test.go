package active

import (
	"reflect"
	"testing"

	"repro/internal/automaton"
)

// chain builds a deterministic automaton from a list of transitions.
func chain(n int, trans [][3]interface{}) *automaton.NFA {
	m := automaton.MustNew(n, 0)
	for _, tr := range trans {
		m.MustAddTransition(automaton.State(tr[0].(int)), tr[1].(string), automaton.State(tr[2].(int)))
	}
	return m
}

func TestDistinguishShortestWord(t *testing.T) {
	// a: 0 -x-> 1 -y-> 0 (runs (xy)* forever); b: 0 -x-> 1 only.
	a := chain(2, [][3]interface{}{{0, "x", 1}, {1, "y", 0}})
	b := chain(2, [][3]interface{}{{0, "x", 1}})
	d, err := Distinguish(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("no distinction found")
	}
	// No length-1 word separates them (x survives both, y kills both),
	// so the shortest is xy, which a survives and b does not.
	if !reflect.DeepEqual(d.Word, []string{"x", "y"}) || !d.ASurvives {
		t.Fatalf("got %+v, want word [x y] with ASurvives", d)
	}
	// Verify the witness against the automata directly.
	if !a.Accepts(d.Word) || b.Accepts(d.Word) {
		t.Fatalf("witness %v not distinguishing: a=%v b=%v", d.Word, a.Accepts(d.Word), b.Accepts(d.Word))
	}
}

func TestDistinguishDirectionOrder(t *testing.T) {
	// Symmetric case at the same depth: a runs only x, b runs only y.
	// Both directions have a length-1 witness; the a-survives direction
	// is tried first, so the word must be x.
	a := chain(1, [][3]interface{}{{0, "x", 0}})
	b := chain(1, [][3]interface{}{{0, "y", 0}})
	d, err := Distinguish(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !d.ASurvives || !reflect.DeepEqual(d.Word, []string{"x"}) {
		t.Fatalf("got %+v, want [x] with ASurvives", d)
	}
}

func TestDistinguishLexLeast(t *testing.T) {
	// a runs any of x,y,z from state 0 forever; b refuses y and z.
	// Both [y] and [z] distinguish at depth 1; the union alphabet is
	// a's first-seen order (x, y, z), so lex-least picks y.
	a := chain(1, [][3]interface{}{{0, "x", 0}, {0, "y", 0}, {0, "z", 0}})
	b := chain(1, [][3]interface{}{{0, "x", 0}})
	d, err := Distinguish(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || !reflect.DeepEqual(d.Word, []string{"y"}) || !d.ASurvives {
		t.Fatalf("got %+v, want [y] with ASurvives", d)
	}
}

func TestDistinguishBSurvives(t *testing.T) {
	// b has a symbol a lacks entirely: only the b-survives direction
	// can succeed.
	a := chain(1, [][3]interface{}{{0, "x", 0}})
	b := chain(1, [][3]interface{}{{0, "x", 0}, {0, "z", 0}})
	d, err := Distinguish(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.ASurvives || !reflect.DeepEqual(d.Word, []string{"z"}) {
		t.Fatalf("got %+v, want [z] with b surviving", d)
	}
}

func TestDistinguishEquivalent(t *testing.T) {
	mk := func() *automaton.NFA {
		return chain(3, [][3]interface{}{{0, "p", 1}, {1, "q", 2}, {2, "p", 1}})
	}
	d, err := Distinguish(mk(), mk(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("equivalent automata distinguished: %+v", d)
	}
	// Structurally different but trace-equivalent up to any depth:
	// both run (pq)* — one with 2 states, one with 4.
	a := chain(2, [][3]interface{}{{0, "p", 1}, {1, "q", 0}})
	b := chain(4, [][3]interface{}{{0, "p", 1}, {1, "q", 2}, {2, "p", 3}, {3, "q", 0}})
	d, err = Distinguish(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("trace-equivalent automata distinguished: %+v", d)
	}
}

func TestDistinguishDepthBound(t *testing.T) {
	// The automata differ only at depth 3: a dies after pqr, b loops.
	a := chain(4, [][3]interface{}{{0, "p", 1}, {1, "q", 2}, {2, "r", 3}})
	b := chain(4, [][3]interface{}{{0, "p", 1}, {1, "q", 2}, {2, "r", 3}, {3, "p", 1}})
	d, err := Distinguish(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("found distinction below its depth: %+v", d)
	}
	d, err = Distinguish(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.ASurvives || len(d.Word) != 4 {
		t.Fatalf("got %+v, want a length-4 word with b surviving", d)
	}
}

func TestDistinguishNondeterministic(t *testing.T) {
	nd := chain(2, [][3]interface{}{{0, "x", 0}, {0, "x", 1}})
	det := chain(1, [][3]interface{}{{0, "x", 0}})
	if _, err := Distinguish(nd, det, 2); err == nil {
		t.Fatal("nondeterministic input accepted")
	}
	if _, err := Distinguish(det, nd, 2); err == nil {
		t.Fatal("nondeterministic input accepted (second argument)")
	}
}

func TestDistinguishEmptyAlphabet(t *testing.T) {
	a := automaton.MustNew(1, 0)
	b := automaton.MustNew(2, 0)
	d, err := Distinguish(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("transition-free automata distinguished: %+v", d)
	}
}
