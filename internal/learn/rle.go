// Run-length-encoded model learning: GenerateModelSeqs is
// GenerateModelMulti over RLE symbol sequences, so the streaming
// pipeline can hand the learner its predicate stream without ever
// materialising the expanded sequence. Resident memory is O(runs +
// unique segments + unique grams); on the long, repetition-dominated
// traces the paper targets, runs ≪ length.
//
// Equivalence with the expanded path is structural, not tested-in:
// GenerateModelMulti converts to Seq and delegates here, so there is
// only one algorithm. The window visitor enumerates window occurrences
// in position order and skips only a window identical to its
// predecessor (which segment recording would dedupe anyway), so the
// first-occurrence order of segments — and therefore the encoding, the
// solver decisions and the learned automaton — is bit-for-bit the same
// as scanning the expanded sequence.
package learn

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/automaton"
	"repro/internal/pipeline"
	"repro/internal/sat"
)

// Seq is a run-length-encoded symbol sequence under construction: the
// streaming pipeline appends one run per emitted predicate run. Symbols
// are interned locally in first-appearance order.
type Seq struct {
	syms   []string
	symID  map[string]int
	ids    []int32 // per-run local symbol ids
	counts []int32 // per-run lengths
	total  int
}

// NewSeq returns an empty sequence.
func NewSeq() *Seq {
	return &Seq{symID: map[string]int{}}
}

// InternSym returns the local id of sym, assigning the next one on
// first sight. Callers that can cache the id by a cheaper identity
// than the symbol string (the streaming pipeline keys on the interned
// predicate pointer) combine it with AppendID to skip hashing long
// predicate keys on every run.
func (s *Seq) InternSym(sym string) int {
	id, ok := s.symID[sym]
	if !ok {
		id = len(s.syms)
		s.symID[sym] = id
		s.syms = append(s.syms, sym)
	}
	return id
}

// Append appends count occurrences of sym, merging into the last run
// when the symbol matches, so runs stay maximal regardless of how the
// caller chunks its input. Runs longer than MaxInt32 are split; the
// consumers tolerate equal adjacent runs.
func (s *Seq) Append(sym string, count int) {
	if count <= 0 {
		return
	}
	s.AppendID(s.InternSym(sym), count)
}

// AppendID is Append for an id InternSym already assigned.
func (s *Seq) AppendID(id int, count int) {
	if count <= 0 {
		return
	}
	s.total += count
	if n := len(s.ids); n > 0 && s.ids[n-1] == int32(id) && int(s.counts[n-1])+count <= math.MaxInt32 {
		s.counts[n-1] += int32(count)
		return
	}
	for count > math.MaxInt32 {
		s.ids = append(s.ids, int32(id))
		s.counts = append(s.counts, math.MaxInt32)
		count -= math.MaxInt32
	}
	s.ids = append(s.ids, int32(id))
	s.counts = append(s.counts, int32(count))
}

// Len returns the expanded sequence length.
func (s *Seq) Len() int { return s.total }

// Runs returns the number of stored runs.
func (s *Seq) Runs() int { return len(s.ids) }

// rleSeq is a Seq with its symbols re-interned into the global (cross-
// sequence) id space the learner uses.
type rleSeq struct {
	ids    []int32 // per-run global symbol ids
	counts []int32
	total  int
}

// windows calls visit(pos, win) for the content of the w-window at
// each start position in increasing order, skipping a position exactly
// when its window equals the previous position's window — which
// happens iff the sequence is constant on [pos−1, pos−1+w], i.e.
// inside a run of length ≥ w+1. Position 0 is always visited (anchor
// correctness). win is reused across calls; visitors must copy what
// they keep.
func (s *rleSeq) windows(w int, visit func(pos int, win []int32)) {
	if w <= 0 || w > s.total {
		return
	}
	win := make([]int32, w)
	last := s.total - w // last valid start position
	base := 0
	for r := range s.ids {
		c := int(s.counts[r])
		o := 0
		if c >= w {
			// Starts 0 … c−w inside this run share one constant
			// window: visit the first, skip the rest.
			s.fill(win, r, 0)
			visit(base, win)
			o = c - w + 1
			if o < 1 {
				o = 1
			}
		}
		for ; o < c; o++ {
			pos := base + o
			if pos > last {
				break
			}
			s.fill(win, r, o)
			visit(pos, win)
		}
		base += c
	}
}

// fill copies the window starting at offset o of run r into win.
func (s *rleSeq) fill(win []int32, r, o int) {
	k := 0
	for k < len(win) {
		c := int(s.counts[r])
		id := s.ids[r]
		for ; o < c && k < len(win); o++ {
			win[k] = id
			k++
		}
		if o == c {
			r++
			o = 0
		}
	}
}

// expand materialises positions [lo, hi) as global symbol ids (the
// acceptance-refinement windows; rare and bounded by the refinement
// window, except in degenerate cases where it soundly grows into the
// full prefix).
func (s *rleSeq) expand(lo, hi int) []int32 {
	out := make([]int32, 0, hi-lo)
	base := 0
	for r := 0; r < len(s.ids) && base < hi; r++ {
		c := int(s.counts[r])
		from, to := lo, hi
		if from < base {
			from = base
		}
		if to > base+c {
			to = base + c
		}
		for p := from; p < to; p++ {
			out = append(out, s.ids[r])
		}
		base += c
	}
	return out
}

// firstReject runs the sequence through the (deterministic) automaton
// from its initial state and returns the position of the first symbol
// with no transition, or −1. Runs the automaton self-loops on are
// consumed in O(1).
func (s *rleSeq) firstReject(m *automaton.NFA, symbols []string) int {
	cur := m.Initial()
	pos := 0
	for r := range s.ids {
		sym := symbols[s.ids[r]]
		c := int(s.counts[r])
		for i := 0; i < c; i++ {
			succ := m.Successors(cur, sym)
			if len(succ) == 0 {
				return pos
			}
			if succ[0] == cur {
				// Self-loop: the rest of the run stays put.
				pos += c - i
				break
			}
			cur = succ[0]
			pos++
		}
	}
	return -1
}

// GenerateModelSeqs learns one automaton from several run-length-
// encoded symbol sequences. It is the engine behind GenerateModelMulti
// (which expands nothing: it converts and delegates) and the direct
// entry point for the streaming pipeline.
func GenerateModelSeqs(inSeqs []*Seq, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(inSeqs) == 0 {
		return nil, errors.New("learn: no input sequences")
	}
	for _, s := range inSeqs {
		if s == nil || s.total == 0 {
			return nil, errors.New("learn: empty input sequence")
		}
	}
	start := time.Now()
	cpuStart := pipeline.CPUTime()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}

	// Re-intern symbols into one global table, in first-appearance
	// order across the sequences. Each sequence's local ids were
	// themselves assigned in first-appearance order, so interning the
	// local symbol table in id order reproduces exactly the order an
	// expanded scan would intern in — and the per-run remap is then an
	// O(1) array index instead of a map lookup on a long predicate key.
	symID := map[string]int{}
	var symbols []string
	seqs := make([]*rleSeq, len(inSeqs))
	for t, in := range inSeqs {
		local := make([]int32, len(in.syms))
		for lid, sym := range in.syms {
			gid, ok := symID[sym]
			if !ok {
				gid = len(symbols)
				symID[sym] = gid
				symbols = append(symbols, sym)
			}
			local[lid] = int32(gid)
		}
		ids := make([]int32, len(in.ids))
		for i, lid := range in.ids {
			ids[i] = local[lid]
		}
		seqs[t] = &rleSeq{ids: ids, counts: in.counts, total: in.total}
	}

	// Segment the sequences (Algorithm 1 line 16). Every sequence's
	// prefix window is anchored: the encoding pins its first slot to
	// state 0, fixing the shared initial state.
	//
	// Acceptance refinement: embedding every w-window does not by
	// itself make the automaton accept P — the solver can return
	// "parity" models whose windows all embed somewhere but whose
	// single deterministic run dead-ends. Any automaton that accepts
	// P embeds every sub-window of every length, so when the run of
	// the candidate automaton dead-ends at position k we add the
	// window of P ending at k+1 as an extra (deduplicated) path
	// constraint and re-solve, doubling the window length when the
	// same content recurs. Windows that reach back to position 0 are
	// anchored at the initial state, so the loop always makes
	// progress; in the worst case the constraint grows into the full
	// prefix and the search degenerates soundly into the
	// non-segmented encoding. Repeating trace patterns are still
	// constrained only once, preserving the segmentation speedup.
	var segments [][]int
	var anchored []bool
	segIndex := map[string]int{}
	var segKeyBuf []byte // reused; lookups via string(segKeyBuf) don't allocate
	recordSegment := func(win []int, anchor bool) (idx int, added, anchorUp bool) {
		segKeyBuf = appendIntsKey(segKeyBuf[:0], win)
		if i, ok := segIndex[string(segKeyBuf)]; ok {
			if anchor && !anchored[i] {
				anchored[i] = true
				return i, false, true
			}
			return i, false, false
		}
		segIndex[string(segKeyBuf)] = len(segments)
		segments = append(segments, append([]int(nil), win...))
		anchored = append(anchored, anchor)
		return len(segments) - 1, true, false
	}
	var seg32Buf []int // reused window-conversion scratch
	recordSegment32 := func(win []int32, anchor bool) (int, bool, bool) {
		if cap(seg32Buf) < len(win) {
			seg32Buf = make([]int, len(win))
		}
		w := seg32Buf[:len(win)]
		for i, x := range win {
			w[i] = int(x)
		}
		return recordSegment(w, anchor)
	}
	windowFor := func(s *rleSeq) int {
		w := opts.Window
		if w > s.total {
			w = s.total
		}
		return w
	}
	maxW := 0
	for _, s := range seqs {
		w := windowFor(s)
		if w > maxW {
			maxW = w
		}
		if opts.Resume != nil {
			continue // segment table restored below
		}
		if opts.Segmented {
			s.windows(w, func(pos int, win []int32) {
				recordSegment32(win, pos == 0)
			})
		} else {
			// Non-segmented baseline: the whole sequence is one
			// segment, so this mode is O(length) resident by design.
			recordSegment32(s.expand(0, s.total), true)
		}
	}
	if opts.Resume != nil {
		// Replay the checkpointed segment table (base windows plus any
		// acceptance-refinement additions and anchor upgrades) in its
		// first-record order: the dedup index, ids and anchor flags
		// come out exactly as the interrupted run left them.
		st := opts.Resume
		if len(st.Segments) != len(st.Anchored) {
			return nil, fmt.Errorf("learn: resume state has %d segments, %d anchor flags", len(st.Segments), len(st.Anchored))
		}
		for i, win := range st.Segments {
			for _, id := range win {
				if id < 0 || id >= len(symbols) {
					return nil, fmt.Errorf("learn: resume segment %d references symbol %d of %d", i, id, len(symbols))
				}
			}
			recordSegment(win, st.Anchored[i])
		}
	}

	// Valid l-grams (the set P_l of Algorithm 1 line 42), unioned
	// over the sequences. The duplicate-skipping visitor feeds a set,
	// so the skips are free coverage-wise.
	l := opts.ComplianceLen
	validGrams := map[string]bool{}
	gramKey := make([]byte, 0, 4*l)
	for _, s := range seqs {
		s.windows(l, func(pos int, win []int32) {
			gramKey = appendIntsKey32(gramKey[:0], win)
			if !validGrams[string(gramKey)] {
				// Insert materialises the key string; the dominant
				// already-seen case stays allocation-free.
				validGrams[string(gramKey)] = true
			}
		})
	}

	stats := Stats{}
	var blocked [][]int      // invalid l-grams accumulated across N
	acceptWindow := 2 * maxW // current acceptance-refinement window length
	startN := opts.StartStates
	resumeRefinements := 0
	if opts.Resume != nil {
		st := opts.Resume
		for i, g := range st.Blocked {
			for _, id := range g {
				if id < 0 || id >= len(symbols) {
					return nil, fmt.Errorf("learn: resume blocked gram %d references symbol %d of %d", i, id, len(symbols))
				}
			}
		}
		stats = st.Stats
		blocked = copyInts(st.Blocked)
		if st.AcceptWindow > 0 {
			acceptWindow = st.AcceptWindow
		}
		if st.N > 0 {
			startN = st.N
		}
		resumeRefinements = st.Refinements
	}
	maxSeqLen := 0
	for _, s := range seqs {
		if s.total > maxSeqLen {
			maxSeqLen = s.total
		}
	}

	// Telemetry: resolved once, recorded unconditionally (every object
	// no-ops when nil). Spans and events are additionally gated on
	// tracer enablement because building their attrs allocates.
	tel := opts.Telemetry
	tr := tel.Trace()
	cSolves := tel.Count("solver_calls_total")
	cGramsBlocked := tel.Count("learn_grams_blocked_total")
	cSegmentsAdded := tel.Count("learn_segments_added_total")
	hSolveNS := tel.Hist("solver_call_ns", "ns")

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	orderStates := !opts.NoSymmetryBreaking
	buildPortfolio := func(n int, warm *encoding) *portfolio {
		return newPortfolio(n, opts.Portfolio, workers, len(symbols), opts.MaxStates,
			segments, anchored, blocked, orderStates, warm)
	}
	finish := func() {
		stats.Duration = time.Since(start)
		stats.CPU = pipeline.CPUTime() - cpuStart
	}

	var warm *encoding
	for n := startN; n <= opts.MaxStates; {
		pf := buildPortfolio(n, warm)
		warm = nil
		refinements := resumeRefinements
		resumeRefinements = 0
		bumped := false
		for !bumped {
			// Round boundary: the portfolio state is a pure function of
			// (n, segments, anchored, blocked), so this is the moment
			// the search can be snapshotted and later resumed
			// byte-identically. The hook runs before the round's solver
			// call is counted, so resumed counters line up.
			if opts.Checkpoint != nil {
				err := opts.Checkpoint(&CheckpointState{
					N:            n,
					Refinements:  refinements,
					AcceptWindow: acceptWindow,
					Blocked:      copyInts(blocked),
					Segments:     copyInts(segments),
					Anchored:     append([]bool(nil), anchored...),
					Stats:        stats,
				})
				if err != nil {
					finish()
					return &Result{Stats: stats}, err
				}
			}
			if opts.Context != nil {
				if err := opts.Context.Err(); err != nil {
					finish()
					return &Result{Stats: stats}, fmt.Errorf("learn: %w", err)
				}
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				finish()
				return &Result{Stats: stats}, ErrTimeout
			}
			if !opts.NoInprocessing {
				pf.maybeSimplify()
			}
			stats.SolverCalls++
			cSolves.Add(1)
			var solveSpan pipeline.SpanID
			if tr.Enabled() {
				solveSpan = tr.Start(opts.TraceSpan, "solve",
					pipeline.Int("n", int64(n)),
					pipeline.Int("segments", int64(len(segments))))
			}
			before := stats
			t0 := time.Now()
			status, capUnsat := pf.solve(deadline)
			hSolveNS.Since(t0)
			tel.Prof().Observe("solve", time.Since(t0))
			pf.addStats(&stats)
			if tr.Enabled() {
				tr.End(solveSpan,
					pipeline.Str("status", status.String()),
					pipeline.Str("winner", pf.winner),
					pipeline.Int("spec_core", int64(pf.specCore)),
					pipeline.Int("conflicts", stats.SATConflicts-before.SATConflicts),
					pipeline.Int("decisions", stats.SATDecisions-before.SATDecisions),
					pipeline.Int("propagations", stats.SATPropagations-before.SATPropagations))
			}
			if status == sat.Unknown {
				finish()
				return &Result{Stats: stats}, ErrBudgetExceeded
			}
			if status == sat.Unsat {
				// No n-state automaton: escalate. When the
				// speculative member proved its unrestricted
				// capacity unsatisfiable too, n+1 is already
				// settled and the search skips to n+2, promoting
				// the speculative solver as a warm start
				// otherwise.
				next := n + 1
				if capUnsat {
					next = n + 2
				}
				warm = pf.takeWarm(next)
				n = next
				bumped = true
				continue
			}
			enc := pf.canonical()
			enc.canonicalize()
			m := enc.extract(symbols)

			// Compliance check (Algorithm 1 lines 38–45).
			invalid := invalidSequences(m, validGrams, symID, l)
			if len(invalid) > 0 {
				refinements++
				stats.Refinements++
				cGramsBlocked.Add(int64(len(invalid)))
				if tr.Enabled() {
					tr.Event(opts.TraceSpan, "compliance",
						pipeline.Int("n", int64(n)),
						pipeline.Int("grams_blocked", int64(len(invalid))))
				}
				if refinements > opts.MaxRefinements {
					return nil, fmt.Errorf("learn: more than %d refinements at N=%d", opts.MaxRefinements, n)
				}
				blocked = append(blocked, invalid...)
				if opts.ScratchRefinement {
					// Pre-incremental behaviour: re-encode with the
					// blocking clauses instead of extending the live
					// solvers.
					pf = buildPortfolio(n, nil)
				} else {
					for _, g := range invalid {
						pf.blockGram(g)
					}
				}
				continue
			}

			// Acceptance refinement, over every input sequence.
			rt, k := -1, -1
			for t, s := range seqs {
				if pos := s.firstReject(m, symbols); pos >= 0 {
					rt, k = t, pos
					break
				}
			}
			if rt < 0 {
				stats.Segments = len(segments)
				stats.FinalStates = n
				finish()
				if opts.retain != nil {
					// Hand the live solver state to the Live engine;
					// nothing below aliases it after this return.
					*opts.retain = searchRetained{
						pf:           pf,
						n:            n,
						acceptWindow: acceptWindow,
						blocked:      blocked,
						segments:     segments,
						anchored:     anchored,
						numSyms:      len(symbols),
					}
				}
				return &Result{Automaton: m, AcceptsInput: true, Stats: stats}, nil
			}
			stats.AcceptRefinements++
			if stats.AcceptRefinements > opts.MaxRefinements {
				return nil, fmt.Errorf("learn: more than %d acceptance refinements at N=%d", opts.MaxRefinements, n)
			}
			seq := seqs[rt]
			var idx int
			var added, anchorUp bool
			for {
				lo := k + 1 - acceptWindow
				if lo < 0 {
					lo = 0
				}
				idx, added, anchorUp = recordSegment32(seq.expand(lo, k+1), lo == 0)
				if added || anchorUp {
					break
				}
				// The window is already constrained; widen it.
				if acceptWindow > 2*maxSeqLen {
					// Unreachable: an anchored full prefix
					// forces the run past k.
					return nil, fmt.Errorf("learn: acceptance refinement stuck at position %d", k)
				}
				acceptWindow *= 2
			}
			if added {
				cSegmentsAdded.Add(1)
			}
			if tr.Enabled() {
				tr.Event(opts.TraceSpan, "acceptance",
					pipeline.Int("n", int64(n)),
					pipeline.Int("reject_pos", int64(k)),
					pipeline.Bool("segment_added", added))
			}
			if opts.ScratchRefinement {
				// Pre-incremental behaviour: discard the live
				// solvers and re-encode from scratch.
				pf = buildPortfolio(n, nil)
				refinements = 0
			} else if added {
				pf.addSegment(segments[idx], anchored[idx])
			} else {
				pf.anchorSegment(idx)
			}
		}
	}
	stats.Duration = time.Since(start)
	stats.CPU = pipeline.CPUTime() - cpuStart
	return &Result{Stats: stats}, fmt.Errorf("%w (max %d states, %d segments)", ErrNoAutomaton, opts.MaxStates, len(segments))
}
