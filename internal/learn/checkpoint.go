// Learn-stage checkpointing: CheckpointState captures the refinement
// state of a GenerateModelSeqs search at a solver-round boundary, and
// SeqState serialises the RLE input sequences themselves. Both are
// plain serialisable data; internal/checkpoint embeds them in its
// snapshot files.
//
// Resume determinism: a resumed search rebuilds its solver portfolio
// from scratch at the checkpointed (N, segments, anchored, blocked)
// with no warm start. That is byte-identical to continuing the
// uninterrupted run because satisfying models are only ever taken from
// the canonical portfolio member after lex-least canonicalisation (the
// PR-2 determinism rule: incremental, scratch and portfolio paths all
// extract the same automaton), and UNSAT verdicts are semantic facts
// independent of which member or warm start produced them. The only
// run-to-run variation — whether a speculative member happens to prove
// N+1 unsatisfiable in time to skip it — never changes the final N or
// the model extracted there.
package learn

import (
	"errors"
	"fmt"
	"math"
)

// SeqState is the serialisable form of a Seq: symbols in local
// first-appearance id order plus the run arrays.
type SeqState struct {
	Syms   []string `json:"syms"`
	IDs    []int32  `json:"ids"`
	Counts []int32  `json:"counts"`
}

// State snapshots the sequence. The returned slices are fresh copies.
func (s *Seq) State() *SeqState {
	return &SeqState{
		Syms:   append([]string(nil), s.syms...),
		IDs:    append([]int32(nil), s.ids...),
		Counts: append([]int32(nil), s.counts...),
	}
}

// NewSeqFromState rebuilds a Seq from a snapshot, revalidating the
// invariants Append maintains (ids in range, positive run lengths,
// distinct symbols) so a corrupt checkpoint fails here rather than
// deep inside the learner.
func NewSeqFromState(st *SeqState) (*Seq, error) {
	if st == nil {
		return nil, errors.New("learn: nil sequence state")
	}
	if len(st.IDs) != len(st.Counts) {
		return nil, fmt.Errorf("learn: sequence state has %d run ids, %d run counts", len(st.IDs), len(st.Counts))
	}
	s := &Seq{symID: make(map[string]int, len(st.Syms))}
	for i, sym := range st.Syms {
		if _, dup := s.symID[sym]; dup {
			return nil, fmt.Errorf("learn: sequence state repeats symbol %q", sym)
		}
		s.symID[sym] = i
		s.syms = append(s.syms, sym)
	}
	for i, id := range st.IDs {
		if id < 0 || int(id) >= len(st.Syms) {
			return nil, fmt.Errorf("learn: sequence state run %d references symbol %d of %d", i, id, len(st.Syms))
		}
		c := st.Counts[i]
		if c <= 0 {
			return nil, fmt.Errorf("learn: sequence state run %d has count %d", i, c)
		}
		if s.total > math.MaxInt-int(c) {
			return nil, fmt.Errorf("learn: sequence state length overflows at run %d", i)
		}
		s.ids = append(s.ids, id)
		s.counts = append(s.counts, c)
		s.total += int(c)
	}
	return s, nil
}

// CheckpointState is the refinement state of a model search at the top
// of a solver round, before that round's solver call is counted: the
// current state bound N, the compliance-refinement count within N, the
// acceptance-refinement window length, the accumulated blocked grams,
// and the full segment table (base windows plus acceptance additions)
// with anchor flags, in first-record order. Replaying the segment
// table through segment recording reproduces the segment index
// exactly, so a resumed search encodes the same CNF the interrupted
// one would have.
type CheckpointState struct {
	N            int     `json:"n"`
	Refinements  int     `json:"refinements"`
	AcceptWindow int     `json:"accept_window"`
	Blocked      [][]int `json:"blocked,omitempty"`
	Segments     [][]int `json:"segments"`
	Anchored     []bool  `json:"anchored"`
	Stats        Stats   `json:"stats"`
}

// copyInts deep-copies a slice of int slices (checkpoint snapshots
// must not alias the live, still-growing refinement state).
func copyInts(src [][]int) [][]int {
	if src == nil {
		return nil
	}
	out := make([][]int, len(src))
	for i, xs := range src {
		out[i] = append([]int(nil), xs...)
	}
	return out
}
