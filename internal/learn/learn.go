// Package learn implements the model-construction algorithm of the
// paper (Algorithm 1, procedure GenerateModel): given the predicate
// sequence P obtained from a trace, it searches for the smallest
// N-state automaton that
//
//   - contains every (unique) sliding-window segment of P as a
//     transition sequence,
//   - has at most one successor per (state, predicate) pair (the
//     paper's wrong_transition constraint), and
//   - passes the compliance check: every length-l transition sequence
//     realisable in the automaton is a contiguous subsequence of P.
//
// The paper encodes the search as a C program and extracts the
// automaton from a CBMC counterexample; here the identical hypothesis
// is encoded directly in CNF (see encode.go) and solved with the
// internal/sat CDCL solver. The search starts at N = 2 (or
// Options.StartStates, to reproduce the paper's Table I methodology)
// and increments N whenever the constraints are unsatisfiable, so the
// first model found is state-minimal. Compliance violations are turned
// into blocking clauses and the search repeats — the refinement loop
// of Algorithm 1 lines 38–48.
package learn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/automaton"
	"repro/internal/pipeline"
)

// Options tunes GenerateModel.
type Options struct {
	// Window is the segmentation window w over the predicate
	// sequence. Zero means 3, the paper's choice.
	Window int
	// ComplianceLen is the transition-sequence length l checked in
	// the compliance phase. Zero means 2, the paper's choice.
	ComplianceLen int
	// StartStates is the initial N. Zero means 2. Table I starts
	// each run at the known final N for a fair segmented
	// vs. non-segmented comparison.
	StartStates int
	// MaxStates caps N; the search fails with ErrNoAutomaton beyond
	// it. Zero means 64.
	MaxStates int
	// Segmented selects the paper's segmentation strategy: only the
	// unique windows of P constrain the search. Disabled, the whole
	// of P is one segment — the non-segmented baseline of Table I
	// and Fig 7.
	Segmented bool
	// Timeout bounds the total search wall-clock time; zero means
	// none. Exceeding it returns ErrTimeout (the paper's ">16 hours"
	// entries).
	Timeout time.Duration
	// MaxRefinements caps compliance-refinement iterations per N.
	// Zero means 10000.
	MaxRefinements int
	// NoSymmetryBreaking disables the state-ordering symmetry break
	// in the encoding (for the ablation benchmarks; the UNSAT
	// escalation proofs are substantially slower without it).
	NoSymmetryBreaking bool
	// Portfolio races this many solver configurations per solve
	// (bounded by the built-in table: canonical, speculative N+1,
	// restart and decay variants). Zero or one selects the serial
	// path. The learned automaton is identical for every Portfolio
	// and Workers setting; see portfolio.go for the determinism rule.
	Portfolio int
	// Workers bounds the portfolio's concurrency. Zero means one per
	// CPU; one runs the canonical member only.
	Workers int
	// ScratchRefinement rebuilds the encoding from scratch after each
	// compliance or acceptance refinement instead of extending the
	// live solvers — the pre-incremental behaviour, kept for
	// equivalence testing and ablation benchmarks. Canonical model
	// extraction makes the learned automaton identical either way.
	ScratchRefinement bool
	// NoInprocessing disables the growth-gated solver inprocessing
	// (satisfied-clause elimination and subsumption between rounds;
	// see sat.Solver.Simplify). Inprocessing preserves logical
	// equivalence and canonical extraction pins the model, so the
	// learned automaton is byte-identical either way — the knob exists
	// for the equivalence tests and ablation benchmarks.
	NoInprocessing bool
	// Context cancels the search between solver rounds (signal
	// handling; a round in flight finishes first). Nil means never
	// cancelled.
	Context context.Context
	// Checkpoint, when non-nil, is called at the top of every solver
	// round with a snapshot of the refinement state, before the
	// round's solver call is counted. A non-nil return aborts the
	// search with that error. The snapshot is a deep copy and may be
	// retained.
	Checkpoint func(*CheckpointState) error
	// Resume restores a previously checkpointed refinement state: the
	// search starts at the snapshot's N with its segments, blocked
	// grams, acceptance window and counters, instead of segmenting
	// afresh and starting at StartStates. The input sequences must be
	// the ones the snapshot was taken from (internal/checkpoint
	// enforces this with an input hash).
	Resume *CheckpointState
	// Telemetry records solver-call counters, latency histograms, and
	// compliance/acceptance events into the run's registry and trace.
	// Nil disables all recording; telemetry never changes results.
	Telemetry *pipeline.Telemetry
	// TraceSpan parents the per-round solve spans and refinement
	// events when Telemetry carries a tracer.
	TraceSpan pipeline.SpanID

	// retain, when non-nil, receives the live solver state of a
	// successful search (portfolio, level, segment/blocked tables) so
	// the Live engine can keep extending it incrementally instead of
	// relearning from scratch. Unexported: only live.go sets it.
	retain *searchRetained
}

// searchRetained is the solver state GenerateModelSeqs leaves behind
// for live extension: everything needed to continue the refinement
// loop at the found level n when the input sequence grows.
type searchRetained struct {
	pf           *portfolio
	n            int
	acceptWindow int
	blocked      [][]int
	segments     [][]int
	anchored     []bool
	numSyms      int
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 3
	}
	if o.ComplianceLen == 0 {
		o.ComplianceLen = 2
	}
	if o.StartStates == 0 {
		o.StartStates = 2
	}
	if o.MaxStates == 0 {
		o.MaxStates = 64
	}
	if o.MaxRefinements == 0 {
		o.MaxRefinements = 10000
	}
	return o
}

// Stats reports search effort.
type Stats struct {
	Segments          int // unique segments constraining the search
	SolverCalls       int
	Refinements       int // compliance violations blocked
	AcceptRefinements int // acceptance windows added
	FinalStates       int
	SATConflicts      int64
	SATDecisions      int64
	SATPropagations   int64
	SATLearned        int64 // clauses learned (and kept across solves)
	Duration          time.Duration
	// CPU is the process CPU time consumed by the search. On a
	// single run it tracks Duration (the solver is single-threaded);
	// it exists so stage reports can separate solver cost from the
	// parallel predicate stage, whose CPU exceeds its wall time.
	CPU time.Duration
}

// Result is a learned automaton plus bookkeeping.
type Result struct {
	Automaton *automaton.NFA
	// AcceptsInput reports whether the automaton accepts the whole
	// input sequence P from its initial state. The encoding
	// guarantees every segment is embedded; acceptance of the full
	// sequence additionally needs the segment paths to glue, which
	// the state-minimal solution does in all benchmark systems and
	// which this flag verifies.
	AcceptsInput bool
	Stats        Stats
}

// ErrNoAutomaton is returned when no automaton within MaxStates
// satisfies the constraints.
var ErrNoAutomaton = errors.New("learn: no automaton within state bound")

// ErrTimeout is returned when Options.Timeout elapses mid-search.
var ErrTimeout = errors.New("learn: timeout")

// ErrBudgetExceeded is returned when the SAT solver runs out of budget
// mid-solve — the deadline expired inside a solver call rather than
// between refinement iterations. It must never be conflated with
// UNSAT: treating an aborted solve as "no N-state automaton" would
// silently bump N and report a wrong, non-minimal model. It wraps
// ErrTimeout, so errors.Is(err, ErrTimeout) continues to hold for
// callers that only care that the search ran out of time.
var ErrBudgetExceeded = fmt.Errorf("learn: solver budget exceeded mid-solve: %w", ErrTimeout)

// GenerateModel learns an automaton from the symbol sequence P (the
// canonical predicate keys, or raw event names for event traces).
func GenerateModel(P []string, opts Options) (*Result, error) {
	return GenerateModelMulti([][]string{P}, opts)
}

// GenerateModelMulti learns one automaton from several symbol
// sequences — independent runs of the same system, all starting in the
// same initial state. Segments, valid l-grams and acceptance
// constraints are the unions over the runs; the learned model accepts
// every run from its initial state. This implements the multi-run
// learning the paper's prospects section motivates (exercising the
// system several ways to close coverage holes).
func GenerateModelMulti(Ps [][]string, opts Options) (*Result, error) {
	if len(Ps) == 0 {
		return nil, errors.New("learn: no input sequences")
	}
	// Convert to run-length-encoded sequences and delegate: there is
	// one algorithm (GenerateModelSeqs), so the expanded and streamed
	// entry points cannot diverge. An empty P converts to a zero-length
	// Seq, which GenerateModelSeqs rejects with the same error this
	// function always raised.
	seqs := make([]*Seq, len(Ps))
	for t, P := range Ps {
		seq := NewSeq()
		for _, sym := range P {
			seq.Append(sym, 1)
		}
		seqs[t] = seq
	}
	return GenerateModelSeqs(seqs, opts)
}

// invalidSequences returns the l-grams realisable in m that are not
// contiguous subsequences of P, as symbol-id words (S_l − P_l).
func invalidSequences(m *automaton.NFA, validGrams map[string]bool, symID map[string]int, l int) [][]int {
	var out [][]int
	var buf []byte
	for _, word := range m.SymbolSequences(l) {
		ids := make([]int, len(word))
		for i, s := range word {
			ids[i] = symID[s]
		}
		buf = appendIntsKey(buf[:0], ids)
		if !validGrams[string(buf)] {
			out = append(out, ids)
		}
	}
	return out
}

// intsKey encodes a symbol-id word as the little-endian concatenation
// of its ids — a compact, fixed-width map key. The append variants
// below feed a reused buffer so hot-loop lookups via m[string(buf)]
// never allocate (the compiler elides the conversion); a string is
// materialised only when a key is actually inserted.
func intsKey(xs []int) string {
	return string(appendIntsKey(make([]byte, 0, 4*len(xs)), xs))
}

func appendIntsKey(b []byte, xs []int) []byte {
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

func appendIntsKey32(b []byte, xs []int32) []byte {
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}
