// Package learn implements the model-construction algorithm of the
// paper (Algorithm 1, procedure GenerateModel): given the predicate
// sequence P obtained from a trace, it searches for the smallest
// N-state automaton that
//
//   - contains every (unique) sliding-window segment of P as a
//     transition sequence,
//   - has at most one successor per (state, predicate) pair (the
//     paper's wrong_transition constraint), and
//   - passes the compliance check: every length-l transition sequence
//     realisable in the automaton is a contiguous subsequence of P.
//
// The paper encodes the search as a C program and extracts the
// automaton from a CBMC counterexample; here the identical hypothesis
// is encoded directly in CNF (see encode.go) and solved with the
// internal/sat CDCL solver. The search starts at N = 2 (or
// Options.StartStates, to reproduce the paper's Table I methodology)
// and increments N whenever the constraints are unsatisfiable, so the
// first model found is state-minimal. Compliance violations are turned
// into blocking clauses and the search repeats — the refinement loop
// of Algorithm 1 lines 38–48.
package learn

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/automaton"
	"repro/internal/pipeline"
	"repro/internal/sat"
)

// Options tunes GenerateModel.
type Options struct {
	// Window is the segmentation window w over the predicate
	// sequence. Zero means 3, the paper's choice.
	Window int
	// ComplianceLen is the transition-sequence length l checked in
	// the compliance phase. Zero means 2, the paper's choice.
	ComplianceLen int
	// StartStates is the initial N. Zero means 2. Table I starts
	// each run at the known final N for a fair segmented
	// vs. non-segmented comparison.
	StartStates int
	// MaxStates caps N; the search fails with ErrNoAutomaton beyond
	// it. Zero means 64.
	MaxStates int
	// Segmented selects the paper's segmentation strategy: only the
	// unique windows of P constrain the search. Disabled, the whole
	// of P is one segment — the non-segmented baseline of Table I
	// and Fig 7.
	Segmented bool
	// Timeout bounds the total search wall-clock time; zero means
	// none. Exceeding it returns ErrTimeout (the paper's ">16 hours"
	// entries).
	Timeout time.Duration
	// MaxRefinements caps compliance-refinement iterations per N.
	// Zero means 10000.
	MaxRefinements int
	// NoSymmetryBreaking disables the state-ordering symmetry break
	// in the encoding (for the ablation benchmarks; the UNSAT
	// escalation proofs are substantially slower without it).
	NoSymmetryBreaking bool
	// Portfolio races this many solver configurations per solve
	// (bounded by the built-in table: canonical, speculative N+1,
	// restart and decay variants). Zero or one selects the serial
	// path. The learned automaton is identical for every Portfolio
	// and Workers setting; see portfolio.go for the determinism rule.
	Portfolio int
	// Workers bounds the portfolio's concurrency. Zero means one per
	// CPU; one runs the canonical member only.
	Workers int
	// ScratchRefinement rebuilds the encoding from scratch after each
	// compliance or acceptance refinement instead of extending the
	// live solvers — the pre-incremental behaviour, kept for
	// equivalence testing and ablation benchmarks. Canonical model
	// extraction makes the learned automaton identical either way.
	ScratchRefinement bool
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 3
	}
	if o.ComplianceLen == 0 {
		o.ComplianceLen = 2
	}
	if o.StartStates == 0 {
		o.StartStates = 2
	}
	if o.MaxStates == 0 {
		o.MaxStates = 64
	}
	if o.MaxRefinements == 0 {
		o.MaxRefinements = 10000
	}
	return o
}

// Stats reports search effort.
type Stats struct {
	Segments          int // unique segments constraining the search
	SolverCalls       int
	Refinements       int // compliance violations blocked
	AcceptRefinements int // acceptance windows added
	FinalStates       int
	SATConflicts      int64
	SATDecisions      int64
	SATPropagations   int64
	SATLearned        int64 // clauses learned (and kept across solves)
	Duration          time.Duration
	// CPU is the process CPU time consumed by the search. On a
	// single run it tracks Duration (the solver is single-threaded);
	// it exists so stage reports can separate solver cost from the
	// parallel predicate stage, whose CPU exceeds its wall time.
	CPU time.Duration
}

// Result is a learned automaton plus bookkeeping.
type Result struct {
	Automaton *automaton.NFA
	// AcceptsInput reports whether the automaton accepts the whole
	// input sequence P from its initial state. The encoding
	// guarantees every segment is embedded; acceptance of the full
	// sequence additionally needs the segment paths to glue, which
	// the state-minimal solution does in all benchmark systems and
	// which this flag verifies.
	AcceptsInput bool
	Stats        Stats
}

// ErrNoAutomaton is returned when no automaton within MaxStates
// satisfies the constraints.
var ErrNoAutomaton = errors.New("learn: no automaton within state bound")

// ErrTimeout is returned when Options.Timeout elapses mid-search.
var ErrTimeout = errors.New("learn: timeout")

// ErrBudgetExceeded is returned when the SAT solver runs out of budget
// mid-solve — the deadline expired inside a solver call rather than
// between refinement iterations. It must never be conflated with
// UNSAT: treating an aborted solve as "no N-state automaton" would
// silently bump N and report a wrong, non-minimal model. It wraps
// ErrTimeout, so errors.Is(err, ErrTimeout) continues to hold for
// callers that only care that the search ran out of time.
var ErrBudgetExceeded = fmt.Errorf("learn: solver budget exceeded mid-solve: %w", ErrTimeout)

// GenerateModel learns an automaton from the symbol sequence P (the
// canonical predicate keys, or raw event names for event traces).
func GenerateModel(P []string, opts Options) (*Result, error) {
	return GenerateModelMulti([][]string{P}, opts)
}

// GenerateModelMulti learns one automaton from several symbol
// sequences — independent runs of the same system, all starting in the
// same initial state. Segments, valid l-grams and acceptance
// constraints are the unions over the runs; the learned model accepts
// every run from its initial state. This implements the multi-run
// learning the paper's prospects section motivates (exercising the
// system several ways to close coverage holes).
func GenerateModelMulti(Ps [][]string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(Ps) == 0 {
		return nil, errors.New("learn: no input sequences")
	}
	for _, P := range Ps {
		if len(P) == 0 {
			return nil, errors.New("learn: empty input sequence")
		}
	}
	start := time.Now()
	cpuStart := pipeline.CPUTime()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}

	// Intern symbols across all sequences.
	symID := map[string]int{}
	var symbols []string
	seqs := make([][]int, len(Ps))
	for t, P := range Ps {
		seq := make([]int, len(P))
		for i, s := range P {
			id, ok := symID[s]
			if !ok {
				id = len(symbols)
				symID[s] = id
				symbols = append(symbols, s)
			}
			seq[i] = id
		}
		seqs[t] = seq
	}

	// Segment the sequences (Algorithm 1 line 16). Every sequence's
	// prefix window is anchored: the encoding pins its first slot to
	// state 0, fixing the shared initial state.
	//
	// Acceptance refinement: embedding every w-window does not by
	// itself make the automaton accept P — the solver can return
	// "parity" models whose windows all embed somewhere but whose
	// single deterministic run dead-ends. Any automaton that accepts
	// P embeds every sub-window of every length, so when the run of
	// the candidate automaton dead-ends at position k we add the
	// window of P ending at k+1 as an extra (deduplicated) path
	// constraint and re-solve, doubling the window length when the
	// same content recurs. Windows that reach back to position 0 are
	// anchored at the initial state, so the loop always makes
	// progress; in the worst case the constraint grows into the full
	// prefix and the search degenerates soundly into the
	// non-segmented encoding. Repeating trace patterns are still
	// constrained only once, preserving the segmentation speedup.
	var segments [][]int
	var anchored []bool
	segIndex := map[string]int{}
	// recordSegment adds win to the segment set (or upgrades an
	// existing segment to anchored) and reports what changed, so the
	// caller can mirror the change onto live encodings.
	recordSegment := func(win []int, anchor bool) (idx int, added, anchorUp bool) {
		key := intsKey(win)
		if i, ok := segIndex[key]; ok {
			if anchor && !anchored[i] {
				anchored[i] = true
				return i, false, true
			}
			return i, false, false
		}
		segIndex[key] = len(segments)
		segments = append(segments, append([]int(nil), win...))
		anchored = append(anchored, anchor)
		return len(segments) - 1, true, false
	}
	windowFor := func(seq []int) int {
		w := opts.Window
		if w > len(seq) {
			w = len(seq)
		}
		return w
	}
	maxW := 0
	for _, seq := range seqs {
		w := windowFor(seq)
		if w > maxW {
			maxW = w
		}
		if opts.Segmented {
			for i := 0; i+w <= len(seq); i++ {
				recordSegment(seq[i:i+w], i == 0)
			}
		} else {
			recordSegment(seq, true)
		}
	}

	// Valid l-grams (the set P_l of Algorithm 1 line 42), unioned
	// over the sequences.
	l := opts.ComplianceLen
	validGrams := map[string]bool{}
	for _, seq := range seqs {
		if l > len(seq) {
			continue
		}
		for i := 0; i+l <= len(seq); i++ {
			validGrams[intsKey(seq[i:i+l])] = true
		}
	}

	stats := Stats{}
	var blocked [][]int      // invalid l-grams accumulated across N
	acceptWindow := 2 * maxW // current acceptance-refinement window length
	maxSeqLen := 0
	for _, seq := range seqs {
		if len(seq) > maxSeqLen {
			maxSeqLen = len(seq)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	orderStates := !opts.NoSymmetryBreaking
	buildPortfolio := func(n int, warm *encoding) *portfolio {
		return newPortfolio(n, opts.Portfolio, workers, len(symbols), opts.MaxStates,
			segments, anchored, blocked, orderStates, warm)
	}
	finish := func() {
		stats.Duration = time.Since(start)
		stats.CPU = pipeline.CPUTime() - cpuStart
	}

	var warm *encoding
	for n := opts.StartStates; n <= opts.MaxStates; {
		pf := buildPortfolio(n, warm)
		warm = nil
		refinements := 0
		bumped := false
		for !bumped {
			if !deadline.IsZero() && time.Now().After(deadline) {
				finish()
				return &Result{Stats: stats}, ErrTimeout
			}
			stats.SolverCalls++
			status, capUnsat := pf.solve(deadline)
			pf.addStats(&stats)
			if status == sat.Unknown {
				finish()
				return &Result{Stats: stats}, ErrBudgetExceeded
			}
			if status == sat.Unsat {
				// No n-state automaton: escalate. When the
				// speculative member proved its unrestricted
				// capacity unsatisfiable too, n+1 is already
				// settled and the search skips to n+2, promoting
				// the speculative solver as a warm start
				// otherwise.
				next := n + 1
				if capUnsat {
					next = n + 2
				}
				warm = pf.takeWarm(next)
				n = next
				bumped = true
				continue
			}
			enc := pf.canonical()
			enc.canonicalize()
			m := enc.extract(symbols)

			// Compliance check (Algorithm 1 lines 38–45).
			invalid := invalidSequences(m, validGrams, symID, l)
			if len(invalid) > 0 {
				refinements++
				stats.Refinements++
				if refinements > opts.MaxRefinements {
					return nil, fmt.Errorf("learn: more than %d refinements at N=%d", opts.MaxRefinements, n)
				}
				blocked = append(blocked, invalid...)
				if opts.ScratchRefinement {
					// Pre-incremental behaviour: re-encode with the
					// blocking clauses instead of extending the live
					// solvers.
					pf = buildPortfolio(n, nil)
				} else {
					for _, g := range invalid {
						pf.blockGram(g)
					}
				}
				continue
			}

			// Acceptance refinement, over every input sequence.
			rt, k := firstRejectMulti(m, Ps)
			if rt < 0 {
				stats.Segments = len(segments)
				stats.FinalStates = n
				finish()
				return &Result{Automaton: m, AcceptsInput: true, Stats: stats}, nil
			}
			stats.AcceptRefinements++
			if stats.AcceptRefinements > opts.MaxRefinements {
				return nil, fmt.Errorf("learn: more than %d acceptance refinements at N=%d", opts.MaxRefinements, n)
			}
			seq := seqs[rt]
			var idx int
			var added, anchorUp bool
			for {
				lo := k + 1 - acceptWindow
				if lo < 0 {
					lo = 0
				}
				idx, added, anchorUp = recordSegment(seq[lo:k+1], lo == 0)
				if added || anchorUp {
					break
				}
				// The window is already constrained; widen it.
				if acceptWindow > 2*maxSeqLen {
					// Unreachable: an anchored full prefix
					// forces the run past k.
					return nil, fmt.Errorf("learn: acceptance refinement stuck at position %d", k)
				}
				acceptWindow *= 2
			}
			if opts.ScratchRefinement {
				// Pre-incremental behaviour: discard the live
				// solvers and re-encode from scratch.
				pf = buildPortfolio(n, nil)
				refinements = 0
			} else if added {
				pf.addSegment(segments[idx], anchored[idx])
			} else {
				pf.anchorSegment(idx)
			}
		}
	}
	stats.Duration = time.Since(start)
	stats.CPU = pipeline.CPUTime() - cpuStart
	return &Result{Stats: stats}, fmt.Errorf("%w (max %d states, %d segments)", ErrNoAutomaton, opts.MaxStates, len(segments))
}

// firstRejectMulti runs every sequence through the (deterministic)
// automaton from its initial state and returns the sequence index and
// position of the first symbol with no transition, or (-1, -1) when
// every sequence is accepted.
func firstRejectMulti(m *automaton.NFA, Ps [][]string) (int, int) {
	for t, P := range Ps {
		cur := m.Initial()
		for i, sym := range P {
			succ := m.Successors(cur, sym)
			if len(succ) == 0 {
				return t, i
			}
			cur = succ[0]
		}
	}
	return -1, -1
}

// invalidSequences returns the l-grams realisable in m that are not
// contiguous subsequences of P, as symbol-id words (S_l − P_l).
func invalidSequences(m *automaton.NFA, validGrams map[string]bool, symID map[string]int, l int) [][]int {
	var out [][]int
	for _, word := range m.SymbolSequences(l) {
		ids := make([]int, len(word))
		for i, s := range word {
			ids[i] = symID[s]
		}
		if !validGrams[intsKey(ids)] {
			out = append(out, ids)
		}
	}
	return out
}

func intsKey(xs []int) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%d,", x)
	}
	return b.String()
}
