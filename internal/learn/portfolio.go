// Portfolio model construction: race several solver configurations on
// the same automaton-existence question and decide each solve round
// deterministically, mirroring the replay discipline of
// internal/predicate/parallel.go (speculate in parallel, decide by a
// rule that does not depend on scheduling).
//
// Every member solves a formula equisatisfiable with the canonical
// n-state encoding, so the Sat/Unsat status of a round is a fact about
// the input, not about timing. The decision rule exploits that:
//
//   - An Unsat result from any member decides the round — all members
//     must agree, so it does not matter which one finished first.
//   - A Sat decision is only ever taken from member 0, the canonical
//     configuration, whose solver runs the exact serial computation.
//     Variant models are discarded, so the extracted automaton — and
//     with it every refinement, every blocking clause, and the final
//     Result — is identical for any worker count, including 1 (where
//     the variants never run at all).
//
// Member 0 is interrupted only when a variant proves Unsat, which ends
// the round with the same status member 0 would eventually have
// produced; its solver is then discarded with the rest of the level.
// Effort statistics (conflicts, decisions, solver calls) do depend on
// scheduling: a variant may win an UNSAT round early, and the
// speculative member may or may not finish in time for its result to
// skip a state count. The semantic fields of Result never do.
//
// The speculative member solves with capacity n+1 under the chain
// restriction (see encoding.assumptions). When a round is UNSAT it is
// the natural warm start for the next level: promote drops the
// restriction and keeps the learned clauses. When its own result is
// Unsat with an empty core, the clauses alone are unsatisfiable — no
// (n+1)-state automaton exists either — and the search may skip
// straight to n+2.
package learn

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sat"
)

// solverConfig is one portfolio member's diversification knobs.
type solverConfig struct {
	name        string
	restartBase int64
	decay       float64
	preferTrue  bool // flip transition-variable polarity preference
	speculative bool // capacity n+1 under the chain restriction
	warm        bool // promoted encoding carried over from the previous level
}

// portfolioConfigs is the fixed member table, in priority order.
// Member 0 must stay the canonical (all-defaults) configuration: the
// determinism rule takes Sat models only from it.
var portfolioConfigs = []solverConfig{
	{name: "canonical"},
	{name: "speculate-n+1", speculative: true},
	{name: "restart-fast", restartBase: 25},
	{name: "decay-hard", decay: 0.85, preferTrue: true},
}

// member is one live solver configuration.
type member struct {
	cfg  solverConfig
	enc  *encoding
	last sat.Status // result of the latest round; Unknown when unrun
	prev sat.Stats  // solver stats already accumulated upstream
}

// portfolio races K solver configurations over the same level-n
// question. A portfolio with a single member degenerates to the serial
// path, solving unbounded on the caller's goroutine.
type portfolio struct {
	members []*member
	workers int
	stop    atomic.Bool

	// Telemetry for the latest round (written by solve, read by the
	// caller between rounds): the member whose verdict decided it, and
	// the speculative member's UNSAT-core size (−1 when no core was
	// produced). Like the effort statistics, winner is
	// scheduling-dependent on UNSAT rounds; the round's status is not.
	winner   string
	specCore int
}

// newPortfolio builds k members for the n-state question (bounded by
// the config table; k ≤ 1 yields the canonical member only). warm, when
// non-nil, is the promoted speculative encoding from the previous
// level, appended as an extra member — it only ever contributes Unsat
// decisions, so its (scheduling-dependent) learned state cannot
// influence the result. The speculative member requires the symmetry
// chain and is skipped when ordering is off or n is at the state cap.
func newPortfolio(n, k, workers, numSyms, maxN int, segments [][]int, anchored []bool,
	blocked [][]int, orderStates bool, warm *encoding) *portfolio {
	if k > len(portfolioConfigs) {
		k = len(portfolioConfigs)
	}
	if workers < 1 {
		workers = 1
	}
	pf := &portfolio{workers: workers}
	for i, cfg := range portfolioConfigs {
		if i >= k && i > 0 {
			break
		}
		if cfg.speculative && (!orderStates || n >= maxN) {
			continue
		}
		capacity := n
		if cfg.speculative {
			capacity = n + 1
		}
		enc := newEncoding(n, capacity, numSyms, segments, anchored, orderStates)
		for _, g := range blocked {
			enc.blockGram(g)
		}
		enc.solver.RestartBase = cfg.restartBase
		enc.solver.Decay = cfg.decay
		if cfg.preferTrue {
			enc.preferTransitions(true)
		}
		pf.members = append(pf.members, &member{cfg: cfg, enc: enc})
	}
	if warm != nil {
		pf.members = append(pf.members, &member{cfg: solverConfig{name: "warm", warm: true}, enc: warm})
	}
	return pf
}

// canonical returns member 0's encoding, the only one models are
// extracted from.
func (pf *portfolio) canonical() *encoding { return pf.members[0].enc }

// solve runs one round: every member solves the current constraint
// set, member 0 on the caller's goroutine and the variants on a pool
// bounded by workers-1. It returns the round status — Sat only from
// member 0, Unsat from any member, Unknown when the deadline expired
// with no verdict — plus capUnsat, true when the speculative member
// proved the clauses unsatisfiable even without its capacity
// restriction (no (n+1)-state automaton exists either). All goroutines
// have exited by return, so the caller may freely mutate the members.
func (pf *portfolio) solve(deadline time.Time) (sat.Status, bool) {
	pf.winner = pf.members[0].cfg.name
	pf.specCore = -1
	if len(pf.members) == 1 {
		// Serial: unbounded solve, exactly the non-portfolio path.
		pf.members[0].last = pf.members[0].enc.solve(deadline, nil)
		return pf.members[0].last, false
	}

	pf.stop.Store(false)
	for _, m := range pf.members {
		m.last = sat.Unknown
	}
	interruptAll := func() {
		pf.stop.Store(true)
		for _, m := range pf.members {
			m.enc.solver.Interrupt()
		}
	}

	var wg sync.WaitGroup
	var cursor atomic.Int64 // next variant index; member 0 is the caller's
	slots := pf.workers - 1
	if slots > len(pf.members)-1 {
		slots = len(pf.members) - 1
	}
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(cursor.Add(1))
				if k >= len(pf.members) || pf.stop.Load() {
					return
				}
				m := pf.members[k]
				m.last = m.enc.solve(deadline, &pf.stop)
				if m.last == sat.Unsat {
					// Unsat is terminal for the round: every member
					// solves an equisatisfiable formula.
					interruptAll()
				}
			}
		}()
	}

	m0 := pf.members[0]
	m0.last = m0.enc.solve(deadline, &pf.stop)
	if m0.last != sat.Unknown {
		interruptAll()
	}
	wg.Wait()

	capUnsat := false
	anyUnsat := false
	for _, m := range pf.members {
		if m.last != sat.Unsat {
			continue
		}
		if !anyUnsat {
			pf.winner = m.cfg.name
		}
		anyUnsat = true
		if m.cfg.speculative {
			if core := m.enc.solver.UnsatCore(); core != nil {
				pf.specCore = len(core)
				if len(core) == 0 {
					capUnsat = true
				}
			}
		}
	}
	if anyUnsat {
		return sat.Unsat, capUnsat
	}
	return m0.last, false
}

// maybeSimplify runs growth-gated inprocessing on every member before
// a round. Member 0's pass is a deterministic function of its (serial,
// deterministic) solver state, so the determinism rule is unaffected;
// variant members only ever contribute Unsat verdicts, which
// equivalence-preserving simplification cannot corrupt.
func (pf *portfolio) maybeSimplify() {
	for _, m := range pf.members {
		m.enc.maybeSimplify()
	}
}

// addStats accumulates each member's solver counters into st, keeping
// per-member high-water marks so repeated calls never double count.
func (pf *portfolio) addStats(st *Stats) {
	for _, m := range pf.members {
		d := m.enc.solver.Stats
		st.SATConflicts += d.Conflicts - m.prev.Conflicts
		st.SATDecisions += d.Decisions - m.prev.Decisions
		st.SATPropagations += d.Propagations - m.prev.Propagations
		st.SATLearned += d.Learned - m.prev.Learned
		m.prev = d
	}
}

// blockGram blocks the invalid l-gram on every member.
func (pf *portfolio) blockGram(g []int) {
	for _, m := range pf.members {
		m.enc.blockGram(g)
	}
}

// addSegment extends every member with a new acceptance-refinement
// segment, in place: solvers keep their learned clauses.
func (pf *portfolio) addSegment(seg []int, anchor bool) {
	for _, m := range pf.members {
		m.enc.addSegment(seg, anchor)
	}
}

// anchorSegment upgrades segment i to anchored on every member.
func (pf *portfolio) anchorSegment(i int) {
	for _, m := range pf.members {
		m.enc.anchorSegment(i)
	}
}

// takeWarm extracts a warm encoding for the next level, promoting the
// speculative member when its capacity matches. Nil when there is
// nothing to carry over (the warm member itself is never re-promoted:
// its capacity is already spent).
func (pf *portfolio) takeWarm(next int) *encoding {
	for _, m := range pf.members {
		if m.cfg.speculative && m.enc.capacity == next {
			m.enc.promote()
			return m.enc
		}
	}
	return nil
}
