package learn

import (
	"reflect"
	"testing"
)

func TestSeqStateRoundTrip(t *testing.T) {
	s := NewSeq()
	for _, r := range []struct {
		sym string
		n   int
	}{{"a", 3}, {"b", 1}, {"a", 2}, {"c", 5}} {
		s.Append(r.sym, r.n)
	}
	st := s.State()
	rebuilt, err := NewSeqFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt.State(), st) {
		t.Errorf("round trip changed state:\nbefore %+v\nafter  %+v", st, rebuilt.State())
	}
	if rebuilt.Len() != s.Len() || rebuilt.Runs() != s.Runs() {
		t.Errorf("round trip changed shape: len %d/%d runs %d/%d",
			rebuilt.Len(), s.Len(), rebuilt.Runs(), s.Runs())
	}
	// The snapshot must not alias the live sequence.
	s.Append("a", 1)
	if len(st.IDs) != 4 {
		t.Error("State aliases the live sequence")
	}
}

func TestNewSeqFromStateRejectsCorruption(t *testing.T) {
	cases := map[string]*SeqState{
		"nil":              nil,
		"length mismatch":  {Syms: []string{"a"}, IDs: []int32{0, 0}, Counts: []int32{1}},
		"duplicate symbol": {Syms: []string{"a", "a"}, IDs: []int32{0}, Counts: []int32{1}},
		"id out of range":  {Syms: []string{"a"}, IDs: []int32{1}, Counts: []int32{1}},
		"negative id":      {Syms: []string{"a"}, IDs: []int32{-1}, Counts: []int32{1}},
		"zero count":       {Syms: []string{"a"}, IDs: []int32{0}, Counts: []int32{0}},
	}
	for name, st := range cases {
		if _, err := NewSeqFromState(st); err == nil {
			t.Errorf("%s: NewSeqFromState accepted it", name)
		}
	}
}

// TestResumeFromEveryRound is the learn-stage half of the resume
// determinism argument: capture the refinement state at every solver
// round of a baseline search, then restart a fresh search from each
// captured state and require the identical automaton. If any round's
// snapshot were missing state the restart would diverge (different N,
// different model, or a refinement loop).
func TestResumeFromEveryRound(t *testing.T) {
	P := repeatPattern(6, 3)
	var states []*CheckpointState
	base, err := GenerateModel(P, Options{
		Segmented: true,
		Checkpoint: func(st *CheckpointState) error {
			states = append(states, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("baseline made %d solver rounds; need at least 2 to test resume", len(states))
	}
	want := base.Automaton.String()

	for i, st := range states {
		res, err := GenerateModel(P, Options{Segmented: true, Resume: st})
		if err != nil {
			t.Fatalf("resume from round %d (N=%d): %v", i, st.N, err)
		}
		if got := res.Automaton.String(); got != want {
			t.Errorf("resume from round %d (N=%d) diverged:\nwant:\n%s\ngot:\n%s", i, st.N, want, got)
		}
	}
}

// TestCheckpointAbortsSearch: a checkpoint hook error (e.g. disk full)
// aborts the search immediately rather than learning on with crash
// safety silently gone.
func TestCheckpointAbortsSearch(t *testing.T) {
	P := repeatPattern(4, 2)
	boom := errTest("checkpoint sink failed")
	_, err := GenerateModel(P, Options{
		Segmented:  true,
		Checkpoint: func(*CheckpointState) error { return boom },
	})
	if err == nil {
		t.Fatal("search ignored the checkpoint error")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
