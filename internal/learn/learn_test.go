package learn

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// repeatPattern builds the counter-style sequence (A^k B C^k D)^reps A^k.
func repeatPattern(k, reps int) []string {
	var p []string
	for r := 0; r < reps; r++ {
		for i := 0; i < k; i++ {
			p = append(p, "up")
		}
		p = append(p, "peak")
		for i := 0; i < k; i++ {
			p = append(p, "down")
		}
		p = append(p, "low")
	}
	for i := 0; i < k; i++ {
		p = append(p, "up")
	}
	return p
}

// checkCompliance asserts S_l ⊆ P_l on the result.
func checkCompliance(t *testing.T, res *Result, P []string, l int) {
	t.Helper()
	valid := map[string]bool{}
	for i := 0; i+l <= len(P); i++ {
		valid[strings.Join(P[i:i+l], "\x00")] = true
	}
	for _, w := range res.Automaton.SymbolSequences(l) {
		if !valid[strings.Join(w, "\x00")] {
			t.Errorf("automaton realises invalid sequence %v", w)
		}
	}
}

// checkSegments asserts every w-window of P labels a path somewhere.
func checkSegments(t *testing.T, res *Result, P []string, w int) {
	t.Helper()
	for i := 0; i+w <= len(P); i++ {
		if !res.Automaton.AcceptsAnywhere(P[i : i+w]) {
			t.Errorf("window %v not embedded", P[i:i+w])
		}
	}
}

func TestCounterShape(t *testing.T) {
	P := repeatPattern(10, 3)
	res, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.FinalStates; got != 4 {
		t.Errorf("states = %d, want 4\n%s", got, res.Automaton)
	}
	if !res.Automaton.IsDeterministic() {
		t.Error("automaton not deterministic")
	}
	if !res.AcceptsInput {
		t.Error("automaton rejects its own input sequence")
	}
	checkCompliance(t, res, P, 2)
	checkSegments(t, res, P, 3)
}

func TestThreeCycle(t *testing.T) {
	var P []string
	for i := 0; i < 12; i++ {
		P = append(P, []string{"a", "b", "c"}[i%3])
	}
	res, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalStates != 3 {
		t.Errorf("states = %d, want 3\n%s", res.Stats.FinalStates, res.Automaton)
	}
	if !res.AcceptsInput {
		t.Error("rejects input")
	}
	checkCompliance(t, res, P, 2)
}

func TestSingleSymbolLoop(t *testing.T) {
	P := []string{"a", "a", "a", "a", "a", "a"}
	res, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AcceptsInput {
		t.Error("rejects input")
	}
	// The search starts at N = 2, so the solver may return either the
	// one-state self-loop or an equally valid two-state alternation;
	// both are deterministic, compliant and accept a^k.
	if !res.Automaton.IsDeterministic() {
		t.Error("not deterministic")
	}
	if got := res.Automaton.NumTransitions(); got > 2 {
		t.Errorf("transitions = %d, want at most 2", got)
	}
	checkCompliance(t, res, P, 2)
}

func TestNonSegmentedAgrees(t *testing.T) {
	P := repeatPattern(4, 2)
	seg, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := GenerateModel(P, Options{Segmented: false})
	if err != nil {
		t.Fatal(err)
	}
	if seg.Stats.FinalStates > full.Stats.FinalStates {
		t.Errorf("segmented needs more states (%d) than full trace (%d)",
			seg.Stats.FinalStates, full.Stats.FinalStates)
	}
	if !full.AcceptsInput {
		t.Error("full-trace automaton rejects its input (path constraint violated)")
	}
	checkCompliance(t, full, P, 2)
	checkSegments(t, seg, P, 3)
	// The non-segmented problem is at least as constrained.
	if full.Stats.Segments != 1 {
		t.Errorf("full-trace mode has %d segments, want 1", full.Stats.Segments)
	}
}

func TestComplianceRefinementTriggers(t *testing.T) {
	// a b a b ... a c: the c tail forces refinements — a 2-state
	// ab-cycle admits sequences like "ca" or "cb" that never occur.
	var P []string
	for i := 0; i < 8; i++ {
		P = append(P, []string{"a", "b"}[i%2])
	}
	P = append(P, "a", "c", "a", "b", "a", "c")
	res, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	checkCompliance(t, res, P, 2)
	checkSegments(t, res, P, 3)
	if !res.Automaton.IsDeterministic() {
		t.Error("not deterministic")
	}
}

func TestMaxStates(t *testing.T) {
	P := []string{"a", "b", "a", "c"}
	_, err := GenerateModel(P, Options{Segmented: true, MaxStates: 2})
	if !errors.Is(err, ErrNoAutomaton) {
		t.Errorf("err = %v, want ErrNoAutomaton", err)
	}
}

func TestTimeout(t *testing.T) {
	P := repeatPattern(50, 5)
	_, err := GenerateModel(P, Options{Segmented: false, Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := GenerateModel(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestShortInput(t *testing.T) {
	// Input shorter than the window: the window clamps to the
	// sequence length.
	res, err := GenerateModel([]string{"a", "b"}, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AcceptsInput {
		t.Error("rejects input")
	}
}

func TestStartStates(t *testing.T) {
	P := repeatPattern(5, 2)
	res, err := GenerateModel(P, Options{Segmented: true, StartStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalStates != 4 {
		t.Errorf("states = %d, want 4", res.Stats.FinalStates)
	}
}

// TestPropertyRandomWords: on random words over small alphabets, the
// learner must terminate with a deterministic automaton embedding
// every window and passing compliance.
func TestPropertyRandomWords(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	alphabets := [][]string{
		{"a", "b"},
		{"a", "b", "c"},
	}
	for trial := 0; trial < 25; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		n := 6 + r.Intn(10)
		P := make([]string, n)
		for i := range P {
			P[i] = alpha[r.Intn(len(alpha))]
		}
		res, err := GenerateModel(P, Options{Segmented: true, MaxStates: 32})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, P, err)
		}
		if !res.Automaton.IsDeterministic() {
			t.Fatalf("trial %d (%v): nondeterministic", trial, P)
		}
		checkCompliance(t, res, P, 2)
		checkSegments(t, res, P, min(3, len(P)))
		// Segmented never needs more states than non-segmented.
		full, err := GenerateModel(P, Options{Segmented: false, MaxStates: 32})
		if err != nil {
			t.Fatalf("trial %d full (%v): %v", trial, P, err)
		}
		if res.Stats.FinalStates > full.Stats.FinalStates {
			t.Errorf("trial %d (%v): segmented %d states > full %d states",
				trial, P, res.Stats.FinalStates, full.Stats.FinalStates)
		}
	}
}

func TestComplianceLenL3(t *testing.T) {
	P := repeatPattern(6, 3)
	res, err := GenerateModel(P, Options{Segmented: true, Window: 4, ComplianceLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkCompliance(t, res, P, 3)
	checkSegments(t, res, P, 4)
}

func TestStatsPopulated(t *testing.T) {
	P := repeatPattern(8, 2)
	res, err := GenerateModel(P, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Segments == 0 || st.SolverCalls == 0 || st.FinalStates == 0 || st.Duration <= 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.SATPropagations == 0 {
		t.Errorf("solver stats not captured: %+v", st)
	}
}

func TestMultiSequence(t *testing.T) {
	// Two runs of a request/response protocol: one plain, one with a
	// retry path only the second run exercises.
	var p1, p2 []string
	for i := 0; i < 6; i++ {
		p1 = append(p1, "req", "ack")
	}
	for i := 0; i < 4; i++ {
		p2 = append(p2, "req", "nak", "req", "ack")
	}
	res, err := GenerateModelMulti([][]string{p1, p2}, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Automaton.IsDeterministic() {
		t.Error("not deterministic")
	}
	// The learned model accepts both runs from its initial state.
	if !res.Automaton.Accepts(p1) {
		t.Error("rejects run 1")
	}
	if !res.Automaton.Accepts(p2) {
		t.Error("rejects run 2")
	}
	// Compliance over the union: "nak nak" occurs in neither run.
	for _, w := range res.Automaton.SymbolSequences(2) {
		if w[0] == "nak" && w[1] == "nak" {
			t.Error("model realises nak nak")
		}
	}
}

func TestMultiSequenceSharedInitialState(t *testing.T) {
	// Runs starting with different symbols force a branching initial
	// state.
	p1 := []string{"a", "b", "a", "b"}
	p2 := []string{"c", "b", "c", "b"}
	res, err := GenerateModelMulti([][]string{p1, p2}, Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	init := res.Automaton.Initial()
	if len(res.Automaton.Successors(init, "a")) == 0 || len(res.Automaton.Successors(init, "c")) == 0 {
		t.Errorf("initial state lacks a branch:\n%s", res.Automaton)
	}
	if !res.Automaton.Accepts(p1) || !res.Automaton.Accepts(p2) {
		t.Error("a run rejected")
	}
}

func TestMultiSequenceValidation(t *testing.T) {
	if _, err := GenerateModelMulti(nil, Options{Segmented: true}); err == nil {
		t.Error("no sequences accepted")
	}
	if _, err := GenerateModelMulti([][]string{{"a"}, {}}, Options{Segmented: true}); err == nil {
		t.Error("empty sequence accepted")
	}
}
