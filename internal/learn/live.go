// Live model maintenance: Live owns a growing RLE sequence and keeps a
// learned automaton current over it without relearning from scratch on
// every change. It continues GenerateModelSeqs' refinement loop at the
// retained level n — new unique base segments extend the live solver
// portfolio via addSegment, compliance violations via blockGram — and
// falls back to a full re-minimization (a plain GenerateModelSeqs call
// over the whole sequence, hence trivially byte-identical to a batch
// relearn) whenever incremental extension could diverge from it.
//
// Why extension at the retained n is exact and not a heuristic: the
// batch search's result is the lex-least compliant-and-accepting
// automaton at the minimal feasible N — a pure function of the input
// sequence. Segment constraints only grow with the prefix (a window of
// P is a window of every extension of P), so every UNSAT proof below n
// from the original search still holds for the grown sequence as long
// as the grams blocked along the way are still invalid — which is
// exactly what the staleness check guarantees. When extension then
// finds a compliant, accepting model at n, n is still the minimal N,
// and canonical extraction yields the same lex-least model a fresh
// search would. The three ways that argument can break each force a
// re-minimization instead:
//
//   - a retained blocked gram became a valid gram of the grown
//     sequence (the UNSAT proofs below n may no longer hold, and the
//     retained blocking clauses cannot be removed from the solvers),
//   - a new symbol appeared (the retained encodings' transition
//     variables are sized for the alphabet at build time),
//   - the constraints went UNSAT at n (the model needs more states).
package learn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/automaton"
	"repro/internal/sat"
)

// errNeedGrow is the internal signal that extension went UNSAT at the
// retained level: the caller must re-minimize.
var errNeedGrow = errors.New("learn: live extension unsatisfiable at retained level")

// winScan incrementally enumerates the unique-window visits of
// rleSeq.windows over a growing sequence: feeding it the appended runs
// visits exactly the window start positions — in the same order — that
// a batch windows(size) scan of the final sequence visits. The skip
// rule is the same: a position is skipped iff its window equals the
// previous position's, i.e. the trailing size+1 symbols are all equal.
type winScan struct {
	size  int
	ring  []int32 // last `size` symbols, circular
	buf   []int32 // in-order window scratch handed to visit
	n     int     // total symbols consumed
	eqLen int     // trailing equal-symbol run length, capped at size+1
}

func newWinScan(size int) *winScan {
	return &winScan{size: size, ring: make([]int32, size), buf: make([]int32, size)}
}

// feed consumes one appended run. visit's win slice is reused; copy to
// keep. Runs the scan has proven constant-inside are skipped in O(1).
func (ws *winScan) feed(id int32, count int, visit func(start int, win []int32)) {
	for count > 0 {
		if ws.n > 0 && ws.ring[(ws.n-1)%ws.size] == id && ws.eqLen >= ws.size+1 {
			// Every remaining position of this run sits strictly
			// inside an equal-symbol run of length ≥ size+1: all
			// skipped, and the ring stays all-id.
			ws.n += count
			return
		}
		if ws.n > 0 && ws.ring[(ws.n-1)%ws.size] == id {
			if ws.eqLen < ws.size+1 {
				ws.eqLen++
			}
		} else {
			ws.eqLen = 1
		}
		ws.ring[ws.n%ws.size] = id
		ws.n++
		count--
		if ws.n >= ws.size && ws.eqLen < ws.size+1 {
			start := ws.n - ws.size
			for k := 0; k < ws.size; k++ {
				ws.buf[k] = ws.ring[(start+k)%ws.size]
			}
			visit(start, ws.buf)
		}
	}
}

// Live keeps one automaton current over a growing sequence. It is not
// safe for concurrent use; the maintainer serialises access.
type Live struct {
	opts Options
	seq  *Seq

	segScan  *winScan
	gramScan *winScan

	// Base segmentation tables, maintained incrementally and equal at
	// all times to what a fresh windows(w) segmentation of the current
	// sequence would record.
	baseIndex map[string]int
	baseSegs  [][]int
	baseAnch  []bool
	pending   []int // base segment indices not yet constraining the search

	validGrams map[string]bool
	freshGrams bool // a gram became valid since the last solve fixpoint
	keyBuf     []byte

	// Retained search state (nil pf until the first learn).
	pf           *portfolio
	n            int
	acceptWindow int
	blocked      [][]int
	blockedSet   map[string]bool
	stale        bool // a retained blocked gram became valid
	workIndex    map[string]int
	workSegs     [][]int
	workAnch     []bool
	numSyms      int // alphabet size frozen into the retained encodings

	model *automaton.NFA
	stats Stats
}

// NewLive returns a Live learner over an initially empty sequence.
// Only the segmented single-sequence configuration is supported (the
// non-segmented baseline is O(length) per constraint and has no
// incremental form), and checkpoint callbacks/resume belong to the
// batch entry points.
func NewLive(opts Options) (*Live, error) {
	opts = opts.withDefaults()
	if !opts.Segmented {
		return nil, errors.New("learn: live maintenance requires the segmented encoding")
	}
	if opts.Checkpoint != nil || opts.Resume != nil {
		return nil, errors.New("learn: live maintenance does not take batch checkpoint options")
	}
	return &Live{
		opts:       opts,
		seq:        NewSeq(),
		segScan:    newWinScan(opts.Window),
		gramScan:   newWinScan(opts.ComplianceLen),
		baseIndex:  map[string]int{},
		validGrams: map[string]bool{},
		blockedSet: map[string]bool{},
	}, nil
}

// rle views the current sequence in the learner's global id space
// (identical to the local one: a single sequence re-interns to itself).
func (l *Live) rle() *rleSeq {
	return &rleSeq{ids: l.seq.ids, counts: l.seq.counts, total: l.seq.total}
}

// Model returns the current automaton (nil before the first learn).
func (l *Live) Model() *automaton.NFA { return l.model }

// Stats returns the cumulative search effort across all revisions.
func (l *Live) Stats() Stats { return l.stats }

// Len returns the expanded length of the maintained sequence.
func (l *Live) Len() int { return l.seq.Len() }

// Runs returns the number of RLE runs of the maintained sequence.
func (l *Live) Runs() int { return l.seq.Runs() }

// Segments returns the number of unique base segments seen so far.
func (l *Live) Segments() int { return len(l.baseSegs) }

// Pending returns the number of unique base segments not yet
// constraining the current model.
func (l *Live) Pending() int { return len(l.pending) }

// Symbols returns the interned symbol table (do not mutate).
func (l *Live) Symbols() []string { return l.seq.syms }

// SymbolID returns the id of an already-interned symbol, or -1.
func (l *Live) SymbolID(sym string) int {
	if id, ok := l.seq.symID[sym]; ok {
		return id
	}
	return -1
}

// Ready reports whether the sequence is long enough to learn from: the
// first model waits for one full segmentation window, so the live base
// segmentation matches the batch one from the very first learn.
func (l *Live) Ready() bool { return l.seq.total >= l.opts.Window }

// Append extends the sequence with count occurrences of sym and feeds
// the incremental scanners. It returns the number of new unique base
// segments the appended run completed — new evidence the current model
// has not been constrained by.
func (l *Live) Append(sym string, count int) int {
	if count <= 0 {
		return 0
	}
	return l.AppendID(l.seq.InternSym(sym), count)
}

// AppendID is Append for an id InternSym already assigned.
func (l *Live) AppendID(id, count int) int {
	if count <= 0 {
		return 0
	}
	l.seq.AppendID(id, count)
	newSegs := 0
	l.segScan.feed(int32(id), count, func(start int, win []int32) {
		if l.recordBase(win, start == 0) {
			newSegs++
		}
	})
	l.gramScan.feed(int32(id), count, func(start int, win []int32) {
		l.keyBuf = appendIntsKey32(l.keyBuf[:0], win)
		if !l.validGrams[string(l.keyBuf)] {
			l.validGrams[string(l.keyBuf)] = true
			l.freshGrams = true
			if l.blockedSet[string(l.keyBuf)] {
				// A gram blocked by the retained search just became
				// a valid gram of the grown sequence: the retained
				// clauses (and the UNSAT proofs below n) are no
				// longer sound. Force a re-minimization.
				l.stale = true
			}
		}
	})
	return newSegs
}

// recordBase records one base window; reports whether it was new. The
// first window is the anchored sequence prefix; later windows never
// anchor, so no anchor upgrades happen on the base path (same as a
// batch scan).
func (l *Live) recordBase(win []int32, anchor bool) bool {
	l.keyBuf = appendIntsKey32(l.keyBuf[:0], win)
	if _, ok := l.baseIndex[string(l.keyBuf)]; ok {
		return false
	}
	seg := make([]int, len(win))
	for i, x := range win {
		seg[i] = int(x)
	}
	l.baseIndex[string(l.keyBuf)] = len(l.baseSegs)
	l.baseSegs = append(l.baseSegs, seg)
	l.baseAnch = append(l.baseAnch, anchor)
	l.pending = append(l.pending, len(l.baseSegs)-1)
	return true
}

// recordWork dedups seg against the working segment table (base plus
// acceptance-refinement additions of the retained search), mirroring
// recordSegment of the batch loop.
func (l *Live) recordWork(seg []int, anchor bool) (idx int, added, anchorUp bool) {
	l.keyBuf = appendIntsKey(l.keyBuf[:0], seg)
	if i, ok := l.workIndex[string(l.keyBuf)]; ok {
		if anchor && !l.workAnch[i] {
			l.workAnch[i] = true
			return i, false, true
		}
		return i, false, false
	}
	l.workIndex[string(l.keyBuf)] = len(l.workSegs)
	l.workSegs = append(l.workSegs, append([]int(nil), seg...))
	l.workAnch = append(l.workAnch, anchor)
	return len(l.workSegs) - 1, true, false
}

// Revise brings the model up to date with the appended evidence: a
// no-solver no-op when nothing changed, an incremental extension of
// the retained portfolio when that is provably exact, and a full
// re-minimization otherwise (or when forced by the caller's policy).
// It reports whether a re-minimization ran. After a nil-error return
// the model accepts the whole current sequence and is byte-identical
// to a fresh GenerateModelSeqs over it.
func (l *Live) Revise(forceRemin bool) (reminimized bool, err error) {
	if l.seq.total == 0 {
		return false, errors.New("learn: empty live sequence")
	}
	if l.seq.total < l.opts.Window {
		return false, fmt.Errorf("learn: live sequence shorter than the segmentation window (%d < %d)", l.seq.total, l.opts.Window)
	}
	needRemin := forceRemin || l.pf == nil || l.stale ||
		len(l.seq.syms) > l.numSyms || l.opts.ScratchRefinement
	if !needRemin && len(l.pending) == 0 && !l.freshGrams {
		// No new evidence of any kind: every window of the appended
		// suffix was already a constrained segment and no gram or
		// symbol is new. The model is still the lex-least member of an
		// unchanged solution set; the only thing left to verify is
		// that it accepts the grown sequence, which the RLE simulation
		// checks without any solver work (the live fast path). A fresh
		// valid gram, even with no new segment, disables this skip: it
		// enlarges the compliant set and may admit a lex-smaller model
		// that a batch relearn would find.
		if l.rle().firstReject(l.model, l.seq.syms) < 0 {
			return false, nil
		}
		// It rejects: fall through to extension, whose acceptance
		// refinement will widen the constraint set exactly as a batch
		// relearn over the grown prefix would.
	}
	if !needRemin {
		err := l.extend()
		if err == nil {
			return false, nil
		}
		if err != errNeedGrow {
			return false, err
		}
		// UNSAT at the retained level: the grown sequence needs more
		// states. Discard the portfolio and search from scratch.
	}
	return true, l.reminimize()
}

// reminimize relearns from the whole sequence — the canonical path —
// and adopts the search's live state for future extension.
func (l *Live) reminimize() error {
	opts := l.opts
	var ret searchRetained
	opts.retain = &ret
	res, err := GenerateModelSeqs([]*Seq{l.seq}, opts)
	if err != nil {
		return err
	}
	l.accumulate(res.Stats)
	l.model = res.Automaton
	l.pf = ret.pf
	l.n = ret.n
	l.acceptWindow = ret.acceptWindow
	l.blocked = ret.blocked
	l.numSyms = ret.numSyms
	l.stale = false
	l.freshGrams = false
	l.pending = l.pending[:0]
	l.blockedSet = make(map[string]bool, len(l.blocked))
	for _, g := range l.blocked {
		l.blockedSet[intsKey(g)] = true
	}
	l.workSegs = ret.segments
	l.workAnch = ret.anchored
	l.workIndex = make(map[string]int, len(l.workSegs))
	for i, seg := range l.workSegs {
		l.workIndex[intsKey(seg)] = i
	}
	return nil
}

// accumulate folds one revision's search effort into the cumulative
// stats, keeping the point-in-time fields (Segments, FinalStates) at
// their latest values.
func (l *Live) accumulate(st Stats) {
	l.stats.SolverCalls += st.SolverCalls
	l.stats.Refinements += st.Refinements
	l.stats.AcceptRefinements += st.AcceptRefinements
	l.stats.SATConflicts += st.SATConflicts
	l.stats.SATDecisions += st.SATDecisions
	l.stats.SATPropagations += st.SATPropagations
	l.stats.SATLearned += st.SATLearned
	l.stats.Duration += st.Duration
	l.stats.CPU += st.CPU
	l.stats.Segments = st.Segments
	l.stats.FinalStates = st.FinalStates
}

// extend continues the retained search at level n with the pending
// base segments, re-running the compliance and acceptance refinement
// loop of GenerateModelSeqs against the grown sequence. It returns
// errNeedGrow on UNSAT (caller re-minimizes).
func (l *Live) extend() error {
	start := time.Now()
	deadline := time.Time{}
	if l.opts.Timeout > 0 {
		deadline = start.Add(l.opts.Timeout)
	}
	for _, bi := range l.pending {
		idx, added, anchorUp := l.recordWork(l.baseSegs[bi], l.baseAnch[bi])
		if added {
			l.pf.addSegment(l.workSegs[idx], l.workAnch[idx])
		} else if anchorUp {
			// A base window that the retained search had already
			// added as an unanchored acceptance window.
			l.pf.anchorSegment(idx)
		}
	}
	l.pending = l.pending[:0]

	tel := l.opts.Telemetry
	cSolves := tel.Count("solver_calls_total")
	cGramsBlocked := tel.Count("learn_grams_blocked_total")
	cSegmentsAdded := tel.Count("learn_segments_added_total")
	hSolveNS := tel.Hist("solver_call_ns", "ns")

	rs := l.rle()
	symbols := l.seq.syms
	refinements := 0
	acceptRefinements := 0
	for {
		if l.opts.Context != nil {
			if err := l.opts.Context.Err(); err != nil {
				return fmt.Errorf("learn: %w", err)
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
		if !l.opts.NoInprocessing {
			l.pf.maybeSimplify()
		}
		l.stats.SolverCalls++
		cSolves.Add(1)
		t0 := time.Now()
		status, _ := l.pf.solve(deadline)
		hSolveNS.Since(t0)
		l.pf.addStats(&l.stats)
		if status == sat.Unknown {
			return ErrBudgetExceeded
		}
		if status == sat.Unsat {
			return errNeedGrow
		}
		enc := l.pf.canonical()
		enc.canonicalize()
		m := enc.extract(symbols)

		// Compliance refinement against the grown gram set.
		invalid := invalidSequences(m, l.validGrams, l.seq.symID, l.opts.ComplianceLen)
		if len(invalid) > 0 {
			refinements++
			l.stats.Refinements++
			cGramsBlocked.Add(int64(len(invalid)))
			if refinements > l.opts.MaxRefinements {
				return fmt.Errorf("learn: more than %d refinements at N=%d", l.opts.MaxRefinements, l.n)
			}
			for _, g := range invalid {
				l.blocked = append(l.blocked, g)
				l.blockedSet[intsKey(g)] = true
				l.pf.blockGram(g)
			}
			continue
		}

		// Acceptance refinement against the whole grown sequence.
		k := rs.firstReject(m, symbols)
		if k < 0 {
			l.model = m
			l.freshGrams = false
			l.stats.Segments = len(l.workSegs)
			l.stats.FinalStates = l.n
			l.stats.Duration += time.Since(start)
			return nil
		}
		acceptRefinements++
		l.stats.AcceptRefinements++
		if acceptRefinements > l.opts.MaxRefinements {
			return fmt.Errorf("learn: more than %d acceptance refinements at N=%d", l.opts.MaxRefinements, l.n)
		}
		var idx int
		var added, anchorUp bool
		for {
			lo := k + 1 - l.acceptWindow
			if lo < 0 {
				lo = 0
			}
			seg32 := rs.expand(lo, k+1)
			seg := make([]int, len(seg32))
			for i, x := range seg32 {
				seg[i] = int(x)
			}
			idx, added, anchorUp = l.recordWork(seg, lo == 0)
			if added || anchorUp {
				break
			}
			if l.acceptWindow > 2*l.seq.total {
				return fmt.Errorf("learn: acceptance refinement stuck at position %d", k)
			}
			l.acceptWindow *= 2
		}
		if added {
			cSegmentsAdded.Add(1)
			l.pf.addSegment(l.workSegs[idx], l.workAnch[idx])
		} else {
			l.pf.anchorSegment(idx)
		}
	}
}

// Checkpoint snapshots the retained search state in the same form the
// batch search checkpoints: resuming a fresh GenerateModelSeqs from it
// (over the same sequence) reproduces the current model without any
// refinement work. Nil before the first successful revision.
func (l *Live) Checkpoint() *CheckpointState {
	if l.pf == nil || l.model == nil {
		return nil
	}
	return &CheckpointState{
		N:            l.n,
		AcceptWindow: l.acceptWindow,
		Blocked:      copyInts(l.blocked),
		Segments:     copyInts(l.workSegs),
		Anchored:     append([]bool(nil), l.workAnch...),
		Stats:        l.stats,
	}
}

// SeqState snapshots the maintained sequence (see NewSeqFromState).
func (l *Live) SeqState() *SeqState { return l.seq.State() }

// Dirty reports whether evidence has arrived that the current model is
// not yet constrained by — new segments, newly valid grams, new
// symbols, or a stale retained blocked gram — or no model exists yet.
// A clean learner's model is already byte-identical to a batch relearn
// (up to full-sequence acceptance, which the maintainer's fast-path
// stepping verifies), so callers skip Revise entirely while clean.
func (l *Live) Dirty() bool {
	return l.model == nil || len(l.pending) > 0 || l.stale || l.freshGrams ||
		len(l.seq.syms) > l.numSyms
}

// Walk runs the current model over the whole maintained sequence from
// its initial state and returns the final state, with ok=false if the
// model rejects (impossible right after a successful Revise). Runs the
// model self-loops on are consumed in O(1).
func (l *Live) Walk() (automaton.State, bool) {
	m := l.model
	if m == nil {
		return 0, false
	}
	cur := m.Initial()
	for i, id := range l.seq.ids {
		key := l.seq.syms[id]
		for j := int32(0); j < l.seq.counts[i]; j++ {
			succ := m.Successors(cur, key)
			if len(succ) == 0 {
				return cur, false
			}
			if succ[0] == cur {
				break // self-loop absorbs the rest of the run
			}
			cur = succ[0]
		}
	}
	return cur, true
}
