package learn

import (
	"sync/atomic"
	"time"

	"repro/internal/automaton"
	"repro/internal/sat"
)

// encoding is the CNF form of the paper's automaton-existence
// hypothesis for a fixed state count N (Algorithm 1 lines 18–32).
//
// Variables:
//
//	slot[i][j][s]  — segment i is at automaton state s after j of its
//	                 transitions (the paper's q variables, one-hot
//	                 over 1..N);
//	t[s][p][s']    — the automaton has a transition from s to s' on
//	                 predicate p (the transition-function view that
//	                 makes the wrong_transition constraint and the
//	                 compliance blocking clauses linear to state).
//
// Clauses:
//
//	one-hot        — each slot holds exactly one state;
//	link           — a segment step from slot j to slot j+1 labelled p
//	                 implies t[s][p][s'] for the states the slots
//	                 hold (lines 21–27: the automaton includes every
//	                 segment as a transition sequence);
//	determinism    — at most one s' per (s, p): asserting
//	                 wrong_transition = false (lines 28–32);
//	anchor         — segment 0 (the prefix of P) starts at state 0,
//	                 fixing the initial state and breaking one
//	                 symmetry;
//	blocking       — for each invalid l-gram found by the compliance
//	                 check, no state path may realise it
//	                 (lines 43–45).
//
// A satisfying assignment is decoded into the automaton by reading the
// slot states along every segment, so the extracted model contains
// exactly the witnessed transitions. t variables are given a false
// preferred polarity for the same reason.
//
// The encoding is incremental in two directions. Within a state count,
// blockGram and addSegment extend the live solver, which keeps its
// learned clauses. Across state counts, an encoding may be built with
// capacity > n: the CNF then allocates capacity states, and the search
// for an n-state automaton runs under the single assumption that the
// symmetry chain's last link is false — no slot holds a state ≥ n —
// which restricts every slot to the first n states and makes the
// restricted formula equisatisfiable with the plain n-state encoding.
// When the n-state search turns out unsatisfiable, promote drops the
// assumption and the same solver, learned clauses and all, continues
// at n+1 states.
type encoding struct {
	n        int // states the current search targets
	capacity int // states the CNF allocates (n, or more for speculation)
	numSyms  int
	solver   *sat.Solver

	segments [][]int
	anchored []bool

	slotVars [][][]int // [segment][slot][state]
	tVars    [][][]int // [state][symbol][state']

	// Symmetry-chain tail: maxGE variables of the last processed slot,
	// indexed s-1 for "some slot so far holds a state ≥ s". Nil until
	// the first slot when ordering is enabled, always nil otherwise.
	chainTail []int

	// simplifyAt is the clause count at which the next inprocessing
	// pass fires; zero until the first maybeSimplify arms it.
	simplifyAt int
}

// maybeSimplify runs the solver's deterministic level-0 inprocessing
// (satisfied-clause elimination, subsumption) once the clause database
// has grown past the armed threshold. A fresh encoding only arms the
// threshold: there are no level-0 facts to exploit before the first
// solve. Simplification preserves logical equivalence, so statuses,
// cores and — via canonical extraction — models are unchanged; a
// top-level contradiction it uncovers surfaces as Unsat from the next
// solve, exactly as if the solver had found it itself.
func (e *encoding) maybeSimplify() {
	n := e.solver.NumClauses()
	if e.simplifyAt == 0 || n >= e.simplifyAt {
		if e.simplifyAt != 0 {
			e.solver.Simplify()
			n = e.solver.NumClauses()
		}
		// Re-arm at ~12% growth so passes stay rare relative to
		// solving work.
		e.simplifyAt = n + n/8 + 256
	}
}

// newEncoding builds the hypothesis for n states (allocating capacity
// ≥ n) over the given segments. Segments are added through the same
// addSegment used for live extension, so an encoding built with k
// segments is variable-for-variable identical to one built with fewer
// and extended afterwards.
func newEncoding(n, capacity, numSyms int, segments [][]int, anchored []bool, orderStates bool) *encoding {
	if capacity < n {
		capacity = n
	}
	e := &encoding{n: n, capacity: capacity, numSyms: numSyms, solver: sat.New()}

	// Transition-function variables, over the full capacity.
	e.tVars = make([][][]int, capacity)
	for s := 0; s < capacity; s++ {
		e.tVars[s] = make([][]int, numSyms)
		for p := 0; p < numSyms; p++ {
			e.tVars[s][p] = make([]int, capacity)
			for s2 := 0; s2 < capacity; s2++ {
				v := e.solver.NewVar()
				e.solver.SetPreferredPolarity(v, false)
				e.tVars[s][p][s2] = v
			}
		}
	}

	// Determinism: at most one successor per (state, predicate).
	for s := 0; s < capacity; s++ {
		for p := 0; p < numSyms; p++ {
			for a := 0; a < capacity; a++ {
				for b := a + 1; b < capacity; b++ {
					e.solver.AddClause(sat.Neg(e.tVars[s][p][a]), sat.Neg(e.tVars[s][p][b]))
				}
			}
		}
	}

	if orderStates && capacity > 1 {
		e.chainTail = []int{} // non-nil: ordering enabled, no slot yet
	}

	for i := range segments {
		e.addSegment(segments[i], anchored[i])
	}
	return e
}

// addSegment appends one segment to the live encoding: slot variables
// with one-hot constraints, the anchor when the segment is a sequence
// prefix, link clauses tying the slots to the transition function, and
// the extension of the state-ordering symmetry chain. Deduplication is
// the caller's job.
func (e *encoding) addSegment(seg []int, anchor bool) {
	e.segments = append(e.segments, append([]int(nil), seg...))
	e.anchored = append(e.anchored, anchor)

	slots := make([][]int, len(seg)+1)
	for j := range slots {
		states := make([]int, e.capacity)
		for s := 0; s < e.capacity; s++ {
			states[s] = e.solver.NewVar()
		}
		slots[j] = states
		// At least one state.
		lits := make([]sat.Lit, e.capacity)
		for s := 0; s < e.capacity; s++ {
			lits[s] = sat.Pos(states[s])
		}
		e.solver.AddClause(lits...)
		// At most one state.
		for a := 0; a < e.capacity; a++ {
			for b := a + 1; b < e.capacity; b++ {
				e.solver.AddClause(sat.Neg(states[a]), sat.Neg(states[b]))
			}
		}
	}
	e.slotVars = append(e.slotVars, slots)

	// Anchor: segments that are prefixes of P start at the initial
	// state, pinned to 0 (this includes segment 0, the w-prefix, and
	// any acceptance-refinement windows reaching back to position 0).
	if anchor {
		e.solver.AddClause(sat.Pos(slots[0][0]))
	}

	// Link clauses.
	for j, p := range seg {
		from := slots[j]
		to := slots[j+1]
		for s := 0; s < e.capacity; s++ {
			for s2 := 0; s2 < e.capacity; s2++ {
				e.solver.AddClause(
					sat.Neg(from[s]), sat.Neg(to[s2]), sat.Pos(e.tVars[s][p][s2]))
			}
		}
	}

	// Symmetry breaking: states must be first used in slot order — a
	// slot may hold state t > 0 only if some earlier slot (in
	// segment-major order) already holds state t−1 or higher. Every
	// automaton has exactly one such labelling, so this prunes the
	// (N−1)! relabellings that otherwise bloat the UNSAT escalation
	// proofs. maxGE[j][s] means "some slot ≤ j holds a state ≥ s"; the
	// chain threads across addSegment calls through chainTail, and its
	// final link doubles as the capacity restriction (see assumptions).
	if e.chainTail != nil {
		prev := e.chainTail
		first := len(prev) == 0
		for j := range slots {
			states := slots[j]
			cur := make([]int, e.capacity-1)
			for s := 1; s < e.capacity; s++ {
				v := e.solver.NewVar()
				e.solver.SetPreferredPolarity(v, false)
				cur[s-1] = v
				// y[j][t] → maxGE[j][s] for t ≥ s.
				for t := s; t < e.capacity; t++ {
					e.solver.AddClause(sat.Neg(states[t]), sat.Pos(v))
				}
				if !first {
					// Monotone in j.
					e.solver.AddClause(sat.Neg(prev[s-1]), sat.Pos(v))
				}
			}
			// y[j][t] allowed only if maxGE[j-1][t-1] (t ≥ 1); the
			// very first slot may only hold state 0.
			for t := 1; t < e.capacity; t++ {
				if first {
					e.solver.AddClause(sat.Neg(states[t]))
				} else {
					e.solver.AddClause(sat.Neg(states[t]), sat.Pos(prev[t-1]))
				}
			}
			prev = cur
			first = false
		}
		e.chainTail = prev
	}
}

// anchorSegment upgrades segment i to anchored: its first slot is
// pinned to the initial state. A no-op when already anchored.
func (e *encoding) anchorSegment(i int) {
	if e.anchored[i] {
		return
	}
	e.anchored[i] = true
	e.solver.AddClause(sat.Pos(e.slotVars[i][0][0]))
}

// assumptions returns the capacity restriction for the current n: the
// symmetry chain's last link at index n must be false, which forbids
// every slot from holding a state ≥ n. Empty when the encoding is at
// full capacity (or holds no slots yet, in which case there is nothing
// to restrict).
func (e *encoding) assumptions() []sat.Lit {
	if e.n < e.capacity && len(e.chainTail) > 0 {
		return []sat.Lit{sat.Neg(e.chainTail[e.n-1])}
	}
	return nil
}

// promote raises the search target to the full capacity, dropping the
// restriction assumption. The solver keeps every clause learned while
// the restriction was in force: learned clauses derive from the
// problem clauses alone, never from assumptions, so they remain valid.
func (e *encoding) promote() { e.n = e.capacity }

// blockGram forbids every state path realising the symbol-id word g:
// for all state paths s0..sl, at least one of the involved transitions
// must be absent. Paths range over the full capacity so that blocking
// clauses stay sufficient after promote.
func (e *encoding) blockGram(g []int) {
	l := len(g)
	path := make([]int, l+1)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == l+1 {
			lits := make([]sat.Lit, l)
			for k := 0; k < l; k++ {
				lits[k] = sat.Neg(e.tVars[path[k]][g[k]][path[k+1]])
			}
			e.solver.AddClause(lits...)
			return
		}
		for s := 0; s < e.capacity; s++ {
			path[depth] = s
			rec(depth + 1)
		}
	}
	rec(0)
}

// solveChunkConflicts is the conflict budget per solver call when a
// deadline or stop flag is in force; a variable so tests can shrink it
// to pin mid-solve behaviour deterministically.
var solveChunkConflicts int64 = 20000

// solve runs the SAT solver under the capacity-restriction
// assumptions. With neither deadline nor stop flag the solver runs
// unbounded; otherwise it solves in conflict-budget chunks so that a
// single hard instance cannot overshoot a timeout (or outlive a
// portfolio decision) unboundedly. It returns Sat, Unsat, or Unknown
// when interrupted mid-solve.
func (e *encoding) solve(deadline time.Time, stop *atomic.Bool) sat.Status {
	if deadline.IsZero() && stop == nil {
		e.solver.MaxConflicts = 0
		return e.solver.SolveAssuming(e.assumptions()...)
	}
	e.solver.MaxConflicts = solveChunkConflicts
	for {
		st := e.solver.SolveAssuming(e.assumptions()...)
		if st != sat.Unknown {
			return st
		}
		if stop != nil && stop.Load() {
			return sat.Unknown
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return sat.Unknown
		}
	}
}

// preferTransitions sets the preferred polarity of every transition
// variable — the canonical encoding biases them false so extracted
// automata stay sparse; a portfolio variant may flip them as a
// diversification knob.
func (e *encoding) preferTransitions(polarity bool) {
	for _, bySym := range e.tVars {
		for _, row := range bySym {
			for _, v := range row {
				e.solver.SetPreferredPolarity(v, polarity)
			}
		}
	}
}

// canonicalize pins the solver's model to the canonical one: the
// lexicographically least transition relation (in state, symbol,
// successor order) consistent with the current constraints. For each
// transition variable that is true in the current model it asks, with
// one incremental assumption solve, whether the formula stays
// satisfiable with the variable false, fixing the answer as a further
// assumption either way. The resulting projection is a function of the
// constraint set alone — independent of learned clauses, activity
// scores, saved phases, chunking, or which portfolio member raced
// ahead — which is what makes incremental, scratch and portfolio
// construction extract identical automata. The solver must be in a Sat
// state; it is left in a Sat state whose model realises the canonical
// relation. Cost: one cheap solve per true transition variable
// (roughly, per transition of the model).
func (e *encoding) canonicalize() {
	e.solver.MaxConflicts = 0
	fixed := append([]sat.Lit(nil), e.assumptions()...)
	for s := 0; s < e.n; s++ {
		for p := 0; p < e.numSyms; p++ {
			for s2 := 0; s2 < e.n; s2++ {
				v := e.tVars[s][p][s2]
				if !e.solver.Value(v) {
					// The current model already satisfies every fixed
					// literal, so v can stay false: no solve needed.
					fixed = append(fixed, sat.Neg(v))
					continue
				}
				if e.solver.SolveAssuming(append(fixed, sat.Neg(v))...) == sat.Sat {
					fixed = append(fixed, sat.Neg(v))
					continue
				}
				fixed = append(fixed, sat.Pos(v))
				// Restore a model consistent with the fixes (the
				// pre-probe model is one, so this must succeed).
				if e.solver.SolveAssuming(fixed...) != sat.Sat {
					panic("learn: canonicalize lost satisfiability")
				}
			}
		}
	}
}

// extract decodes the model into an NFA over the symbol names: the
// automaton's transition relation is exactly the set of true
// transition variables. Callers canonicalize first, so the relation —
// and with it the extracted automaton — is the canonical one. The
// solver must be in a Sat state.
func (e *encoding) extract(symbols []string) *automaton.NFA {
	m := automaton.MustNew(e.n, 0)
	for s := 0; s < e.n; s++ {
		for p := 0; p < e.numSyms; p++ {
			for s2 := 0; s2 < e.n; s2++ {
				if e.solver.Value(e.tVars[s][p][s2]) {
					m.MustAddTransition(automaton.State(s), symbols[p], automaton.State(s2))
				}
			}
		}
	}
	return m
}
