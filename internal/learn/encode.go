package learn

import (
	"time"

	"repro/internal/automaton"
	"repro/internal/sat"
)

// encoding is the CNF form of the paper's automaton-existence
// hypothesis for a fixed state count N (Algorithm 1 lines 18–32).
//
// Variables:
//
//	slot[i][j][s]  — segment i is at automaton state s after j of its
//	                 transitions (the paper's q variables, one-hot
//	                 over 1..N);
//	t[s][p][s']    — the automaton has a transition from s to s' on
//	                 predicate p (the transition-function view that
//	                 makes the wrong_transition constraint and the
//	                 compliance blocking clauses linear to state).
//
// Clauses:
//
//	one-hot        — each slot holds exactly one state;
//	link           — a segment step from slot j to slot j+1 labelled p
//	                 implies t[s][p][s'] for the states the slots
//	                 hold (lines 21–27: the automaton includes every
//	                 segment as a transition sequence);
//	determinism    — at most one s' per (s, p): asserting
//	                 wrong_transition = false (lines 28–32);
//	anchor         — segment 0 (the prefix of P) starts at state 0,
//	                 fixing the initial state and breaking one
//	                 symmetry;
//	blocking       — for each invalid l-gram found by the compliance
//	                 check, no state path may realise it
//	                 (lines 43–45).
//
// A satisfying assignment is decoded into the automaton by reading the
// slot states along every segment, so the extracted model contains
// exactly the witnessed transitions. t variables are given a false
// preferred polarity for the same reason.
type encoding struct {
	n        int
	numSyms  int
	segments [][]int
	solver   *sat.Solver

	slotVars [][][]int // [segment][slot][state]
	tVars    [][][]int // [state][symbol][state']
}

func newEncoding(n, numSyms int, segments [][]int, anchored []bool, orderStates bool) *encoding {
	e := &encoding{n: n, numSyms: numSyms, segments: segments, solver: sat.New()}

	// Transition-function variables.
	e.tVars = make([][][]int, n)
	for s := 0; s < n; s++ {
		e.tVars[s] = make([][]int, numSyms)
		for p := 0; p < numSyms; p++ {
			e.tVars[s][p] = make([]int, n)
			for s2 := 0; s2 < n; s2++ {
				v := e.solver.NewVar()
				e.solver.SetPreferredPolarity(v, false)
				e.tVars[s][p][s2] = v
			}
		}
	}

	// Slot variables with one-hot constraints.
	e.slotVars = make([][][]int, len(segments))
	for i, seg := range segments {
		slots := make([][]int, len(seg)+1)
		for j := range slots {
			states := make([]int, n)
			for s := 0; s < n; s++ {
				states[s] = e.solver.NewVar()
			}
			slots[j] = states
			// At least one state.
			lits := make([]sat.Lit, n)
			for s := 0; s < n; s++ {
				lits[s] = sat.Pos(states[s])
			}
			e.solver.AddClause(lits...)
			// At most one state.
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					e.solver.AddClause(sat.Neg(states[a]), sat.Neg(states[b]))
				}
			}
		}
		e.slotVars[i] = slots
	}

	// Anchors: segments that are prefixes of P start at the initial
	// state, pinned to 0 (this includes segment 0, the w-prefix, and
	// any acceptance-refinement windows reaching back to position 0).
	for i := range segments {
		if anchored[i] {
			e.solver.AddClause(sat.Pos(e.slotVars[i][0][0]))
		}
	}

	// Link clauses.
	for i, seg := range segments {
		for j, p := range seg {
			from := e.slotVars[i][j]
			to := e.slotVars[i][j+1]
			for s := 0; s < e.n; s++ {
				for s2 := 0; s2 < e.n; s2++ {
					e.solver.AddClause(
						sat.Neg(from[s]), sat.Neg(to[s2]), sat.Pos(e.tVars[s][p][s2]))
				}
			}
		}
	}

	// Determinism: at most one successor per (state, predicate).
	for s := 0; s < n; s++ {
		for p := 0; p < numSyms; p++ {
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					e.solver.AddClause(sat.Neg(e.tVars[s][p][a]), sat.Neg(e.tVars[s][p][b]))
				}
			}
		}
	}

	// Symmetry breaking: states must be first used in slot order —
	// a slot may hold state t > 0 only if some earlier slot (in
	// segment-major order, anchored segments first by construction
	// of the caller's segment list) already holds state t−1 or
	// higher. Every automaton has exactly one such labelling, so
	// this prunes the (N−1)! relabellings that otherwise bloat the
	// UNSAT escalation proofs. maxGE[j][s] means "some slot ≤ j
	// holds a state ≥ s".
	if orderStates && n > 1 {
		var prev []int // maxGE for the previous slot, indexed s-1
		first := true
		for i := range e.slotVars {
			for j := range e.slotVars[i] {
				states := e.slotVars[i][j]
				cur := make([]int, n-1)
				for s := 1; s < n; s++ {
					v := e.solver.NewVar()
					e.solver.SetPreferredPolarity(v, false)
					cur[s-1] = v
					// y[j][t] → maxGE[j][s] for t ≥ s.
					for t := s; t < n; t++ {
						e.solver.AddClause(sat.Neg(states[t]), sat.Pos(v))
					}
					if !first {
						// Monotone in j.
						e.solver.AddClause(sat.Neg(prev[s-1]), sat.Pos(v))
					}
				}
				// y[j][t] allowed only if maxGE[j-1][t-1] (t ≥ 1);
				// the very first slot may only hold state 0.
				for t := 1; t < n; t++ {
					if first {
						e.solver.AddClause(sat.Neg(states[t]))
					} else {
						e.solver.AddClause(sat.Neg(states[t]), sat.Pos(prev[t-1]))
					}
				}
				prev = cur
				first = false
			}
		}
	}

	return e
}

// blockGram forbids every state path realising the symbol-id word g:
// for all state paths s0..sl, at least one of the involved transitions
// must be absent.
func (e *encoding) blockGram(g []int) {
	l := len(g)
	path := make([]int, l+1)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == l+1 {
			lits := make([]sat.Lit, l)
			for k := 0; k < l; k++ {
				lits[k] = sat.Neg(e.tVars[path[k]][g[k]][path[k+1]])
			}
			e.solver.AddClause(lits...)
			return
		}
		for s := 0; s < e.n; s++ {
			path[depth] = s
			rec(depth + 1)
		}
	}
	rec(0)
}

// solve runs the SAT solver, honouring the deadline by solving in
// conflict-budget chunks so that a single hard instance cannot
// overshoot a timeout unboundedly. It returns the status: Sat, Unsat,
// or Unknown when the deadline expired mid-solve.
func (e *encoding) solve(deadline time.Time) sat.Status {
	if deadline.IsZero() {
		e.solver.MaxConflicts = 0
		return e.solver.Solve()
	}
	e.solver.MaxConflicts = 20000
	for {
		st := e.solver.Solve()
		if st != sat.Unknown {
			return st
		}
		if time.Now().After(deadline) {
			return sat.Unknown
		}
	}
}

// extract decodes the model into an NFA over the symbol names,
// containing exactly the transitions witnessed by segment slots. The
// solver must be in a Sat state.
func (e *encoding) extract(symbols []string) *automaton.NFA {
	m := automaton.MustNew(e.n, 0)
	stateOf := func(states []int) automaton.State {
		for s, v := range states {
			if e.solver.Value(v) {
				return automaton.State(s)
			}
		}
		// One-hot constraints make this unreachable.
		panic("learn: slot with no state")
	}
	for i, seg := range e.segments {
		for j, p := range seg {
			from := stateOf(e.slotVars[i][j])
			to := stateOf(e.slotVars[i][j+1])
			m.MustAddTransition(from, symbols[p], to)
		}
	}
	return m
}
