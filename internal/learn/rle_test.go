package learn

import (
	"math/rand"
	"reflect"
	"testing"
)

// seqOf builds a Seq from an expanded word.
func seqOf(word []string) *Seq {
	s := NewSeq()
	for _, sym := range word {
		s.Append(sym, 1)
	}
	return s
}

func TestSeqAppendMerges(t *testing.T) {
	s := NewSeq()
	s.Append("a", 2)
	s.Append("a", 3)
	s.Append("b", 1)
	s.Append("b", 0) // no-op
	s.Append("a", 4)
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if s.Runs() != 3 {
		t.Fatalf("Runs = %d, want 3 (adjacent equal runs must merge)", s.Runs())
	}
}

// expandWindows is the reference enumeration: every window of the
// expanded sequence in position order, with exact duplicates of the
// immediately preceding window removed (the visitor's contract).
func expandWindows(word []int32, w int) (pos []int, wins [][]int32) {
	for i := 0; i+w <= len(word); i++ {
		// Skip exactly the windows equal to their predecessor window.
		if i > 0 && reflect.DeepEqual(word[i:i+w], word[i-1:i-1+w]) {
			continue
		}
		pos = append(pos, i)
		wins = append(wins, append([]int32(nil), word[i:i+w]...))
	}
	return
}

func TestWindowsVisitorMatchesExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		word := make([]int32, n)
		// Small alphabet with occasional long runs to exercise the
		// constant-window skip.
		cur := int32(rng.Intn(3))
		for i := range word {
			if rng.Intn(3) == 0 {
				cur = int32(rng.Intn(3))
			}
			word[i] = cur
		}
		s := &rleSeq{}
		for _, x := range word {
			if k := len(s.ids); k > 0 && s.ids[k-1] == x {
				s.counts[k-1]++
			} else {
				s.ids = append(s.ids, x)
				s.counts = append(s.counts, 1)
			}
			s.total++
		}
		for w := 1; w <= 5; w++ {
			wantPos, wantWins := expandWindows(word, w)
			var gotPos []int
			var gotWins [][]int32
			s.windows(w, func(pos int, win []int32) {
				gotPos = append(gotPos, pos)
				gotWins = append(gotWins, append([]int32(nil), win...))
			})
			if !reflect.DeepEqual(gotPos, wantPos) || !reflect.DeepEqual(gotWins, wantWins) {
				t.Fatalf("trial %d, w=%d, word %v:\n got %v %v\nwant %v %v",
					trial, w, word, gotPos, gotWins, wantPos, wantWins)
			}
		}
	}
}

func TestRLEExpand(t *testing.T) {
	s := &rleSeq{ids: []int32{0, 1, 0}, counts: []int32{3, 2, 4}, total: 9}
	got := s.expand(2, 7)
	want := []int32{0, 1, 1, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expand(2,7) = %v, want %v", got, want)
	}
	if full := s.expand(0, 9); len(full) != 9 {
		t.Fatalf("expand(0,9) has %d symbols", len(full))
	}
}

func TestGenerateModelSeqsMatchesMulti(t *testing.T) {
	// The paper-style sender word: long repetition, several symbols.
	var word []string
	for i := 0; i < 12; i++ {
		word = append(word, "send", "ack", "send", "ack", "timeout")
	}
	opts := Options{Segmented: true, Workers: 1}

	ref, err := GenerateModelMulti([][]string{word}, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateModelSeqs([]*Seq{seqOf(word)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs, gs := ref.Automaton.String(), got.Automaton.String(); rs != gs {
		t.Fatalf("automata diverge:\nmulti:\n%s\nseqs:\n%s", rs, gs)
	}
	if ref.Stats.Segments != got.Stats.Segments || ref.Stats.SolverCalls != got.Stats.SolverCalls {
		t.Fatalf("stats diverge: multi %+v, seqs %+v", ref.Stats, got.Stats)
	}
}

func TestGenerateModelSeqsEmpty(t *testing.T) {
	if _, err := GenerateModelSeqs(nil, Options{}); err == nil {
		t.Fatal("no error for zero sequences")
	}
	if _, err := GenerateModelSeqs([]*Seq{NewSeq()}, Options{}); err == nil {
		t.Fatal("no error for empty sequence")
	}
}
