package learn

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sat"
)

// propertySequences returns the inputs the mode-equivalence and
// invariant properties run over: the benchmark-shaped patterns
// (including the counter shape, the one known to exercise acceptance
// refinement) plus deterministic pseudo-random words.
func propertySequences() [][]string {
	seqs := [][]string{
		repeatPattern(10, 3),
		repeatPattern(4, 2),
		{"a", "b", "c", "a", "b", "c", "a", "b", "c", "a"},
		{"a", "a", "a", "a", "a", "a"},
	}
	r := rand.New(rand.NewSource(23))
	alphabets := [][]string{{"a", "b"}, {"x", "y", "z"}}
	for trial := 0; trial < 10; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		n := 6 + r.Intn(10)
		P := make([]string, n)
		for i := range P {
			P[i] = alpha[r.Intn(len(alpha))]
		}
		seqs = append(seqs, P)
	}
	return seqs
}

// checkInvariants asserts the paper's two model invariants: every
// w-window of P is a path in the NFA, and no (state, predicate) pair
// has two successors.
func checkInvariants(t *testing.T, res *Result, P []string, w int) {
	t.Helper()
	if res.Automaton == nil {
		t.Fatal("nil automaton")
	}
	if !res.Automaton.IsDeterministic() {
		t.Errorf("a (state, predicate) pair has two successors:\n%s", res.Automaton)
	}
	if w > len(P) {
		w = len(P)
	}
	checkSegments(t, res, P, w)
}

// TestPaperInvariantsSerialAndPortfolio runs the two invariants over
// randomized small synthetic sequences in serial and portfolio modes.
func TestPaperInvariantsSerialAndPortfolio(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"serial", Options{Segmented: true, MaxStates: 32}},
		{"serial-scratch", Options{Segmented: true, MaxStates: 32, ScratchRefinement: true}},
		{"portfolio", Options{Segmented: true, MaxStates: 32, Portfolio: 4, Workers: 4}},
	}
	for _, P := range propertySequences() {
		for _, mode := range modes {
			res, err := GenerateModel(P, mode.opts)
			if err != nil {
				t.Fatalf("%s (%v): %v", mode.name, P, err)
			}
			checkInvariants(t, res, P, 3)
			checkCompliance(t, res, P, 2)
			if !res.AcceptsInput {
				t.Errorf("%s (%v): rejects its own input", mode.name, P)
			}
		}
	}
}

// TestIncrementalMatchesScratch: extending the live solvers on
// acceptance refinement must yield exactly the automaton the scratch
// rebuild finds — same states, transitions, and start state.
func TestIncrementalMatchesScratch(t *testing.T) {
	for _, P := range propertySequences() {
		inc, err := GenerateModel(P, Options{Segmented: true, MaxStates: 32})
		if err != nil {
			t.Fatalf("incremental (%v): %v", P, err)
		}
		scr, err := GenerateModel(P, Options{Segmented: true, MaxStates: 32, ScratchRefinement: true})
		if err != nil {
			t.Fatalf("scratch (%v): %v", P, err)
		}
		if inc.Automaton.String() != scr.Automaton.String() {
			t.Errorf("input %v:\nincremental:\n%s\nscratch:\n%s", P, inc.Automaton, scr.Automaton)
		}
		if inc.Stats.FinalStates != scr.Stats.FinalStates {
			t.Errorf("input %v: incremental %d states, scratch %d",
				P, inc.Stats.FinalStates, scr.Stats.FinalStates)
		}
	}
}

// TestPortfolioDeterministicAcrossWorkers: for a fixed portfolio
// configuration the learned automaton, acceptance flag and final state
// count are identical for every worker count — the variants only ever
// contribute Unsat verdicts, which all members must agree on. Effort
// statistics (conflicts, solver calls) are scheduling-dependent and
// deliberately not compared.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	for _, P := range propertySequences() {
		type outcome struct {
			auto    string
			states  int
			accepts bool
		}
		var ref *outcome
		for _, workers := range []int{1, 2, 8} {
			res, err := GenerateModel(P, Options{
				Segmented: true, MaxStates: 32, Portfolio: 4, Workers: workers,
			})
			if err != nil {
				t.Fatalf("workers=%d (%v): %v", workers, P, err)
			}
			got := &outcome{res.Automaton.String(), res.Stats.FinalStates, res.AcceptsInput}
			if ref == nil {
				ref = got
				continue
			}
			if *got != *ref {
				t.Errorf("workers=%d diverged on %v:\n%s\nwant:\n%s", workers, P, got.auto, ref.auto)
			}
		}
	}
}

// TestInprocessingByteIdentical: solver inprocessing between rounds
// (the default) must learn the exact automaton the untouched solvers
// find — Simplify preserves logical equivalence and canonical
// extraction pins the model, so the rendered automata, state counts
// and acceptance flags are byte-identical with the knob on or off, in
// serial and portfolio modes alike.
func TestInprocessingByteIdentical(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"serial", Options{Segmented: true, MaxStates: 32}},
		{"portfolio", Options{Segmented: true, MaxStates: 32, Portfolio: 4, Workers: 4}},
	}
	for _, P := range propertySequences() {
		for _, mode := range modes {
			on, err := GenerateModel(P, mode.opts)
			if err != nil {
				t.Fatalf("%s inprocessing on (%v): %v", mode.name, P, err)
			}
			offOpts := mode.opts
			offOpts.NoInprocessing = true
			off, err := GenerateModel(P, offOpts)
			if err != nil {
				t.Fatalf("%s inprocessing off (%v): %v", mode.name, P, err)
			}
			if on.Automaton.String() != off.Automaton.String() {
				t.Errorf("%s input %v:\ninprocessing on:\n%s\noff:\n%s",
					mode.name, P, on.Automaton, off.Automaton)
			}
			if on.Stats.FinalStates != off.Stats.FinalStates || on.AcceptsInput != off.AcceptsInput {
				t.Errorf("%s input %v: states/accepts diverged: on=(%d,%v) off=(%d,%v)",
					mode.name, P, on.Stats.FinalStates, on.AcceptsInput,
					off.Stats.FinalStates, off.AcceptsInput)
			}
		}
	}
}

// TestPortfolioMatchesSerialSemantics: portfolio and serial modes
// learn the identical automaton. Canonical model extraction makes this
// exact: the lex-least transition relation is a function of the
// constraint set, not of chunking, learned clauses, or which member
// raced ahead.
func TestPortfolioMatchesSerialSemantics(t *testing.T) {
	for _, P := range propertySequences() {
		serial, err := GenerateModel(P, Options{Segmented: true, MaxStates: 32})
		if err != nil {
			t.Fatalf("serial (%v): %v", P, err)
		}
		pf, err := GenerateModel(P, Options{Segmented: true, MaxStates: 32, Portfolio: 4, Workers: 4})
		if err != nil {
			t.Fatalf("portfolio (%v): %v", P, err)
		}
		if serial.Automaton.String() != pf.Automaton.String() {
			t.Errorf("input %v:\nserial:\n%s\nportfolio:\n%s", P, serial.Automaton, pf.Automaton)
		}
		if serial.Stats.FinalStates != pf.Stats.FinalStates {
			t.Errorf("input %v: serial %d states, portfolio %d",
				P, serial.Stats.FinalStates, pf.Stats.FinalStates)
		}
		if serial.AcceptsInput != pf.AcceptsInput {
			t.Errorf("input %v: acceptance disagrees", P)
		}
	}
}

// TestEncodingSolveDeadlineUnknown pins the deadline contract at the
// encoding level: an expired deadline mid-solve must surface as
// Unknown — never as Unsat, which would wrongly bump N.
func TestEncodingSolveDeadlineUnknown(t *testing.T) {
	old := solveChunkConflicts
	solveChunkConflicts = 1
	defer func() { solveChunkConflicts = old }()

	// The counter pattern at N=3 with its own first window blocked is
	// UNSAT (the anchored segment must be embedded, yet no path may
	// realise it) and the proof needs several conflicts, so the first
	// one-conflict chunk cannot finish.
	P := repeatPattern(10, 3)
	symID := map[string]int{}
	var seq []int
	for _, s := range P {
		id, ok := symID[s]
		if !ok {
			id = len(symID)
			symID[s] = id
		}
		seq = append(seq, id)
	}
	var segments [][]int
	var anchored []bool
	for i := 0; i+3 <= len(seq); i++ {
		segments = append(segments, seq[i:i+3])
		anchored = append(anchored, i == 0)
	}
	enc := newEncoding(3, 3, len(symID), segments, anchored, true)
	enc.blockGram(segments[0])
	// The conflict budget is only checked between restart segments, so
	// shrink those too — otherwise the first segment alone (default 100
	// conflicts) completes the ~5-conflict proof.
	enc.solver.RestartBase = 1
	if st := enc.solve(time.Now().Add(-time.Second), nil); st != sat.Unknown {
		t.Fatalf("expired deadline mid-solve returned %v, want Unknown", st)
	}
	var stop atomic.Bool
	stop.Store(true)
	if st := enc.solve(time.Time{}, &stop); st != sat.Unknown {
		t.Fatalf("stopped solve returned %v, want Unknown", st)
	}
}

// TestBudgetExceededNearZeroDeadline is the end-to-end regression for
// the same contract: with a deadline that cannot be met the learner
// must fail with an ErrTimeout-class error and no automaton — not
// report a wrong model at an inflated N.
func TestBudgetExceededNearZeroDeadline(t *testing.T) {
	old := solveChunkConflicts
	solveChunkConflicts = 1
	defer func() { solveChunkConflicts = old }()

	for _, timeout := range []time.Duration{time.Nanosecond, 200 * time.Microsecond} {
		res, err := GenerateModel(repeatPattern(10, 3), Options{Segmented: true, Timeout: timeout})
		if err == nil {
			t.Fatalf("timeout %v: expected an error, got %d-state automaton", timeout, res.Stats.FinalStates)
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("timeout %v: error %v is not ErrTimeout-class", timeout, err)
		}
		if res == nil || res.Automaton != nil {
			t.Fatalf("timeout %v: expected stats-only result, got %+v", timeout, res)
		}
	}
	// The two sentinels stay distinguishable: ErrBudgetExceeded wraps
	// ErrTimeout, not the other way round.
	if !errors.Is(ErrBudgetExceeded, ErrTimeout) {
		t.Error("ErrBudgetExceeded must wrap ErrTimeout")
	}
	if errors.Is(ErrTimeout, ErrBudgetExceeded) {
		t.Error("ErrTimeout must not match ErrBudgetExceeded")
	}
}

// TestPortfolioWithTimeout: the portfolio path honours deadlines too.
func TestPortfolioWithTimeout(t *testing.T) {
	res, err := GenerateModel(repeatPattern(10, 3), Options{
		Segmented: true, Timeout: time.Nanosecond, Portfolio: 4, Workers: 4,
	})
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout-class", err)
	}
	if res.Automaton != nil {
		t.Fatal("automaton returned despite timeout")
	}
}
