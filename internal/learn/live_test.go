package learn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestWinScanMatchesWindows: feeding a growing sequence through the
// incremental scanner — with arbitrary run splits — visits exactly the
// positions and windows a batch rleSeq.windows scan of the final
// sequence visits, in the same order.
func TestWinScanMatchesWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		word := make([]int32, n)
		cur := int32(rng.Intn(3))
		for i := range word {
			if rng.Intn(3) == 0 {
				cur = int32(rng.Intn(3))
			}
			word[i] = cur
		}
		s := &rleSeq{}
		for _, x := range word {
			if k := len(s.ids); k > 0 && s.ids[k-1] == x {
				s.counts[k-1]++
			} else {
				s.ids = append(s.ids, x)
				s.counts = append(s.counts, 1)
			}
			s.total++
		}
		for w := 1; w <= 5; w++ {
			var wantPos []int
			var wantWins [][]int32
			s.windows(w, func(pos int, win []int32) {
				wantPos = append(wantPos, pos)
				wantWins = append(wantWins, append([]int32(nil), win...))
			})
			ws := newWinScan(w)
			var gotPos []int
			var gotWins [][]int32
			visit := func(pos int, win []int32) {
				gotPos = append(gotPos, pos)
				gotWins = append(gotWins, append([]int32(nil), win...))
			}
			// Feed the word as randomly split runs: the scanner must
			// be insensitive to how appends chunk a symbol run.
			for i := 0; i < n; {
				j := i + 1
				for j < n && word[j] == word[i] && rng.Intn(2) == 0 {
					j++
				}
				ws.feed(word[i], j-i, visit)
				i = j
			}
			if !reflect.DeepEqual(gotPos, wantPos) || !reflect.DeepEqual(gotWins, wantWins) {
				t.Fatalf("trial %d, w=%d, word %v:\n got %v %v\nwant %v %v",
					trial, w, word, gotPos, gotWins, wantPos, wantWins)
			}
		}
	}
}

// liveWorkloads are prefix-growing words with the shapes the benchmark
// systems produce: a modular counter, a request/response protocol with
// occasional timeouts, and a word whose suffix introduces a new symbol
// (forcing the new-symbol re-minimization trigger).
func liveWorkloads() map[string][]string {
	counter := make([]string, 0, 36)
	for i := 0; i < 36; i++ {
		counter = append(counter, []string{"z", "p", "p"}[i%3])
	}
	var proto []string
	for i := 0; i < 10; i++ {
		proto = append(proto, "send", "ack")
		if i%4 == 3 {
			proto = append(proto, "timeout")
		}
	}
	grow := append([]string{}, counter[:18]...)
	grow = append(grow, "q", "z", "p", "p", "q", "z", "p", "p", "q")
	return map[string][]string{"counter": counter, "proto": proto, "newsym": grow}
}

// TestLiveMatchesBatchEveryPrefix is the core live-maintenance
// guarantee at the learn layer: after Revise over any prefix, the live
// model is byte-identical to a fresh batch GenerateModelSeqs over the
// same prefix — across workloads, serial and portfolio configurations,
// and regardless of whether the revision extended or re-minimized.
func TestLiveMatchesBatchEveryPrefix(t *testing.T) {
	configs := []Options{
		{Segmented: true, Workers: 1},
		{Segmented: true, Workers: 4, Portfolio: 4},
	}
	for name, word := range liveWorkloads() {
		for _, opts := range configs {
			lv, err := NewLive(opts)
			if err != nil {
				t.Fatal(err)
			}
			for i, sym := range word {
				lv.Append(sym, 1)
				if !lv.Ready() {
					continue
				}
				if _, err := lv.Revise(false); err != nil {
					t.Fatalf("%s[:%d] workers=%d: Revise: %v", name, i+1, opts.Workers, err)
				}
				batch, err := GenerateModelSeqs([]*Seq{seqOf(word[:i+1])}, opts)
				if err != nil {
					t.Fatalf("%s[:%d] workers=%d: batch: %v", name, i+1, opts.Workers, err)
				}
				if lm, bm := lv.Model().String(), batch.Automaton.String(); lm != bm {
					t.Fatalf("%s[:%d] workers=%d: live model diverges from batch:\nlive:\n%s\nbatch:\n%s",
						name, i+1, opts.Workers, lm, bm)
				}
			}
		}
	}
}

// TestLiveFastPathZeroSolverCalls: once the model has seen every
// window of a periodic word, replaying more periods adds no segments
// and no grams, and Revise must not touch the solver at all.
func TestLiveFastPathZeroSolverCalls(t *testing.T) {
	lv, err := NewLive(Options{Segmented: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	period := []string{"z", "p", "p"}
	for i := 0; i < 12; i++ {
		lv.Append(period[i%3], 1)
	}
	if _, err := lv.Revise(false); err != nil {
		t.Fatal(err)
	}
	calls := lv.Stats().SolverCalls
	if calls == 0 {
		t.Fatal("initial revision made no solver calls")
	}
	for rep := 0; rep < 5; rep++ {
		for _, sym := range period {
			if n := lv.Append(sym, 1); n != 0 {
				t.Fatalf("replayed period produced %d new segments", n)
			}
		}
		remin, err := lv.Revise(false)
		if err != nil {
			t.Fatal(err)
		}
		if remin {
			t.Fatal("replayed period forced a re-minimization")
		}
	}
	if got := lv.Stats().SolverCalls; got != calls {
		t.Fatalf("fast path made %d solver calls (total %d, was %d)", got-calls, got, calls)
	}
}

// TestLiveStaleBlockedGramForcesRemin: when a gram blocked by the
// retained search later occurs in the input, the retained clauses are
// unsound and Revise must fall back to a full re-minimization — and
// still match batch (covered by the every-prefix test; here the
// trigger itself is asserted).
func TestLiveStaleBlockedGramForcesRemin(t *testing.T) {
	lv, err := NewLive(Options{Segmented: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var word []string
	for i := 0; i < 12; i++ {
		word = append(word, "send", "ack", "send", "ack", "timeout")
	}
	for _, sym := range word {
		lv.Append(sym, 1)
	}
	if _, err := lv.Revise(false); err != nil {
		t.Fatal(err)
	}
	if len(lv.blocked) == 0 {
		t.Skip("workload produced no blocked grams; stale trigger not exercisable")
	}
	// Append an occurrence of a blocked gram: it becomes a valid gram
	// of the grown sequence, so the stale flag must trip and the next
	// revision must re-minimize.
	g := lv.blocked[0]
	for _, id := range g {
		lv.AppendID(id, 1)
	}
	if !lv.stale {
		t.Fatal("blocked gram occurred in input but stale flag not set")
	}
	remin, err := lv.Revise(false)
	if err != nil {
		t.Fatal(err)
	}
	if !remin {
		t.Fatal("stale retained state did not force a re-minimization")
	}
	batch, err := GenerateModelSeqs([]*Seq{cloneSeqFromLive(t, lv)}, Options{Segmented: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lm, bm := lv.Model().String(), batch.Automaton.String(); lm != bm {
		t.Fatalf("post-stale model diverges from batch:\nlive:\n%s\nbatch:\n%s", lm, bm)
	}
}

// cloneSeqFromLive rebuilds the live sequence as a fresh batch input.
func cloneSeqFromLive(t *testing.T, lv *Live) *Seq {
	t.Helper()
	seq, err := NewSeqFromState(lv.SeqState())
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestLiveCheckpointResumeFixpoint: resuming a batch search from a
// live checkpoint over the same sequence is a fixpoint — it reproduces
// the live model with a single satisfiable solver round.
func TestLiveCheckpointResumeFixpoint(t *testing.T) {
	lv, err := NewLive(Options{Segmented: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var word []string
	for i := 0; i < 8; i++ {
		word = append(word, "send", "ack", "send", "ack", "timeout")
	}
	for _, sym := range word {
		lv.Append(sym, 1)
	}
	if _, err := lv.Revise(false); err != nil {
		t.Fatal(err)
	}
	cp := lv.Checkpoint()
	if cp == nil {
		t.Fatal("nil checkpoint after successful revision")
	}
	res, err := GenerateModelSeqs([]*Seq{cloneSeqFromLive(t, lv)},
		Options{Segmented: true, Workers: 1, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if lm, rm := lv.Model().String(), res.Automaton.String(); lm != rm {
		t.Fatalf("resumed model diverges from live model:\nlive:\n%s\nresumed:\n%s", lm, rm)
	}
	// Resume carries the checkpointed counters forward, so the
	// fixpoint costs exactly one additional (satisfiable) round.
	if res.Stats.SolverCalls != cp.Stats.SolverCalls+1 {
		t.Fatalf("resume from a live fixpoint took %d solver calls on top of %d checkpointed, want 1",
			res.Stats.SolverCalls-cp.Stats.SolverCalls, cp.Stats.SolverCalls)
	}
}

// TestLiveRejectsUnsupportedOptions: live maintenance is the segmented
// algorithm; batch-only options are refused up front.
func TestLiveRejectsUnsupportedOptions(t *testing.T) {
	if _, err := NewLive(Options{}); err == nil {
		t.Fatal("non-segmented options accepted")
	}
	if _, err := NewLive(Options{Segmented: true, Resume: &CheckpointState{}}); err == nil {
		t.Fatal("batch resume option accepted")
	}
	lv, err := NewLive(Options{Segmented: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lv.Revise(false); err == nil {
		t.Fatal("revision of an empty sequence accepted")
	}
	lv.Append("a", 1)
	if _, err := lv.Revise(false); err == nil {
		t.Fatal("revision below the segmentation window accepted")
	}
}
