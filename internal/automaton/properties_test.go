package automaton

import "testing"

// slotModel is the learned USB slot automaton shape (Fig 1b).
func slotModel(t *testing.T) *NFA {
	t.Helper()
	m := MustNew(4, 0)
	m.MustAddTransition(0, "ENABLE", 1)
	m.MustAddTransition(1, "ADDRESS", 2)
	m.MustAddTransition(2, "CONFIGURE", 3)
	m.MustAddTransition(3, "STOP", 3)
	m.MustAddTransition(3, "RESET", 2)
	m.MustAddTransition(3, "DISABLE", 0)
	return m
}

func TestNever(t *testing.T) {
	m := slotModel(t)
	if !m.Never([]string{"DISABLE", "STOP"}) {
		t.Error("DISABLE STOP should never occur")
	}
	if !m.Never([]string{"ENABLE", "CONFIGURE"}) {
		t.Error("ENABLE directly followed by CONFIGURE should never occur")
	}
	if m.Never([]string{"STOP", "STOP"}) {
		t.Error("STOP STOP does occur")
	}
	if m.Never([]string{"RESET", "CONFIGURE"}) {
		t.Error("RESET CONFIGURE does occur")
	}
	if m.Never(nil) {
		t.Error("empty sequence always occurs")
	}
	// Sequences through unreachable states do not count.
	m2 := MustNew(3, 0)
	m2.MustAddTransition(0, "a", 0)
	m2.MustAddTransition(2, "b", 2) // unreachable
	if !m2.Never([]string{"b"}) {
		t.Error("unreachable behaviour should not defeat Never")
	}
}

func TestPrecedes(t *testing.T) {
	m := slotModel(t)
	if !m.Precedes("ENABLE", "CONFIGURE") {
		t.Error("CONFIGURE requires ENABLE first")
	}
	if !m.Precedes("ADDRESS", "STOP") {
		t.Error("STOP requires ADDRESS first")
	}
	if m.Precedes("STOP", "DISABLE") {
		t.Error("DISABLE does not require STOP (bare attach/detach)")
	}
	// Vacuous truth: unreachable b.
	m2 := MustNew(2, 0)
	m2.MustAddTransition(0, "x", 0)
	if !m2.Precedes("x", "zzz") {
		t.Error("unreachable b should hold vacuously")
	}
}

func TestFollowSet(t *testing.T) {
	m := slotModel(t)
	got := m.FollowSet("CONFIGURE")
	want := []string{"DISABLE", "RESET", "STOP"}
	if len(got) != len(want) {
		t.Fatalf("FollowSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FollowSet = %v, want %v", got, want)
		}
	}
	if len(m.FollowSet("DISABLE")) != 1 || m.FollowSet("DISABLE")[0] != "ENABLE" {
		t.Errorf("FollowSet(DISABLE) = %v", m.FollowSet("DISABLE"))
	}
	if len(m.FollowSet("zzz")) != 0 {
		t.Errorf("FollowSet of unknown symbol = %v", m.FollowSet("zzz"))
	}
}

func TestAlwaysFollowedBy(t *testing.T) {
	m := slotModel(t)
	if !m.AlwaysFollowedBy("RESET", []string{"CONFIGURE"}) {
		t.Error("RESET must always be followed by CONFIGURE")
	}
	if m.AlwaysFollowedBy("CONFIGURE", []string{"STOP"}) {
		t.Error("CONFIGURE is not always followed by STOP")
	}
	if !m.AlwaysFollowedBy("ENABLE", []string{"ADDRESS"}) {
		t.Error("ENABLE must always be followed by ADDRESS")
	}
}
