// Package automaton provides the non-deterministic finite automata
// that the learner produces (Definition 1 of the paper) and the
// queries the algorithm needs over them: runs over predicate-labelled
// words, enumeration of all length-l transition sequences (for the
// compliance check), reachability, and DOT/text rendering.
//
// Alphabet symbols are transition predicates, identified by their
// canonical string form; the automaton itself stores opaque symbol
// identifiers plus a display label, so it serves both the core learner
// (predicate alphabet) and the state-merge baselines (raw event
// alphabet).
package automaton

import (
	"fmt"
	"sort"
	"strings"
)

// State is an automaton state, numbered from 0. The paper numbers
// states from 1; rendering adds one.
type State int

// Transition is one labelled edge.
type Transition struct {
	From   State
	Symbol string // canonical symbol (predicate text or event name)
	To     State
}

// NFA is a nondeterministic finite automaton in which every state is
// accepting: words are rejected only by running into a dead end
// (Section II). The zero value is not usable; call New.
type NFA struct {
	numStates int
	initial   State
	// delta[from][symbol] = successor set, kept sorted.
	delta []map[string][]State
	// symbols in first-seen order, for deterministic rendering.
	symbols []string
	symSeen map[string]bool
}

// New returns an automaton with numStates states and the given initial
// state and no transitions.
func New(numStates int, initial State) (*NFA, error) {
	if numStates <= 0 {
		return nil, fmt.Errorf("automaton: numStates %d must be positive", numStates)
	}
	if initial < 0 || int(initial) >= numStates {
		return nil, fmt.Errorf("automaton: initial state %d out of range [0,%d)", initial, numStates)
	}
	m := &NFA{
		numStates: numStates,
		initial:   initial,
		delta:     make([]map[string][]State, numStates),
		symSeen:   map[string]bool{},
	}
	for i := range m.delta {
		m.delta[i] = map[string][]State{}
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(numStates int, initial State) *NFA {
	m, err := New(numStates, initial)
	if err != nil {
		panic(err)
	}
	return m
}

// NumStates returns the number of states.
func (m *NFA) NumStates() int { return m.numStates }

// Initial returns the initial state.
func (m *NFA) Initial() State { return m.initial }

// Symbols returns the alphabet in first-seen order.
func (m *NFA) Symbols() []string { return append([]string(nil), m.symbols...) }

// AddTransition inserts an edge; duplicates are ignored.
func (m *NFA) AddTransition(from State, symbol string, to State) error {
	if from < 0 || int(from) >= m.numStates || to < 0 || int(to) >= m.numStates {
		return fmt.Errorf("automaton: transition %d -%s-> %d out of range", from, symbol, to)
	}
	succ := m.delta[from][symbol]
	for _, s := range succ {
		if s == to {
			return nil
		}
	}
	succ = append(succ, to)
	sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
	m.delta[from][symbol] = succ
	if !m.symSeen[symbol] {
		m.symSeen[symbol] = true
		m.symbols = append(m.symbols, symbol)
	}
	return nil
}

// MustAddTransition is AddTransition that panics on error.
func (m *NFA) MustAddTransition(from State, symbol string, to State) {
	if err := m.AddTransition(from, symbol, to); err != nil {
		panic(err)
	}
}

// Successors returns the successor states of (from, symbol).
func (m *NFA) Successors(from State, symbol string) []State {
	return append([]State(nil), m.delta[from][symbol]...)
}

// Transitions returns all edges in deterministic order (by from state,
// then symbol first-seen order, then to state).
func (m *NFA) Transitions() []Transition {
	var out []Transition
	for from := 0; from < m.numStates; from++ {
		for _, sym := range m.symbols {
			for _, to := range m.delta[from][sym] {
				out = append(out, Transition{From: State(from), Symbol: sym, To: to})
			}
		}
	}
	return out
}

// NumTransitions counts edges.
func (m *NFA) NumTransitions() int {
	n := 0
	for from := 0; from < m.numStates; from++ {
		for _, succ := range m.delta[from] {
			n += len(succ)
		}
	}
	return n
}

// IsDeterministic reports whether every (state, symbol) pair has at
// most one successor — the "at most one transition from any state
// labelled with any given predicate" constraint the learner enforces.
func (m *NFA) IsDeterministic() bool {
	for from := 0; from < m.numStates; from++ {
		for _, succ := range m.delta[from] {
			if len(succ) > 1 {
				return false
			}
		}
	}
	return true
}

// Accepts reports whether the automaton accepts the word (every state
// accepting; rejection only by dead end). Acceptance from the initial
// state.
func (m *NFA) Accepts(word []string) bool {
	return m.AcceptsFrom(m.initial, word)
}

// AcceptsFrom reports acceptance of the word starting at the given
// state.
func (m *NFA) AcceptsFrom(start State, word []string) bool {
	cur := map[State]bool{start: true}
	for _, sym := range word {
		next := map[State]bool{}
		for q := range cur {
			for _, s := range m.delta[q][sym] {
				next[s] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return true
}

// AcceptsAnywhere reports whether the word labels a path starting at
// any state. The compliance loop uses this to test embedded segments.
func (m *NFA) AcceptsAnywhere(word []string) bool {
	for q := 0; q < m.numStates; q++ {
		if m.AcceptsFrom(State(q), word) {
			return true
		}
	}
	return false
}

// SymbolSequences returns the set of words of exactly length l that
// label a transition sequence anywhere in the automaton — the set S_l
// of the paper's compliance check (line 41 of Algorithm 1).
func (m *NFA) SymbolSequences(l int) [][]string {
	var out [][]string
	seen := map[string]bool{}
	word := make([]string, 0, l)
	var dfs func(q State, depth int)
	dfs = func(q State, depth int) {
		if depth == l {
			key := strings.Join(word, "\x00")
			if !seen[key] {
				seen[key] = true
				out = append(out, append([]string(nil), word...))
			}
			return
		}
		for _, sym := range m.symbols {
			for _, to := range m.delta[q][sym] {
				word = append(word, sym)
				dfs(to, depth+1)
				word = word[:len(word)-1]
			}
		}
	}
	for q := 0; q < m.numStates; q++ {
		dfs(State(q), 0)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], "\x00") < strings.Join(out[j], "\x00")
	})
	return out
}

// StatePaths returns every state path q0..ql realising the given word
// somewhere in the automaton. The learner uses this to translate an
// invalid symbol sequence into blocking constraints.
func (m *NFA) StatePaths(word []string) [][]State {
	var out [][]State
	path := make([]State, 0, len(word)+1)
	var dfs func(q State, depth int)
	dfs = func(q State, depth int) {
		path = append(path, q)
		defer func() { path = path[:len(path)-1] }()
		if depth == len(word) {
			out = append(out, append([]State(nil), path...))
			return
		}
		for _, to := range m.delta[q][word[depth]] {
			dfs(to, depth+1)
		}
	}
	for q := 0; q < m.numStates; q++ {
		dfs(State(q), 0)
	}
	return out
}

// Reachable returns the set of states reachable from the initial
// state.
func (m *NFA) Reachable() map[State]bool {
	seen := map[State]bool{m.initial: true}
	stack := []State{m.initial}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, succ := range m.delta[q] {
			for _, s := range succ {
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return seen
}

// Run consumes the word from the initial state and returns the set of
// states the automaton can be in afterwards (empty means rejected).
func (m *NFA) Run(word []string) []State {
	cur := map[State]bool{m.initial: true}
	for _, sym := range word {
		next := map[State]bool{}
		for q := range cur {
			for _, s := range m.delta[q][sym] {
				next[s] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		cur = next
	}
	out := make([]State, 0, len(cur))
	for q := range cur {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a compact text listing: one transition per line.
func (m *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "states: %d, initial: q%d\n", m.numStates, m.initial+1)
	for _, tr := range m.Transitions() {
		fmt.Fprintf(&b, "  q%d -[%s]-> q%d\n", tr.From+1, tr.Symbol, tr.To+1)
	}
	return b.String()
}

// DOT renders the automaton in Graphviz format. Edges between the same
// state pair are merged onto one arrow with newline-separated labels,
// matching the style of the paper's figures.
func (m *NFA) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> q%d;\n", m.initial+1)
	for q := 0; q < m.numStates; q++ {
		fmt.Fprintf(&b, "  q%d [label=\"q%d\"];\n", q+1, q+1)
	}
	// Group labels per (from, to).
	type pair struct{ from, to State }
	labels := map[pair][]string{}
	var order []pair
	for _, tr := range m.Transitions() {
		p := pair{tr.From, tr.To}
		if _, ok := labels[p]; !ok {
			order = append(order, p)
		}
		labels[p] = append(labels[p], tr.Symbol)
	}
	for _, p := range order {
		lbl := strings.Join(labels[p], "\\n")
		lbl = strings.ReplaceAll(lbl, `"`, `\"`)
		fmt.Fprintf(&b, "  q%d -> q%d [label=\"%s\"];\n", p.from+1, p.to+1, lbl)
	}
	b.WriteString("}\n")
	return b.String()
}

// Equivalent reports whether two automata have identical transition
// structure up to a bijective state renaming found greedily from the
// initial states (sufficient for the deterministic automata produced
// by the learner; it is not a general NFA-equivalence decision).
func Equivalent(a, b *NFA) bool {
	if a.numStates != b.numStates {
		return false
	}
	mapping := map[State]State{a.initial: b.initial}
	used := map[State]bool{b.initial: true}
	queue := []State{a.initial}
	for len(queue) > 0 {
		qa := queue[0]
		queue = queue[1:]
		qb := mapping[qa]
		if len(a.delta[qa]) != len(b.delta[qb]) {
			return false
		}
		for sym, succA := range a.delta[qa] {
			succB := b.delta[qb][sym]
			if len(succA) != len(succB) {
				return false
			}
			// Deterministic case: single successor each.
			if len(succA) == 1 {
				ta, tb := succA[0], succB[0]
				if mt, ok := mapping[ta]; ok {
					if mt != tb {
						return false
					}
					continue
				}
				if used[tb] {
					return false
				}
				mapping[ta] = tb
				used[tb] = true
				queue = append(queue, ta)
				continue
			}
			// Nondeterministic fan-out: compare successor sets
			// only through already-established mappings.
			for i := range succA {
				mt, ok := mapping[succA[i]]
				if !ok {
					mapping[succA[i]] = succB[i]
					used[succB[i]] = true
					queue = append(queue, succA[i])
					continue
				}
				if mt != succB[i] {
					return false
				}
			}
		}
	}
	return a.NumTransitions() == b.NumTransitions()
}
