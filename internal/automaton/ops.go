package automaton

import (
	"fmt"
	"sort"
	"strings"
)

// Operations over the learner's automata. The learned models are
// deterministic (at most one successor per state and symbol) with
// every state accepting and rejection only by dead end; in DFA terms
// the implicit sink is the unique rejecting state. The operations in
// this file use that convention throughout.

// Complete returns a copy of the automaton made total over the given
// alphabet (defaulting to the automaton's own) by adding an explicit
// non-accepting sink state that absorbs every missing transition. The
// sink is the highest-numbered state of the result. If the automaton
// is already total, the copy has no sink and the second result is -1.
func (m *NFA) Complete(alphabet []string) (*NFA, State) {
	if len(alphabet) == 0 {
		alphabet = m.Symbols()
	}
	needSink := false
	for q := 0; q < m.numStates && !needSink; q++ {
		for _, sym := range alphabet {
			if len(m.delta[q][sym]) == 0 {
				needSink = true
				break
			}
		}
	}
	n := m.numStates
	if needSink {
		n++
	}
	out := MustNew(n, m.initial)
	for _, tr := range m.Transitions() {
		out.MustAddTransition(tr.From, tr.Symbol, tr.To)
	}
	if !needSink {
		return out, -1
	}
	sink := State(m.numStates)
	for q := 0; q < m.numStates; q++ {
		for _, sym := range alphabet {
			if len(m.delta[q][sym]) == 0 {
				out.MustAddTransition(State(q), sym, sink)
			}
		}
	}
	for _, sym := range alphabet {
		out.MustAddTransition(sink, sym, sink)
	}
	return out, sink
}

// Product returns the synchronized product of two automata: its
// language is the intersection of theirs. State (a, b) is encoded as
// a*b.NumStates()+b; only pairs reachable from the initial pair are
// materialised, then renumbered densely.
func Product(a, b *NFA) *NFA {
	type pair struct{ a, b State }
	id := map[pair]State{}
	var order []pair
	get := func(p pair) State {
		if s, ok := id[p]; ok {
			return s
		}
		s := State(len(order))
		id[p] = s
		order = append(order, p)
		return s
	}
	start := pair{a.initial, b.initial}
	get(start)

	// Union alphabet in deterministic order.
	symSet := map[string]bool{}
	var syms []string
	for _, s := range append(a.Symbols(), b.Symbols()...) {
		if !symSet[s] {
			symSet[s] = true
			syms = append(syms, s)
		}
	}

	type edge struct {
		from State
		sym  string
		to   State
	}
	var edges []edge
	for i := 0; i < len(order); i++ {
		p := order[i]
		for _, sym := range syms {
			for _, ta := range a.delta[p.a][sym] {
				for _, tb := range b.delta[p.b][sym] {
					to := get(pair{ta, tb})
					edges = append(edges, edge{from: State(i), sym: sym, to: to})
				}
			}
		}
	}
	out := MustNew(len(order), 0)
	for _, e := range edges {
		out.MustAddTransition(e.from, e.sym, e.to)
	}
	return out
}

// Minimize returns the minimal deterministic automaton accepting the
// same language, for deterministic inputs (it returns an error
// otherwise). All states are accepting, so the initial partition is
// {live states} ∪ {implicit sink}; refinement splits on successor
// blocks per symbol (Moore's algorithm), with missing transitions
// mapping to the sink block. Unreachable states are dropped first.
func (m *NFA) Minimize() (*NFA, error) {
	if !m.IsDeterministic() {
		return nil, fmt.Errorf("automaton: Minimize requires a deterministic automaton")
	}
	// Restrict to reachable states.
	reach := m.Reachable()
	var states []State
	for q := 0; q < m.numStates; q++ {
		if reach[State(q)] {
			states = append(states, State(q))
		}
	}
	syms := m.Symbols()

	// block[q] is q's partition block; the sink block is -1.
	block := map[State]int{}
	for _, q := range states {
		block[q] = 0
	}
	succBlock := func(q State, sym string) int {
		succ := m.delta[q][sym]
		if len(succ) == 0 {
			return -1
		}
		if !reach[succ[0]] {
			// Deterministic + q reachable ⇒ successor reachable;
			// defensive only.
			return -1
		}
		return block[succ[0]]
	}
	for {
		// Signature of each state: its block plus successor blocks.
		groups := map[string][]State{}
		var keys []string
		for _, q := range states {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d", block[q])
			for _, sym := range syms {
				fmt.Fprintf(&sb, "|%d", succBlock(q, sym))
			}
			k := sb.String()
			if _, ok := groups[k]; !ok {
				keys = append(keys, k)
			}
			groups[k] = append(groups[k], q)
		}
		if len(keys) == countBlocks(block, states) {
			break
		}
		sort.Strings(keys)
		newBlock := map[State]int{}
		for i, k := range keys {
			for _, q := range groups[k] {
				newBlock[q] = i
			}
		}
		block = newBlock
	}

	// Renumber blocks with the initial state's block first.
	nBlocks := countBlocks(block, states)
	rename := make([]State, nBlocks)
	for i := range rename {
		rename[i] = -1
	}
	next := State(0)
	assign := func(b int) State {
		if rename[b] == -1 {
			rename[b] = next
			next++
		}
		return rename[b]
	}
	assign(block[m.initial])
	for _, q := range states {
		assign(block[q])
	}
	out := MustNew(nBlocks, rename[block[m.initial]])
	for _, q := range states {
		for _, sym := range syms {
			succ := m.delta[q][sym]
			if len(succ) == 0 {
				continue
			}
			out.MustAddTransition(rename[block[q]], sym, rename[block[succ[0]]])
		}
	}
	return out, nil
}

func countBlocks(block map[State]int, states []State) int {
	seen := map[int]bool{}
	for _, q := range states {
		seen[block[q]] = true
	}
	return len(seen)
}

// LanguageEquivalent reports whether two deterministic automata accept
// the same language (all states accepting, rejection by dead end). It
// walks the product of their sink-completions: the languages differ
// exactly when some reachable pair disagrees on having a transition
// for some symbol.
func LanguageEquivalent(a, b *NFA) (bool, error) {
	if !a.IsDeterministic() || !b.IsDeterministic() {
		return false, fmt.Errorf("automaton: LanguageEquivalent requires deterministic automata")
	}
	symSet := map[string]bool{}
	var syms []string
	for _, s := range append(a.Symbols(), b.Symbols()...) {
		if !symSet[s] {
			symSet[s] = true
			syms = append(syms, s)
		}
	}
	type pair struct{ a, b State }
	// State -1 encodes the sink.
	seen := map[pair]bool{}
	stack := []pair{{a.initial, b.initial}}
	seen[stack[0]] = true
	step := func(m *NFA, q State, sym string) State {
		if q == -1 {
			return -1
		}
		succ := m.delta[q][sym]
		if len(succ) == 0 {
			return -1
		}
		return succ[0]
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sym := range syms {
			na := step(a, p.a, sym)
			nb := step(b, p.b, sym)
			if (na == -1) != (nb == -1) {
				return false, nil
			}
			if na == -1 {
				continue
			}
			np := pair{na, nb}
			if !seen[np] {
				seen[np] = true
				stack = append(stack, np)
			}
		}
	}
	return true, nil
}
