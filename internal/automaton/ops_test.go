package automaton

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComplete(t *testing.T) {
	m := counterNFA(t)
	total, sink := m.Complete(nil)
	if sink < 0 {
		t.Fatal("expected a sink to be added")
	}
	if total.NumStates() != m.NumStates()+1 {
		t.Errorf("states = %d, want %d", total.NumStates(), m.NumStates()+1)
	}
	// Total over its alphabet: every state has every symbol.
	for q := 0; q < total.NumStates(); q++ {
		for _, sym := range m.Symbols() {
			if len(total.Successors(State(q), sym)) == 0 {
				t.Errorf("state %d missing %q after completion", q, sym)
			}
		}
	}
	// Sink absorbs.
	for _, sym := range m.Symbols() {
		succ := total.Successors(sink, sym)
		if len(succ) != 1 || succ[0] != sink {
			t.Errorf("sink not absorbing on %q: %v", sym, succ)
		}
	}
	// Already-total automata gain no sink.
	loop := MustNew(1, 0)
	loop.MustAddTransition(0, "a", 0)
	total2, sink2 := loop.Complete(nil)
	if sink2 != -1 || total2.NumStates() != 1 {
		t.Errorf("total automaton grew: sink=%d states=%d", sink2, total2.NumStates())
	}
}

func TestProductIntersection(t *testing.T) {
	// L(a) = (ab)*: prefixes; L(b) = words over {a,b} without "bb".
	a := MustNew(2, 0)
	a.MustAddTransition(0, "a", 1)
	a.MustAddTransition(1, "b", 0)
	b := MustNew(2, 0)
	b.MustAddTransition(0, "a", 0)
	b.MustAddTransition(0, "b", 1)
	b.MustAddTransition(1, "a", 0)
	p := Product(a, b)
	cases := []struct {
		word []string
		want bool
	}{
		{[]string{}, true},
		{[]string{"a"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "b", "a", "b"}, true},
		{[]string{"b"}, false},           // rejected by a
		{[]string{"a", "a"}, false},      // rejected by a
		{[]string{"a", "b", "b"}, false}, // rejected by both orders
	}
	for _, c := range cases {
		if got := p.Accepts(c.word); got != c.want {
			t.Errorf("product accepts %v = %v, want %v", c.word, got, c.want)
		}
	}
}

// TestProductAgainstDefinition checks L(product) = L(a) ∩ L(b) on
// random words.
func TestProductAgainstDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	syms := []string{"a", "b"}
	for trial := 0; trial < 30; trial++ {
		mk := func() *NFA {
			n := 1 + r.Intn(3)
			m := MustNew(n, 0)
			for e := 0; e < n+2; e++ {
				m.MustAddTransition(State(r.Intn(n)), syms[r.Intn(2)], State(r.Intn(n)))
			}
			return m
		}
		a, b := mk(), mk()
		p := Product(a, b)
		for w := 0; w < 40; w++ {
			word := make([]string, r.Intn(6))
			for i := range word {
				word[i] = syms[r.Intn(2)]
			}
			want := a.Accepts(word) && b.Accepts(word)
			if got := p.Accepts(word); got != want {
				t.Fatalf("trial %d: product accepts %v = %v, want %v", trial, word, got, want)
			}
		}
	}
}

func TestMinimizeMergesRedundantStates(t *testing.T) {
	// A 4-state chain where states 1 and 3 are equivalent
	// (both: a-loop forever).
	m := MustNew(4, 0)
	m.MustAddTransition(0, "a", 1)
	m.MustAddTransition(1, "a", 1)
	m.MustAddTransition(0, "b", 3)
	m.MustAddTransition(3, "a", 3)
	min, err := m.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 2 {
		t.Fatalf("minimized to %d states, want 2:\n%s", min.NumStates(), min)
	}
	eq, err := LanguageEquivalent(m, min)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("minimization changed the language")
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	m := MustNew(3, 0)
	m.MustAddTransition(0, "a", 0)
	m.MustAddTransition(2, "b", 2) // unreachable
	min, err := m.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 1 {
		t.Errorf("states = %d, want 1", min.NumStates())
	}
}

func TestMinimizeRejectsNFA(t *testing.T) {
	m := MustNew(2, 0)
	m.MustAddTransition(0, "a", 0)
	m.MustAddTransition(0, "a", 1)
	if _, err := m.Minimize(); err == nil {
		t.Error("nondeterministic Minimize accepted")
	}
	if _, err := LanguageEquivalent(m, m); err == nil {
		t.Error("nondeterministic LanguageEquivalent accepted")
	}
}

func TestLanguageEquivalent(t *testing.T) {
	a := counterNFA(t)
	b := counterNFA(t)
	eq, err := LanguageEquivalent(a, b)
	if err != nil || !eq {
		t.Errorf("identical automata not equivalent: %v %v", eq, err)
	}
	// Adding a new behaviour breaks equivalence.
	c := counterNFA(t)
	c.MustAddTransition(1, "up", 1)
	eq, err = LanguageEquivalent(a, c)
	if err != nil || eq {
		t.Errorf("different automata equivalent: %v %v", eq, err)
	}
	// A state-renamed copy stays equivalent.
	d := MustNew(4, 3)
	d.MustAddTransition(3, "up", 3)
	d.MustAddTransition(3, "peak", 1)
	d.MustAddTransition(1, "down", 2)
	d.MustAddTransition(2, "down", 2)
	d.MustAddTransition(2, "low", 0)
	d.MustAddTransition(0, "up", 3)
	eq, err = LanguageEquivalent(a, d)
	if err != nil || !eq {
		t.Errorf("renamed automaton not equivalent: %v %v", eq, err)
	}
}

// TestMinimizeIdempotentAndSound: random deterministic automata
// minimize to language-equivalent machines with no more states, and
// minimizing twice is stable.
func TestMinimizeIdempotentAndSound(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	syms := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(6)
		m := MustNew(n, 0)
		for q := 0; q < n; q++ {
			for _, sym := range syms {
				if r.Intn(3) != 0 {
					m.MustAddTransition(State(q), sym, State(r.Intn(n)))
				}
			}
		}
		min, err := m.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		if min.NumStates() > len(m.Reachable()) {
			t.Fatalf("trial %d: minimize grew the machine", trial)
		}
		eq, err := LanguageEquivalent(m, min)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: language changed:\nfrom\n%s\nto\n%s", trial, m, min)
		}
		min2, err := min.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		if min2.NumStates() != min.NumStates() {
			t.Fatalf("trial %d: minimize not idempotent (%d -> %d)", trial, min.NumStates(), min2.NumStates())
		}
	}
}

// TestQuickAutomatonInvariants uses testing/quick to generate random
// transition structures and checks core invariants: reachability is
// closed under successors, every SymbolSequences word has a state
// path, and Complete never changes acceptance of accepted words.
func TestQuickAutomatonInvariants(t *testing.T) {
	type spec struct {
		N     uint8
		Edges [][3]uint8
		Word  []uint8
	}
	syms := []string{"a", "b", "c"}
	f := func(s spec) bool {
		n := int(s.N%5) + 1
		m := MustNew(n, 0)
		for _, e := range s.Edges {
			m.MustAddTransition(State(int(e[0])%n), syms[int(e[1])%3], State(int(e[2])%n))
		}
		// Reachability closure.
		reach := m.Reachable()
		for q := range reach {
			for _, sym := range syms {
				for _, to := range m.Successors(q, sym) {
					if !reach[to] {
						return false
					}
				}
			}
		}
		// Symbol sequences are realisable.
		for _, w := range m.SymbolSequences(2) {
			if len(m.StatePaths(w)) == 0 {
				return false
			}
		}
		// Completion preserves accepted words.
		word := make([]string, 0, len(s.Word))
		for _, b := range s.Word {
			word = append(word, syms[int(b)%3])
		}
		if len(word) > 6 {
			word = word[:6]
		}
		total, _ := m.Complete(syms)
		if m.Accepts(word) && !total.Accepts(word) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
