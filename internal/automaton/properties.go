package automaton

import "sort"

// Property queries over learned models. The paper's conclusion
// proposes using learned automata as candidate invariants and its
// related work checks inferred models against temporal properties;
// these helpers answer the safety-shaped questions that come up in
// that workflow, interpreted over the reachable part of the automaton
// (behaviour the model actually ascribes to the system).

// Never reports whether no reachable path of the automaton is labelled
// by seq — the safety property "the system never exhibits this
// sequence of behaviours".
func (m *NFA) Never(seq []string) bool {
	if len(seq) == 0 {
		return false // the empty sequence always occurs
	}
	reach := m.Reachable()
	var dfs func(q State, depth int) bool
	dfs = func(q State, depth int) bool {
		if depth == len(seq) {
			return true
		}
		for _, to := range m.delta[q][seq[depth]] {
			if dfs(to, depth+1) {
				return true
			}
		}
		return false
	}
	for q := range reach {
		if dfs(q, 0) {
			return false
		}
	}
	return true
}

// Precedes reports whether, on every path from the initial state, an
// a-labelled transition is taken before the first b-labelled
// transition — the precedence property "b requires a first". It holds
// vacuously when b is unreachable without a.
func (m *NFA) Precedes(a, b string) bool {
	// BFS from the initial state that refuses to cross a-edges; if
	// any state visited this way has an outgoing b-edge, a path
	// reaches b without a.
	seen := map[State]bool{m.initial: true}
	queue := []State{m.initial}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if len(m.delta[q][b]) > 0 {
			return false
		}
		for sym, succ := range m.delta[q] {
			if sym == a {
				continue
			}
			for _, to := range succ {
				if !seen[to] {
					seen[to] = true
					queue = append(queue, to)
				}
			}
		}
	}
	return true
}

// FollowSet returns the symbols that can label a transition
// immediately after an a-labelled transition, sorted — the "what may
// come next" view used when reviewing a model edge by edge.
func (m *NFA) FollowSet(a string) []string {
	set := map[string]bool{}
	for q := 0; q < m.numStates; q++ {
		for _, to := range m.delta[q][a] {
			for sym, succ := range m.delta[to] {
				if len(succ) > 0 {
					set[sym] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for sym := range set {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}

// AlwaysFollowedBy reports whether every occurrence of an a-labelled
// transition can only be followed by transitions labelled with symbols
// from the allowed set (a response-shaped safety property). States
// with no outgoing transitions after a satisfy it trivially.
func (m *NFA) AlwaysFollowedBy(a string, allowed []string) bool {
	ok := map[string]bool{}
	for _, s := range allowed {
		ok[s] = true
	}
	for _, sym := range m.FollowSet(a) {
		if !ok[sym] {
			return false
		}
	}
	return true
}
