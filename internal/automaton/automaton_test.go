package automaton

import (
	"math/rand"
	"strings"
	"testing"
)

// counterNFA builds the paper's Fig 5 counter automaton shape:
// q1 -(up)-> q1/q2, q2 -(peak)-> q3, q3 -(down)-> q3/q4, q4 -(low)-> q1.
func counterNFA(t *testing.T) *NFA {
	t.Helper()
	m := MustNew(4, 0)
	m.MustAddTransition(0, "up", 0)
	m.MustAddTransition(0, "peak", 1)
	m.MustAddTransition(1, "down", 2)
	m.MustAddTransition(2, "down", 2)
	m.MustAddTransition(2, "low", 3)
	m.MustAddTransition(3, "up", 0)
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Error("zero states accepted")
	}
	if _, err := New(3, 3); err == nil {
		t.Error("out-of-range initial accepted")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("negative initial accepted")
	}
}

func TestAddTransition(t *testing.T) {
	m := MustNew(2, 0)
	if err := m.AddTransition(0, "a", 5); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := m.AddTransition(-1, "a", 0); err == nil {
		t.Error("out-of-range source accepted")
	}
	m.MustAddTransition(0, "a", 1)
	m.MustAddTransition(0, "a", 1) // duplicate ignored
	if m.NumTransitions() != 1 {
		t.Errorf("NumTransitions = %d, want 1", m.NumTransitions())
	}
	if got := m.Successors(0, "a"); len(got) != 1 || got[0] != 1 {
		t.Errorf("Successors = %v", got)
	}
	if got := m.Successors(1, "a"); len(got) != 0 {
		t.Errorf("Successors of sink = %v", got)
	}
}

func TestAcceptsAndRun(t *testing.T) {
	m := counterNFA(t)
	accepted := [][]string{
		{},
		{"up"},
		{"up", "up", "peak", "down", "down", "low", "up"},
		{"peak", "down", "low"},
	}
	for _, w := range accepted {
		if !m.Accepts(w) {
			t.Errorf("Accepts(%v) = false, want true", w)
		}
	}
	rejected := [][]string{
		{"down"},
		{"up", "low"},
		{"peak", "peak"},
		{"up", "zzz"},
	}
	for _, w := range rejected {
		if m.Accepts(w) {
			t.Errorf("Accepts(%v) = true, want false", w)
		}
	}
	if got := m.Run([]string{"up", "peak"}); len(got) != 1 || got[0] != 1 {
		t.Errorf("Run = %v, want [1]", got)
	}
	if got := m.Run([]string{"down"}); got != nil {
		t.Errorf("Run on rejected word = %v, want nil", got)
	}
}

func TestNondeterministicRun(t *testing.T) {
	m := MustNew(3, 0)
	m.MustAddTransition(0, "a", 1)
	m.MustAddTransition(0, "a", 2)
	m.MustAddTransition(1, "b", 0)
	if m.IsDeterministic() {
		t.Error("IsDeterministic = true for NFA with fan-out")
	}
	if got := m.Run([]string{"a"}); len(got) != 2 {
		t.Errorf("Run = %v, want two states", got)
	}
	// From state 2, "b" dies; from state 1 it survives.
	if !m.Accepts([]string{"a", "b"}) {
		t.Error("nondeterministic acceptance failed")
	}
}

func TestSymbolSequences(t *testing.T) {
	m := counterNFA(t)
	got := m.SymbolSequences(2)
	want := map[string]bool{
		"up up": true, "up peak": true, "peak down": true,
		"down down": true, "down low": true, "low up": true,
	}
	if len(got) != len(want) {
		t.Fatalf("SymbolSequences(2) = %v, want %d entries", got, len(want))
	}
	for _, w := range got {
		if !want[strings.Join(w, " ")] {
			t.Errorf("unexpected sequence %v", w)
		}
	}
	// l = 1 is the edge-label set.
	if got := m.SymbolSequences(1); len(got) != 4 {
		t.Errorf("SymbolSequences(1) = %v, want 4 distinct labels", got)
	}
	// l = 0 is the empty word only.
	if got := m.SymbolSequences(0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("SymbolSequences(0) = %v", got)
	}
}

func TestStatePaths(t *testing.T) {
	m := counterNFA(t)
	paths := m.StatePaths([]string{"up", "peak"})
	// "up" loops at q0 or enters from q3; "up peak" realisable as
	// 0-0-1 and 3-0-1.
	if len(paths) != 2 {
		t.Fatalf("StatePaths = %v, want 2 paths", paths)
	}
	for _, p := range paths {
		if len(p) != 3 || p[len(p)-1] != 1 {
			t.Errorf("bad path %v", p)
		}
	}
	if got := m.StatePaths([]string{"zzz"}); len(got) != 0 {
		t.Errorf("StatePaths for unknown symbol = %v", got)
	}
}

func TestReachable(t *testing.T) {
	m := MustNew(4, 0)
	m.MustAddTransition(0, "a", 1)
	m.MustAddTransition(1, "b", 0)
	m.MustAddTransition(3, "c", 2) // unreachable island
	r := m.Reachable()
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Errorf("Reachable = %v", r)
	}
}

func TestDOTOutput(t *testing.T) {
	m := counterNFA(t)
	dot := m.DOT("counter")
	for _, want := range []string{
		"digraph \"counter\"",
		"__start -> q1",
		"q1 -> q2 [label=\"peak\"]",
		"q3 -> q3 [label=\"down\"]",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Merged labels between same state pair.
	m2 := MustNew(2, 0)
	m2.MustAddTransition(0, "a", 1)
	m2.MustAddTransition(0, "b", 1)
	if dot := m2.DOT("m"); !strings.Contains(dot, "a\\nb") {
		t.Errorf("labels not merged:\n%s", dot)
	}
	// Quotes in labels escaped.
	m3 := MustNew(1, 0)
	m3.MustAddTransition(0, `x = "y"`, 0)
	if dot := m3.DOT("m"); !strings.Contains(dot, `\"y\"`) {
		t.Errorf("quotes not escaped:\n%s", dot)
	}
}

func TestStringOutput(t *testing.T) {
	m := counterNFA(t)
	s := m.String()
	if !strings.Contains(s, "states: 4, initial: q1") {
		t.Errorf("String header wrong:\n%s", s)
	}
	if !strings.Contains(s, "q1 -[peak]-> q2") {
		t.Errorf("String missing transition:\n%s", s)
	}
}

func TestEquivalent(t *testing.T) {
	a := counterNFA(t)
	b := counterNFA(t)
	if !Equivalent(a, b) {
		t.Error("identical automata not equivalent")
	}
	// Renamed states: 0<->3 swapped, initial adjusted.
	c := MustNew(4, 3)
	c.MustAddTransition(3, "up", 3)
	c.MustAddTransition(3, "peak", 1)
	c.MustAddTransition(1, "down", 2)
	c.MustAddTransition(2, "down", 2)
	c.MustAddTransition(2, "low", 0)
	c.MustAddTransition(0, "up", 3)
	if !Equivalent(a, c) {
		t.Error("renamed automaton not equivalent")
	}
	// Different structure.
	d := counterNFA(t)
	d.MustAddTransition(1, "up", 1)
	if Equivalent(a, d) {
		t.Error("different automata reported equivalent")
	}
	e := MustNew(3, 0)
	if Equivalent(a, e) {
		t.Error("different sizes reported equivalent")
	}
}

// Property: every SymbolSequences(l) word is accepted from some state,
// and random accepted words' l-grams are all in SymbolSequences(l).
func TestPropertySequencesConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	syms := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(4)
		m := MustNew(n, 0)
		for e := 0; e < n*2; e++ {
			m.MustAddTransition(State(r.Intn(n)), syms[r.Intn(len(syms))], State(r.Intn(n)))
		}
		for _, l := range []int{1, 2, 3} {
			for _, w := range m.SymbolSequences(l) {
				if !m.AcceptsAnywhere(w) {
					t.Fatalf("sequence %v not accepted anywhere", w)
				}
				if len(m.StatePaths(w)) == 0 {
					t.Fatalf("sequence %v has no state path", w)
				}
			}
		}
		// Random walk produces a word whose bigrams must appear in
		// SymbolSequences(2).
		grams := map[string]bool{}
		for _, w := range m.SymbolSequences(2) {
			grams[w[0]+" "+w[1]] = true
		}
		q := State(0)
		var word []string
	walk:
		for step := 0; step < 10; step++ {
			for _, sym := range syms {
				succ := m.Successors(q, sym)
				if len(succ) > 0 {
					word = append(word, sym)
					q = succ[r.Intn(len(succ))]
					continue walk
				}
			}
			break
		}
		for i := 0; i+1 < len(word); i++ {
			if !grams[word[i]+" "+word[i+1]] {
				t.Fatalf("walk bigram %q missing from SymbolSequences(2)", word[i]+" "+word[i+1])
			}
		}
	}
}
