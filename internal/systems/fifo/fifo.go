// Package fifo models the bounded FIFO whose occupancy waveform the
// VCD ingestion path samples (see experiments.StreamFIFOVCD): a queue
// of fixed depth observed only by its fill level. As a probeable
// machine it accepts push and pop inputs and rejects overflow and
// underflow, so active conformance probing can both replay the
// canonical triangle workload and detect when a hypothesis model
// claims behaviour the hardware refuses.
package fifo

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/trace"
)

// FIFO inputs.
const (
	InputPush = "push"
	InputPop  = "pop"
)

// Machine is a bounded FIFO observed by its occupancy level.
type Machine struct {
	depth, level int
}

// New returns an empty FIFO of the given depth.
func New(depth int) (*Machine, error) {
	if depth < 1 {
		return nil, fmt.Errorf("fifo: depth %d must be positive", depth)
	}
	return &Machine{depth: depth}, nil
}

// Schema returns the trace schema: the occupancy level, named as the
// VCD waveform generator declares it (scope fifo, signal level).
func Schema() *trace.Schema {
	return trace.MustSchema(trace.VarDef{Name: "fifo.level", Type: expr.Int})
}

// Name implements systems.Probeable.
func (m *Machine) Name() string { return "fifo" }

// Schema implements systems.Probeable.
func (m *Machine) Schema() *trace.Schema { return Schema() }

// Inputs implements systems.Probeable.
func (m *Machine) Inputs() []string { return []string{InputPush, InputPop} }

// Depth returns the FIFO capacity.
func (m *Machine) Depth() int { return m.depth }

// Level returns the current occupancy.
func (m *Machine) Level() int { return m.level }

// Reset empties the FIFO.
func (m *Machine) Reset() { m.level = 0 }

// Init implements systems.Probeable: the level is observed from reset
// on, before any input (the VCD dump's $dumpvars section).
func (m *Machine) Init() (trace.Observation, bool) {
	return trace.Observation{expr.IntVal(int64(m.level))}, true
}

// Step applies one input. Pushing a full FIFO and popping an empty one
// are rejected — the refusal is itself conformance information: a
// hypothesis model predicting such a step overapproximates the system.
func (m *Machine) Step(input string) (trace.Observation, error) {
	switch input {
	case InputPush:
		if m.level == m.depth {
			return nil, fmt.Errorf("fifo: push on full fifo (depth %d)", m.depth)
		}
		m.level++
	case InputPop:
		if m.level == 0 {
			return nil, fmt.Errorf("fifo: pop on empty fifo")
		}
		m.level--
	default:
		return nil, fmt.Errorf("fifo: unknown input %q", input)
	}
	return trace.Observation{expr.IntVal(int64(m.level))}, nil
}

// Schedule implements systems.Scheduler: the canonical triangle
// workload of StreamFIFOVCD — fill to depth, drain to empty, repeat.
// Seed is ignored; the workload is deterministic.
func (m *Machine) Schedule(seed int64) func() string {
	dir := 1
	return func() string {
		if m.level == m.depth {
			dir = -1
		} else if m.level == 0 {
			dir = 1
		}
		if dir == 1 {
			return InputPush
		}
		return InputPop
	}
}
