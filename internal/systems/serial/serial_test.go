package serial

import (
	"testing"

	"repro/internal/expr"
)

func TestPortSemantics(t *testing.T) {
	p, err := NewPort(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 || p.Capacity() != 2 {
		t.Fatal("fresh port not empty")
	}
	p.Read() // empty read is a no-op
	if p.Len() != 0 {
		t.Error("read on empty changed length")
	}
	p.Write()
	p.Write()
	p.Write() // overrun dropped
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2 (capacity)", p.Len())
	}
	p.Read()
	if p.Len() != 1 {
		t.Errorf("len = %d, want 1", p.Len())
	}
	p.Reset()
	if p.Len() != 0 {
		t.Error("reset did not clear")
	}
	if _, err := NewPort(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestWorkloadTraceInvariants(t *testing.T) {
	w := DefaultWorkload()
	tr, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2076 {
		t.Errorf("trace length = %d, want 2076 (paper Table I)", tr.Len())
	}
	sawReset, sawRead, sawWrite := false, false, false
	maxLen := int64(0)
	for i := 0; i < tr.Steps(); i++ {
		ev, _ := tr.Value(i, "event")
		x, _ := tr.Value(i, "x")
		xn, _ := tr.Value(i+1, "x")
		if x.I > maxLen {
			maxLen = x.I
		}
		switch ev.S {
		case EvWrite:
			sawWrite = true
			if x.I < int64(w.Capacity) && xn.I != x.I+1 {
				t.Fatalf("step %d: write %d -> %d", i, x.I, xn.I)
			}
		case EvRead:
			sawRead = true
			if x.I > 0 && xn.I != x.I-1 {
				t.Fatalf("step %d: read %d -> %d", i, x.I, xn.I)
			}
			if x.I == 0 && xn.I != 0 {
				t.Fatalf("step %d: empty read %d -> %d", i, x.I, xn.I)
			}
		case EvReset:
			sawReset = true
			if xn.I != 0 {
				t.Fatalf("step %d: reset -> %d", i, xn.I)
			}
		default:
			t.Fatalf("unknown event %q", ev.S)
		}
		if x.I < 0 || x.I > int64(w.Capacity) {
			t.Fatalf("step %d: queue length %d out of bounds", i, x.I)
		}
	}
	if !sawReset || !sawRead || !sawWrite {
		t.Errorf("workload missing events: reset=%v read=%v write=%v", sawReset, sawRead, sawWrite)
	}
	// The paper notes the queue never reaches full capacity under
	// this load.
	if maxLen >= int64(w.Capacity) {
		t.Errorf("queue reached capacity %d; workload should stay below", maxLen)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	t1, err := DefaultWorkload().Run()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := DefaultWorkload().Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < t1.Len(); i++ {
		for j := 0; j < 2; j++ {
			if !t1.At(i)[j].Equal(t2.At(i)[j]) {
				t.Fatalf("runs differ at observation %d", i)
			}
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := (Workload{Observations: 1, Capacity: 4, MaxBurst: 2, ResetEvery: 5}).Run(); err == nil {
		t.Error("too-short workload accepted")
	}
	if _, err := (Workload{Observations: 10, Capacity: 0, MaxBurst: 2, ResetEvery: 5}).Run(); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSchema(t *testing.T) {
	s := Schema()
	if s.Index("event") != 0 || s.Index("x") != 1 {
		t.Error("schema order wrong")
	}
	if s.Var(0).Type != expr.Sym || s.Var(1).Type != expr.Int {
		t.Error("schema types wrong")
	}
}
