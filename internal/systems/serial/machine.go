package serial

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/trace"
)

// Machine is the serial port as a steppable state machine for active
// conformance probing. Each Step records the observation the benchmark
// trace records — the event applied and the queue length before it —
// and then applies the event, exactly as Workload.Run does (Run is
// implemented on top of Step, so the two cannot drift apart).
type Machine struct {
	port *Port
	w    Workload
}

// NewMachine returns a machine over a fresh port with the workload's
// capacity; the workload also parameterises the canonical schedule.
func NewMachine(w Workload) (*Machine, error) {
	port, err := NewPort(w.Capacity)
	if err != nil {
		return nil, err
	}
	return &Machine{port: port, w: w}, nil
}

// Name implements systems.Probeable.
func (m *Machine) Name() string { return "serial" }

// Schema implements systems.Probeable.
func (m *Machine) Schema() *trace.Schema { return Schema() }

// Inputs implements systems.Probeable.
func (m *Machine) Inputs() []string { return []string{EvWrite, EvRead, EvReset} }

// Reset empties the FIFO (the port's power-on state).
func (m *Machine) Reset() { m.port.Reset() }

// Init implements systems.Probeable: the serial benchmark observes
// nothing before the first event.
func (m *Machine) Init() (trace.Observation, bool) { return nil, false }

// Step applies one event and returns the benchmark observation: the
// event together with the queue length before it.
func (m *Machine) Step(ev string) (trace.Observation, error) {
	obs := trace.Observation{expr.SymVal(ev), expr.IntVal(int64(m.port.Len()))}
	switch ev {
	case EvWrite:
		m.port.Write()
	case EvRead:
		m.port.Read()
	case EvReset:
		m.port.Reset()
	default:
		return nil, fmt.Errorf("serial: unknown event %q", ev)
	}
	return obs, nil
}

// Schedule implements systems.Scheduler: the workload's bursty
// producer / eager consumer policy, reading the live queue length.
// Seed 0 selects the workload's own seed, so the canonical benchmark
// trace is the schedule's prefix.
func (m *Machine) Schedule(seed int64) func() string {
	if seed == 0 {
		seed = m.w.Seed
	}
	r := rand.New(rand.NewSource(seed))
	return m.w.policy(r, m.port.Len)
}
