// Package serial models QEMU's x86 serial I/O port at the level the
// paper's Serial I/O Port benchmark instruments it: a receive FIFO
// whose queue length is recorded together with the read, write and
// reset events that act on it. The paper traces 2076 observations of
// (event, queue length) pairs and notes that the queue never reaches
// full capacity because reads are quick and resets frequent — the
// workload generator reproduces exactly that regime.
package serial

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/trace"
)

// FIFO events.
const (
	EvWrite = "write"
	EvRead  = "read"
	EvReset = "reset"
)

// Port is a serial port receive FIFO with a bounded queue.
type Port struct {
	capacity int
	queue    int
}

// NewPort returns an empty port with the given FIFO capacity (QEMU's
// 16550A emulation uses 16).
func NewPort(capacity int) (*Port, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("serial: capacity %d must be positive", capacity)
	}
	return &Port{capacity: capacity}, nil
}

// Len returns the current queue length.
func (p *Port) Len() int { return p.queue }

// Capacity returns the FIFO capacity.
func (p *Port) Capacity() int { return p.capacity }

// Write enqueues one byte; a full FIFO drops it (overrun) and the
// length is unchanged.
func (p *Port) Write() {
	if p.queue < p.capacity {
		p.queue++
	}
}

// Read dequeues one byte; reading an empty FIFO leaves it empty.
func (p *Port) Read() {
	if p.queue > 0 {
		p.queue--
	}
}

// Reset clears the FIFO.
func (p *Port) Reset() { p.queue = 0 }

// Schema returns the benchmark's trace schema: the event and the queue
// length x.
func Schema() *trace.Schema {
	return trace.MustSchema(
		trace.VarDef{Name: "event", Type: expr.Sym},
		trace.VarDef{Name: "x", Type: expr.Int},
	)
}

// Workload drives the port with a bursty producer, an eager consumer
// and periodic resets.
type Workload struct {
	// Observations is the trace length to produce.
	Observations int
	// Capacity is the FIFO capacity.
	Capacity int
	// MaxBurst is the largest write burst before the consumer
	// catches up (kept below capacity: the paper could not drive
	// the queue full).
	MaxBurst int
	// ResetEvery is the mean gap between resets, in events.
	ResetEvery int
	// Seed makes the workload deterministic.
	Seed int64
}

// DefaultWorkload reproduces the paper's 2076-observation trace.
func DefaultWorkload() Workload {
	return Workload{Observations: 2076, Capacity: 16, MaxBurst: 6, ResetEvery: 40, Seed: 1}
}

// policy returns the workload's event chooser: one call decides the
// next event from the live queue length (via portLen) and the random
// stream. It is shared verbatim between Run and Machine.Schedule so
// the batch generator and the probe schedule consume the random stream
// identically — the canonical trace is a prefix of the schedule.
func (w Workload) policy(r *rand.Rand, portLen func() int) func() string {
	burstLeft := 0
	return func() string {
		switch {
		case w.ResetEvery > 0 && r.Intn(w.ResetEvery) == 0:
			burstLeft = 0
			return EvReset
		case burstLeft > 0:
			burstLeft--
			return EvWrite
		case portLen() > 0 && r.Intn(3) != 0:
			// The consumer is quick: drain with high probability.
			return EvRead
		case portLen() == 0 || r.Intn(2) == 0:
			// Bursts are bounded by the remaining headroom: the
			// consumer is fast enough that the FIFO never fills
			// (the paper could not take the queue to capacity).
			headroom := w.Capacity - 1 - portLen()
			if headroom < 1 {
				return EvRead
			}
			burst := w.MaxBurst
			if burst > headroom {
				burst = headroom
			}
			burstLeft = 1 + r.Intn(burst)
			burstLeft--
			return EvWrite
		default:
			return EvRead
		}
	}
}

// Run generates the benchmark trace. Each observation records the
// event applied at this step and the queue length before the event;
// the primed value in a step pair is therefore the length after the
// event, which the learner's synthesized predicates relate (e.g.
// event = 'write' && x' = x + 1).
func (w Workload) Run() (*trace.Trace, error) {
	if w.Observations < 2 {
		return nil, fmt.Errorf("serial: need at least 2 observations, got %d", w.Observations)
	}
	m, err := NewMachine(w)
	if err != nil {
		return nil, err
	}
	next := m.Schedule(w.Seed)
	tr := trace.New(Schema())
	for tr.Len() < w.Observations {
		obs, err := m.Step(next())
		if err != nil {
			return nil, err
		}
		if err := tr.AppendOwned(obs); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
