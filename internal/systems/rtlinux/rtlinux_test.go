package rtlinux

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func runDefault(t *testing.T) (*Sim, []string) {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := tr.Events()
	if err != nil {
		t.Fatal(err)
	}
	return s, evs
}

func TestTraceLengthAndAlphabet(t *testing.T) {
	_, evs := runDefault(t)
	if len(evs) != 20165 {
		t.Errorf("trace length = %d, want 20165 (paper Table I)", len(evs))
	}
	valid := map[string]bool{}
	for _, a := range Alphabet() {
		valid[a] = true
	}
	seen := map[string]bool{}
	for i, ev := range evs {
		if !valid[ev] {
			t.Fatalf("event %d outside alphabet: %q", i, ev)
		}
		seen[ev] = true
	}
	// With the corner-case module on, the full alphabet is covered —
	// the paper needed the extra module for exactly this.
	for _, a := range Alphabet() {
		if !seen[a] {
			t.Errorf("alphabet symbol %q never emitted", a)
		}
	}
}

func TestCornerModuleCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CornerModule = false
	cfg.Events = 4000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	evs, _ := tr.Events()
	for _, ev := range evs {
		if ev == EvSetRunnable {
			t.Fatalf("aborted-sleep event %q without corner module", ev)
		}
	}
}

// TestLifecycleOrdering checks the thread-model invariants of the
// monitored event sequence.
func TestLifecycleOrdering(t *testing.T) {
	_, evs := runDefault(t)
	// Track a conservative abstraction of the monitored thread:
	// on-CPU or off-CPU.
	onCPU := false
	for i, ev := range evs {
		switch ev {
		case EvSwitchIn:
			if onCPU {
				t.Fatalf("event %d: switch_in while on CPU", i)
			}
			onCPU = true
		case EvSwitchSuspend, EvSwitchPreempt:
			if !onCPU {
				t.Fatalf("event %d: %s while off CPU", i, ev)
			}
			onCPU = false
		case EvSetSleepable, EvSetRunnable, EvSchedEntry:
			if !onCPU {
				t.Fatalf("event %d: %s while off CPU", i, ev)
			}
		case EvWaking:
			if onCPU {
				t.Fatalf("event %d: waking while on CPU", i)
			}
		}
	}
	// Suspends happen only after a sleepable mark since the last
	// switch-in.
	sleepable := false
	for i, ev := range evs {
		switch ev {
		case EvSetSleepable:
			sleepable = true
		case EvSetRunnable:
			sleepable = false
		case EvSwitchSuspend:
			if !sleepable {
				t.Fatalf("event %d: suspend without sleepable state", i)
			}
			sleepable = false
		case EvSwitchIn:
			sleepable = false
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = 2000
	s1, _ := New(cfg)
	t1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(cfg)
	t2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := t1.Events()
	e2, _ := t2.Events()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("runs differ at %d", i)
		}
	}
}

func TestFtraceLogRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = 500
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := tr.Events()

	log := s.FtraceLog()
	if !strings.HasPrefix(log, "# tracer") {
		t.Error("ftrace log missing header")
	}
	parsed, err := trace.ParseFtrace(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	viaFtrace := trace.FtraceToTrace(parsed, s.MonitoredTask(), nil)
	got, _ := viaFtrace.Events()
	// The ftrace view of the monitored thread must match the direct
	// trace (the direct trace is truncated to cfg.Events).
	if len(got) < len(direct) {
		t.Fatalf("ftrace view has %d events, direct has %d", len(got), len(direct))
	}
	for i := range direct {
		if got[i] != direct[i] {
			t.Fatalf("event %d: ftrace %q, direct %q", i, got[i], direct[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Events: 1, ComputeBurst: 1, SleepTicks: 1}); err == nil {
		t.Error("1 event accepted")
	}
	if _, err := New(Config{Events: 10, ComputeBurst: 0, SleepTicks: 1}); err == nil {
		t.Error("zero burst accepted")
	}
}
