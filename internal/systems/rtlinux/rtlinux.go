// Package rtlinux simulates thread scheduling on a single-core Linux
// PREEMPT_RT kernel at the level of detail the paper's RT-Linux
// benchmark traces it. The paper runs a pi_stress load on a one-core
// QEMU machine and uses ftrace to record the scheduler-related events
// of one thread under analysis, following the thread model of
// de Oliveira et al.; an extra kernel module drives the corner cases
// (aborted sleeps, preemption during sleep preparation) the load alone
// does not reach.
//
// This package is the self-contained substitute: a tick-based
// preemptive priority scheduler with a monitored thread, pi_stress-
// style high-priority load threads, and a corner-case module. It emits
// the monitored thread's event sequence over exactly the alphabet of
// the paper's Fig 6, and can also render a full ftrace-style text log
// so the pipeline's ftrace parser is exercised end to end.
package rtlinux

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/trace"
)

// Scheduler events of the monitored thread (the paper's Fig 6
// alphabet).
const (
	EvSwitchIn      = "sched_switch_in"      // scheduled onto the CPU
	EvSwitchSuspend = "sched_switch_suspend" // switched out to sleep
	EvSwitchPreempt = "sched_switch_preempt" // switched out, still runnable
	EvWaking        = "sched_waking"         // woken by another context
	EvSchedEntry    = "sched_entry"          // entered schedule()
	EvSetSleepable  = "set_state_sleepable"  // marked TASK_INTERRUPTIBLE
	EvSetRunnable   = "set_state_runnable"   // reverted to TASK_RUNNING
	EvNeedResched   = "set_need_resched"     // preemption flag raised
)

// Alphabet lists all monitored events.
func Alphabet() []string {
	return []string{
		EvSwitchIn, EvSwitchSuspend, EvSwitchPreempt, EvWaking,
		EvSchedEntry, EvSetSleepable, EvSetRunnable, EvNeedResched,
	}
}

// threadState is a simulated thread's scheduler state.
type threadState uint8

const (
	stSleeping threadState = iota
	stRunnable
	stRunning
	stRunningSleepable // on CPU, marked sleepable, not yet suspended
)

// thread is one simulated task.
type thread struct {
	id          int
	name        string
	prio        int // higher wins
	state       threadState
	sleepUntil  int64
	computeLeft int
	needResched bool
	monitored   bool
}

// LogEntry is one ftrace-style record of the full system log.
type LogEntry struct {
	Task  string
	Time  int64 // ticks
	Event string
}

// Sim is the single-core scheduler simulation.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	threads []*thread
	current *thread // on CPU, nil when idle
	now     int64

	monitoredEvents []string
	log             []LogEntry
}

// Config parameterises the simulation.
type Config struct {
	// Events is the number of monitored-thread events to produce.
	// The paper's trace has 20165.
	Events int
	// LoadThreads is the number of pi_stress-style high-priority
	// threads that preempt the monitored thread.
	LoadThreads int
	// CornerModule enables the extra kernel module driving aborted
	// sleeps and preemption during sleep preparation; the paper
	// needed it to cover all states of the hand-drawn model.
	CornerModule bool
	// Seed makes the run deterministic.
	Seed int64
	// ComputeBurst is the maximum compute ticks between sleeps of
	// the monitored thread.
	ComputeBurst int
	// SleepTicks is the maximum sleep duration.
	SleepTicks int
}

// DefaultConfig reproduces the paper's 20165-event trace.
func DefaultConfig() Config {
	return Config{
		Events:       20165,
		LoadThreads:  3,
		CornerModule: true,
		Seed:         13,
		ComputeBurst: 6,
		SleepTicks:   8,
	}
}

// New constructs a simulation: one monitored thread (priority 10) plus
// the configured pi_stress load threads (priority 20+).
func New(cfg Config) (*Sim, error) {
	if cfg.Events < 2 {
		return nil, fmt.Errorf("rtlinux: need at least 2 events, got %d", cfg.Events)
	}
	if cfg.ComputeBurst <= 0 || cfg.SleepTicks <= 0 {
		return nil, fmt.Errorf("rtlinux: ComputeBurst and SleepTicks must be positive")
	}
	s := &Sim{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	mon := &thread{id: 0, name: "tua-100", prio: 10, state: stSleeping, monitored: true}
	s.threads = append(s.threads, mon)
	for i := 0; i < cfg.LoadThreads; i++ {
		s.threads = append(s.threads, &thread{
			id:    i + 1,
			name:  fmt.Sprintf("pi_stress-%d", 200+i),
			prio:  20 + i,
			state: stSleeping,
		})
	}
	// The monitored thread starts by being woken at t=1.
	mon.sleepUntil = 1
	for _, t := range s.threads[1:] {
		t.sleepUntil = int64(1 + s.rng.Intn(cfg.SleepTicks))
	}
	return s, nil
}

func (s *Sim) emit(t *thread, ev string) {
	s.log = append(s.log, LogEntry{Task: t.name, Time: s.now, Event: ev})
	if t.monitored {
		s.monitoredEvents = append(s.monitoredEvents, ev)
	}
}

// done reports whether enough monitored events were produced.
func (s *Sim) done() bool { return len(s.monitoredEvents) >= s.cfg.Events }

// wake moves a sleeping thread to the runqueue and raises need_resched
// on a lower-priority running thread.
func (s *Sim) wake(t *thread) {
	if t.state != stSleeping {
		return
	}
	s.emit(t, EvWaking)
	t.state = stRunnable
	if s.current != nil && s.current != t && s.current.prio < t.prio && !s.current.needResched {
		s.current.needResched = true
		s.emit(s.current, EvNeedResched)
	}
}

// pick returns the highest-priority runnable thread.
func (s *Sim) pick() *thread {
	var best *thread
	for _, t := range s.threads {
		if t.state == stRunnable && (best == nil || t.prio > best.prio) {
			best = t
		}
	}
	return best
}

// schedule switches the current thread out (suspend when sleepable,
// preempt otherwise) and the best runnable thread in.
func (s *Sim) schedule() {
	if cur := s.current; cur != nil {
		s.emit(cur, EvSchedEntry)
		if cur.state == stRunningSleepable {
			s.emit(cur, EvSwitchSuspend)
			cur.state = stSleeping
			cur.sleepUntil = s.now + 1 + int64(s.rng.Intn(s.cfg.SleepTicks))
		} else {
			s.emit(cur, EvSwitchPreempt)
			cur.state = stRunnable
		}
		cur.needResched = false
		s.current = nil
	}
	if next := s.pick(); next != nil {
		s.emit(next, EvSwitchIn)
		next.state = stRunning
		next.computeLeft = 1 + s.rng.Intn(s.cfg.ComputeBurst)
		s.current = next
	}
}

// Run produces the monitored thread's event trace.
func (s *Sim) Run() (*trace.Trace, error) {
	for !s.done() {
		s.now++
		if s.now > int64(s.cfg.Events)*1000 {
			return nil, fmt.Errorf("rtlinux: simulation stalled at tick %d", s.now)
		}

		// Timer wakeups.
		for _, t := range s.threads {
			if t.state == stSleeping && t.sleepUntil <= s.now {
				s.wake(t)
			}
		}

		// Preemption pending?
		if s.current != nil && s.current.needResched {
			s.schedule()
			continue
		}

		// Idle CPU: dispatch.
		if s.current == nil {
			s.schedule()
			continue
		}

		cur := s.current
		if cur.computeLeft > 0 {
			cur.computeLeft--
			continue
		}

		// Burst finished: prepare to sleep.
		if cur.state == stRunning {
			s.emit(cur, EvSetSleepable)
			cur.state = stRunningSleepable
			// Corner-case module: with some probability a wakeup
			// races in before schedule() — the thread reverts to
			// runnable and keeps running (set_state_runnable), or
			// a higher-priority thread preempts it mid-
			// preparation (need_resched while sleepable).
			if s.cfg.CornerModule {
				switch s.rng.Intn(10) {
				case 0:
					s.emit(cur, EvSetRunnable)
					cur.state = stRunning
					cur.computeLeft = 1 + s.rng.Intn(s.cfg.ComputeBurst)
					continue
				case 1:
					if !cur.needResched {
						cur.needResched = true
						s.emit(cur, EvNeedResched)
					}
					// schedule() next tick will preempt the
					// sleepable thread.
					continue
				}
			}
			s.schedule()
			continue
		}

		// Sleepable with need_resched handled above; otherwise
		// complete the suspend.
		s.schedule()
	}
	return trace.FromEvents(s.monitoredEvents[:s.cfg.Events]), nil
}

// MonitoredTask returns the ftrace task label of the thread under
// analysis.
func (s *Sim) MonitoredTask() string { return s.threads[0].name }

// FtraceLog renders the full system log in ftrace text format, so the
// pipeline can be exercised through trace.ParseFtrace exactly as the
// paper's tooling consumes real ftrace output.
func (s *Sim) FtraceLog() string {
	var b strings.Builder
	b.WriteString("# tracer: nop\n#\n")
	for _, e := range s.log {
		fmt.Fprintf(&b, "%s  [000] d..3  %d.%06d: %s: tick=%d\n",
			e.Task, e.Time/1000, (e.Time%1000)*1000, e.Event, e.Time)
	}
	return b.String()
}
