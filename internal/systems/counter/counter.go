// Package counter implements the paper's Counter benchmark: a program
// that counts from 1 up to a threshold T (128 in the paper) and back
// down to 1, repeated N times, observing only the counter value. The
// learned model's transition predicates (x' = x + 1, the turning
// conditions at T and 1, x' = x − 1) must be synthesized from the
// values alone, threshold constant included — the paper highlights
// this benchmark precisely because of the automatic constant
// discovery.
package counter

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/trace"
)

// Config parameterises the counter run.
type Config struct {
	// Threshold is T, the turning point. The paper uses 128.
	Threshold int64
	// Observations is the trace length to produce; the counter
	// cycles as often as needed. The paper's trace has 447
	// observations.
	Observations int
}

// DefaultConfig reproduces the paper's trace.
func DefaultConfig() Config {
	return Config{Threshold: 128, Observations: 447}
}

// Schema returns the single-variable trace schema.
func Schema() *trace.Schema {
	return trace.MustSchema(trace.VarDef{Name: "x", Type: expr.Int})
}

// Run generates the counter trace: 1, 2, …, T, T−1, …, 1, 2, … until
// Observations values have been emitted.
func (c Config) Run() (*trace.Trace, error) {
	m, err := NewMachine(c.Threshold)
	if err != nil {
		return nil, err
	}
	if c.Observations < 2 {
		return nil, fmt.Errorf("counter: need at least 2 observations, got %d", c.Observations)
	}
	tr := trace.New(Schema())
	obs, _ := m.Init()
	tr.MustAppend(obs)
	for tr.Len() < c.Observations {
		obs, err := m.Step(InputTick)
		if err != nil {
			return nil, err
		}
		tr.MustAppend(obs)
	}
	return tr, nil
}
