package counter

import "testing"

func TestDefaultTrace(t *testing.T) {
	tr, err := DefaultConfig().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 447 {
		t.Errorf("trace length = %d, want 447 (paper Table I)", tr.Len())
	}
	// Values stay within [1, T]; steps are ±1 with turns exactly at
	// the bounds.
	for i := 0; i < tr.Steps(); i++ {
		x, _ := tr.Value(i, "x")
		xn, _ := tr.Value(i+1, "x")
		if x.I < 1 || x.I > 128 {
			t.Fatalf("observation %d out of range: %d", i, x.I)
		}
		d := xn.I - x.I
		if d != 1 && d != -1 {
			t.Fatalf("step %d is not ±1: %d -> %d", i, x.I, xn.I)
		}
		if x.I == 128 && d != -1 {
			t.Fatalf("no turn at threshold (step %d)", i)
		}
		if x.I == 1 && i > 0 && d != 1 {
			t.Fatalf("no turn at 1 (step %d)", i)
		}
	}
	// The threshold is reached.
	hit := false
	for i := 0; i < tr.Len(); i++ {
		if v, _ := tr.Value(i, "x"); v.I == 128 {
			hit = true
			break
		}
	}
	if !hit {
		t.Error("threshold never reached")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Threshold: 1, Observations: 10}).Run(); err == nil {
		t.Error("threshold 1 accepted")
	}
	if _, err := (Config{Threshold: 5, Observations: 1}).Run(); err == nil {
		t.Error("1 observation accepted")
	}
}

func TestSmallThreshold(t *testing.T) {
	tr, err := (Config{Threshold: 3, Observations: 9}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 2, 1, 2, 3, 2, 1}
	for i, w := range want {
		if v, _ := tr.Value(i, "x"); v.I != w {
			t.Fatalf("observation %d = %d, want %d", i, v.I, w)
		}
	}
}
