package counter

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/trace"
)

// InputTick is the counter's only input: advance one step.
const InputTick = "tick"

// Machine is the counter as a steppable state machine, the probeable
// form of the benchmark that active conformance testing drives: the
// same update rule as Config.Run, but one transition at a time from an
// explicit reset. Config.Run is implemented on top of it, so the batch
// generator and the probe target cannot drift apart.
type Machine struct {
	threshold int64
	x, dir    int64
}

// NewMachine returns a reset counter machine with turning point
// threshold.
func NewMachine(threshold int64) (*Machine, error) {
	if threshold < 2 {
		return nil, fmt.Errorf("counter: threshold %d must be at least 2", threshold)
	}
	m := &Machine{threshold: threshold}
	m.Reset()
	return m, nil
}

// Name implements systems.Probeable.
func (m *Machine) Name() string { return "counter" }

// Schema implements systems.Probeable.
func (m *Machine) Schema() *trace.Schema { return Schema() }

// Inputs implements systems.Probeable.
func (m *Machine) Inputs() []string { return []string{InputTick} }

// Reset returns the counter to its initial state (x = 1, counting up).
func (m *Machine) Reset() { m.x, m.dir = 1, 1 }

// Init implements systems.Probeable: the counter's value is observed
// from reset on, before any input.
func (m *Machine) Init() (trace.Observation, bool) {
	return trace.Observation{expr.IntVal(m.x)}, true
}

// Step advances the counter one step and returns the new observation.
func (m *Machine) Step(input string) (trace.Observation, error) {
	if input != InputTick {
		return nil, fmt.Errorf("counter: unknown input %q", input)
	}
	if m.x >= m.threshold {
		m.dir = -1
	} else if m.x <= 1 {
		m.dir = 1
	}
	m.x += m.dir
	return trace.Observation{expr.IntVal(m.x)}, nil
}

// Schedule implements systems.Scheduler. The counter is autonomous, so
// the canonical workload is an endless stream of ticks; seed is
// ignored.
func (m *Machine) Schedule(seed int64) func() string {
	return func() string { return InputTick }
}
