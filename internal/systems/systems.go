// Package systems hosts the simulated systems of the paper's
// evaluation. Each subpackage is one benchmark generator; this parent
// package defines the probing interface that turns those generators
// into interrogable systems for active conformance testing
// (internal/active): a Probeable can be reset, stepped one input at a
// time, and observed, and a Scheduler additionally replays its
// canonical benchmark workload — so a probe of any length is a prefix
// extension of the trace the passive benchmarks learn from.
package systems

import (
	"fmt"
	"sort"

	"repro/internal/systems/counter"
	"repro/internal/systems/fifo"
	"repro/internal/systems/serial"
	"repro/internal/systems/usbxhci"
	"repro/internal/trace"
)

// Probeable is a simulated system that active testing can interrogate:
// reset to a known initial state, drive with one input at a time, and
// observe. Step returns the observation the benchmark trace records
// for that input, or an error when the system refuses the input in its
// current state (a conformance fact in itself: a model predicting the
// step overapproximates the system). A refused input leaves the system
// unchanged.
type Probeable interface {
	// Name is the registry name of the system.
	Name() string
	// Schema declares the observation schema, fixed across runs.
	Schema() *trace.Schema
	// Inputs lists the accepted input symbols.
	Inputs() []string
	// Reset returns the system to its initial state.
	Reset()
	// Init returns the observation recorded at reset, before any
	// input, if the system emits one (state-observed systems do;
	// event-trace systems do not).
	Init() (trace.Observation, bool)
	// Step applies one input and returns its observation.
	Step(input string) (trace.Observation, error)
}

// Scheduler is a Probeable with a canonical workload: Schedule returns
// a deterministic input chooser replaying the system's benchmark load
// from reset. The chooser may read the system's live state (the serial
// workload's policy depends on the queue length), so it must only be
// interleaved with the Steps it chooses. Seed 0 selects the system's
// default; deterministic systems ignore it.
type Scheduler interface {
	Probeable
	Schedule(seed int64) func() string
}

// Drive resets the system and applies the inputs in order, returning
// the observed trace. On a refused input it returns the trace up to
// the refusal together with the error, so callers can report how far
// the system followed.
func Drive(p Probeable, inputs []string) (*trace.Trace, error) {
	p.Reset()
	tr := trace.New(p.Schema())
	if obs, ok := p.Init(); ok {
		if err := tr.Append(obs); err != nil {
			return tr, err
		}
	}
	for i, in := range inputs {
		obs, err := p.Step(in)
		if err != nil {
			return tr, fmt.Errorf("systems: %s refused input %d (%s): %w", p.Name(), i, in, err)
		}
		if err := tr.Append(obs); err != nil {
			return tr, err
		}
	}
	return tr, nil
}

// DriveSchedule resets the system and replays its canonical schedule
// until n observations have been collected. The result is a prefix of
// the same infinite trace for every n, so growing probes strictly
// extend earlier ones.
func DriveSchedule(p Scheduler, seed int64, n int) (*trace.Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("systems: need at least 1 observation, got %d", n)
	}
	p.Reset()
	next := p.Schedule(seed)
	tr := trace.New(p.Schema())
	if obs, ok := p.Init(); ok {
		if err := tr.Append(obs); err != nil {
			return nil, err
		}
	}
	for tr.Len() < n {
		obs, err := p.Step(next())
		if err != nil {
			return nil, fmt.Errorf("systems: %s schedule refused at observation %d: %w", p.Name(), tr.Len(), err)
		}
		if err := tr.Append(obs); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// open constructs each registered system with its paper-default
// parameters, paired with the canonical benchmark trace length.
var open = map[string]struct {
	construct func() (Scheduler, error)
	canonical int
}{
	"counter": {func() (Scheduler, error) {
		return counter.NewMachine(counter.DefaultConfig().Threshold)
	}, counter.DefaultConfig().Observations},
	"fifo": {func() (Scheduler, error) {
		return fifo.New(4)
	}, 257},
	"serial": {func() (Scheduler, error) {
		return serial.NewMachine(serial.DefaultWorkload())
	}, serial.DefaultWorkload().Observations},
	"usbslot": {func() (Scheduler, error) {
		return usbxhci.NewSlotMachine(usbxhci.DefaultSlotWorkload()), nil
	}, 39},
}

// Open returns the named system with its paper-default parameters.
func Open(name string) (Scheduler, error) {
	e, ok := open[name]
	if !ok {
		return nil, fmt.Errorf("systems: unknown system %q (have %v)", name, Names())
	}
	return e.construct()
}

// Names lists the registered probeable systems, sorted.
func Names() []string {
	var names []string
	for name := range open {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CanonicalObservations returns the benchmark trace length of the
// named system (the length its passive experiment learns from), or 0
// for unknown names. The fifo length is 32 periods of its depth-4
// triangle wave plus the initial level.
func CanonicalObservations(name string) int {
	return open[name].canonical
}
