package usbxhci

import (
	"fmt"

	"repro/internal/trace"
)

// Endpoint state machine (xHCI spec §4.8.3). Each configured endpoint
// of a device slot runs its own small state machine: the doorbell
// starts it, Stop Endpoint halts it gracefully, transfer errors halt
// it, and Reset Endpoint recovers a halted endpoint back to Stopped so
// the driver can reposition the dequeue pointer and ring the doorbell
// again. The error-recovery workload below exercises the paths the
// storage-attach scenario never takes.

// EndpointState is an endpoint context state.
type EndpointState uint8

// Endpoint states (spec names).
const (
	EpDisabled EndpointState = iota
	EpRunning
	EpHalted
	EpStopped
	EpError
)

// String returns the spec name.
func (s EndpointState) String() string {
	switch s {
	case EpDisabled:
		return "Disabled"
	case EpRunning:
		return "Running"
	case EpHalted:
		return "Halted"
	case EpStopped:
		return "Stopped"
	case EpError:
		return "Error"
	default:
		return fmt.Sprintf("EndpointState(%d)", uint8(s))
	}
}

// Endpoint events recorded by the error-recovery benchmark.
const (
	EpEvConfigure     = "EP_CONFIGURE"      // Disabled → Stopped (Configure Endpoint)
	EpEvDoorbell      = "EP_DOORBELL"       // Stopped → Running
	EpEvStopCmd       = "EP_STOP"           // Running → Stopped (Stop Endpoint command)
	EpEvTransferOK    = "EP_TRANSFER_OK"    // Running → Running
	EpEvTransferErr   = "EP_TRANSFER_ERROR" // Running → Halted (STALL etc.)
	EpEvResetCmd      = "EP_RESET"          // Halted → Stopped (Reset Endpoint command)
	EpEvSetTRDequeue  = "EP_SET_TR_DEQUEUE" // Stopped → Stopped (reposition ring)
	EpEvDisableViaCfg = "EP_DECONFIGURE"    // any → Disabled
)

// Endpoint is one endpoint context.
type Endpoint struct {
	state  EndpointState
	events []string
}

// NewEndpoint returns an endpoint in the Disabled state.
func NewEndpoint() *Endpoint { return &Endpoint{state: EpDisabled} }

// State returns the current endpoint state.
func (e *Endpoint) State() EndpointState { return e.state }

// Events returns the accepted-event trace so far.
func (e *Endpoint) Events() []string { return append([]string(nil), e.events...) }

// Apply drives the endpoint with one event; illegal events error and
// leave the state unchanged.
func (e *Endpoint) Apply(ev string) error {
	next, ok := e.next(ev)
	if !ok {
		return fmt.Errorf("usbxhci: endpoint event %s illegal in state %s", ev, e.state)
	}
	e.state = next
	e.events = append(e.events, ev)
	return nil
}

func (e *Endpoint) next(ev string) (EndpointState, bool) {
	switch ev {
	case EpEvConfigure:
		if e.state == EpDisabled {
			return EpStopped, true
		}
	case EpEvDoorbell:
		if e.state == EpStopped {
			return EpRunning, true
		}
	case EpEvStopCmd:
		if e.state == EpRunning {
			return EpStopped, true
		}
	case EpEvTransferOK:
		if e.state == EpRunning {
			return EpRunning, true
		}
	case EpEvTransferErr:
		if e.state == EpRunning {
			return EpHalted, true
		}
	case EpEvResetCmd:
		if e.state == EpHalted {
			return EpStopped, true
		}
	case EpEvSetTRDequeue:
		if e.state == EpStopped {
			return EpStopped, true
		}
	case EpEvDisableViaCfg:
		if e.state != EpDisabled {
			return EpDisabled, true
		}
	}
	return e.state, false
}

// EndpointWorkload scripts an I/O load with injected transfer errors,
// exercising the halt/reset/recover cycle the plain attach scenario
// never reaches.
type EndpointWorkload struct {
	// Bursts is the number of doorbell→transfer bursts.
	Bursts int
	// TransfersPerBurst is the successful transfer count per burst.
	TransfersPerBurst int
	// ErrorEvery injects a transfer error on every k-th burst
	// (0 disables error injection).
	ErrorEvery int
	// StopEvery issues a graceful Stop Endpoint on every k-th burst
	// (0 disables; bursts not stopped or halted keep running into
	// the next doorbell... the workload stops them).
	StopEvery int
}

// DefaultEndpointWorkload exercises every endpoint state.
func DefaultEndpointWorkload() EndpointWorkload {
	return EndpointWorkload{Bursts: 12, TransfersPerBurst: 4, ErrorEvery: 3, StopEvery: 2}
}

// Run drives a fresh endpoint through the workload and returns its
// event trace.
func (w EndpointWorkload) Run() (*trace.Trace, error) {
	if w.Bursts <= 0 || w.TransfersPerBurst < 0 {
		return nil, fmt.Errorf("usbxhci: bad endpoint workload %+v", w)
	}
	ep := NewEndpoint()
	do := func(evs ...string) error {
		for _, ev := range evs {
			if err := ep.Apply(ev); err != nil {
				return err
			}
		}
		return nil
	}
	if err := do(EpEvConfigure); err != nil {
		return nil, err
	}
	for b := 1; b <= w.Bursts; b++ {
		if err := do(EpEvDoorbell); err != nil {
			return nil, err
		}
		for i := 0; i < w.TransfersPerBurst; i++ {
			if err := do(EpEvTransferOK); err != nil {
				return nil, err
			}
		}
		switch {
		case w.ErrorEvery > 0 && b%w.ErrorEvery == 0:
			// Error, recover, reposition.
			if err := do(EpEvTransferErr, EpEvResetCmd, EpEvSetTRDequeue); err != nil {
				return nil, err
			}
		default:
			if err := do(EpEvStopCmd); err != nil {
				return nil, err
			}
			if w.StopEvery > 0 && b%w.StopEvery == 0 {
				if err := do(EpEvSetTRDequeue); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := do(EpEvDisableViaCfg); err != nil {
		return nil, err
	}
	return trace.FromEvents(ep.Events()), nil
}
