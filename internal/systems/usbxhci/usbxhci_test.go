package usbxhci

import (
	"testing"
)

func TestSlotLegalLifecycle(t *testing.T) {
	s := NewSlot()
	seq := []struct {
		cmd  string
		want SlotState
	}{
		{CmdEnableSlot, SlotEnabled},
		{CmdAddressDev, SlotAddressed},
		{CmdConfigEnd, SlotConfigured},
		{CmdStopEnd, SlotConfigured},
		{CmdResetDev, SlotAddressed},
		{CmdConfigEnd, SlotConfigured},
		{CmdDisableSlot, SlotDisabled},
	}
	for i, step := range seq {
		if err := s.Command(step.cmd); err != nil {
			t.Fatalf("step %d (%s): %v", i, step.cmd, err)
		}
		if s.State() != step.want {
			t.Fatalf("step %d (%s): state %s, want %s", i, step.cmd, s.State(), step.want)
		}
	}
	if len(s.Events()) != len(seq) {
		t.Errorf("events = %d, want %d", len(s.Events()), len(seq))
	}
}

func TestSlotIllegalCommands(t *testing.T) {
	cases := []struct {
		setup []string
		cmd   string
	}{
		{nil, CmdAddressDev},                     // address while disabled
		{nil, CmdConfigEnd},                      // configure while disabled
		{nil, CmdDisableSlot},                    // disable while disabled
		{nil, CmdStopEnd},                        // stop while disabled
		{nil, CmdResetDev},                       // reset while disabled
		{[]string{CmdEnableSlot}, CmdEnableSlot}, // double enable
		{[]string{CmdEnableSlot}, CmdConfigEnd},  // configure before address
		{[]string{CmdEnableSlot}, CmdStopEnd},    // stop before configure
		{[]string{CmdEnableSlot}, CmdResetDev},   // reset before address
	}
	for _, c := range cases {
		s := NewSlot()
		for _, cmd := range c.setup {
			if err := s.Command(cmd); err != nil {
				t.Fatal(err)
			}
		}
		before := s.State()
		if err := s.Command(c.cmd); err == nil {
			t.Errorf("command %s legal after %v, want error", c.cmd, c.setup)
		}
		if s.State() != before {
			t.Errorf("illegal command %s changed state", c.cmd)
		}
	}
}

func TestSlotStateStrings(t *testing.T) {
	for st, want := range map[SlotState]string{
		SlotDisabled: "Disabled", SlotEnabled: "Enabled", SlotDefault: "Default",
		SlotAddressed: "Addressed", SlotConfigured: "Configured",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestDefaultSlotWorkloadLength(t *testing.T) {
	tr, err := DefaultSlotWorkload().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 39 {
		t.Errorf("slot trace length = %d, want 39 (paper Table I)", tr.Len())
	}
	sum := 0
	for _, c := range DefaultSlotWorkload().Cycles {
		sum += c.length()
	}
	if sum != tr.Len() {
		t.Errorf("cycle lengths sum to %d, trace has %d", sum, tr.Len())
	}
	evs, err := tr.Events()
	if err != nil {
		t.Fatal(err)
	}
	// The trace must start from a fresh attach and end in a detach.
	if evs[0] != CmdEnableSlot || evs[len(evs)-1] != CmdDisableSlot {
		t.Errorf("trace boundaries: %s … %s", evs[0], evs[len(evs)-1])
	}
	// Replaying the trace through a fresh slot must be legal.
	s := NewSlot()
	for i, ev := range evs {
		if err := s.Command(ev); err != nil {
			t.Fatalf("replay step %d: %v", i, err)
		}
	}
}

func TestAttachWorkloadLengthAndLegality(t *testing.T) {
	tr, err := DefaultAttachWorkload().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 259 {
		t.Errorf("attach trace length = %d, want 259 (paper Table I)", tr.Len())
	}
	evs, _ := tr.Events()
	// Every fetch is followed by a TRB type; every write by an event
	// type.
	fetchPayloads := map[string]bool{
		TrbCrEnableSlot: true, TrbCrAddressDev: true, TrbCrConfigEnd: true,
		TrbSetup: true, TrbData: true, TrbStatus: true, TrbNormal: true, TrbReserved: true,
	}
	writePayloads := map[string]bool{
		EvPortStatusChange: true, EvCmdCompletion: true, EvTransfer: true,
	}
	for i, ev := range evs {
		switch ev {
		case EvRingFetch:
			if i+1 >= len(evs) || !fetchPayloads[evs[i+1]] {
				t.Fatalf("fetch at %d not followed by a TRB type", i)
			}
		case EvWrite:
			if i+1 >= len(evs) || !writePayloads[evs[i+1]] {
				t.Fatalf("write at %d not followed by an event type", i)
			}
		}
	}
	// Enumeration ordering: enable slot before address device before
	// the first bulk transfer.
	idx := func(sym string) int {
		for i, ev := range evs {
			if ev == sym {
				return i
			}
		}
		return -1
	}
	if !(idx(TrbCrEnableSlot) < idx(TrbCrAddressDev) &&
		idx(TrbCrAddressDev) < idx(TrbCrConfigEnd) &&
		idx(TrbCrConfigEnd) < idx(TrbNormal)) {
		t.Error("enumeration order violated")
	}
}

func TestControllerGuards(t *testing.T) {
	c := NewController()
	if err := c.BulkTransfer(1); err == nil {
		t.Error("bulk transfer on unconfigured slot accepted")
	}
	if err := c.Command(TrbCrConfigEnd, CmdConfigEnd); err == nil {
		t.Error("configure before enable accepted")
	}
}

func TestEndpointLifecycle(t *testing.T) {
	ep := NewEndpoint()
	steps := []struct {
		ev   string
		want EndpointState
	}{
		{EpEvConfigure, EpStopped},
		{EpEvDoorbell, EpRunning},
		{EpEvTransferOK, EpRunning},
		{EpEvTransferErr, EpHalted},
		{EpEvResetCmd, EpStopped},
		{EpEvSetTRDequeue, EpStopped},
		{EpEvDoorbell, EpRunning},
		{EpEvStopCmd, EpStopped},
		{EpEvDisableViaCfg, EpDisabled},
	}
	for i, s := range steps {
		if err := ep.Apply(s.ev); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.ev, err)
		}
		if ep.State() != s.want {
			t.Fatalf("step %d (%s): state %s, want %s", i, s.ev, ep.State(), s.want)
		}
	}
}

func TestEndpointIllegalEvents(t *testing.T) {
	cases := []struct {
		setup []string
		ev    string
	}{
		{nil, EpEvDoorbell},                                       // doorbell while disabled
		{nil, EpEvTransferOK},                                     // transfer while disabled
		{nil, EpEvResetCmd},                                       // reset while disabled
		{nil, EpEvDisableViaCfg},                                  // deconfigure while disabled
		{[]string{EpEvConfigure}, EpEvConfigure},                  // double configure
		{[]string{EpEvConfigure}, EpEvTransferOK},                 // transfer while stopped
		{[]string{EpEvConfigure}, EpEvStopCmd},                    // stop while stopped
		{[]string{EpEvConfigure}, EpEvResetCmd},                   // reset while stopped
		{[]string{EpEvConfigure, EpEvDoorbell}, EpEvSetTRDequeue}, // dequeue while running
	}
	for _, c := range cases {
		ep := NewEndpoint()
		for _, ev := range c.setup {
			if err := ep.Apply(ev); err != nil {
				t.Fatal(err)
			}
		}
		before := ep.State()
		if err := ep.Apply(c.ev); err == nil {
			t.Errorf("event %s legal after %v", c.ev, c.setup)
		}
		if ep.State() != before {
			t.Errorf("illegal event %s changed state", c.ev)
		}
	}
}

func TestEndpointWorkloadCoversAllStates(t *testing.T) {
	tr, err := DefaultEndpointWorkload().Run()
	if err != nil {
		t.Fatal(err)
	}
	evs, _ := tr.Events()
	seen := map[string]bool{}
	for _, ev := range evs {
		seen[ev] = true
	}
	for _, want := range []string{
		EpEvConfigure, EpEvDoorbell, EpEvStopCmd, EpEvTransferOK,
		EpEvTransferErr, EpEvResetCmd, EpEvSetTRDequeue, EpEvDisableViaCfg,
	} {
		if !seen[want] {
			t.Errorf("workload never emits %s", want)
		}
	}
	// Replay legality.
	ep := NewEndpoint()
	for i, ev := range evs {
		if err := ep.Apply(ev); err != nil {
			t.Fatalf("replay step %d: %v", i, err)
		}
	}
	if _, err := (EndpointWorkload{}).Run(); err == nil {
		t.Error("zero workload accepted")
	}
}

func TestEndpointStateStrings(t *testing.T) {
	for st, want := range map[EndpointState]string{
		EpDisabled: "Disabled", EpRunning: "Running", EpHalted: "Halted",
		EpStopped: "Stopped", EpError: "Error",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
