package usbxhci

import (
	"repro/internal/expr"
	"repro/internal/trace"
)

// SlotMachine is the slot state machine as a probeable system: inputs
// are the slot commands, the observation is the accepted command event
// (the benchmark's event trace), and illegal commands are rejected —
// the controller's Context State Error completion, which active
// probing reads as "the system refuses this input here".
type SlotMachine struct {
	slot *Slot
	w    SlotWorkload
}

// NewSlotMachine returns a machine over a fresh slot; the workload
// parameterises the canonical schedule.
func NewSlotMachine(w SlotWorkload) *SlotMachine {
	return &SlotMachine{slot: NewSlot(), w: w}
}

// Name implements systems.Probeable.
func (m *SlotMachine) Name() string { return "usbslot" }

// Schema implements systems.Probeable.
func (m *SlotMachine) Schema() *trace.Schema { return trace.EventSchema() }

// Inputs implements systems.Probeable.
func (m *SlotMachine) Inputs() []string {
	return []string{CmdEnableSlot, CmdDisableSlot, CmdAddressDev, CmdConfigEnd, CmdStopEnd, CmdResetDev}
}

// Reset returns the slot to Disabled (a controller reset).
func (m *SlotMachine) Reset() { m.slot = NewSlot() }

// Init implements systems.Probeable: event traces observe nothing
// before the first command.
func (m *SlotMachine) Init() (trace.Observation, bool) { return nil, false }

// Step applies one slot command; commands illegal in the current state
// are rejected and leave the slot unchanged.
func (m *SlotMachine) Step(cmd string) (trace.Observation, error) {
	if err := m.slot.Command(cmd); err != nil {
		return nil, err
	}
	return trace.Observation{expr.SymVal(cmd)}, nil
}

// Schedule implements systems.Scheduler: the workload's attach/detach
// cycles repeated forever, so the canonical 39-event benchmark trace
// is the schedule's prefix and longer probes wrap around to the next
// attach. Seed is ignored; the workload is scripted. Panics on an
// empty workload.
func (m *SlotMachine) Schedule(seed int64) func() string {
	cmds := m.w.Commands()
	if len(cmds) == 0 {
		panic("usbxhci: empty slot workload has no schedule")
	}
	i := 0
	return func() string {
		cmd := cmds[i%len(cmds)]
		i++
		return cmd
	}
}
