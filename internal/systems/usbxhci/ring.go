package usbxhci

import (
	"fmt"

	"repro/internal/trace"
)

// Interface events recorded by the USB Attach benchmark: every TRB the
// controller fetches from a ring and every event TRB it writes to the
// event ring, plus the TRB/completion types involved — the alphabet of
// the paper's Fig 3.
const (
	EvRingFetch = "xhci_ring_fetch"
	EvWrite     = "xhci_write"

	// Command-ring TRB types (fetched).
	TrbCrEnableSlot = "CrES"
	TrbCrAddressDev = "CrAD"
	TrbCrConfigEnd  = "CrCE"

	// Transfer-ring TRB types (fetched).
	TrbSetup    = "TRSetup"
	TrbData     = "TRData"
	TrbStatus   = "TRStatus"
	TrbNormal   = "TRNormal"
	TrbReserved = "TRBReserved"

	// Event-ring TRB types (written).
	EvPortStatusChange = "ErPSC"
	EvCmdCompletion    = "ErCC"
	EvTransfer         = "ErTransfer"
	CodeSuccess        = "CCSuccess"
)

// Controller models the ring interface of the xHCI controller: the
// driver posts TRBs, the controller fetches them and writes completion
// and transfer events, all recorded as an interface event trace.
type Controller struct {
	slot   *Slot
	events []string
}

// NewController returns a controller with one disabled slot.
func NewController() *Controller { return &Controller{slot: NewSlot()} }

// Events returns the interface trace so far.
func (c *Controller) Events() []string { return append([]string(nil), c.events...) }

// Slot exposes the controller's device slot.
func (c *Controller) Slot() *Slot { return c.slot }

func (c *Controller) emit(evs ...string) { c.events = append(c.events, evs...) }

// PortStatusChange reports a root-port event (device attach/detach):
// the controller writes a Port Status Change event TRB.
func (c *Controller) PortStatusChange() {
	c.emit(EvWrite, EvPortStatusChange)
}

// Command executes one command-ring TRB: the controller fetches it,
// applies the slot command, and writes a command-completion event.
func (c *Controller) Command(trbType, slotCmd string) error {
	c.emit(EvRingFetch, trbType)
	if err := c.slot.Command(slotCmd); err != nil {
		return err
	}
	c.emit(EvWrite, EvCmdCompletion, CodeSuccess)
	return nil
}

// ControlTransfer executes a three-stage control transfer (setup,
// optional data, status) on the default endpoint: each stage TRB is
// fetched from the transfer ring, then one transfer event is written.
func (c *Controller) ControlTransfer(withData bool) error {
	if c.slot.State() != SlotAddressed && c.slot.State() != SlotConfigured && c.slot.State() != SlotEnabled {
		return fmt.Errorf("usbxhci: control transfer with slot %s", c.slot.State())
	}
	c.emit(EvRingFetch, TrbSetup)
	if withData {
		c.emit(EvRingFetch, TrbData)
	}
	c.emit(EvRingFetch, TrbStatus)
	c.emit(EvWrite, EvTransfer, CodeSuccess)
	return nil
}

// BulkTransfer executes a bulk transfer of n Normal TRBs on a
// configured endpoint, ending with a reserved link TRB fetch and one
// transfer event.
func (c *Controller) BulkTransfer(n int) error {
	if c.slot.State() != SlotConfigured {
		return fmt.Errorf("usbxhci: bulk transfer with slot %s", c.slot.State())
	}
	for i := 0; i < n; i++ {
		c.emit(EvRingFetch, TrbNormal)
	}
	c.emit(EvRingFetch, TrbReserved)
	c.emit(EvWrite, EvTransfer, CodeSuccess)
	return nil
}

// AttachWorkload scripts the paper's USB Attach benchmark: a virtual
// storage device is plugged into the platform, enumerated (port status
// change, enable slot, address device, descriptor reads, configure)
// and then read by the guest (bulk transfers).
type AttachWorkload struct {
	// DescriptorReads is the number of control transfers during
	// enumeration (GET_DESCRIPTOR, SET_CONFIGURATION, …).
	DescriptorReads int
	// BulkReads is the number of bulk transfers after
	// configuration.
	BulkReads int
	// BulkTRBs is the Normal-TRB count per bulk transfer.
	BulkTRBs int
}

// DefaultAttachWorkload reproduces the paper's 259-event interface
// trace: port status change (2 events), three commands (15), nine
// control transfers (36 + 35), thirteen 4-TRB bulk reads (169), and a
// detach port status change (2).
func DefaultAttachWorkload() AttachWorkload {
	return AttachWorkload{DescriptorReads: 9, BulkReads: 13, BulkTRBs: 4}
}

// Run performs the attach scenario and returns the interface trace.
func (w AttachWorkload) Run() (*trace.Trace, error) {
	c := NewController()
	c.PortStatusChange()
	if err := c.Command(TrbCrEnableSlot, CmdEnableSlot); err != nil {
		return nil, err
	}
	if err := c.Command(TrbCrAddressDev, CmdAddressDev); err != nil {
		return nil, err
	}
	// Descriptor reads before configuration (control, with data).
	for i := 0; i < w.DescriptorReads/2; i++ {
		if err := c.ControlTransfer(true); err != nil {
			return nil, err
		}
	}
	if err := c.Command(TrbCrConfigEnd, CmdConfigEnd); err != nil {
		return nil, err
	}
	// Remaining control traffic (SET_CONFIGURATION etc., no data).
	for i := 0; i < (w.DescriptorReads+1)/2; i++ {
		if err := c.ControlTransfer(false); err != nil {
			return nil, err
		}
	}
	for i := 0; i < w.BulkReads; i++ {
		if err := c.BulkTransfer(w.BulkTRBs); err != nil {
			return nil, err
		}
	}
	// Detach at the end of the scenario.
	c.PortStatusChange()
	return trace.FromEvents(c.Events()), nil
}
