// Package usbxhci models the slot-management state machine and the
// command/event ring interface of an xHCI USB host controller, at the
// level of detail QEMU's hcd-xhci device implements them. The paper's
// first two benchmarks instrument exactly these two layers of QEMU's
// x86 virtual platform while an application exercises a virtual USB
// storage device; this package is the self-contained substitute: the
// same protocol state machines, driven by a scripted application load,
// emitting the same event alphabets.
//
// Slot layer (Intel xHCI spec §4.5.3): a device slot moves between
// DisabledEnabledDefault/AddressedConfigured under the slot
// commands Enable Slot, Disable Slot, Address Device, Configure
// Endpoint, Reset Device and Stop Endpoint. The paper's Fig 1
// compares the learned model against the datasheet diagram; the
// benchmark trace records the command events for one slot.
//
// Ring layer: the driver posts command/transfer TRBs that the
// controller fetches (xhci_ring_fetch) and completes by writing event
// TRBs to the event ring (xhci_write). The paper's Fig 3 benchmark
// records these interface exchanges during a storage-device attach.
package usbxhci

import (
	"fmt"

	"repro/internal/trace"
)

// SlotState is a device-slot state (xHCI spec §4.5.3).
type SlotState uint8

// Slot states. Default is entered by Address Device with BSR=1, which
// neither QEMU's driver stack nor the paper's application load issues,
// so traces never visit it — the paper calls this out as coverage
// information revealed by the learned model.
const (
	SlotDisabled SlotState = iota
	SlotEnabled
	SlotDefault
	SlotAddressed
	SlotConfigured
)

// String returns the spec name of the state.
func (s SlotState) String() string {
	switch s {
	case SlotDisabled:
		return "Disabled"
	case SlotEnabled:
		return "Enabled"
	case SlotDefault:
		return "Default"
	case SlotAddressed:
		return "Addressed"
	case SlotConfigured:
		return "Configured"
	default:
		return fmt.Sprintf("SlotState(%d)", uint8(s))
	}
}

// Slot command events, named as the paper's traces name them.
const (
	CmdEnableSlot  = "CR_ENABLE_SLOT"
	CmdDisableSlot = "CR_DISABLE_SLOT"
	CmdAddressDev  = "CR_ADDR_DEV_BSR0"
	CmdConfigEnd   = "CR_CONFIG_END"
	CmdStopEnd     = "CR_STOP_END"
	CmdResetDev    = "CR_RESET_DEVICE"
)

// Slot is one device slot of the controller.
type Slot struct {
	state SlotState
	// trace of accepted commands
	events []string
}

// NewSlot returns a slot in the Disabled state.
func NewSlot() *Slot { return &Slot{state: SlotDisabled} }

// State returns the current slot state.
func (s *Slot) State() SlotState { return s.state }

// Events returns the accepted-command trace so far.
func (s *Slot) Events() []string { return append([]string(nil), s.events...) }

// Command applies a slot command. Commands illegal in the current
// state return an error and leave the slot unchanged (the controller
// would post a Context State Error completion code).
func (s *Slot) Command(cmd string) error {
	next, ok := s.nextState(cmd)
	if !ok {
		return fmt.Errorf("usbxhci: command %s illegal in slot state %s", cmd, s.state)
	}
	s.state = next
	s.events = append(s.events, cmd)
	return nil
}

// nextState implements the spec's slot-state transition table for the
// commands QEMU implements.
func (s *Slot) nextState(cmd string) (SlotState, bool) {
	switch cmd {
	case CmdEnableSlot:
		if s.state == SlotDisabled {
			return SlotEnabled, true
		}
	case CmdDisableSlot:
		// Legal from any state except Disabled.
		if s.state != SlotDisabled {
			return SlotDisabled, true
		}
	case CmdAddressDev:
		// BSR=0: Enabled → Addressed. (BSR=1 would give Default,
		// unexercised by the workload.)
		if s.state == SlotEnabled {
			return SlotAddressed, true
		}
	case CmdConfigEnd:
		// Configure Endpoint: Addressed → Configured, or
		// reconfiguration while Configured.
		if s.state == SlotAddressed || s.state == SlotConfigured {
			return SlotConfigured, true
		}
	case CmdStopEnd:
		// Stop Endpoint leaves the slot Configured.
		if s.state == SlotConfigured {
			return SlotConfigured, true
		}
	case CmdResetDev:
		// Reset Device: Configured/Addressed → Addressed.
		if s.state == SlotConfigured || s.state == SlotAddressed {
			return SlotAddressed, true
		}
	}
	return s.state, false
}

// SlotWorkload scripts the application load of the paper's USB Slot
// benchmark: accessing a virtual USB storage device attaches it
// (enable, address, configure), performs I/O with endpoint stops and
// occasional device resets, and finally detaches (disable). Cycles is
// the per-attach shape: how many Stop Endpoint commands before and
// after an optional Reset Device + reconfigure round. Varying the
// shapes across attaches matters: a load where every attach takes the
// same path under-constrains the model (e.g. a trace in which Stop
// Endpoint is never directly followed by Disable Slot forbids that
// edge in the learned model via the compliance check).
type SlotWorkload struct {
	Cycles []SlotCycle
}

// SlotCycle is one attach/detach cycle of the load.
type SlotCycle struct {
	// StopsBefore is the Stop Endpoint count after configuration.
	StopsBefore int
	// Reset reconfigures the device mid-cycle (Reset Device,
	// Configure Endpoint).
	Reset bool
	// StopsAfter is the Stop Endpoint count after the reset round.
	StopsAfter int
}

func (c SlotCycle) length() int {
	n := 4 + c.StopsBefore + c.StopsAfter // enable, address, configure, disable
	if c.Reset {
		n += 2
	}
	return n
}

// DefaultSlotWorkload reproduces the paper's trace length of 39 slot
// events: four attach cycles of varying shape (4 + 7 + 11 + 17),
// including a bare attach/detach (configure directly followed by
// disable) and an immediate reset after configuration — the successions
// the datasheet's single Configured state exhibits.
func DefaultSlotWorkload() SlotWorkload {
	return SlotWorkload{Cycles: []SlotCycle{
		{},                           // bare attach/detach
		{Reset: true, StopsAfter: 1}, // reset right after configure
		{StopsBefore: 2, Reset: true, StopsAfter: 3}, // I/O with mid-cycle reset
		{StopsBefore: 5, Reset: true, StopsAfter: 6}, // long I/O phase
	}}
}

// Commands flattens the workload into the command sequence it issues:
// one attach (enable, address, configure), the scripted stop/reset
// rounds, and a detach (disable) per cycle.
func (w SlotWorkload) Commands() []string {
	var cmds []string
	for _, c := range w.Cycles {
		cmds = append(cmds, CmdEnableSlot, CmdAddressDev, CmdConfigEnd)
		for i := 0; i < c.StopsBefore; i++ {
			cmds = append(cmds, CmdStopEnd)
		}
		if c.Reset {
			cmds = append(cmds, CmdResetDev, CmdConfigEnd)
		}
		for i := 0; i < c.StopsAfter; i++ {
			cmds = append(cmds, CmdStopEnd)
		}
		cmds = append(cmds, CmdDisableSlot)
	}
	return cmds
}

// Run drives a fresh slot through the workload and returns the event
// trace.
func (w SlotWorkload) Run() (*trace.Trace, error) {
	s := NewSlot()
	for _, cmd := range w.Commands() {
		if err := s.Command(cmd); err != nil {
			return nil, err
		}
	}
	return trace.FromEvents(s.Events()), nil
}
