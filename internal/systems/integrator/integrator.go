// Package integrator implements the paper's Integrator benchmark: an
// anti-windup integrator whose output op accumulates the input ip but
// saturates at predefined thresholds ±5, with ip restricted to
// {−1, 0, 1}. The trace records (ip, op) pairs at discrete time steps;
// the paper's scalability experiments (Table I and Fig 7) use traces
// of up to 32768 observations of this system.
package integrator

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/trace"
)

// Integrator is the anti-windup integrator.
type Integrator struct {
	upper, lower int64
	op           int64
}

// New returns an integrator saturating at ±limit with output 0.
func New(limit int64) (*Integrator, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("integrator: limit %d must be positive", limit)
	}
	return &Integrator{upper: limit, lower: -limit}, nil
}

// Output returns the current output op.
func (g *Integrator) Output() int64 { return g.op }

// Step integrates one input sample with anti-windup saturation.
func (g *Integrator) Step(ip int64) error {
	if ip < -1 || ip > 1 {
		return fmt.Errorf("integrator: input %d outside {-1,0,1}", ip)
	}
	g.op += ip
	if g.op > g.upper {
		g.op = g.upper
	}
	if g.op < g.lower {
		g.op = g.lower
	}
	return nil
}

// Schema returns the benchmark's trace schema: (ip, op) pairs. The
// input ip is environment-driven, so it is declared with the Input
// role: learned predicates guard on it but never constrain ip'.
func Schema() *trace.Schema {
	return trace.MustSchema(
		trace.VarDef{Name: "ip", Type: expr.Int, Role: trace.Input},
		trace.VarDef{Name: "op", Type: expr.Int},
	)
}

// Config parameterises the workload: an input signal made of runs of
// constant ip, long enough to push the integrator into both
// saturation regions regularly.
type Config struct {
	// Observations is the trace length. The paper's Table I run
	// uses 32768; Fig 7 sweeps 2^6 … 2^15.
	Observations int
	// Limit is the saturation magnitude (5 in the paper).
	Limit int64
	// MaxRun is the longest run of a constant input value.
	MaxRun int
	// Seed makes the input signal deterministic.
	Seed int64
}

// DefaultConfig reproduces the paper's 32768-observation trace.
func DefaultConfig() Config {
	return Config{Observations: 32768, Limit: 5, MaxRun: 14, Seed: 7}
}

// Run generates the benchmark trace. Each observation is (ip, op)
// where op is the output before the step and ip the input applied at
// the step, so a step pair exposes op' = op + ip away from saturation
// and op' = op inside it, matching the paper's Fig 4 predicates.
func (c Config) Run() (*trace.Trace, error) {
	if c.Observations < 2 {
		return nil, fmt.Errorf("integrator: need at least 2 observations, got %d", c.Observations)
	}
	g, err := New(c.Limit)
	if err != nil {
		return nil, err
	}
	if c.MaxRun <= 0 {
		return nil, fmt.Errorf("integrator: MaxRun %d must be positive", c.MaxRun)
	}
	r := rand.New(rand.NewSource(c.Seed))
	tr := trace.New(Schema())
	inputs := []int64{-1, 0, 1}
	for tr.Len() < c.Observations {
		ip := inputs[r.Intn(len(inputs))]
		run := 1 + r.Intn(c.MaxRun)
		for i := 0; i < run && tr.Len() < c.Observations; i++ {
			tr.MustAppend(trace.Observation{expr.IntVal(ip), expr.IntVal(g.Output())})
			if err := g.Step(ip); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}
