package integrator

import "testing"

func TestIntegratorSemantics(t *testing.T) {
	g, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := g.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if g.Output() != 5 {
		t.Errorf("saturated output = %d, want 5", g.Output())
	}
	for i := 0; i < 12; i++ {
		if err := g.Step(-1); err != nil {
			t.Fatal(err)
		}
	}
	if g.Output() != -5 {
		t.Errorf("saturated output = %d, want -5", g.Output())
	}
	if err := g.Step(0); err != nil || g.Output() != -5 {
		t.Errorf("zero input changed output: %d, %v", g.Output(), err)
	}
	if err := g.Step(2); err == nil {
		t.Error("input outside {-1,0,1} accepted")
	}
	if _, err := New(0); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestDefaultTraceInvariants(t *testing.T) {
	tr, err := DefaultConfig().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 32768 {
		t.Errorf("trace length = %d, want 32768 (paper Table I)", tr.Len())
	}
	satHi, satLo := false, false
	for i := 0; i < tr.Steps(); i++ {
		ip, _ := tr.Value(i, "ip")
		op, _ := tr.Value(i, "op")
		opn, _ := tr.Value(i+1, "op")
		if ip.I < -1 || ip.I > 1 {
			t.Fatalf("step %d: input %d", i, ip.I)
		}
		if op.I < -5 || op.I > 5 {
			t.Fatalf("step %d: output %d out of bounds", i, op.I)
		}
		want := op.I + ip.I
		if want > 5 {
			want = 5
		}
		if want < -5 {
			want = -5
		}
		if opn.I != want {
			t.Fatalf("step %d: op %d + ip %d -> %d, want %d", i, op.I, ip.I, opn.I, want)
		}
		if op.I == 5 {
			satHi = true
		}
		if op.I == -5 {
			satLo = true
		}
	}
	if !satHi || !satLo {
		t.Errorf("saturation not exercised: hi=%v lo=%v", satHi, satLo)
	}
}

func TestScaledTraces(t *testing.T) {
	// Fig 7 sweeps trace lengths 2^6 … 2^15; every length must be
	// producible and deterministic.
	for _, n := range []int{64, 256, 1024} {
		cfg := DefaultConfig()
		cfg.Observations = n
		tr, err := cfg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != n {
			t.Errorf("length %d trace has %d observations", n, tr.Len())
		}
		tr2, _ := cfg.Run()
		for i := 0; i < n; i++ {
			if !tr.At(i)[1].Equal(tr2.At(i)[1]) {
				t.Fatalf("nondeterministic at %d", i)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Observations = 1
	if _, err := cfg.Run(); err == nil {
		t.Error("1 observation accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxRun = 0
	if _, err := cfg.Run(); err == nil {
		t.Error("MaxRun 0 accepted")
	}
	cfg = DefaultConfig()
	cfg.Limit = -1
	if _, err := cfg.Run(); err == nil {
		t.Error("negative limit accepted")
	}
}
