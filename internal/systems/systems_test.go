package systems_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/systems"
	"repro/internal/systems/counter"
	"repro/internal/systems/serial"
	"repro/internal/systems/usbxhci"
	"repro/internal/trace"
)

// tracesEqual compares two traces observation by observation,
// including schemas.
func tracesEqual(t *testing.T, name string, got, want *trace.Trace) {
	t.Helper()
	if !got.Schema().Equal(want.Schema()) {
		t.Fatalf("%s: schema mismatch: got %v, want %v", name, got.Schema().Names(), want.Schema().Names())
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: length mismatch: got %d, want %d", name, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if !reflect.DeepEqual(got.At(i), want.At(i)) {
			t.Fatalf("%s: observation %d: got %v, want %v", name, i, got.At(i), want.At(i))
		}
	}
}

// TestScheduleMatchesGenerators is the oracle pin: replaying each
// system's canonical schedule through the probing interface must
// reproduce, observation for observation, the trace its batch
// generator emits. The active loop's fixpoint argument rests on this:
// probes are prefix extensions of the passive benchmark trace.
func TestScheduleMatchesGenerators(t *testing.T) {
	t.Run("counter", func(t *testing.T) {
		want, err := counter.DefaultConfig().Run()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := systems.Open("counter")
		if err != nil {
			t.Fatal(err)
		}
		got, err := systems.DriveSchedule(sys, 0, want.Len())
		if err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, "counter", got, want)
	})
	t.Run("serial", func(t *testing.T) {
		w := serial.DefaultWorkload()
		want, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := systems.Open("serial")
		if err != nil {
			t.Fatal(err)
		}
		got, err := systems.DriveSchedule(sys, w.Seed, want.Len())
		if err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, "serial", got, want)
		// Seed 0 selects the workload's own seed: same trace.
		got0, err := systems.DriveSchedule(sys, 0, want.Len())
		if err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, "serial seed 0", got0, want)
	})
	t.Run("usbslot", func(t *testing.T) {
		want, err := usbxhci.DefaultSlotWorkload().Run()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := systems.Open("usbslot")
		if err != nil {
			t.Fatal(err)
		}
		got, err := systems.DriveSchedule(sys, 0, want.Len())
		if err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, "usbslot", got, want)
		// Longer probes wrap to the next attach cycle legally.
		if _, err := systems.DriveSchedule(sys, 0, 3*want.Len()); err != nil {
			t.Fatalf("wrapped schedule refused: %v", err)
		}
	})
	t.Run("fifo", func(t *testing.T) {
		const steps = 64
		var buf bytes.Buffer
		if err := experiments.StreamFIFOVCD(&buf, steps, 4); err != nil {
			t.Fatal(err)
		}
		want, err := trace.ReadVCD(&buf, nil)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := systems.Open("fifo")
		if err != nil {
			t.Fatal(err)
		}
		got, err := systems.DriveSchedule(sys, 0, want.Len())
		if err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, "fifo", got, want)
	})
}

// TestStepSemantics is the table-driven per-system contract: reset
// returns to the initial state, invalid inputs are refused without
// changing state, and replaying the same inputs yields the same
// observations.
func TestStepSemantics(t *testing.T) {
	// A legal input prefix and one input that must be refused
	// afterwards, per system.
	cases := []struct {
		name    string
		legal   []string
		invalid string
	}{
		{"counter", []string{"tick", "tick", "tick"}, "nudge"},
		{"fifo", []string{"push", "push", "pop", "pop"}, "pop"}, // pop on empty
		{"serial", []string{"write", "write", "read", "reset"}, "flush"},
		{"usbslot", []string{usbxhci.CmdEnableSlot, usbxhci.CmdAddressDev}, usbxhci.CmdEnableSlot}, // enable while Enabled/Addressed
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := systems.Open(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if sys.Name() != tc.name {
				t.Fatalf("Name() = %q, want %q", sys.Name(), tc.name)
			}
			if len(sys.Inputs()) == 0 {
				t.Fatal("no inputs declared")
			}
			if sys.Schema().Len() == 0 {
				t.Fatal("empty schema")
			}

			// Determinism under replay: driving the same legal inputs
			// from reset twice yields identical traces.
			run1, err := systems.Drive(sys, tc.legal)
			if err != nil {
				t.Fatalf("legal inputs refused: %v", err)
			}
			run2, err := systems.Drive(sys, tc.legal)
			if err != nil {
				t.Fatalf("replay refused: %v", err)
			}
			tracesEqual(t, "replay", run2, run1)

			// Invalid input: refused, and the state is unchanged — the
			// next legal continuation behaves as if the refusal never
			// happened.
			stepAll(t, sys, tc.legal)
			contWithout := continueSchedule(t, sys, tc.name)
			stepAll(t, sys, tc.legal)
			if _, err := sys.Step(tc.invalid); err == nil {
				t.Fatalf("input %q after %v was accepted, want refusal", tc.invalid, tc.legal)
			}
			contWith := continueSchedule(t, sys, tc.name)
			if !reflect.DeepEqual(contWith, contWithout) {
				t.Fatalf("refused input changed state: continuation %v, want %v", contWith, contWithout)
			}

			// Reset behavior: after arbitrary legal activity, reset +
			// replay reproduces the original trace.
			run3, err := systems.Drive(sys, tc.legal)
			if err != nil {
				t.Fatal(err)
			}
			tracesEqual(t, "reset replay", run3, run1)

			// Schedules are deterministic: two drives of the canonical
			// schedule agree.
			s1, err := systems.DriveSchedule(sys, 0, 50)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := systems.DriveSchedule(sys, 0, 50)
			if err != nil {
				t.Fatal(err)
			}
			tracesEqual(t, "schedule determinism", s2, s1)
			// And prefix-monotone: a longer probe extends a shorter one.
			s3, err := systems.DriveSchedule(sys, 0, 80)
			if err != nil {
				t.Fatal(err)
			}
			tracesEqual(t, "schedule prefix", s3.Slice(0, 50), s1)
		})
	}
}

// stepAll applies the inputs from reset and returns the observations.
func stepAll(t *testing.T, sys systems.Probeable, inputs []string) []trace.Observation {
	t.Helper()
	sys.Reset()
	var out []trace.Observation
	for _, in := range inputs {
		obs, err := sys.Step(in)
		if err != nil {
			t.Fatalf("step %q: %v", in, err)
		}
		out = append(out, append(trace.Observation(nil), obs...))
	}
	return out
}

// continueSchedule takes a few legal steps chosen per system to verify
// the state survived a refused input untouched.
func continueSchedule(t *testing.T, sys systems.Probeable, name string) []trace.Observation {
	t.Helper()
	var inputs []string
	switch name {
	case "counter":
		inputs = []string{"tick"}
	case "fifo":
		inputs = []string{"push"}
	case "serial":
		inputs = []string{"write"}
	case "usbslot":
		inputs = []string{usbxhci.CmdConfigEnd} // legal in Addressed
	}
	var out []trace.Observation
	for _, in := range inputs {
		obs, err := sys.Step(in)
		if err != nil {
			t.Fatalf("%s: continuation %q after refusal: %v", name, in, err)
		}
		out = append(out, append(trace.Observation(nil), obs...))
	}
	return out
}

// TestRegistry covers Open error handling and the canonical lengths.
func TestRegistry(t *testing.T) {
	if _, err := systems.Open("nonesuch"); err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("Open(nonesuch) = %v, want unknown-system error", err)
	}
	names := systems.Names()
	want := []string{"counter", "fifo", "serial", "usbslot"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, name := range names {
		if n := systems.CanonicalObservations(name); n < 2 {
			t.Errorf("CanonicalObservations(%s) = %d, want >= 2", name, n)
		}
	}
	if n := systems.CanonicalObservations("nonesuch"); n != 0 {
		t.Errorf("CanonicalObservations(nonesuch) = %d, want 0", n)
	}
	if _, err := systems.DriveSchedule(mustOpen(t, "counter"), 0, 0); err == nil {
		t.Error("DriveSchedule with n=0 succeeded, want error")
	}
}

func mustOpen(t *testing.T, name string) systems.Scheduler {
	t.Helper()
	sys, err := systems.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
