// Package synthcache implements the cross-run predicate cache: an
// on-disk, content-addressed memoisation of window-predicate synthesis
// shared by every learner process that points at the same directory.
//
// Window synthesis is the pipeline's dominant cost and — decomposed the
// way internal/predicate's speculate/replay engine decomposes it — a
// pure function: once the seed-pool-dependent decisions (the seed pass)
// are separated out, what remains per synthesizer call is the CEGIS
// search, whose minimal result depends only on the window's observation
// content and the synthesis parameters. A cache entry therefore stores
// the *seed-independent* outcome of every synthesizer call of one
// unique window build:
//
//   - OpExpr: the seed-free minimal expression the search returned;
//   - OpSeed: "this call was answered by the producing run's seed
//     pool" — a consuming run must re-decide it against its own pool
//     (usually another seed hit; a fresh serial search otherwise);
//   - OpInconsistent / OpNoSolution: the search's deterministic error
//     class (also seed-independent once the pool missed).
//
// Replaying an entry against any run's authoritative seed pool then
// reproduces that run's uncached behaviour bit for bit, which is what
// lets one cache directory be shared between runs with different seed
// histories — or between wholly different traces of similar systems —
// without ever changing a learned model (DESIGN.md note 16).
//
// Entries are keyed by a SHA-256 digest of the canonical window value
// bytes plus a versioned encoding of the synthesis parameters (computed
// by internal/predicate, which owns the schema), so keys are
// independent of interner insertion order, worker count, ingestion mode
// and process. On disk each entry is one file under a two-hex-digit
// shard directory, written atomically (temp + fsync + rename, the
// checkpoint discipline) with a self-checksummed format:
//
//	t2m-synthcache v1 sha256=<hex> bytes=<n>\n<n bytes of JSON>
//
// Concurrent readers and writers across processes are safe by
// construction: a reader only ever sees a complete old or complete new
// file (rename is atomic), concurrent writers of one key write
// identical content (the key is a content address), and any torn,
// truncated or bit-flipped file fails the length or hash check and is
// treated as a miss — the caller falls back to fresh synthesis and
// usually rewrites the entry. Corruption is counted, never fatal.
package synthcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// Version is the entry format version this package reads and writes.
const Version = 1

const (
	headerMagic = "t2m-synthcache"
	fileSuffix  = ".sce"
)

// Digest is a cache key: the SHA-256 content address of one unique
// window under one set of synthesis parameters.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex (the on-disk name).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Op classifies one synthesizer call's recorded outcome.
type Op string

// The call outcomes an entry can record (see the package comment).
const (
	OpExpr         Op = "expr"
	OpSeed         Op = "seed"
	OpInconsistent Op = "inconsistent"
	OpNoSolution   Op = "nosolution"
)

// Call is one synthesizer call of a window build, in call order.
type Call struct {
	// Op is the outcome class.
	Op Op `json:"op"`
	// Var is the variable whose next function was synthesised
	// (diagnostic; replay verifies it against the live call).
	Var string `json:"var,omitempty"`
	// Expr is the canonical text of the seed-free minimal expression
	// (OpExpr only).
	Expr string `json:"expr,omitempty"`
}

// Entry is one cached window build: the ordered synthesizer-call
// record the replay consumes.
type Entry struct {
	Version int    `json:"version"`
	Calls   []Call `json:"calls"`
}

// ExprCalls counts the entry's OpExpr calls — the enumeration work a
// consuming run saves. Store uses it to decide whether a re-derived
// entry improves on the stored one.
func (e *Entry) ExprCalls() int {
	n := 0
	for _, c := range e.Calls {
		if c.Op == OpExpr {
			n++
		}
	}
	return n
}

// Stats is a snapshot of a cache's work counters.
type Stats struct {
	// Hits counts lookups answered by a valid entry.
	Hits int64
	// Misses counts lookups with no entry (including invalid ones).
	Misses int64
	// Stores counts entries written (or overwritten with an improved
	// record).
	Stores int64
	// Corrupt counts entries rejected by the magic, length, checksum,
	// version or payload checks. Every corrupt lookup also misses.
	Corrupt int64
}

// Cache is a handle on one cache directory. It is safe for concurrent
// use by multiple goroutines, and the directory is safe for concurrent
// use by multiple processes.
type Cache struct {
	dir string

	hits, misses, stores, corrupt atomic.Int64

	// Registry mirrors, resolved by SetTelemetry; all nil-safe no-ops
	// until then.
	cHit, cMiss, cStore, cCorrupt *pipeline.Counter64
	hLookup                       *pipeline.Histogram
}

// Open returns a cache over dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("synthcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("synthcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// SetTelemetry mirrors the cache's counters into the run's metric
// registry (synthcache_{hit,miss,store,corrupt}_total) and records
// lookup latency in the synthcache_lookup_ns histogram. Purely
// observational; must not race with Load/Store.
func (c *Cache) SetTelemetry(tel *pipeline.Telemetry) {
	c.cHit = tel.Count("synthcache_hit_total")
	c.cMiss = tel.Count("synthcache_miss_total")
	c.cStore = tel.Count("synthcache_store_total")
	c.cCorrupt = tel.Count("synthcache_corrupt_total")
	c.hLookup = tel.Hist("synthcache_lookup_ns", "ns")
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Stores:  c.stores.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// path shards entries by the first digest byte, git-object style, so
// fleet-sized caches never accumulate millions of files in one
// directory.
func (c *Cache) path(d Digest) string {
	name := d.String()
	return filepath.Join(c.dir, name[:2], name[2:]+fileSuffix)
}

// Load looks the digest up, verifying the entry end to end. It returns
// (entry, true) on a valid hit and (nil, false) otherwise; invalid
// entries of any kind — torn, truncated, bit-flipped, wrong magic or
// version, malformed payload — additionally bump the corrupt counter
// and are left for the next Store to overwrite.
func (c *Cache) Load(d Digest) (*Entry, bool) {
	t0 := time.Now()
	defer func() { c.hLookup.Since(t0) }()
	raw, err := os.ReadFile(c.path(d))
	if err != nil {
		c.miss()
		return nil, false
	}
	e, err := Decode(raw)
	if err != nil {
		c.corrupt.Add(1)
		c.cCorrupt.Add(1)
		c.miss()
		return nil, false
	}
	c.hits.Add(1)
	c.cHit.Add(1)
	return e, true
}

// Reject reclassifies the caller's immediately preceding Load hit as
// corrupt: the entry passed the byte-level checks but failed semantic
// decoding above the codec layer (e.g. an expression that no longer
// parses canonically). The lookup counts as a corrupt miss, exactly as
// if Decode had failed.
func (c *Cache) Reject() {
	c.hits.Add(-1)
	c.cHit.Add(-1)
	c.corrupt.Add(1)
	c.cCorrupt.Add(1)
	c.miss()
}

func (c *Cache) miss() {
	c.misses.Add(1)
	c.cMiss.Add(1)
}

// Store writes the entry for the digest atomically (write to temp,
// fsync, rename; last writer wins). Best effort by design: the caller
// already holds the synthesis result, so a failed store costs only the
// next run's miss.
func (c *Cache) Store(d Digest, e *Entry) error {
	raw, err := Encode(e)
	if err != nil {
		return fmt.Errorf("synthcache: encode %s: %w", d, err)
	}
	path := c.path(d)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("synthcache: %w", err)
	}
	err = pipeline.AtomicWriteFile(path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	})
	if err != nil {
		return fmt.Errorf("synthcache: store %s: %w", d, err)
	}
	c.stores.Add(1)
	c.cStore.Add(1)
	return nil
}

// Len reports the number of entry files currently in the cache
// directory (a directory walk; diagnostics and tests only).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && filepath.Ext(path) == fileSuffix {
			n++
		}
		return nil
	})
	return n, err
}

// Encode renders an entry in the on-disk format: the versioned header
// line followed by the checksummed JSON payload. The entry's Version
// field is stamped by Encode.
func Encode(e *Entry) ([]byte, error) {
	stamped := *e
	stamped.Version = Version
	payload, err := json.Marshal(&stamped)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s v%d sha256=%s bytes=%d\n", headerMagic, Version, hex.EncodeToString(sum[:]), len(payload))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Decode parses and verifies the on-disk format: magic, version,
// payload length, payload SHA-256, JSON shape, payload version echo.
// Every failure mode returns an error (the caller counts it as
// corruption).
func Decode(raw []byte) (*Entry, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("synthcache: missing header line")
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	var (
		magic  string
		ver    int
		sumHex string
		n      int
	)
	if _, err := fmt.Sscanf(header, "%s v%d sha256=%s bytes=%d", &magic, &ver, &sumHex, &n); err != nil {
		return nil, fmt.Errorf("synthcache: malformed header %q", header)
	}
	if magic != headerMagic {
		return nil, fmt.Errorf("synthcache: bad magic %q", magic)
	}
	if ver != Version {
		return nil, fmt.Errorf("synthcache: unsupported version %d", ver)
	}
	if len(payload) != n {
		return nil, fmt.Errorf("synthcache: payload is %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, fmt.Errorf("synthcache: payload checksum mismatch")
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("synthcache: payload: %w", err)
	}
	if e.Version != Version {
		return nil, fmt.Errorf("synthcache: payload version %d, header %d", e.Version, ver)
	}
	for i, call := range e.Calls {
		switch call.Op {
		case OpExpr, OpSeed, OpInconsistent, OpNoSolution:
		default:
			return nil, fmt.Errorf("synthcache: call %d has unknown op %q", i, call.Op)
		}
	}
	return &e, nil
}
