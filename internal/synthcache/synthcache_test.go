package synthcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pipeline"
)

func testDigest(s string) Digest {
	return Digest(sha256.Sum256([]byte(s)))
}

func testEntry() *Entry {
	return &Entry{Calls: []Call{
		{Op: OpExpr, Var: "count", Expr: "(+ count 1)"},
		{Op: OpSeed, Var: "count"},
		{Op: OpInconsistent, Var: "level"},
		{Op: OpNoSolution, Var: "mode"},
	}}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := testDigest("window-1")

	if _, ok := c.Load(d); ok {
		t.Fatal("hit on an empty cache")
	}
	want := testEntry()
	if err := c.Store(d, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(d)
	if !ok {
		t.Fatal("miss after store")
	}
	if got.Version != Version {
		t.Errorf("loaded version = %d, want %d", got.Version, Version)
	}
	if len(got.Calls) != len(want.Calls) {
		t.Fatalf("loaded %d calls, want %d", len(got.Calls), len(want.Calls))
	}
	for i := range want.Calls {
		if got.Calls[i] != want.Calls[i] {
			t.Errorf("call %d = %+v, want %+v", i, got.Calls[i], want.Calls[i])
		}
	}
	st := c.Stats()
	if st != (Stats{Hits: 1, Misses: 1, Stores: 1}) {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store", st)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1 entry", n, err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	// A file where the directory should be.
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("Open over a regular file succeeded")
	}
}

func TestShardedLayout(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := testDigest("sharded")
	if err := c.Store(d, testEntry()); err != nil {
		t.Fatal(err)
	}
	hex := d.String()
	want := filepath.Join(c.Dir(), hex[:2], hex[2:]+".sce")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("entry not at sharded path %s: %v", want, err)
	}
}

// TestCorruptionDetected injects every corruption class the format must
// catch; each one must read as a miss, bump Corrupt, and never return a
// partial entry.
func TestCorruptionDetected(t *testing.T) {
	valid, err := Encode(testEntry())
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(valid, '\n')

	bitFlip := append([]byte(nil), valid...)
	bitFlip[len(bitFlip)-3] ^= 0x40 // inside the JSON payload

	headerFlip := append([]byte(nil), valid...)
	headerFlip[0] = 'x'

	wrongVersion := bytes.Replace(append([]byte(nil), valid...), []byte(" v1 "), []byte(" v9 "), 1)

	cases := []struct {
		name string
		raw  []byte
	}{
		{"zero-length", nil},
		{"no-newline", []byte("t2m-synthcache v1")},
		{"truncated-payload", valid[:nl+5]},
		{"truncated-header-only", valid[:nl+1]},
		{"bit-flipped-payload", bitFlip},
		{"bad-magic", headerFlip},
		{"wrong-version", wrongVersion},
		{"garbage", []byte("not a cache entry at all\njunk")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.raw); err == nil {
				t.Fatal("Decode accepted corrupt bytes")
			}
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			d := testDigest(tc.name)
			path := filepath.Join(c.Dir(), d.String()[:2], d.String()[2:]+".sce")
			if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.raw, 0o666); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Load(d); ok {
				t.Error("corrupt entry loaded as a hit")
			}
			st := c.Stats()
			if st.Corrupt != 1 || st.Misses != 1 || st.Hits != 0 {
				t.Errorf("stats = %+v, want 1 corrupt + 1 miss", st)
			}
			// The overwrite path: a store must repair the slot.
			if err := c.Store(d, testEntry()); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Load(d); !ok {
				t.Error("store did not repair the corrupt slot")
			}
		})
	}
}

// TestPayloadSemanticChecks covers corruption that survives the
// checksum because it was "validly" written: version echoes and op
// vocabulary are still enforced.
func TestPayloadSemanticChecks(t *testing.T) {
	reencode := func(payload []byte) []byte {
		sum := sha256.Sum256(payload)
		return append(fmt.Appendf(nil, "t2m-synthcache v1 sha256=%x bytes=%d\n", sum, len(payload)), payload...)
	}
	if _, err := Decode(reencode([]byte(`{"version":2,"calls":[]}`))); err == nil {
		t.Error("payload version mismatch accepted")
	}
	if _, err := Decode(reencode([]byte(`{"version":1,"calls":[{"op":"bogus"}]}`))); err == nil {
		t.Error("unknown call op accepted")
	}
	if _, err := Decode(reencode([]byte(`{"version":1`))); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestDistinctDigestsDistinctFiles(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		e := &Entry{Calls: []Call{{Op: OpExpr, Var: "v", Expr: fmt.Sprintf("(+ v %d)", i)}}}
		if err := c.Store(testDigest(fmt.Sprintf("w%d", i)), e); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := c.Len(); err != nil || got != n {
		t.Fatalf("Len = %d, %v; want %d distinct entries", got, err, n)
	}
	for i := 0; i < n; i++ {
		e, ok := c.Load(testDigest(fmt.Sprintf("w%d", i)))
		if !ok {
			t.Fatalf("entry %d missing", i)
		}
		if want := fmt.Sprintf("(+ v %d)", i); e.Calls[0].Expr != want {
			t.Fatalf("entry %d holds %q, want %q (collision?)", i, e.Calls[0].Expr, want)
		}
	}
}

// TestConcurrentAccess hammers one directory from many goroutines
// through two independent handles (the in-process analogue of two
// processes sharing a cache dir): no torn reads, every load is either
// a clean miss or a complete entry.
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys, iters = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, 4*keys*iters)
	for g := 0; g < 4; g++ {
		c := a
		if g%2 == 1 {
			c = b
		}
		wg.Add(1)
		go func(c *Cache, g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				d := testDigest(fmt.Sprintf("key%d", k))
				want := fmt.Sprintf("(+ v %d)", k)
				if g < 2 {
					e := &Entry{Calls: []Call{{Op: OpExpr, Var: "v", Expr: want}}}
					if err := c.Store(d, e); err != nil {
						errs <- err
					}
					continue
				}
				if e, ok := c.Load(d); ok {
					if len(e.Calls) != 1 || e.Calls[0].Expr != want {
						errs <- fmt.Errorf("torn read for key%d: %+v", k, e.Calls)
					}
				}
			}
		}(c, g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := a.Stats(); st.Corrupt != 0 {
		t.Errorf("writer handle observed %d corrupt entries", st.Corrupt)
	}
	if st := b.Stats(); st.Corrupt != 0 {
		t.Errorf("reader handle observed %d corrupt entries", st.Corrupt)
	}
}

func TestTelemetryMirrors(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := pipeline.NewRegistry()
	c.SetTelemetry(&pipeline.Telemetry{Registry: reg})

	d := testDigest("telemetry")
	c.Load(d) // miss
	c.Store(d, testEntry())
	c.Load(d) // hit
	// Inject corruption for the fourth counter.
	path := filepath.Join(c.Dir(), d.String()[:2], d.String()[2:]+".sce")
	if err := os.WriteFile(path, []byte("torn"), 0o666); err != nil {
		t.Fatal(err)
	}
	c.Load(d) // corrupt

	for name, want := range map[string]int64{
		"synthcache_hit_total":     1,
		"synthcache_miss_total":    2,
		"synthcache_store_total":   1,
		"synthcache_corrupt_total": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("synthcache_lookup_ns", "ns").Summary().Count; got != 3 {
		t.Errorf("lookup histogram count = %d, want 3", got)
	}
}

func TestExprCalls(t *testing.T) {
	if got := testEntry().ExprCalls(); got != 1 {
		t.Errorf("ExprCalls = %d, want 1", got)
	}
	if got := (&Entry{}).ExprCalls(); got != 0 {
		t.Errorf("empty ExprCalls = %d, want 0", got)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(testEntry())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(testEntry())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic for equal entries")
	}
}
