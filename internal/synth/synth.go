// Package synth implements synthesis of transition functions from
// input/output examples (Section III-B of the paper).
//
// The paper uses an off-the-shelf CEGIS engine (fastsynth, or CVC4 in
// SyGuS mode) to find the *smallest* function next(X) consistent with
// the observation steps in a trace window, discovering any required
// constants automatically. Neither tool is available to a stdlib-only
// Go module, so this package provides the equivalent engine:
//
//   - Enumerate performs bottom-up, size-ordered enumeration over the
//     predicate-expression grammar with observational-equivalence
//     pruning, returning the first (hence smallest) expression whose
//     value matches every example.
//   - Synthesize wraps Enumerate in a counterexample-guided loop
//     (CEGIS): it synthesises against a growing subset of the examples
//     and verifies candidates against the full set, mirroring the
//     fastsynth architecture. Because the final candidate is minimal
//     for a subset and consistent with the whole set, it is also
//     minimal for the whole set.
//   - Constants are mined from the examples (values, differences,
//     neighbours) rather than supplied by the user, reproducing the
//     fastsynth behaviour the paper prefers over grammar-guided CVC4
//     (Section VII).
//
// Goroutine safety: the package keeps no mutable package-level state —
// every search allocates its own enumerator — so Enumerate and
// Synthesize are safe to call from multiple goroutines concurrently,
// provided the caller does not mutate the examples or option slices
// while a call is in flight. The parallel predicate engine
// (internal/predicate) relies on this.
package synth

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Example is one input/output sample for the target function: In binds
// every input variable; Out is the required function value.
type Example struct {
	In  map[string]expr.Value
	Out expr.Value
}

// Lookup lets an Example act as an evaluation environment (primed
// variables are never consulted because candidate expressions range
// over current-state inputs only).
func (e Example) Lookup(name string, primed bool) (expr.Value, bool) {
	if primed {
		return expr.Value{}, false
	}
	v, ok := e.In[name]
	return v, ok
}

// Var declares an input variable of the target function.
type Var struct {
	Name string
	Type expr.Type
}

// Options tunes the synthesis search.
type Options struct {
	// MaxSize bounds the size (node count) of enumerated
	// expressions. Zero means DefaultMaxSize.
	MaxSize int
	// EnableMul adds integer multiplication to the grammar.
	// Disabled by default: none of the paper's benchmarks need it
	// and it widens the search considerably.
	EnableMul bool
	// ExtraArithConsts are added to the mined arithmetic constant
	// pool (always includes 0 and 1 plus mined differences).
	ExtraArithConsts []int64
	// ExtraCmpConsts are added to the mined comparison constant
	// pool (always includes the example input/output values).
	ExtraCmpConsts []int64
	// DiffVars restricts difference mining (output − input, the
	// increments additive update functions need) to the named input
	// variables. Empty means all integer inputs. The predicate
	// generator passes the variable whose next function is being
	// synthesized, which keeps unrelated inputs' values out of the
	// arithmetic pool and so out of the result text.
	DiffVars []string
	// Seeds are expressions to try before searching. If a seed is
	// consistent with every example it is returned immediately;
	// predicate generation uses this for cross-window reuse, which
	// both stabilises the predicate alphabet and implements the
	// paper's observation that repeating trace patterns should be
	// processed once.
	Seeds []expr.Expr
	// Work, when non-nil, is atomically incremented by the number of
	// candidate expressions each search considers. Telemetry only: it
	// never affects the search, and one counter may be shared by
	// concurrent searches.
	Work *int64
}

// DefaultMaxSize bounds enumeration when Options.MaxSize is zero. The
// largest expressions the paper reports (saturation guards) fit well
// inside it.
const DefaultMaxSize = 12

// ErrInconsistent is returned when two examples give the same input
// valuation but different outputs: no function can fit them.
var ErrInconsistent = errors.New("synth: examples are inconsistent (same input, different outputs)")

// ErrNoSolution is returned when no expression within the size bound
// matches all examples.
var ErrNoSolution = errors.New("synth: no expression within size bound fits the examples")

// Synthesize finds the smallest expression over vars consistent with
// all examples, using a CEGIS loop around Enumerate. The result type
// is the type of the example outputs.
func Synthesize(vars []Var, examples []Example, opts Options) (expr.Expr, error) {
	return SynthesizeContext(context.Background(), vars, examples, opts)
}

// SynthesizeContext is Synthesize with cancellation: when ctx is
// cancelled mid-search the context's error is returned promptly. A
// completed search is unaffected by ctx, so results are identical to
// Synthesize whenever the call runs to completion.
func SynthesizeContext(ctx context.Context, vars []Var, examples []Example, opts Options) (expr.Expr, error) {
	if len(examples) == 0 {
		return nil, errors.New("synth: no examples")
	}
	if err := CheckExamples(examples); err != nil {
		return nil, err
	}
	// Seed pass: reuse a previously synthesised expression when it
	// already explains this window.
	for _, seed := range opts.Seeds {
		if ConsistentWith(seed, examples) {
			return seed, nil
		}
	}

	// CEGIS: synthesise on a growing subset, verify on the full set.
	// Constants are mined from the full set so the pools are stable
	// across iterations.
	pools := minePools(vars, examples, opts)
	sub := []Example{examples[0]}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cand, err := enumerate(ctx, vars, sub, pools, opts)
		if err != nil {
			return nil, err
		}
		cex := findCounterexample(cand, examples)
		if cex == nil {
			return cand, nil
		}
		sub = append(sub, *cex)
	}
}

// Enumerate is the inner synthesis engine: bottom-up, size-ordered
// enumeration with observational-equivalence pruning on the full
// example set (no CEGIS subset loop). Exposed for benchmarking the two
// strategies against each other.
func Enumerate(vars []Var, examples []Example, opts Options) (expr.Expr, error) {
	if len(examples) == 0 {
		return nil, errors.New("synth: no examples")
	}
	if err := CheckExamples(examples); err != nil {
		return nil, err
	}
	pools := minePools(vars, examples, opts)
	return enumerate(context.Background(), vars, examples, pools, opts)
}

// CheckExamples rejects example sets no function can fit: two examples
// with the same input valuation but different outputs. Synthesize runs
// it before its seed pass, so callers replaying the seed pass (the
// parallel predicate engine) can reproduce the error order exactly.
func CheckExamples(examples []Example) error {
	return checkConsistent(examples)
}

// ConsistentWith reports whether the expression matches every example
// — the predicate the seed pass uses. Exposed so the parallel
// predicate engine can replay seed decisions deterministically.
func ConsistentWith(e expr.Expr, examples []Example) bool {
	return consistent(e, examples)
}

func checkConsistent(examples []Example) error {
	seen := make(map[string]expr.Value, len(examples))
	for _, ex := range examples {
		key := inputKey(ex.In)
		if prev, ok := seen[key]; ok {
			if !prev.Equal(ex.Out) {
				return fmt.Errorf("%w: input %s maps to both %s and %s",
					ErrInconsistent, key, prev, ex.Out)
			}
			continue
		}
		seen[key] = ex.Out
	}
	return nil
}

func inputKey(in map[string]expr.Value) string {
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(in[n].String())
		b.WriteByte(';')
	}
	return b.String()
}

func consistent(e expr.Expr, examples []Example) bool {
	for _, ex := range examples {
		v, err := e.Eval(ex)
		if err != nil || !v.Equal(ex.Out) {
			return false
		}
	}
	return true
}

func findCounterexample(e expr.Expr, examples []Example) *Example {
	for i := range examples {
		v, err := e.Eval(examples[i])
		if err != nil || !v.Equal(examples[i].Out) {
			return &examples[i]
		}
	}
	return nil
}

// pools holds the constant pools mined from the examples.
type pools struct {
	arith []int64  // literals allowed inside arithmetic
	cmp   []int64  // literals allowed on comparison right-hand sides
	syms  []string // symbol literals (for = / != and sym-typed results)
}

// minePools derives constant pools from the examples, fastsynth-style:
// the user supplies no grammar and constants come from the data.
//
//   - Arithmetic pool: 0, 1, plus every difference out−in between an
//     integer output and each integer input in the same example (these
//     are the increments that additive update functions need).
//   - Comparison pool: every integer value occurring as an input or
//     output, plus each value ±1 (thresholds are always observed at or
//     next to the data).
//   - Symbol pool: every symbol occurring in the examples.
func minePools(vars []Var, examples []Example, opts Options) pools {
	arithSet := map[int64]bool{0: true, 1: true}
	cmpSet := map[int64]bool{}
	symSet := map[string]bool{}

	addVal := func(v expr.Value) {
		switch v.T {
		case expr.Int:
			cmpSet[v.I] = true
			cmpSet[v.I+1] = true
			cmpSet[v.I-1] = true
		case expr.Sym:
			symSet[v.S] = true
		}
	}
	for _, ex := range examples {
		for _, v := range ex.In {
			addVal(v)
		}
		addVal(ex.Out)
		if ex.Out.T == expr.Int {
			for name, v := range ex.In {
				if v.T != expr.Int {
					continue
				}
				if len(opts.DiffVars) > 0 && !containsStr(opts.DiffVars, name) {
					continue
				}
				arithSet[ex.Out.I-v.I] = true
			}
		}
	}
	for _, c := range opts.ExtraArithConsts {
		arithSet[c] = true
	}
	for _, c := range opts.ExtraCmpConsts {
		cmpSet[c] = true
	}
	var p pools
	for c := range arithSet {
		p.arith = append(p.arith, c)
	}
	for c := range cmpSet {
		p.cmp = append(p.cmp, c)
	}
	for s := range symSet {
		p.syms = append(p.syms, s)
	}
	sort.Slice(p.arith, func(i, j int) bool { return less64(p.arith[i], p.arith[j]) })
	sort.Slice(p.cmp, func(i, j int) bool { return less64(p.cmp[i], p.cmp[j]) })
	sort.Strings(p.syms)
	return p
}

// less64 orders constants by magnitude then sign, so that small
// constants (0, 1, -1, 2, …) are tried first and tie-breaking between
// equal-sized expressions is deterministic and favours simple values.
func less64(a, b int64) bool {
	aa, bb := abs64(a), abs64(b)
	if aa != bb {
		return aa < bb
	}
	return a > b // positive before negative
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
