package synth

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/expr"
)

func intVars(names ...string) []Var {
	vs := make([]Var, len(names))
	for i, n := range names {
		vs[i] = Var{Name: n, Type: expr.Int}
	}
	return vs
}

func intExamples(xs []int64, outs []int64) []Example {
	exs := make([]Example, len(xs))
	for i := range xs {
		exs[i] = Example{
			In:  map[string]expr.Value{"x": expr.IntVal(xs[i])},
			Out: expr.IntVal(outs[i]),
		}
	}
	return exs
}

// assertSynth runs Synthesize and checks the result text.
func assertSynth(t *testing.T, vars []Var, exs []Example, opts Options, want string) expr.Expr {
	t.Helper()
	got, err := Synthesize(vars, exs, opts)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if got.String() != want {
		t.Fatalf("Synthesize = %q, want %q", got, want)
	}
	return got
}

// TestPaperCounterExample reproduces the paper's first synthesis
// illustration: from next(1)=2, next(2)=3, next(3)=4 the tool derives
// next(x) = x + 1.
func TestPaperCounterExample(t *testing.T) {
	exs := intExamples([]int64{1, 2, 3}, []int64{2, 3, 4})
	assertSynth(t, intVars("x"), exs, Options{}, "x + 1")
}

// TestPaperDoublingExample reproduces the Section VII comparison: for
// the sequence 1, 2, 4, 8 fastsynth produces x + x, not an ite chain.
func TestPaperDoublingExample(t *testing.T) {
	exs := intExamples([]int64{1, 2, 4}, []int64{2, 4, 8})
	assertSynth(t, intVars("x"), exs, Options{}, "x + x")
}

// TestPaperTwoVariableExample reproduces the paper's two-variable
// illustration (equation 2): x1 increments when x2 = 0 and decrements
// when x2 = 1. The synthesized function must fit all three examples.
func TestPaperTwoVariableExample(t *testing.T) {
	mk := func(x1, x2, out int64) Example {
		return Example{
			In:  map[string]expr.Value{"x1": expr.IntVal(x1), "x2": expr.IntVal(x2)},
			Out: expr.IntVal(out),
		}
	}
	exs := []Example{mk(1, 0, 2), mk(2, 0, 3), mk(3, 1, 2)}
	// DiffVars names the variable whose next function is wanted,
	// exactly as the predicate generator calls the synthesizer.
	got, err := Synthesize(intVars("x1", "x2"), exs, Options{DiffVars: []string{"x1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, exs) {
		t.Fatalf("result %q does not fit the examples", got)
	}
	// Behavioural check on held-out inputs: the function must load
	// x1 (not be constant in it).
	a, _ := got.Eval(Example{In: map[string]expr.Value{"x1": expr.IntVal(10), "x2": expr.IntVal(0)}})
	b, _ := got.Eval(Example{In: map[string]expr.Value{"x1": expr.IntVal(20), "x2": expr.IntVal(0)}})
	if a.Equal(b) {
		t.Errorf("result %q ignores x1", got)
	}
}

// TestCounterTurningPoint checks the counter benchmark's threshold
// window [127, 128, 127]: synthesis must find a direction-switching
// function with the threshold constant discovered automatically.
func TestCounterTurningPoint(t *testing.T) {
	exs := intExamples([]int64{127, 128}, []int64{128, 127})
	got, err := Synthesize(intVars("x"), exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, exs) {
		t.Fatalf("result %q does not fit the examples", got)
	}
	// The mined threshold must appear: evaluate off-threshold.
	v, err := got.Eval(Example{In: map[string]expr.Value{"x": expr.IntVal(50)}})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 51 {
		t.Logf("note: off-threshold behaviour f(50) = %d (window-local generalisation)", v.I)
	}
}

func TestConstantPreferenceIsVariable(t *testing.T) {
	// f(5)=5, f(5)=5 — both the constant 5 and the variable x fit at
	// size 1; the variable must win so that steady-state windows
	// yield op' = op as in the paper's integrator figure.
	exs := intExamples([]int64{5, 5}, []int64{5, 5})
	assertSynth(t, intVars("x"), exs, Options{}, "x")
}

func TestSymGuardSynthesis(t *testing.T) {
	vars := []Var{{Name: "ev", Type: expr.Sym}, {Name: "x", Type: expr.Int}}
	mk := func(ev string, x, out int64) Example {
		return Example{
			In:  map[string]expr.Value{"ev": expr.SymVal(ev), "x": expr.IntVal(x)},
			Out: expr.IntVal(out),
		}
	}
	// read decrements, write increments.
	exs := []Example{mk("read", 3, 2), mk("write", 2, 3)}
	got, err := Synthesize(vars, exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, exs) {
		t.Fatalf("result %q does not fit", got)
	}
	// Must branch on the event for held-out x.
	a, _ := got.Eval(mk("read", 10, 0))
	b, _ := got.Eval(mk("write", 10, 0))
	if a.I != 9 || b.I != 11 {
		t.Errorf("result %q: f(read,10)=%d f(write,10)=%d, want 9, 11", got, a.I, b.I)
	}
}

func TestSymOutput(t *testing.T) {
	vars := []Var{{Name: "ev", Type: expr.Sym}}
	mk := func(in, out string) Example {
		return Example{In: map[string]expr.Value{"ev": expr.SymVal(in)}, Out: expr.SymVal(out)}
	}
	// Identity on symbols.
	got, err := Synthesize(vars, []Example{mk("a", "a"), mk("b", "b")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "ev" {
		t.Errorf("identity = %q, want ev", got)
	}
	// Two-point mapping needs an ite.
	got, err = Synthesize(vars, []Example{mk("a", "b"), mk("b", "a")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, []Example{mk("a", "b"), mk("b", "a")}) {
		t.Errorf("mapping %q does not fit", got)
	}
}

func TestBoolOutput(t *testing.T) {
	vars := intVars("x")
	mk := func(x int64, out bool) Example {
		return Example{In: map[string]expr.Value{"x": expr.IntVal(x)}, Out: expr.BoolVal(out)}
	}
	exs := []Example{mk(1, false), mk(5, true), mk(7, true), mk(2, false)}
	got, err := Synthesize(vars, exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, exs) {
		t.Errorf("result %q does not fit", got)
	}
}

func TestInconsistentExamples(t *testing.T) {
	exs := intExamples([]int64{1, 1}, []int64{2, 3})
	if _, err := Synthesize(intVars("x"), exs, Options{}); !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
	if _, err := Enumerate(intVars("x"), exs, Options{}); !errors.Is(err, ErrInconsistent) {
		t.Errorf("Enumerate err = %v, want ErrInconsistent", err)
	}
}

func TestNoExamples(t *testing.T) {
	if _, err := Synthesize(intVars("x"), nil, Options{}); err == nil {
		t.Error("Synthesize with no examples succeeded")
	}
}

func TestNoSolutionWithinBound(t *testing.T) {
	// A function needing a large expression, with MaxSize 2.
	exs := intExamples([]int64{1, 2, 3, 4}, []int64{10, 7, 99, -3})
	_, err := Synthesize(intVars("x"), exs, Options{MaxSize: 2})
	if !errors.Is(err, ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
}

func TestSeedsReused(t *testing.T) {
	seed := expr.MustParse("x + 1", map[string]expr.Type{"x": expr.Int})
	exs := intExamples([]int64{10}, []int64{11})
	// Without the seed, a single example would admit the constant 11
	// only after the variable atoms fail; the seed must short-circuit
	// and win even against smaller candidates.
	got, err := Synthesize(intVars("x"), exs, Options{Seeds: []expr.Expr{seed}})
	if err != nil {
		t.Fatal(err)
	}
	if got != seed {
		t.Errorf("seed not reused: got %q", got)
	}
	// A non-fitting seed is skipped.
	got, err = Synthesize(intVars("x"), intExamples([]int64{10}, []int64{9}), Options{Seeds: []expr.Expr{seed}})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() == "x + 1" {
		t.Errorf("non-fitting seed reused")
	}
}

func TestCEGISAgreesWithEnumerate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vars := intVars("x", "y")
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(3)
		exs := make([]Example, n)
		// Generate examples from a hidden linear function so a
		// small solution exists.
		a := int64(r.Intn(2))
		b := int64(r.Intn(2))
		c := int64(r.Intn(5) - 2)
		for i := range exs {
			x := int64(r.Intn(20) - 10)
			y := int64(r.Intn(20) - 10)
			exs[i] = Example{
				In:  map[string]expr.Value{"x": expr.IntVal(x), "y": expr.IntVal(y)},
				Out: expr.IntVal(a*x + b*y + c),
			}
		}
		e1, err1 := Synthesize(vars, exs, Options{})
		e2, err2 := Enumerate(vars, exs, Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: CEGIS err %v, Enumerate err %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if e1.Size() != e2.Size() {
			t.Errorf("trial %d: CEGIS size %d (%q), Enumerate size %d (%q)",
				trial, e1.Size(), e1, e2.Size(), e2)
		}
		if !consistent(e1, exs) || !consistent(e2, exs) {
			t.Errorf("trial %d: inconsistent result", trial)
		}
	}
}

// TestMinimality: synthesizing from the I/O behaviour of a known small
// expression never returns something larger than that expression.
func TestMinimality(t *testing.T) {
	types := map[string]expr.Type{"x": expr.Int, "y": expr.Int}
	vars := intVars("x", "y")
	hidden := []string{
		"x + 1",
		"x - y",
		"y",
		"0",
		"x + x",
		"x + (y + y)",
	}
	r := rand.New(rand.NewSource(9))
	for _, src := range hidden {
		h := expr.MustParse(src, types)
		exs := make([]Example, 4)
		for i := range exs {
			in := map[string]expr.Value{
				"x": expr.IntVal(int64(r.Intn(40) - 20)),
				"y": expr.IntVal(int64(r.Intn(40) - 20)),
			}
			out, err := h.Eval(Example{In: in})
			if err != nil {
				t.Fatal(err)
			}
			exs[i] = Example{In: in, Out: out}
		}
		got, err := Synthesize(vars, exs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got.Size() > h.Size() {
			t.Errorf("hidden %q (size %d): synthesized %q (size %d)", src, h.Size(), got, got.Size())
		}
	}
}

func TestMulGrammar(t *testing.T) {
	exs := intExamples([]int64{2, 3, 5}, []int64{4, 9, 25})
	if _, err := Synthesize(intVars("x"), exs, Options{}); err == nil {
		t.Skip("squaring found without mul (additive encoding exists)")
	}
	got, err := Synthesize(intVars("x"), exs, Options{EnableMul: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "x * x" {
		t.Errorf("got %q, want x * x", got)
	}
}

func TestMinedConstantsSaturation(t *testing.T) {
	// Integrator entering saturation: f(4,1)=5, f(5,1)=5. op+ip and
	// op both fail; 5 is mined from the data. The minimal fit is the
	// constant (a known, documented window-local generalisation).
	mk := func(op, ip, out int64) Example {
		return Example{
			In:  map[string]expr.Value{"op": expr.IntVal(op), "ip": expr.IntVal(ip)},
			Out: expr.IntVal(out),
		}
	}
	exs := []Example{mk(4, 1, 5), mk(5, 1, 5)}
	got, err := Synthesize([]Var{{Name: "op", Type: expr.Int}, {Name: "ip", Type: expr.Int}}, exs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(got, exs) {
		t.Fatalf("result %q does not fit", got)
	}
}

func TestIteChain(t *testing.T) {
	vars := intVars("x")
	exs := intExamples([]int64{1, 2, 4}, []int64{2, 4, 8})
	chain, err := IteChain(vars, exs)
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(chain, exs) {
		t.Fatalf("chain %q does not fit the examples", chain)
	}
	// Shape: nested ite matching inputs exactly; no generalisation.
	if chain.String() != "ite(x = 1, 2, ite(x = 2, 4, 8))" {
		t.Errorf("chain = %q", chain)
	}
	// Duplicate inputs are collapsed.
	dup := intExamples([]int64{1, 1, 2}, []int64{5, 5, 7})
	chain, err = IteChain(vars, dup)
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(chain, dup) {
		t.Errorf("chain %q does not fit duplicated examples", chain)
	}
	// Inconsistent examples are rejected.
	if _, err := IteChain(vars, intExamples([]int64{1, 1}, []int64{2, 3})); !errors.Is(err, ErrInconsistent) {
		t.Errorf("err = %v, want ErrInconsistent", err)
	}
	// No examples.
	if _, err := IteChain(vars, nil); err == nil {
		t.Error("empty example set accepted")
	}
	// Multi-variable condition.
	mk := func(x, y, out int64) Example {
		return Example{In: map[string]expr.Value{
			"x": expr.IntVal(x), "y": expr.IntVal(y),
		}, Out: expr.IntVal(out)}
	}
	chain, err = IteChain(intVars("x", "y"), []Example{mk(1, 2, 3), mk(2, 2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(chain, []Example{mk(1, 2, 3), mk(2, 2, 4)}) {
		t.Errorf("multi-var chain %q does not fit", chain)
	}
}

func BenchmarkSynthesizeLinear(b *testing.B) {
	exs := intExamples([]int64{1, 2, 3}, []int64{2, 3, 4})
	vars := intVars("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(vars, exs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeTurningPoint(b *testing.B) {
	exs := intExamples([]int64{127, 128}, []int64{128, 127})
	vars := intVars("x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(vars, exs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeedReuse(b *testing.B) {
	seed := expr.MustParse("x + 1", map[string]expr.Type{"x": expr.Int})
	exs := intExamples([]int64{10, 11}, []int64{11, 12})
	vars := intVars("x")
	opts := Options{Seeds: []expr.Expr{seed}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(vars, exs, opts); err != nil {
			b.Fatal(err)
		}
	}
}
