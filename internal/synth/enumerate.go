package synth

import (
	"context"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
)

// maxWork bounds the total number of candidate expressions considered
// by one enumeration, guarding against pathological windows.
const maxWork = 1 << 20

// cand is an enumerated expression together with its value vector over
// the example inputs (its observational signature).
type cand struct {
	e    expr.Expr
	vals []expr.Value
}

// enumerator carries the state of one bottom-up search.
type enumerator struct {
	ctx      context.Context
	vars     []Var
	examples []Example
	pools    pools
	opts     Options

	// candidates by type and size; index [size] holds expressions
	// with exactly that node count.
	ints  [][]cand
	bools [][]cand
	syms  [][]cand

	seen      map[string]bool // observational-equivalence filter
	target    []expr.Value    // wanted output vector
	work      int
	cancelled bool
}

// enumerate returns the smallest expression of the examples' output
// type whose value vector equals the outputs, searching in strict size
// order so the first hit is minimal. A cancelled ctx aborts the search
// with the context's error; cancellation never changes the result of a
// search that completes.
func enumerate(ctx context.Context, vars []Var, examples []Example, p pools, opts Options) (expr.Expr, error) {
	maxSize := opts.MaxSize
	if maxSize <= 0 {
		maxSize = DefaultMaxSize
	}
	en := &enumerator{
		ctx:      ctx,
		vars:     vars,
		examples: examples,
		pools:    p,
		opts:     opts,
		ints:     make([][]cand, maxSize+1),
		bools:    make([][]cand, maxSize+1),
		syms:     make([][]cand, maxSize+1),
		seen:     make(map[string]bool),
	}
	en.target = make([]expr.Value, len(examples))
	for i, ex := range examples {
		en.target[i] = ex.Out
	}
	if opts.Work != nil {
		defer func() { atomic.AddInt64(opts.Work, int64(en.work)) }()
	}
	outType := examples[0].Out.T

	if hit := en.atoms(outType); hit != nil {
		return hit, nil
	}
	for size := 2; size <= maxSize; size++ {
		if hit := en.compose(size, outType); hit != nil {
			return hit, nil
		}
		if en.cancelled {
			return nil, en.ctx.Err()
		}
		if en.work > maxWork {
			return nil, ErrNoSolution
		}
	}
	if en.cancelled {
		return nil, en.ctx.Err()
	}
	return nil, ErrNoSolution
}

// stop reports whether the search should be abandoned: the work budget
// is exhausted or the context was cancelled. The context is polled
// every 1024 candidates to keep the check out of the hot loop.
func (en *enumerator) stop() bool {
	if en.work > maxWork || en.cancelled {
		return true
	}
	if en.work&1023 == 0 && en.ctx.Err() != nil {
		en.cancelled = true
	}
	return en.cancelled
}

// add registers a candidate of the given size unless an observationally
// equivalent expression was seen before. It returns the candidate's
// expression when it matches the target vector and has the target
// type; otherwise nil.
func (en *enumerator) add(size int, c cand, outType expr.Type) expr.Expr {
	en.work++
	ty := c.e.Type()
	key := sigKey(ty, c.vals)
	if en.seen[key] {
		return nil
	}
	en.seen[key] = true
	switch ty {
	case expr.Int:
		en.ints[size] = append(en.ints[size], c)
	case expr.Bool:
		en.bools[size] = append(en.bools[size], c)
	case expr.Sym:
		en.syms[size] = append(en.syms[size], c)
	}
	if ty == outType && valsEqual(c.vals, en.target) {
		return c.e
	}
	return nil
}

func sigKey(ty expr.Type, vals []expr.Value) string {
	var b strings.Builder
	b.WriteByte(byte('0' + ty))
	for _, v := range vals {
		b.WriteByte('|')
		b.WriteString(v.String())
	}
	return b.String()
}

func valsEqual(a, b []expr.Value) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// atoms seeds size-1 candidates: input variables first (so that
// tie-breaking between equal-sized solutions prefers expressions that
// read the state over bare constants), then mined constants.
func (en *enumerator) atoms(outType expr.Type) expr.Expr {
	for _, v := range en.vars {
		vals := make([]expr.Value, len(en.examples))
		usable := true
		for i, ex := range en.examples {
			val, ok := ex.In[v.Name]
			if !ok || val.T != v.Type {
				usable = false
				break
			}
			vals[i] = val
		}
		if !usable {
			continue
		}
		if hit := en.add(1, cand{e: expr.NewVar(v.Name, v.Type), vals: vals}, outType); hit != nil {
			return hit
		}
	}
	for _, c := range en.pools.arith {
		vals := constVals(expr.IntVal(c), len(en.examples))
		if hit := en.add(1, cand{e: expr.IntLit(c), vals: vals}, outType); hit != nil {
			return hit
		}
	}
	for _, s := range en.pools.syms {
		vals := constVals(expr.SymVal(s), len(en.examples))
		if hit := en.add(1, cand{e: expr.SymLit(s), vals: vals}, outType); hit != nil {
			return hit
		}
	}
	return nil
}

func constVals(v expr.Value, n int) []expr.Value {
	vals := make([]expr.Value, n)
	for i := range vals {
		vals[i] = v
	}
	return vals
}

// compose generates all candidates of exactly the given size.
//
// Generation order within a size is part of the tool's tie-breaking
// contract: symbol guards come first so that, when an event guard and
// a numeric comparison are observationally equivalent on the window,
// the event guard (the actual control signal) survives the
// equivalence filter and appears in the synthesized predicate.
func (en *enumerator) compose(size int, outType expr.Type) expr.Expr {
	// Symbol guards: sym expr = / != sym expr.
	for ls := 1; ls <= size-2; ls++ {
		rs := size - 1 - ls
		for _, l := range en.syms[ls] {
			for _, r := range en.syms[rs] {
				eqVals := make([]expr.Value, len(l.vals))
				neVals := make([]expr.Value, len(l.vals))
				for i := range l.vals {
					eq := l.vals[i].Equal(r.vals[i])
					eqVals[i] = expr.BoolVal(eq)
					neVals[i] = expr.BoolVal(!eq)
				}
				if hit := en.add(size, cand{e: expr.Eq(l.e, r.e), vals: eqVals}, outType); hit != nil {
					return hit
				}
				if hit := en.add(size, cand{e: expr.Ne(l.e, r.e), vals: neVals}, outType); hit != nil {
					return hit
				}
			}
		}
	}

	// Unary: -x (int). (Logical not is covered by comparison
	// operator duals and would only bloat the boolean space.)
	for _, x := range en.ints[size-1] {
		vals := make([]expr.Value, len(x.vals))
		for i, v := range x.vals {
			vals[i] = expr.IntVal(-v.I)
		}
		if hit := en.add(size, cand{e: expr.Neg(x.e), vals: vals}, outType); hit != nil {
			return hit
		}
	}

	// Binary arithmetic and comparisons over int operands.
	for ls := 1; ls <= size-2; ls++ {
		rs := size - 1 - ls
		for _, l := range en.ints[ls] {
			for _, r := range en.ints[rs] {
				if hit := en.intPairs(size, l, r, outType); hit != nil {
					return hit
				}
				if en.stop() {
					return nil
				}
			}
		}
	}

	// Comparisons against mined thresholds: the threshold literal
	// costs 1 node but lives in the comparison pool only, keeping
	// data-derived constants like 128 out of arithmetic.
	for ls := 1; ls <= size-2; ls++ {
		if size-1-ls != 1 {
			continue
		}
		for _, l := range en.ints[ls] {
			for _, c := range en.pools.cmp {
				r := cand{e: expr.IntLit(c), vals: constVals(expr.IntVal(c), len(en.examples))}
				if hit := en.cmpPairs(size, l, r, outType); hit != nil {
					return hit
				}
			}
			if en.stop() {
				return nil
			}
		}
	}

	// Boolean connectives.
	for ls := 1; ls <= size-2; ls++ {
		rs := size - 1 - ls
		for _, l := range en.bools[ls] {
			for _, r := range en.bools[rs] {
				andVals := make([]expr.Value, len(l.vals))
				orVals := make([]expr.Value, len(l.vals))
				for i := range l.vals {
					andVals[i] = expr.BoolVal(l.vals[i].B && r.vals[i].B)
					orVals[i] = expr.BoolVal(l.vals[i].B || r.vals[i].B)
				}
				if hit := en.add(size, cand{e: expr.And(l.e, r.e), vals: andVals}, outType); hit != nil {
					return hit
				}
				if hit := en.add(size, cand{e: expr.Or(l.e, r.e), vals: orVals}, outType); hit != nil {
					return hit
				}
				if en.stop() {
					return nil
				}
			}
		}
	}

	// Conditionals over int and sym results.
	for cs := 1; cs <= size-3; cs++ {
		for ts := 1; ts <= size-2-cs; ts++ {
			es := size - 1 - cs - ts
			for _, c := range en.bools[cs] {
				for _, t := range en.ints[ts] {
					for _, f := range en.ints[es] {
						vals := make([]expr.Value, len(c.vals))
						for i := range c.vals {
							if c.vals[i].B {
								vals[i] = t.vals[i]
							} else {
								vals[i] = f.vals[i]
							}
						}
						if hit := en.add(size, cand{e: expr.NewIte(c.e, t.e, f.e), vals: vals}, outType); hit != nil {
							return hit
						}
					}
				}
				if en.stop() {
					return nil
				}
				for _, t := range en.syms[ts] {
					for _, f := range en.syms[es] {
						vals := make([]expr.Value, len(c.vals))
						for i := range c.vals {
							if c.vals[i].B {
								vals[i] = t.vals[i]
							} else {
								vals[i] = f.vals[i]
							}
						}
						if hit := en.add(size, cand{e: expr.NewIte(c.e, t.e, f.e), vals: vals}, outType); hit != nil {
							return hit
						}
					}
				}
			}
		}
	}
	return nil
}

// intPairs emits arithmetic and comparison candidates for one pair of
// int operands.
func (en *enumerator) intPairs(size int, l, r cand, outType expr.Type) expr.Expr {
	n := len(l.vals)
	addVals := make([]expr.Value, n)
	subVals := make([]expr.Value, n)
	for i := 0; i < n; i++ {
		addVals[i] = expr.IntVal(l.vals[i].I + r.vals[i].I)
		subVals[i] = expr.IntVal(l.vals[i].I - r.vals[i].I)
	}
	if hit := en.add(size, cand{e: expr.Add(l.e, r.e), vals: addVals}, outType); hit != nil {
		return hit
	}
	if hit := en.add(size, cand{e: expr.Sub(l.e, r.e), vals: subVals}, outType); hit != nil {
		return hit
	}
	if en.opts.EnableMul {
		mulVals := make([]expr.Value, n)
		for i := 0; i < n; i++ {
			mulVals[i] = expr.IntVal(l.vals[i].I * r.vals[i].I)
		}
		if hit := en.add(size, cand{e: expr.Mul(l.e, r.e), vals: mulVals}, outType); hit != nil {
			return hit
		}
	}
	return en.cmpPairs(size, l, r, outType)
}

// cmpPairs emits the six comparison candidates for a pair of int
// operands.
func (en *enumerator) cmpPairs(size int, l, r cand, outType expr.Type) expr.Expr {
	n := len(l.vals)
	mk := func(op expr.Op, f func(a, b int64) bool) expr.Expr {
		vals := make([]expr.Value, n)
		for i := 0; i < n; i++ {
			vals[i] = expr.BoolVal(f(l.vals[i].I, r.vals[i].I))
		}
		return en.add(size, cand{e: &expr.Binary{Op: op, L: l.e, R: r.e}, vals: vals}, outType)
	}
	if hit := mk(expr.OpEq, func(a, b int64) bool { return a == b }); hit != nil {
		return hit
	}
	if hit := mk(expr.OpLe, func(a, b int64) bool { return a <= b }); hit != nil {
		return hit
	}
	if hit := mk(expr.OpGe, func(a, b int64) bool { return a >= b }); hit != nil {
		return hit
	}
	if hit := mk(expr.OpLt, func(a, b int64) bool { return a < b }); hit != nil {
		return hit
	}
	if hit := mk(expr.OpGt, func(a, b int64) bool { return a > b }); hit != nil {
		return hit
	}
	return mk(expr.OpNe, func(a, b int64) bool { return a != b })
}
