package synth

import (
	"errors"

	"repro/internal/expr"
)

// IteChain builds the trivial solution a syntax-unguided solver tends
// to produce (the paper's Section VII example: for the sequence
// 1, 2, 4, 8 CVC4 without a grammar returns
// ite(x = 4, 8, ite(x != 2, 2, 4)) where fastsynth returns x + x): a
// right-nested ite over exact input matches. It is always consistent
// with the examples but generalises poorly and grows linearly with the
// example count; the synth-styles experiment contrasts its size with
// Enumerate's minimal results.
func IteChain(vars []Var, examples []Example) (expr.Expr, error) {
	if len(examples) == 0 {
		return nil, errors.New("synth: no examples")
	}
	if err := checkConsistent(examples); err != nil {
		return nil, err
	}
	// Deduplicate inputs, keeping first occurrences in order.
	var uniq []Example
	seen := map[string]bool{}
	for _, ex := range examples {
		k := inputKey(ex.In)
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, ex)
	}
	// The last example is the chain's default arm.
	out := expr.Expr(&expr.Lit{Val: uniq[len(uniq)-1].Out})
	for i := len(uniq) - 2; i >= 0; i-- {
		cond, err := matchCondition(vars, uniq[i])
		if err != nil {
			return nil, err
		}
		out = expr.NewIte(cond, &expr.Lit{Val: uniq[i].Out}, out)
	}
	return out, nil
}

// matchCondition builds the conjunction var1 = v1 && var2 = v2 && …
// for an example's input valuation.
func matchCondition(vars []Var, ex Example) (expr.Expr, error) {
	var cond expr.Expr
	for _, v := range vars {
		val, ok := ex.In[v.Name]
		if !ok {
			continue
		}
		eq := expr.Eq(expr.NewVar(v.Name, v.Type), &expr.Lit{Val: val})
		if cond == nil {
			cond = expr.Expr(eq)
		} else {
			cond = expr.And(cond, eq)
		}
	}
	if cond == nil {
		return nil, errors.New("synth: example has no bound input variables")
	}
	return cond, nil
}
