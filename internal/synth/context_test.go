package synth

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/expr"
)

func TestSynthesizeContextCancelled(t *testing.T) {
	vars := []Var{{Name: "x", Type: expr.Int}}
	examples := []Example{
		{In: map[string]expr.Value{"x": expr.IntVal(1)}, Out: expr.IntVal(2)},
		{In: map[string]expr.Value{"x": expr.IntVal(2)}, Out: expr.IntVal(3)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeContext(ctx, vars, examples, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSynthesizeContextCancelMidSearch(t *testing.T) {
	// A near-random mapping over several inputs has no small
	// expression, so the enumeration runs long enough for a
	// concurrent cancel to land mid-search. The call must return
	// promptly with the context's error (or, on a fast machine,
	// finish with ErrNoSolution before the cancel lands — both are
	// deterministic outcomes of the race, and neither may hang).
	rng := rand.New(rand.NewSource(3))
	vars := []Var{{Name: "x", Type: expr.Int}}
	examples := make([]Example, 10)
	for i := range examples {
		examples[i] = Example{
			In:  map[string]expr.Value{"x": expr.IntVal(int64(i))},
			Out: expr.IntVal(rng.Int63n(1000) - 500),
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := SynthesizeContext(ctx, vars, examples, Options{MaxSize: 14})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrNoSolution) {
			t.Fatalf("err = %v, want context.Canceled or ErrNoSolution", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SynthesizeContext did not return after cancellation")
	}
}

func TestSynthesizeContextBackgroundMatchesSynthesize(t *testing.T) {
	vars := []Var{{Name: "x", Type: expr.Int}}
	examples := []Example{
		{In: map[string]expr.Value{"x": expr.IntVal(1)}, Out: expr.IntVal(2)},
		{In: map[string]expr.Value{"x": expr.IntVal(5)}, Out: expr.IntVal(6)},
	}
	a, errA := Synthesize(vars, examples, Options{})
	b, errB := SynthesizeContext(context.Background(), vars, examples, Options{})
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if a.String() != b.String() {
		t.Fatalf("results differ: %s vs %s", a, b)
	}
}
