package sat

import (
	"bytes"
	"testing"
)

// solverCNF reconstructs a solver's clause set — stored clauses plus
// level-0 unit assignments plus, for an unsatisfiable-at-top-level
// solver, the empty clause — for cross-checking against bruteForce.
func solverCNF(s *Solver) [][]Lit {
	var cnf [][]Lit
	if !s.ok {
		cnf = append(cnf, []Lit{})
	}
	units := s.trail
	if len(s.trailLim) > 0 {
		units = s.trail[:s.trailLim[0]]
	}
	for _, l := range units {
		cnf = append(cnf, []Lit{l})
	}
	for _, c := range s.clauses {
		cnf = append(cnf, append([]Lit(nil), s.ar.litsOf(c)...))
	}
	return cnf
}

// FuzzDIMACS feeds arbitrary bytes to the DIMACS reader. A successful
// parse must serialize to something that parses back cleanly with the
// same variable count, and — when small enough to brute force — the
// round trip must preserve satisfiability. Byte-level idempotence is
// deliberately not asserted: AddClause simplifies clauses against
// level-0 units, so each write/read round may simplify further.
func FuzzDIMACS(f *testing.F) {
	f.Add([]byte("p cnf 3 2\n1 -2 0\n2 3 0\n"))
	f.Add([]byte("c comment\np cnf 2 2\n1 0\n-1 2 0\n"))
	f.Add([]byte("p cnf 1 2\n1 0\n-1 0\n"))
	f.Add([]byte("p cnf 4 0\n"))
	f.Add([]byte("1 2 0 -1 -2 0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip()
		}
		s1, err := ReadDIMACS(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, s1); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		s2, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\n%s", err, buf.String())
		}
		if s2.NumVars() != s1.NumVars() {
			t.Fatalf("round trip changed NumVars: %d → %d", s1.NumVars(), s2.NumVars())
		}
		cnf1, cnf2 := solverCNF(s1), solverCNF(s2)
		if s1.NumVars() > 12 || len(cnf1) > 64 || len(cnf2) > 64 {
			return // too big to brute force; parse/serialize checks stand
		}
		sat1, _ := bruteForce(s1.NumVars(), cnf1)
		sat2, _ := bruteForce(s2.NumVars(), cnf2)
		if sat1 != sat2 {
			t.Fatalf("round trip changed satisfiability %v → %v\ninput %q\noutput %q",
				sat1, sat2, data, buf.String())
		}
	})
}

// decodeCNF derives a small CNF instance and assumption set from fuzz
// bytes: byte 0 picks the variable count (≤ 12), byte 1 the assumption
// count, and the rest stream literals, the high bit terminating a
// clause.
func decodeCNF(data []byte) (nVars int, clauses [][]Lit, assumptions []Lit) {
	nVars = 1
	if len(data) == 0 {
		return nVars, nil, nil
	}
	nVars = 1 + int(data[0])%12
	data = data[1:]
	litOf := func(b byte) Lit {
		v := int(b>>1) % nVars
		if b&1 == 1 {
			return Neg(v)
		}
		return Pos(v)
	}
	if len(data) > 0 {
		k := int(data[0]) % 4
		data = data[1:]
		for i := 0; i < k && len(data) > 0; i++ {
			assumptions = append(assumptions, litOf(data[0]))
			data = data[1:]
		}
	}
	var cur []Lit
	for _, b := range data {
		if b&0x80 != 0 {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, litOf(b&0x7f))
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	if len(clauses) > 64 {
		clauses = clauses[:64]
	}
	return nVars, clauses, assumptions
}

// FuzzSolver cross-checks the CDCL solver against the brute-force
// oracle on random ≤12-variable instances: plain solving, model
// validity, solving under assumptions with core soundness, solving
// with non-default restart/decay knobs, and an incremental re-solve
// after blocking the first model.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{3, 0, 0x02, 0x05, 0x80, 0x03, 0x04, 0x80})
	f.Add([]byte{7, 2, 0x04, 0x09, 0x10, 0x80, 0x11, 0x80})
	f.Add([]byte{11, 0, 0x00, 0x80, 0x01, 0x80})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip()
		}
		nVars, clauses, assumptions := decodeCNF(data)
		want, _ := bruteForce(nVars, clauses)

		s := mkSolver(nVars, clauses)
		if got := s.Solve(); (got == Sat) != want {
			t.Fatalf("Solve=%v, brute force sat=%v (cnf %v)", got, want, clauses)
		} else if got == Sat {
			checkModel(t, s, clauses)
		}

		// Assumptions on a fresh solver: status matches brute force
		// with the assumptions as units, failed assumption sets yield
		// a sound core, and the solver survives for a plain re-solve.
		s2 := mkSolver(nVars, clauses)
		wantA := bruteForceAssuming(nVars, clauses, assumptions)
		switch got := s2.SolveAssuming(assumptions...); {
		case (got == Sat) != wantA:
			t.Fatalf("SolveAssuming=%v, brute force sat=%v (cnf %v assume %v)",
				got, wantA, clauses, assumptions)
		case got == Sat:
			checkModel(t, s2, clauses)
			for _, a := range assumptions {
				if s2.Value(a.Var()) == a.Sign() {
					t.Fatalf("model violates assumption %v", a)
				}
			}
		default:
			core := s2.UnsatCore()
			if core == nil {
				t.Fatal("nil core after UNSAT")
			}
			inA := map[Lit]bool{}
			for _, a := range assumptions {
				inA[a] = true
			}
			for _, l := range core {
				if !inA[l] {
					t.Fatalf("core literal %v not among assumptions %v", l, assumptions)
				}
			}
			if bruteForceAssuming(nVars, clauses, core) {
				t.Fatalf("core %v is not inconsistent (cnf %v)", core, clauses)
			}
			if got := s2.Solve(); (got == Sat) != want {
				t.Fatalf("post-core Solve=%v, brute force sat=%v", got, want)
			}
		}

		// Portfolio-style knob variation must not change the answer.
		s3 := mkSolver(nVars, clauses)
		s3.RestartBase = 25
		s3.Decay = 0.85
		if nVars > 1 {
			s3.BumpActivity(nVars/2, 3)
		}
		if got := s3.Solve(); (got == Sat) != want {
			t.Fatalf("knobbed Solve=%v, brute force sat=%v", got, want)
		}

		// Incremental: block the first model, re-solve, re-check.
		if want {
			block := make([]Lit, nVars)
			for v := 0; v < nVars; v++ {
				if s.Value(v) {
					block[v] = Neg(v)
				} else {
					block[v] = Pos(v)
				}
			}
			blocked := append(append([][]Lit(nil), clauses...), block)
			wantB, _ := bruteForce(nVars, blocked)
			s.AddClause(block...)
			if got := s.Solve(); (got == Sat) != wantB {
				t.Fatalf("blocked re-solve=%v, brute force sat=%v", got, wantB)
			} else if got == Sat {
				checkModel(t, s, blocked)
			}
		}
	})
}
