package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS loads a CNF formula in DIMACS format into a fresh solver.
// The "p cnf VARS CLAUSES" header is honoured for variable allocation;
// comment lines ("c ...") are skipped. Clauses are zero-terminated and
// may span lines.
func ReadDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var clause []Lit
	sawHeader := false
	// Allocating per-variable state for an absurd header ("p cnf
	// 2000000000 0") would exhaust memory before any clause is read.
	const maxVars = 1 << 22
	ensureVar := func(v int) error {
		if v < 0 || v > maxVars { // v < 0: negation overflow on MinInt
			return fmt.Errorf("dimacs: variable %d exceeds limit %d", v, maxVars)
		}
		for s.NumVars() < v {
			s.NewVar()
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawHeader {
				return nil, fmt.Errorf("dimacs: duplicate header %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: malformed header %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: bad variable count in %q", line)
			}
			if err := ensureVar(n); err != nil {
				return nil, err
			}
			sawHeader = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: bad literal %q", tok)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if err := ensureVar(v); err != nil {
				return nil, err
			}
			if n > 0 {
				clause = append(clause, Pos(v-1))
			} else {
				clause = append(clause, Neg(v-1))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if len(clause) != 0 {
		return nil, fmt.Errorf("dimacs: unterminated final clause")
	}
	return s, nil
}

// WriteDIMACS writes the solver's problem clauses (not learned
// clauses) in DIMACS CNF format. AddClause stores unit clauses as
// level-0 assignments rather than clause objects, so those are written
// back as units; a solver already unsatisfiable at the top level is
// written with an explicit empty clause.
func WriteDIMACS(w io.Writer, s *Solver) error {
	units := s.trail
	if len(s.trailLim) > 0 {
		units = s.trail[:s.trailLim[0]]
	}
	extra := len(units)
	if !s.ok {
		extra++ // the empty clause
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+extra); err != nil {
		return err
	}
	if !s.ok {
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	for _, l := range units {
		if _, err := fmt.Fprintf(bw, "%s 0\n", l); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range s.ar.litsOf(c) {
			if _, err := bw.WriteString(l.String()); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
