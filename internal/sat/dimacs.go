package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS loads a CNF formula in DIMACS format into a fresh solver.
// The "p cnf VARS CLAUSES" header is honoured for variable allocation;
// comment lines ("c ...") are skipped. Clauses are zero-terminated and
// may span lines.
func ReadDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var clause []Lit
	sawHeader := false
	ensureVar := func(v int) {
		for s.NumVars() < v {
			s.NewVar()
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawHeader {
				return nil, fmt.Errorf("dimacs: duplicate header %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs: malformed header %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: bad variable count in %q", line)
			}
			ensureVar(n)
			sawHeader = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs: bad literal %q", tok)
			}
			if n == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			ensureVar(v)
			if n > 0 {
				clause = append(clause, Pos(v-1))
			} else {
				clause = append(clause, Neg(v-1))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if len(clause) != 0 {
		return nil, fmt.Errorf("dimacs: unterminated final clause")
	}
	return s, nil
}

// WriteDIMACS writes the solver's problem clauses (not learned
// clauses) in DIMACS CNF format.
func WriteDIMACS(w io.Writer, s *Solver) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)); err != nil {
		return err
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if _, err := bw.WriteString(l.String()); err != nil {
				return err
			}
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
