package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// bruteForce decides satisfiability of a clause set by enumeration;
// the reference oracle for property tests (≤ ~20 variables).
func bruteForce(nVars int, clauses [][]Lit) (bool, []bool) {
	assign := make([]bool, nVars)
	var try func(v int) bool
	satisfied := func() bool {
		for _, c := range clauses {
			ok := false
			for _, l := range c {
				if assign[l.Var()] != l.Sign() {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	try = func(v int) bool {
		if v == nVars {
			return satisfied()
		}
		assign[v] = false
		if try(v + 1) {
			return true
		}
		assign[v] = true
		return try(v + 1)
	}
	return try(0), assign
}

func mkSolver(nVars int, clauses [][]Lit) *Solver {
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		s.AddClause(c...)
	}
	return s
}

// checkModel verifies that the solver's model satisfies every clause.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit) {
	t.Helper()
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if s.Value(l.Var()) != l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %v", c)
		}
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	if s.Solve() != Sat {
		t.Fatal("empty formula not SAT")
	}
	v := s.NewVar()
	s.AddClause(Pos(v))
	if s.Solve() != Sat || !s.Value(v) {
		t.Fatal("unit clause not honoured")
	}
	if ok := s.AddClause(Neg(v)); ok {
		t.Fatal("contradicting unit accepted")
	}
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x not UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause not UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	if !s.AddClause(Pos(v), Neg(v)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(Pos(w), Pos(w), Pos(w)) {
		t.Fatal("duplicate literals rejected")
	}
	if s.Solve() != Sat || !s.Value(w) {
		t.Fatal("duplicate unit not propagated")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x0 ∧ (¬x0∨x1) ∧ (¬x1∨x2) ∧ … forces all true.
	const n = 50
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	s.AddClause(Pos(0))
	for i := 0; i+1 < n; i++ {
		s.AddClause(Neg(i), Pos(i+1))
	}
	if s.Solve() != Sat {
		t.Fatal("chain not SAT")
	}
	for i := 0; i < n; i++ {
		if !s.Value(i) {
			t.Fatalf("var %d not forced true", i)
		}
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes, classic
// exponentially-hard UNSAT family (kept small).
func pigeonhole(pigeons, holes int) (int, [][]Lit) {
	va := func(p, h int) int { return p*holes + h }
	var clauses [][]Lit
	for p := 0; p < pigeons; p++ {
		c := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = Pos(va(p, h))
		}
		clauses = append(clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []Lit{Neg(va(p1, h)), Neg(va(p2, h))})
			}
		}
	}
	return pigeons * holes, clauses
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 2; holes <= 6; holes++ {
		nv, clauses := pigeonhole(holes+1, holes)
		s := mkSolver(nv, clauses)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", holes+1, holes, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	nv, clauses := pigeonhole(5, 5)
	s := mkSolver(nv, clauses)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5) = %v, want SAT", got)
	}
	checkModel(t, s, clauses)
}

// TestRandom3SATAgainstBruteForce fuzzes the solver against the
// enumeration oracle on random 3-SAT near the phase transition.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 5 + r.Intn(11) // 5..15
		nClauses := int(float64(nVars)*4.2) + r.Intn(5)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		wantSat, _ := bruteForce(nVars, clauses)
		s := mkSolver(nVars, clauses)
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: solver=%v brute=%v (vars=%d clauses=%d)", trial, got, wantSat, nVars, nClauses)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

// TestRandomWideClausesAgainstBruteForce uses mixed clause widths
// (1..5) to exercise unit propagation and long-clause watching.
func TestRandomWideClausesAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		nVars := 4 + r.Intn(9)
		nClauses := 2 + r.Intn(4*nVars)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			width := 1 + r.Intn(5)
			c := make([]Lit, width)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		wantSat, _ := bruteForce(nVars, clauses)
		s := mkSolver(nVars, clauses)
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, got, wantSat)
		}
		if got == Sat {
			checkModel(t, s, clauses)
		}
	}
}

// TestIncremental adds blocking clauses between Solve calls, the usage
// pattern of the model learner's refinement loop.
func TestIncremental(t *testing.T) {
	const n = 4
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	// At least one true.
	s.AddClause(Pos(0), Pos(1), Pos(2), Pos(3))
	models := 0
	for {
		if s.Solve() != Sat {
			break
		}
		models++
		if models > 20 {
			t.Fatal("too many models")
		}
		// Block the found model.
		block := make([]Lit, n)
		for v := 0; v < n; v++ {
			if s.Value(v) {
				block[v] = Neg(v)
			} else {
				block[v] = Pos(v)
			}
		}
		s.AddClause(block...)
	}
	if models != 15 {
		t.Fatalf("enumerated %d models, want 15", models)
	}
}

func TestPreferredPolarity(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Pos(a), Pos(b)) // SAT either way
	s.SetPreferredPolarity(a, false)
	s.SetPreferredPolarity(b, true)
	if s.Solve() != Sat {
		t.Fatal("not SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Errorf("polarity preference ignored: a=%v b=%v", s.Value(a), s.Value(b))
	}
}

func TestGraphColouring(t *testing.T) {
	// K4 is 4-colourable but not 3-colourable.
	colour := func(k int) Status {
		s := New()
		va := func(node, c int) int { return node*k + c }
		for i := 0; i < 4*k; i++ {
			s.NewVar()
		}
		for node := 0; node < 4; node++ {
			c := make([]Lit, k)
			for j := 0; j < k; j++ {
				c[j] = Pos(va(node, j))
			}
			s.AddClause(c...)
		}
		for n1 := 0; n1 < 4; n1++ {
			for n2 := n1 + 1; n2 < 4; n2++ {
				for j := 0; j < k; j++ {
					s.AddClause(Neg(va(n1, j)), Neg(va(n2, j)))
				}
			}
		}
		return s.Solve()
	}
	if colour(3) != Unsat {
		t.Error("K4 3-colouring should be UNSAT")
	}
	if colour(4) != Sat {
		t.Error("K4 4-colouring should be SAT")
	}
}

func TestMaxConflictsAborts(t *testing.T) {
	nv, clauses := pigeonhole(8, 7)
	s := mkSolver(nv, clauses)
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown && got != Unsat {
		t.Fatalf("limited solve = %v", got)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLitBasics(t *testing.T) {
	l := Pos(3)
	if l.Var() != 3 || l.Sign() || l.Not() != Neg(3) || l.String() != "4" {
		t.Errorf("Pos(3) basics wrong: %v", l)
	}
	n := Neg(0)
	if n.Var() != 0 || !n.Sign() || n.String() != "-1" {
		t.Errorf("Neg(0) basics wrong: %v", n)
	}
	if Unknown.String() != "UNKNOWN" || Sat.String() != "SAT" || Unsat.String() != "UNSAT" {
		t.Error("Status strings wrong")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	nv, clauses := pigeonhole(4, 3)
	s := mkSolver(nv, clauses)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Error("round-tripped PHP(4,3) not UNSAT")
	}
}

func TestReadDIMACS(t *testing.T) {
	src := `c sample
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Errorf("vars = %d, want 3", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Error("sample not SAT")
	}
	for _, bad := range []string{
		"p cnf x 2\n1 0\n",
		"p cnf 2 1\n1 zz 0\n",
		"p cnf 2 1\n1 2\n", // unterminated
		"p cnf 1 0\np cnf 1 0\n",
		"p dnf 1 0\n",
	} {
		if _, err := ReadDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadDIMACS(%q) succeeded, want error", bad)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	nv, clauses := pigeonhole(6, 5)
	s := mkSolver(nv, clauses)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Errorf("stats empty: %+v", s.Stats)
	}
}

// TestLearntClauseSoundness re-solves with assumptions baked in as
// units in a fresh solver: any model found incrementally must also be
// a model of the original clauses (guards against corrupt learning).
func TestLearntClauseSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		nVars := 8 + r.Intn(6)
		nClauses := 3 * nVars
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				v := r.Intn(nVars)
				if r.Intn(2) == 0 {
					c[j] = Pos(v)
				} else {
					c[j] = Neg(v)
				}
			}
			clauses[i] = c
		}
		s := mkSolver(nVars, clauses)
		// Enumerate a few models incrementally; each must satisfy
		// the original formula.
		for round := 0; round < 5; round++ {
			if s.Solve() != Sat {
				break
			}
			checkModel(t, s, clauses)
			block := make([]Lit, nVars)
			for v := 0; v < nVars; v++ {
				if s.Value(v) {
					block[v] = Neg(v)
				} else {
					block[v] = Pos(v)
				}
			}
			s.AddClause(block...)
		}
	}
}

func BenchmarkPigeonholeUnsat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nv, clauses := pigeonhole(8, 7)
		s := mkSolver(nv, clauses)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) not UNSAT")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	nVars := 60
	nClauses := int(float64(nVars) * 4.1)
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		c := make([]Lit, 3)
		for j := range c {
			v := r.Intn(nVars)
			if r.Intn(2) == 0 {
				c[j] = Pos(v)
			} else {
				c[j] = Neg(v)
			}
		}
		clauses[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mkSolver(nVars, clauses)
		s.Solve()
	}
}

// TestQuickRandomInstances drives the solver with testing/quick:
// arbitrary clause structure over ≤12 variables must agree with the
// brute-force oracle, and SAT results must verify.
func TestQuickRandomInstances(t *testing.T) {
	type spec struct {
		NVars   uint8
		Clauses [][]int8
	}
	f := func(s spec) bool {
		nVars := int(s.NVars%12) + 1
		var clauses [][]Lit
		for _, raw := range s.Clauses {
			if len(raw) == 0 || len(raw) > 6 {
				continue
			}
			c := make([]Lit, 0, len(raw))
			for _, x := range raw {
				v := int(x)
				if v < 0 {
					v = -v
				}
				v %= nVars
				if x < 0 {
					c = append(c, Neg(v))
				} else {
					c = append(c, Pos(v))
				}
			}
			clauses = append(clauses, c)
		}
		if len(clauses) > 60 {
			clauses = clauses[:60]
		}
		wantSat, _ := bruteForce(nVars, clauses)
		solver := mkSolver(nVars, clauses)
		got := solver.Solve()
		if (got == Sat) != wantSat {
			return false
		}
		if got == Sat {
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if solver.Value(l.Var()) != l.Sign() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bruteForceAssuming decides satisfiability of clauses plus unit
// assumptions by enumeration.
func bruteForceAssuming(nVars int, clauses [][]Lit, assumptions []Lit) bool {
	all := make([][]Lit, 0, len(clauses)+len(assumptions))
	all = append(all, clauses...)
	for _, a := range assumptions {
		all = append(all, []Lit{a})
	}
	sat, _ := bruteForce(nVars, all)
	return sat
}

func TestSolveAssumingBasic(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b)) // a → b
	s.AddClause(Neg(b), Pos(c)) // b → c

	if got := s.SolveAssuming(Pos(a), Neg(c)); got != Unsat {
		t.Fatalf("a ∧ ¬c under a→b→c: got %v, want UNSAT", got)
	}
	// The assumptions, not the clauses, are at fault: the solver must
	// stay usable and the unrestricted formula satisfiable.
	if got := s.Solve(); got != Sat {
		t.Fatalf("formula without assumptions: got %v, want SAT", got)
	}
	if s.UnsatCore() != nil {
		t.Errorf("core after Sat = %v, want nil", s.UnsatCore())
	}
	if got := s.SolveAssuming(Pos(a)); got != Sat {
		t.Fatalf("assuming a alone: got %v, want SAT", got)
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Errorf("model under assumption a: a=%v b=%v c=%v, want all true",
			s.Value(a), s.Value(b), s.Value(c))
	}
}

func TestUnsatCore(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b))
	s.AddClause(Neg(b), Neg(c))
	_ = d // irrelevant assumption below must not enter the core

	if got := s.SolveAssuming(Pos(d), Pos(a), Pos(c)); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
	core := s.UnsatCore()
	if core == nil {
		t.Fatal("nil core after assumption UNSAT")
	}
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if inCore[Pos(d)] {
		t.Errorf("irrelevant assumption d in core %v", core)
	}
	if !inCore[Pos(a)] || !inCore[Pos(c)] {
		t.Errorf("core %v missing a or c", core)
	}
}

func TestUnsatCoreContradictoryAssumptions(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Pos(v), Neg(v)) // tautology; formula has no constraints
	if got := s.SolveAssuming(Pos(v), Neg(v)); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
	core := s.UnsatCore()
	if len(core) != 2 {
		t.Fatalf("core %v, want both contradictory assumptions", core)
	}
}

func TestUnsatCoreEmptyWhenFormulaUnsat(t *testing.T) {
	nv, clauses := pigeonhole(3, 2)
	s := mkSolver(nv, clauses)
	if got := s.SolveAssuming(Pos(0)); got != Unsat {
		t.Fatalf("got %v, want UNSAT", got)
	}
	if core := s.UnsatCore(); core == nil || len(core) != 0 {
		t.Errorf("core %v, want empty non-nil (formula unsat regardless)", core)
	}
}

func TestSolveAssumingRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(4*nVars)
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			var c []Lit
			for len(c) == 0 {
				for v := 0; v < nVars; v++ {
					if rng.Intn(nVars) < 3 {
						if rng.Intn(2) == 0 {
							c = append(c, Pos(v))
						} else {
							c = append(c, Neg(v))
						}
					}
				}
			}
			clauses = append(clauses, c)
		}
		var assumptions []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					assumptions = append(assumptions, Pos(v))
				} else {
					assumptions = append(assumptions, Neg(v))
				}
			}
		}
		s := mkSolver(nVars, clauses)
		got := s.SolveAssuming(assumptions...)
		want := bruteForceAssuming(nVars, clauses, assumptions)
		if (got == Sat) != want {
			t.Fatalf("iter %d: got %v, brute force says sat=%v\nclauses %v assumptions %v",
				iter, got, want, clauses, assumptions)
		}
		if got == Sat {
			checkModel(t, s, clauses)
			for _, a := range assumptions {
				if s.Value(a.Var()) == a.Sign() {
					t.Fatalf("iter %d: model violates assumption %v", iter, a)
				}
			}
		} else {
			core := s.UnsatCore()
			if core == nil {
				t.Fatalf("iter %d: nil core after UNSAT", iter)
			}
			inAssumptions := map[Lit]bool{}
			for _, a := range assumptions {
				inAssumptions[a] = true
			}
			for _, l := range core {
				if !inAssumptions[l] {
					t.Fatalf("iter %d: core literal %v not among assumptions %v", iter, l, assumptions)
				}
			}
			if bruteForceAssuming(nVars, clauses, core) {
				t.Fatalf("iter %d: core %v not actually inconsistent", iter, core)
			}
			// The solver must remain reusable after an
			// assumption failure.
			plain := s.Solve()
			plainWant, _ := bruteForce(nVars, clauses)
			if (plain == Sat) != plainWant {
				t.Fatalf("iter %d: post-core Solve %v, brute force sat=%v", iter, plain, plainWant)
			}
		}
	}
}

func TestInterrupt(t *testing.T) {
	nv, clauses := pigeonhole(10, 9)
	s := mkSolver(nv, clauses)
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	// Solve clears the flag on entry, so a single interrupt racing
	// the solve start could be lost; keep interrupting until the
	// solve gives up.
	var st Status
loop:
	for {
		select {
		case st = <-done:
			break loop
		default:
			s.Interrupt()
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Unknown is the expected outcome; Unsat is tolerated on the
	// (unlikely) chance the solve finished before the flag landed.
	if st == Sat {
		t.Fatalf("PHP(10,9) returned SAT")
	}
	if st == Unknown {
		// Interrupted solves must leave the solver reusable.
		s.MaxConflicts = 10
		if got := s.Solve(); got == Sat {
			t.Fatal("PHP(10,9) SAT after interrupt")
		}
	}
}

func TestRestartBaseAndDecayKnobs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		nVars := 4 + rng.Intn(6)
		var clauses [][]Lit
		for i := 0; i < 3*nVars; i++ {
			var c []Lit
			for len(c) < 3 {
				v := rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					c = append(c, Pos(v))
				} else {
					c = append(c, Neg(v))
				}
			}
			clauses = append(clauses, c)
		}
		want, _ := bruteForce(nVars, clauses)
		s := mkSolver(nVars, clauses)
		s.RestartBase = 25
		s.Decay = 0.85
		s.BumpActivity(nVars/2, 5)
		if got := s.Solve(); (got == Sat) != want {
			t.Fatalf("iter %d: knobs changed the answer: got %v, want sat=%v", iter, got, want)
		}
	}
}

func TestWriteDIMACSPreservesUnits(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a))         // stored as a level-0 assignment
	s.AddClause(Neg(a), Pos(b)) // forces b by propagation
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if s2.Solve() != Sat {
		t.Fatal("round-tripped formula not SAT")
	}
	if !s2.Value(a) || !s2.Value(b) {
		t.Errorf("units lost in round trip: a=%v b=%v, want both true\n%s",
			s2.Value(a), s2.Value(b), buf.String())
	}
}

func TestWriteDIMACSUnsatFormula(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Pos(v))
	s.AddClause(Neg(v)) // ok flips false
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, s); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Solve() != Unsat {
		t.Errorf("round-tripped unsat formula solved %v\n%s", s2.Solve(), buf.String())
	}
}
