// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver.
//
// The paper drives its automaton search with CBMC: the hypothesis
// "no N-state automaton exists" is compiled to a loop-free C program
// whose verification condition is a propositional formula, and a CBMC
// counterexample is exactly a satisfying assignment describing the
// automaton. This package is the self-contained substitute for that
// engine: internal/learn encodes the same hypothesis directly in CNF
// and solves it here.
//
// The solver is a conventional modern CDCL design:
//
//   - two-watched-literal unit propagation,
//   - first-UIP conflict analysis with recursive clause minimisation,
//   - VSIDS variable activity with exponential decay and phase saving,
//   - Luby-sequence restarts,
//   - activity-driven learned-clause deletion,
//   - incremental use: clauses may be added between Solve calls, and
//     SolveAssuming solves under temporary assumptions while keeping
//     every learned clause for the next call; a failed assumption set
//     yields an UnsatCore.
package sat

import (
	"fmt"
	"sync/atomic"
)

// Lit is a literal: a propositional variable or its negation.
// Internally a literal is 2*v for the positive and 2*v+1 for the
// negative polarity of variable v.
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l) >> 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS style (v+1, negative for
// negated literals).
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is a Solve result.
type Status uint8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String returns SAT/UNSAT/UNKNOWN.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause // problem clauses
	learnts []*clause // learned clauses
	watches [][]*clause

	assign  []lbool
	level   []int32
	reason  []*clause
	phase   []bool // saved phases
	prefPol []bool // preferred initial polarity (false by default)

	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap

	ok bool // false once the formula is known unsat at level 0

	// assumptions of the current SolveAssuming call; placed as the
	// first decision levels of the search.
	assumptions []Lit
	// core is the final conflict of the last failed SolveAssuming
	// call: a subset of the assumptions that is jointly inconsistent
	// with the clauses. Empty (non-nil) when the formula is unsat
	// regardless of assumptions; nil when the last solve did not end
	// in Unsat.
	core []Lit

	// stop aborts the in-progress solve with Unknown when set (see
	// Interrupt); cleared on entry to SolveAssuming.
	stop atomic.Bool

	// analyze scratch.
	seen      []bool
	analyzeTS []Lit

	// statistics
	Stats Stats

	// MaxConflicts, when positive, aborts Solve with Unknown after
	// that many conflicts. Zero means no limit.
	MaxConflicts int64

	// RestartBase scales the Luby restart sequence: the first restart
	// fires after RestartBase conflicts. Zero means 100, the default.
	// Portfolio solving races solvers that differ in this knob.
	RestartBase int64

	// Decay is the VSIDS activity decay divisor in (0, 1); smaller
	// values focus harder on recent conflicts. Zero means 0.95.
	Decay float64
}

// Stats counts solver work, exposed for the scalability experiments.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	Deleted      int64
}

// Minus returns the component-wise difference s − o: the work done
// between two snapshots of a solver's cumulative statistics.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - o.Decisions,
		Propagations: s.Propagations - o.Propagations,
		Conflicts:    s.Conflicts - o.Conflicts,
		Restarts:     s.Restarts - o.Restarts,
		Learned:      s.Learned - o.Learned,
		Deleted:      s.Deleted - o.Deleted,
	}
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, ok: true}
	s.heap.s = s
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.prefPol = append(s.prefPol, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

// SetPreferredPolarity sets the polarity first tried when the solver
// decides on v before any phase has been saved for it. The learner
// biases transition-function variables to false so that extracted
// automata contain only witnessed transitions.
func (s *Solver) SetPreferredPolarity(v int, polarity bool) {
	s.prefPol[v] = polarity
	s.phase[v] = polarity
}

func (s *Solver) value(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lFalse) {
		return lTrue
	}
	return lFalse
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// AddClause adds a clause over the given literals. It returns false
// when the clause makes the formula trivially unsatisfiable at the top
// level. Adding a clause after a Sat result backtracks the solver to
// decision level 0 and invalidates the model, so callers must copy any
// model values they need first.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		s.backtrack(0)
	}
	// Normalise: drop duplicate and false literals, detect
	// tautologies and satisfied clauses.
	norm := make([]Lit, 0, len(lits))
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() >= s.NumVars() || l < 0 {
			panic(fmt.Sprintf("sat: literal %d references unknown variable", l))
		}
		switch {
		case s.value(l) == lTrue || seen[l.Not()]:
			return true // already satisfied / tautology
		case s.value(l) == lFalse || seen[l]:
			// skip
		default:
			seen[l] = true
			norm = append(norm, l)
		}
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(norm[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	default:
		c := &clause{lits: norm}
		s.clauses = append(s.clauses, c)
		s.watch(c)
		return true
	}
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

// enqueue assigns literal l with the given reason clause. It returns
// false when l is already false.
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[l]
		s.watches[l] = ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Satisfied by the other watch?
			if s.value(c.lits[0]) == lTrue {
				s.watches[l] = append(s.watches[l], c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			s.watches[l] = append(s.watches[l], c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches.
				s.watches[l] = append(s.watches[l], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := int32(len(s.trailLim))
	s.analyzeTS = s.analyzeTS[:0]

	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for _, q := range confl.lits[start:] {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.analyzeTS = append(s.analyzeTS, q)
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Not()

	// Clause minimisation: remove literals implied by the rest.
	minimised := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			minimised = append(minimised, q)
		}
	}
	learnt = minimised

	// Compute backtrack level: the highest level among the
	// non-asserting literals.
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].Var()]); lv > btLevel {
			btLevel = lv
			// Move the max-level literal to slot 1 so it is
			// watched (needed for correct propagation after
			// backjumping).
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}

	// Clear seen flags.
	for _, q := range s.analyzeTS {
		s.seen[q.Var()] = false
	}
	return learnt, btLevel
}

// redundant reports whether literal q is implied by the other literals
// of the learnt clause (its reason chain stays within seen literals).
func (s *Solver) redundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r == nil {
		return false
	}
	stack := []Lit{q}
	var undo []Lit
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[l.Var()]
		if c == nil {
			// Decision reached: q is not redundant; roll back
			// marks made during this check.
			for _, u := range undo {
				s.seen[u.Var()] = false
			}
			return false
		}
		for _, x := range c.lits[1:] {
			v := x.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			undo = append(undo, x)
			s.analyzeTS = append(s.analyzeTS, x)
			stack = append(stack, x)
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if c.learnt {
		c.activity++
	}
}

func (s *Solver) decayActivities() {
	d := s.Decay
	if d == 0 {
		d = 0.95
	}
	s.varInc /= d
}

// BumpActivity raises variable v's activity by the given amount.
// Seeding activities before the first solve changes the initial
// branching order — one of the portfolio's diversification knobs.
func (s *Solver) BumpActivity(v int, amount float64) {
	if amount <= 0 {
		return
	}
	s.activity[v] += amount
	s.heap.update(v)
}

// Interrupt makes the in-progress (or next) solve return Unknown at
// the next conflict or decision. It is the only Solver method safe to
// call from another goroutine; a portfolio uses it to stop losing
// solvers promptly. The flag clears when a new solve starts.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// backtrack undoes assignments above the given level.
func (s *Solver) backtrack(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.heap.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// pickBranchLit chooses the unassigned variable with the highest
// activity, using the saved phase.
func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.heap.removeMax()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			if s.phase[v] {
				return Pos(v)
			}
			return Neg(v)
		}
	}
}

// luby computes the Luby restart sequence element for index i
// (1-based): 1, 1, 2, 1, 1, 2, 4, …
func luby(i int64) int64 {
	x := i - 1
	// Find the finite subsequence containing x and its size.
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// reduceDB removes the less active half of the learned clauses,
// keeping reasons of current assignments.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 4 {
		return
	}
	// Partial selection: simple threshold at median activity.
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	med := quickMedian(acts)
	kept := s.learnts[:0]
	locked := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			locked[r] = true
		}
	}
	for _, c := range s.learnts {
		if c.activity > med || locked[c] || len(c.lits) <= 2 {
			kept = append(kept, c)
			continue
		}
		s.unwatch(c)
		s.Stats.Deleted++
	}
	s.learnts = kept
}

func (s *Solver) unwatch(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		list := s.watches[w]
		for i, x := range list {
			if x == c {
				list[i] = list[len(list)-1]
				s.watches[w] = list[:len(list)-1]
				break
			}
		}
	}
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Selection by repeated partition (average linear time).
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// Solve searches for a satisfying assignment of all added clauses. It
// may be called repeatedly, with clauses added in between; learned
// clauses persist across calls.
func (s *Solver) Solve() Status { return s.SolveAssuming() }

// SolveAssuming solves the added clauses under the given temporary
// assumptions, placed as the first decision levels of the search. The
// assumptions hold for this call only; clauses learned during the
// search mention none of them and persist for the next call, which is
// what makes repeated solve/block/solve loops cheap. An Unsat result
// caused by the assumptions (rather than the clauses alone) leaves the
// solver reusable — ok stays true — and records the subset of
// assumptions responsible, available from UnsatCore.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	s.stop.Store(false)
	s.core = nil
	if !s.ok {
		s.core = []Lit{}
		return Unsat
	}
	s.backtrack(0)
	if c := s.propagate(); c != nil {
		s.ok = false
		s.core = []Lit{}
		return Unsat
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	defer func() { s.assumptions = s.assumptions[:0] }()

	base := s.RestartBase
	if base <= 0 {
		base = 100
	}
	var restarts int64
	conflictsAtStart := s.Stats.Conflicts
	maxLearnts := int64(len(s.clauses)/3 + 100)
	for {
		restarts++
		budget := base * luby(restarts)
		st := s.search(budget, &maxLearnts)
		if st != Unknown {
			// On Sat the trail is left intact so the model stays
			// readable; AddClause and the next solve backtrack it.
			return st
		}
		if s.stop.Load() {
			s.backtrack(0)
			return Unknown
		}
		s.Stats.Restarts++
		if s.MaxConflicts > 0 && s.Stats.Conflicts-conflictsAtStart >= s.MaxConflicts {
			s.backtrack(0)
			return Unknown
		}
	}
}

// UnsatCore returns the final conflict of the last Unsat result: a
// subset of the assumptions passed to SolveAssuming that is jointly
// inconsistent with the clauses. It is empty but non-nil when the
// clauses are unsatisfiable regardless of the assumptions, and nil
// when the last solve did not return Unsat. The slice is only valid
// until the next solve.
func (s *Solver) UnsatCore() []Lit { return s.core }

// search runs CDCL until a result, a conflict budget exhaustion
// (returns Unknown, triggering a restart), or an interrupt. Pending
// assumptions are installed as decision levels before any free
// decision; an assumption found false ends the search with Unsat and
// a final conflict, without condemning the clause set.
func (s *Solver) search(budget int64, maxLearnts *int64) Status {
	var conflicts int64
	for {
		if s.stop.Load() {
			s.backtrack(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if len(s.trailLim) == 0 {
				s.ok = false
				s.core = []Lit{}
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.ok = false
					s.core = []Lit{}
					return Unsat
				}
			} else {
				c := &clause{lits: learnt, learnt: true, activity: 1}
				s.learnts = append(s.learnts, c)
				s.Stats.Learned++
				s.watch(c)
				if !s.enqueue(learnt[0], c) {
					s.ok = false
					s.core = []Lit{}
					return Unsat
				}
			}
			s.decayActivities()
			continue
		}
		if conflicts >= budget {
			s.backtrack(0)
			return Unknown
		}
		if int64(len(s.learnts)) > *maxLearnts {
			s.reduceDB()
			*maxLearnts = *maxLearnts + *maxLearnts/10
		}
		// Install pending assumptions as the next decision levels.
		// A backjump may strip assumption levels, so this re-walks
		// from the current depth every time.
		for placed := false; len(s.trailLim) < len(s.assumptions); {
			p := s.assumptions[len(s.trailLim)]
			switch s.value(p) {
			case lFalse:
				s.analyzeFinal(p)
				s.backtrack(0)
				return Unsat
			case lTrue:
				// Already implied: open an empty level so the
				// level index keeps tracking the assumption
				// index.
				s.trailLim = append(s.trailLim, len(s.trail))
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, nil)
				placed = true
			}
			if placed {
				break // propagate before the next assumption
			}
		}
		if len(s.trail) > s.qhead {
			continue // propagate the assumption just placed
		}
		l := s.pickBranchLit()
		if l == -1 {
			return Sat // all variables assigned
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, nil)
	}
}

// analyzeFinal computes the final conflict after assumption p was
// found false: the subset of assumptions whose propagation forced ¬p,
// plus p itself. It walks the trail top-down from the first decision
// level, expanding marked implied literals through their reasons and
// collecting marked assumption decisions (the only reason-free
// assignments above level 0 while assumptions are being placed).
func (s *Solver) analyzeFinal(p Lit) {
	s.core = []Lit{p}
	if s.level[p.Var()] == 0 || len(s.trailLim) == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			s.core = append(s.core, s.trail[i])
		} else {
			for _, q := range r.lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// ResetForNextSolve backtracks to level 0 so further clauses can be
// added after a Sat result. Model values become invalid.
func (s *Solver) ResetForNextSolve() { s.backtrack(0) }

// varHeap is a max-heap of variables ordered by activity.
type varHeap struct {
	s       *Solver
	heap    []int
	indices []int // var → heap position, -1 when absent
}

func (h *varHeap) less(a, b int) bool { return h.s.activity[a] > h.s.activity[b] }

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if len(h.indices) > v && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}

func (h *varHeap) removeMax() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.down(0)
	}
	return v, true
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[c]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}
