// Package sat implements a CDCL (conflict-driven clause learning)
// boolean satisfiability solver.
//
// The paper drives its automaton search with CBMC: the hypothesis
// "no N-state automaton exists" is compiled to a loop-free C program
// whose verification condition is a propositional formula, and a CBMC
// counterexample is exactly a satisfying assignment describing the
// automaton. This package is the self-contained substitute for that
// engine: internal/learn encodes the same hypothesis directly in CNF
// and solves it here.
//
// The solver is a conventional modern CDCL design:
//
//   - two-watched-literal unit propagation with watcher blockers,
//   - first-UIP conflict analysis with recursive clause minimisation,
//   - VSIDS variable activity with exponential decay and phase saving,
//   - Luby-sequence restarts,
//   - activity-driven learned-clause deletion,
//   - incremental use: clauses may be added between Solve calls, and
//     SolveAssuming solves under temporary assumptions while keeping
//     every learned clause for the next call; a failed assumption set
//     yields an UnsatCore,
//   - Simplify: deterministic level-0 inprocessing (satisfied-clause
//     elimination, false-literal stripping, forward and self-
//     subsumption) callable between solves.
//
// Clause storage is a flat arena: all literals live contiguously in
// one slab, clauses are int32 offsets (crefs) into it, and watcher
// lists hold crefs plus a blocker literal. Deleting a clause only
// marks its header; a compaction pass re-packs the slab when the
// wasted share grows past half (see DESIGN.md note 17).
package sat

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Lit is a literal: a propositional variable or its negation.
// Internally a literal is 2*v for the positive and 2*v+1 for the
// negative polarity of variable v.
type Lit int32

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(2 * v) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(2*v + 1) }

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l) >> 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS style (v+1, negative for
// negated literals).
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is a Solve result.
type Status uint8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String returns SAT/UNSAT/UNKNOWN.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// cref is a clause reference: the slab offset of the clause header.
type cref int32

// crefUndef marks "no clause" (reason of a decision, no conflict).
const crefUndef cref = -1

// Arena clause layout, in Lit-sized words starting at the cref:
//
//	[0]          header: size<<hdrSizeShift | flags
//	[1]          float32 activity bits — learnt clauses only
//	[1|2 ...]    the literals
//
// A deleted clause keeps its header (so linear scans stay possible)
// but its words count as wasted; compaction re-packs live clauses into
// a fresh slab and rewrites every cref holder.
const (
	hdrLearnt    = 1 << 0
	hdrDeleted   = 1 << 1
	hdrSizeShift = 2
)

// arena is the flat clause store.
type arena struct {
	slab   []Lit
	wasted int // words occupied by deleted clauses / stripped literals
}

func (a *arena) alloc(lits []Lit, learnt bool) cref {
	c := cref(len(a.slab))
	hdr := Lit(len(lits) << hdrSizeShift)
	if learnt {
		hdr |= hdrLearnt
		a.slab = append(a.slab, hdr, Lit(math.Float32bits(1)))
	} else {
		a.slab = append(a.slab, hdr)
	}
	a.slab = append(a.slab, lits...)
	return c
}

func (a *arena) size(c cref) int    { return int(a.slab[c]) >> hdrSizeShift }
func (a *arena) learnt(c cref) bool { return a.slab[c]&hdrLearnt != 0 }
func (a *arena) deleted(c cref) bool {
	return a.slab[c]&hdrDeleted != 0
}

// litsOf returns the clause's literal slice, borrowed from the slab
// (mutations — watch swaps, strengthening — write through).
func (a *arena) litsOf(c cref) []Lit {
	off := int(c) + 1
	if a.slab[c]&hdrLearnt != 0 {
		off++
	}
	return a.slab[off : off+a.size(c)]
}

// words returns the clause's total footprint in slab words.
func (a *arena) words(c cref) int {
	n := 1 + a.size(c)
	if a.slab[c]&hdrLearnt != 0 {
		n++
	}
	return n
}

func (a *arena) activity(c cref) float32 {
	return math.Float32frombits(uint32(a.slab[c+1]))
}

func (a *arena) setActivity(c cref, f float32) {
	a.slab[c+1] = Lit(math.Float32bits(f))
}

// del marks the clause deleted; its words become wasted.
func (a *arena) del(c cref) {
	a.wasted += a.words(c)
	a.slab[c] |= hdrDeleted
}

// shrink drops the clause's literals beyond the first n; the dropped
// words become wasted.
func (a *arena) shrink(c cref, n int) {
	old := a.size(c)
	a.wasted += old - n
	a.slab[c] = Lit(n<<hdrSizeShift) | (a.slab[c] & (hdrLearnt | hdrDeleted))
}

// watcher is one entry of a literal's watch list: the watched clause
// and a blocker — some other literal of the clause whose truth proves
// the clause satisfied without touching the clause memory at all (the
// common case in hot propagation).
type watcher struct {
	c       cref
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	ar      arena
	clauses []cref // problem clauses
	learnts []cref // learned clauses
	watches [][]watcher

	assign  []lbool
	level   []int32
	reason  []cref
	phase   []bool // saved phases
	prefPol []bool // preferred initial polarity (false by default)

	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     varHeap

	ok bool // false once the formula is known unsat at level 0

	// assumptions of the current SolveAssuming call; placed as the
	// first decision levels of the search.
	assumptions []Lit
	// core is the final conflict of the last failed SolveAssuming
	// call: a subset of the assumptions that is jointly inconsistent
	// with the clauses. Empty (non-nil) when the formula is unsat
	// regardless of assumptions; nil when the last solve did not end
	// in Unsat.
	core []Lit

	// stop aborts the in-progress solve with Unknown when set (see
	// Interrupt); cleared on entry to SolveAssuming.
	stop atomic.Bool

	// scratch buffers, reused across calls so the hot loops allocate
	// only when a buffer grows.
	seen       []bool
	analyzeTS  []Lit
	learntBuf  []Lit
	redStack   []Lit
	redUndo    []Lit
	addBuf     []Lit
	addMark    []int8 // 0 unseen, 1 positive seen, 2 negative seen
	actScratch []float64

	// statistics
	Stats Stats

	// MaxConflicts, when positive, aborts Solve with Unknown after
	// that many conflicts. Zero means no limit.
	MaxConflicts int64

	// RestartBase scales the Luby restart sequence: the first restart
	// fires after RestartBase conflicts. Zero means 100, the default.
	// Portfolio solving races solvers that differ in this knob.
	RestartBase int64

	// Decay is the VSIDS activity decay divisor in (0, 1); smaller
	// values focus harder on recent conflicts. Zero means 0.95.
	Decay float64
}

// Stats counts solver work, exposed for the scalability experiments.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	Deleted      int64
	Simplifies   int64 // Simplify passes run
	Subsumed     int64 // clauses removed by subsumption or satisfaction
	Strengthened int64 // literals removed by self-subsumption/stripping
	Compactions  int64 // arena re-pack passes
}

// Minus returns the component-wise difference s − o: the work done
// between two snapshots of a solver's cumulative statistics.
func (s Stats) Minus(o Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - o.Decisions,
		Propagations: s.Propagations - o.Propagations,
		Conflicts:    s.Conflicts - o.Conflicts,
		Restarts:     s.Restarts - o.Restarts,
		Learned:      s.Learned - o.Learned,
		Deleted:      s.Deleted - o.Deleted,
		Simplifies:   s.Simplifies - o.Simplifies,
		Subsumed:     s.Subsumed - o.Subsumed,
		Strengthened: s.Strengthened - o.Strengthened,
		Compactions:  s.Compactions - o.Compactions,
	}
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, ok: true}
	s.heap.s = s
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of stored clauses — problem plus
// learned. Inprocessing schedules itself on the growth of this count.
func (s *Solver) NumClauses() int { return len(s.clauses) + len(s.learnts) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.phase = append(s.phase, false)
	s.prefPol = append(s.prefPol, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.addMark = append(s.addMark, 0)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v)
	return v
}

// SetPreferredPolarity sets the polarity first tried when the solver
// decides on v before any phase has been saved for it. The learner
// biases transition-function variables to false so that extracted
// automata contain only witnessed transitions.
func (s *Solver) SetPreferredPolarity(v int, polarity bool) {
	s.prefPol[v] = polarity
	s.phase[v] = polarity
}

func (s *Solver) value(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lFalse) {
		return lTrue
	}
	return lFalse
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// AddClause adds a clause over the given literals. It returns false
// when the clause makes the formula trivially unsatisfiable at the top
// level. Adding a clause after a Sat result backtracks the solver to
// decision level 0 and invalidates the model, so callers must copy any
// model values they need first.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		s.backtrack(0)
	}
	// Normalise: drop duplicate and false literals, detect
	// tautologies and satisfied clauses. Var-indexed marks replace a
	// map so the normalisation never allocates.
	norm := s.addBuf[:0]
	sat, taut := false, false
	for _, l := range lits {
		if l.Var() >= s.NumVars() || l < 0 {
			panic(fmt.Sprintf("sat: literal %d references unknown variable", l))
		}
		mark := int8(1)
		if l.Sign() {
			mark = 2
		}
		switch {
		case s.value(l) == lTrue || s.addMark[l.Var()] == 3-mark:
			sat, taut = true, true
		case s.value(l) == lFalse || s.addMark[l.Var()] == mark:
			// skip
		default:
			s.addMark[l.Var()] = mark
			norm = append(norm, l)
		}
		if taut {
			break
		}
	}
	for _, l := range norm {
		s.addMark[l.Var()] = 0
	}
	s.addBuf = norm[:0]
	if sat {
		return true
	}
	switch len(norm) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(norm[0], crefUndef) {
			s.ok = false
			return false
		}
		if s.propagate() != crefUndef {
			s.ok = false
			return false
		}
		return true
	default:
		c := s.ar.alloc(norm, false)
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

// attach installs the clause's two watchers, each blocking on the
// other watched literal.
func (s *Solver) attach(c cref) {
	lits := s.ar.litsOf(c)
	s.watches[lits[0].Not()] = append(s.watches[lits[0].Not()], watcher{c: c, blocker: lits[1]})
	s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{c: c, blocker: lits[0]})
}

// detach removes the clause's two watchers.
func (s *Solver) detach(c cref) {
	lits := s.ar.litsOf(c)
	for _, w := range [2]Lit{lits[0].Not(), lits[1].Not()} {
		list := s.watches[w]
		for i := range list {
			if list[i].c == c {
				list[i] = list[len(list)-1]
				s.watches[w] = list[:len(list)-1]
				break
			}
		}
	}
}

// removeClause detaches and arena-deletes c.
func (s *Solver) removeClause(c cref) {
	s.detach(c)
	s.ar.del(c)
}

// enqueue assigns literal l with the given reason clause. It returns
// false when l is already false.
func (s *Solver) enqueue(l Lit, from cref) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause
// or crefUndef. Watch lists are compacted in place; a watcher whose
// blocker is already true is skipped without loading the clause.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[l]
		j := 0
		confl := crefUndef
	outer:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			lits := s.ar.litsOf(w.c)
			// Ensure the false literal is lits[1].
			if lits[0] == l.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			// Satisfied by the other watch?
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{c: w.c, blocker: first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nw := lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c: w.c, blocker: first})
					continue outer
				}
			}
			// Unit or conflicting.
			ws[j] = watcher{c: w.c, blocker: first}
			j++
			if !s.enqueue(first, w.c) {
				confl = w.c
				// Conflict: keep the remaining watchers.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.qhead = len(s.trail)
			}
		}
		s.watches[l] = ws[:j]
		if confl != crefUndef {
			return confl
		}
	}
	return crefUndef
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level. The
// returned slice is scratch, valid until the next call.
func (s *Solver) analyze(confl cref) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], 0) // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := int32(len(s.trailLim))
	s.analyzeTS = s.analyzeTS[:0]

	for {
		s.bumpClause(confl)
		clits := s.ar.litsOf(confl)
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal slot of the reason
		}
		for _, q := range clits[start:] {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.analyzeTS = append(s.analyzeTS, q)
			s.bumpVar(v)
			if s.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Not()

	// Clause minimisation: remove literals implied by the rest.
	minimised := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			minimised = append(minimised, q)
		}
	}
	learnt = minimised

	// Compute backtrack level: the highest level among the
	// non-asserting literals.
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if lv := int(s.level[learnt[i].Var()]); lv > btLevel {
			btLevel = lv
			// Move the max-level literal to slot 1 so it is
			// watched (needed for correct propagation after
			// backjumping).
			learnt[1], learnt[i] = learnt[i], learnt[1]
		}
	}

	// Clear seen flags.
	for _, q := range s.analyzeTS {
		s.seen[q.Var()] = false
	}
	s.learntBuf = learnt
	return learnt, btLevel
}

// redundant reports whether literal q is implied by the other literals
// of the learnt clause (its reason chain stays within seen literals).
func (s *Solver) redundant(q Lit) bool {
	if s.reason[q.Var()] == crefUndef {
		return false
	}
	stack := append(s.redStack[:0], q)
	undo := s.redUndo[:0]
	defer func() {
		s.redStack = stack[:0]
		s.redUndo = undo[:0]
	}()
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := s.reason[l.Var()]
		if c == crefUndef {
			// Decision reached: q is not redundant; roll back
			// marks made during this check.
			for _, u := range undo {
				s.seen[u.Var()] = false
			}
			return false
		}
		for _, x := range s.ar.litsOf(c)[1:] {
			v := x.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			undo = append(undo, x)
			s.analyzeTS = append(s.analyzeTS, x)
			stack = append(stack, x)
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c cref) {
	if s.ar.learnt(c) {
		s.ar.setActivity(c, s.ar.activity(c)+1)
	}
}

func (s *Solver) decayActivities() {
	d := s.Decay
	if d == 0 {
		d = 0.95
	}
	s.varInc /= d
}

// BumpActivity raises variable v's activity by the given amount.
// Seeding activities before the first solve changes the initial
// branching order — one of the portfolio's diversification knobs.
func (s *Solver) BumpActivity(v int, amount float64) {
	if amount <= 0 {
		return
	}
	s.activity[v] += amount
	s.heap.update(v)
}

// Interrupt makes the in-progress (or next) solve return Unknown at
// the next conflict or decision. It is the only Solver method safe to
// call from another goroutine; a portfolio uses it to stop losing
// solvers promptly. The flag clears when a new solve starts.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// backtrack undoes assignments above the given level.
func (s *Solver) backtrack(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
		s.heap.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

// pickBranchLit chooses the unassigned variable with the highest
// activity, using the saved phase.
func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.heap.removeMax()
		if !ok {
			return -1
		}
		if s.assign[v] == lUndef {
			if s.phase[v] {
				return Pos(v)
			}
			return Neg(v)
		}
	}
}

// luby computes the Luby restart sequence element for index i
// (1-based): 1, 1, 2, 1, 1, 2, 4, …
func luby(i int64) int64 {
	x := i - 1
	// Find the finite subsequence containing x and its size.
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// locked reports whether c is the reason of a current assignment (its
// asserting literal is lits[0]; propagation never swaps it away while
// the assignment stands).
func (s *Solver) locked(c cref) bool {
	l := s.ar.litsOf(c)[0]
	return s.value(l) == lTrue && s.reason[l.Var()] == c
}

// reduceDB removes the less active half of the learned clauses,
// keeping reasons of current assignments.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 4 {
		return
	}
	// Partial selection: simple threshold at median activity.
	if cap(s.actScratch) < len(s.learnts) {
		s.actScratch = make([]float64, len(s.learnts))
	}
	acts := s.actScratch[:len(s.learnts)]
	for i, c := range s.learnts {
		acts[i] = float64(s.ar.activity(c))
	}
	med := quickMedian(acts)
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if float64(s.ar.activity(c)) > med || s.ar.size(c) <= 2 || s.locked(c) {
			kept = append(kept, c)
			continue
		}
		s.removeClause(c)
		s.Stats.Deleted++
	}
	s.learnts = kept
	s.maybeCompact()
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Selection by repeated partition (average linear time).
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// maybeCompact re-packs the arena when deleted clauses and stripped
// literals waste more than half of it. Compaction allocates a fresh
// slab sized to the live data, relocates problem clauses then learnts
// in list order (so relocation is deterministic), and rewrites every
// cref holder: the clause lists, the watcher lists, and the reasons of
// current assignments.
func (s *Solver) maybeCompact() {
	if s.ar.wasted < 1024 || 2*s.ar.wasted <= len(s.ar.slab) {
		return
	}
	s.Stats.Compactions++
	old := s.ar
	s.ar = arena{slab: make([]Lit, 0, len(old.slab)-old.wasted)}
	remap := make(map[cref]cref, len(s.clauses)+len(s.learnts))
	reloc := func(list []cref) {
		for i, c := range list {
			nc := s.ar.alloc(old.litsOf(c), old.learnt(c))
			if old.learnt(c) {
				s.ar.setActivity(nc, old.activity(c))
			}
			remap[c] = nc
			list[i] = nc
		}
	}
	reloc(s.clauses)
	reloc(s.learnts)
	for i := range s.watches {
		for j := range s.watches[i] {
			s.watches[i][j].c = remap[s.watches[i][j].c]
		}
	}
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != crefUndef {
			if nc, ok := remap[r]; ok {
				s.reason[v] = nc
			} else {
				// A level-0 reason whose clause was removed by
				// inprocessing; level-0 assignments are permanent, so
				// the reason is never consulted again.
				s.reason[v] = crefUndef
			}
		}
	}
}

// Solve searches for a satisfying assignment of all added clauses. It
// may be called repeatedly, with clauses added in between; learned
// clauses persist across calls.
func (s *Solver) Solve() Status { return s.SolveAssuming() }

// SolveAssuming solves the added clauses under the given temporary
// assumptions, placed as the first decision levels of the search. The
// assumptions hold for this call only; clauses learned during the
// search mention none of them and persist for the next call, which is
// what makes repeated solve/block/solve loops cheap. An Unsat result
// caused by the assumptions (rather than the clauses alone) leaves the
// solver reusable — ok stays true — and records the subset of
// assumptions responsible, available from UnsatCore.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	s.stop.Store(false)
	s.core = nil
	if !s.ok {
		s.core = []Lit{}
		return Unsat
	}
	s.backtrack(0)
	if c := s.propagate(); c != crefUndef {
		s.ok = false
		s.core = []Lit{}
		return Unsat
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	defer func() { s.assumptions = s.assumptions[:0] }()

	base := s.RestartBase
	if base <= 0 {
		base = 100
	}
	var restarts int64
	conflictsAtStart := s.Stats.Conflicts
	maxLearnts := int64(len(s.clauses)/3 + 100)
	for {
		restarts++
		budget := base * luby(restarts)
		st := s.search(budget, &maxLearnts)
		if st != Unknown {
			// On Sat the trail is left intact so the model stays
			// readable; AddClause and the next solve backtrack it.
			return st
		}
		if s.stop.Load() {
			s.backtrack(0)
			return Unknown
		}
		s.Stats.Restarts++
		if s.MaxConflicts > 0 && s.Stats.Conflicts-conflictsAtStart >= s.MaxConflicts {
			s.backtrack(0)
			return Unknown
		}
	}
}

// UnsatCore returns the final conflict of the last Unsat result: a
// subset of the assumptions passed to SolveAssuming that is jointly
// inconsistent with the clauses. It is empty but non-nil when the
// clauses are unsatisfiable regardless of the assumptions, and nil
// when the last solve did not return Unsat. The slice is only valid
// until the next solve.
func (s *Solver) UnsatCore() []Lit { return s.core }

// search runs CDCL until a result, a conflict budget exhaustion
// (returns Unknown, triggering a restart), or an interrupt. Pending
// assumptions are installed as decision levels before any free
// decision; an assumption found false ends the search with Unsat and
// a final conflict, without condemning the clause set.
func (s *Solver) search(budget int64, maxLearnts *int64) Status {
	var conflicts int64
	for {
		if s.stop.Load() {
			s.backtrack(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.Stats.Conflicts++
			conflicts++
			if len(s.trailLim) == 0 {
				s.ok = false
				s.core = []Lit{}
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], crefUndef) {
					s.ok = false
					s.core = []Lit{}
					return Unsat
				}
			} else {
				c := s.ar.alloc(learnt, true)
				s.learnts = append(s.learnts, c)
				s.Stats.Learned++
				s.attach(c)
				if !s.enqueue(learnt[0], c) {
					s.ok = false
					s.core = []Lit{}
					return Unsat
				}
			}
			s.decayActivities()
			continue
		}
		if conflicts >= budget {
			s.backtrack(0)
			return Unknown
		}
		if int64(len(s.learnts)) > *maxLearnts {
			s.reduceDB()
			*maxLearnts = *maxLearnts + *maxLearnts/10
		}
		// Install pending assumptions as the next decision levels.
		// A backjump may strip assumption levels, so this re-walks
		// from the current depth every time.
		for placed := false; len(s.trailLim) < len(s.assumptions); {
			p := s.assumptions[len(s.trailLim)]
			switch s.value(p) {
			case lFalse:
				s.analyzeFinal(p)
				s.backtrack(0)
				return Unsat
			case lTrue:
				// Already implied: open an empty level so the
				// level index keeps tracking the assumption
				// index.
				s.trailLim = append(s.trailLim, len(s.trail))
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(p, crefUndef)
				placed = true
			}
			if placed {
				break // propagate before the next assumption
			}
		}
		if len(s.trail) > s.qhead {
			continue // propagate the assumption just placed
		}
		l := s.pickBranchLit()
		if l == -1 {
			return Sat // all variables assigned
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(l, crefUndef)
	}
}

// analyzeFinal computes the final conflict after assumption p was
// found false: the subset of assumptions whose propagation forced ¬p,
// plus p itself. It walks the trail top-down from the first decision
// level, expanding marked implied literals through their reasons and
// collecting marked assumption decisions (the only reason-free
// assignments above level 0 while assumptions are being placed).
func (s *Solver) analyzeFinal(p Lit) {
	s.core = []Lit{p}
	if s.level[p.Var()] == 0 || len(s.trailLim) == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == crefUndef {
			s.core = append(s.core, s.trail[i])
		} else {
			for _, q := range s.ar.litsOf(r)[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// ResetForNextSolve backtracks to level 0 so further clauses can be
// added after a Sat result. Model values become invalid.
func (s *Solver) ResetForNextSolve() { s.backtrack(0) }

// subsumeBudget caps the literal comparisons one Simplify pass spends
// on subsumption, so inprocessing stays a bounded, deterministic slice
// of the solve time regardless of formula size.
const subsumeBudget = 4_000_000

// Simplify performs deterministic level-0 inprocessing between
// solves: satisfied-clause elimination, false-literal stripping, and
// forward plus self-subsumption over the problem clauses. It preserves
// logical equivalence of the formula (every model before is a model
// after, restricted to the same clauses), so callers may interleave it
// freely with Solve/SolveAssuming. Returns false when the formula is
// found unsatisfiable at the top level.
func (s *Solver) Simplify() bool {
	if !s.ok {
		return false
	}
	s.backtrack(0)
	if s.propagate() != crefUndef {
		s.ok = false
		return false
	}
	s.Stats.Simplifies++
	// Level-0 assignments are permanent and conflict analysis skips
	// level-0 variables, so their reasons are never consulted again.
	// Clearing them now lets elimination drop those clauses without
	// leaving dangling crefs behind.
	for _, l := range s.trail {
		s.reason[l.Var()] = crefUndef
	}
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
	if s.ok {
		s.subsume()
	}
	s.maybeCompact()
	return s.ok
}

// simplifyList drops clauses satisfied at level 0 and strips false
// literals from the rest. Watched literals are never false here: after
// full level-0 propagation a clause with a false watch is either
// satisfied or would have propagated, so stripping only touches
// positions ≥ 2 and the watchers stay valid.
func (s *Solver) simplifyList(list []cref) []cref {
	kept := list[:0]
	for _, c := range list {
		lits := s.ar.litsOf(c)
		satisfied := false
		for _, l := range lits {
			if s.value(l) == lTrue {
				satisfied = true
				break
			}
		}
		if satisfied {
			s.removeClause(c)
			s.Stats.Subsumed++
			continue
		}
		j := 0
		for _, l := range lits {
			if s.value(l) != lFalse {
				lits[j] = l
				j++
			}
		}
		if j < len(lits) {
			s.Stats.Strengthened += int64(len(lits) - j)
			s.ar.shrink(c, j)
		}
		kept = append(kept, c)
	}
	return kept
}

// subsume runs forward and self-subsumption over the problem clauses:
// a clause C subsumes D when C ⊆ D (D is removed); when C becomes a
// subset of D after flipping exactly one literal p, resolution on p
// strengthens D by removing ¬p. Candidate pairs come from occurrence
// lists on the least-frequent variable of C, pre-filtered by 64-bit
// variable signatures; iteration order is list order throughout, so
// the pass is deterministic.
func (s *Solver) subsume() {
	nv := s.NumVars()
	occ := make([][]cref, nv)
	sigs := make(map[cref]uint64, len(s.clauses))
	for _, c := range s.clauses {
		var sig uint64
		for _, l := range s.ar.litsOf(c) {
			occ[l.Var()] = append(occ[l.Var()], c)
			sig |= 1 << (uint(l.Var()) & 63)
		}
		sigs[c] = sig
	}
	budget := subsumeBudget
	for _, c := range s.clauses {
		if s.ar.deleted(c) {
			continue
		}
		clits := s.ar.litsOf(c)
		// Scan the occurrence list of c's least-frequent variable:
		// every clause containing all of c's literals is in it.
		mv := clits[0].Var()
		var csig uint64
		for _, l := range clits {
			if len(occ[l.Var()]) < len(occ[mv]) {
				mv = l.Var()
			}
			csig |= 1 << (uint(l.Var()) & 63)
		}
		for _, d := range occ[mv] {
			if d == c || s.ar.deleted(d) || s.ar.deleted(c) {
				continue
			}
			if budget <= 0 {
				return
			}
			dlits := s.ar.litsOf(d)
			if len(dlits) < len(clits) || csig&^sigs[d] != 0 {
				continue
			}
			budget -= len(dlits)
			flip, ok := subsumes(clits, dlits)
			if !ok {
				continue
			}
			if flip == -1 {
				s.removeClause(d)
				s.Stats.Subsumed++
				continue
			}
			if !s.strengthen(d, flip) {
				return
			}
			// c's own literals may have changed if d's strengthening
			// propagated a unit that falsified one of them; re-read.
			if s.ar.deleted(c) {
				break
			}
			clits = s.ar.litsOf(c)
		}
	}
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !s.ar.deleted(c) {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
}

// subsumes checks C ⊆ D modulo at most one flipped literal. It returns
// (-1, true) for plain subsumption, (q, true) when exactly one literal
// of C appears in D as its negation q (strengthen D by removing q),
// and (_, false) otherwise.
func subsumes(c, d []Lit) (Lit, bool) {
	var flip Lit = -1
	for _, p := range c {
		exact, neg := false, false
		for _, q := range d {
			if q == p {
				exact = true
				break
			}
			if q == p.Not() {
				neg = true
			}
		}
		if exact {
			continue
		}
		if neg && flip == -1 {
			flip = p.Not()
			continue
		}
		return -1, false
	}
	return flip, true
}

// strengthen removes literal q from clause d at level 0, re-watching
// or — when d becomes unit — propagating. Returns false when the
// propagation exposes top-level unsatisfiability.
func (s *Solver) strengthen(d cref, q Lit) bool {
	s.detach(d)
	lits := s.ar.litsOf(d)
	j := 0
	for _, l := range lits {
		if l != q {
			lits[j] = l
			j++
		}
	}
	s.ar.shrink(d, j)
	s.Stats.Strengthened++
	if j == 1 {
		s.ar.del(d)
		if !s.enqueue(lits[0], crefUndef) || s.propagate() != crefUndef {
			s.ok = false
			return false
		}
		return true
	}
	s.attach(d)
	return true
}

// varHeap is a max-heap of variables ordered by activity.
type varHeap struct {
	s       *Solver
	heap    []int
	indices []int // var → heap position, -1 when absent
}

func (h *varHeap) less(a, b int) bool { return h.s.activity[a] > h.s.activity[b] }

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if len(h.indices) > v && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}

func (h *varHeap) removeMax() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.down(0)
	}
	return v, true
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[c]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}
