package sat

import (
	"math/rand"
	"testing"
)

// randomInstance generates a random clause set with mixed widths —
// wide enough to exercise subsumption (narrow clauses subsuming wide
// ones occur naturally).
func randomInstance(r *rand.Rand, nVars, nClauses int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		w := 1 + r.Intn(5)
		c := make([]Lit, w)
		for j := range c {
			v := r.Intn(nVars)
			if r.Intn(2) == 0 {
				c[j] = Pos(v)
			} else {
				c[j] = Neg(v)
			}
		}
		clauses[i] = c
	}
	return clauses
}

// lexLeastModel extracts the lexicographically least model (false
// preferred) by assumption probing — the same canonicalisation
// discipline internal/learn uses to pin extracted automata. It is a
// function of the constraint set alone, so any two equivalence-
// preserving solvers must agree on it.
func lexLeastModel(t *testing.T, s *Solver, nVars int) []bool {
	t.Helper()
	fixed := make([]Lit, 0, nVars)
	model := make([]bool, nVars)
	for v := 0; v < nVars; v++ {
		switch s.SolveAssuming(append(fixed, Neg(v))...) {
		case Sat:
			fixed = append(fixed, Neg(v))
		case Unsat:
			fixed = append(fixed, Pos(v))
			model[v] = true
		default:
			t.Fatal("probe returned Unknown")
		}
	}
	if s.SolveAssuming(fixed...) != Sat {
		t.Fatal("lex-least assignment not a model")
	}
	return model
}

// TestSimplifyPreservesLexLeastModel is the inprocessing equivalence
// property: on random instances, a solver that runs Simplify between
// solves must agree with an untouched solver on satisfiability and on
// the lex-least model obtained by assumption probing.
func TestSimplifyPreservesLexLeastModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 150; round++ {
		nVars := 4 + r.Intn(8)
		clauses := randomInstance(r, nVars, 3+r.Intn(4*nVars))
		want, _ := bruteForce(nVars, clauses)

		plain := mkSolver(nVars, clauses)
		inproc := mkSolver(nVars, clauses)
		okSimp := inproc.Simplify()

		gotP, gotI := plain.Solve(), inproc.Solve()
		if (gotP == Sat) != want || (gotI == Sat) != want {
			t.Fatalf("round %d: plain=%v inproc=%v brute=%v (cnf %v)",
				round, gotP, gotI, want, clauses)
		}
		if !want {
			if okSimp && inproc.Simplify() {
				// Simplify may or may not expose top-level UNSAT
				// itself; after an Unsat solve it must report it.
				t.Fatalf("round %d: Simplify true after Unsat solve", round)
			}
			continue
		}
		checkModel(t, inproc, clauses)

		// Simplify mid-probing too: the lex-least model is a function
		// of the constraint set, so interleaving passes cannot move it.
		inproc.Simplify()
		mp := lexLeastModel(t, plain, nVars)
		mi := lexLeastModel(t, inproc, nVars)
		for v := range mp {
			if mp[v] != mi[v] {
				t.Fatalf("round %d: lex-least models differ at var %d: %v vs %v (cnf %v)",
					round, v, mp, mi, clauses)
			}
		}
	}
}

// TestSimplifyCoreSound checks that cores produced after inprocessing
// are still sound: a subset of the assumptions, jointly inconsistent
// with the (original) clauses.
func TestSimplifyCoreSound(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for round := 0; round < 150; round++ {
		nVars := 4 + r.Intn(8)
		clauses := randomInstance(r, nVars, 3+r.Intn(4*nVars))
		var assumptions []Lit
		for v := 0; v < 2+r.Intn(3) && v < nVars; v++ {
			a := Pos(r.Intn(nVars))
			if r.Intn(2) == 0 {
				a = a.Not()
			}
			assumptions = append(assumptions, a)
		}
		want := bruteForceAssuming(nVars, clauses, assumptions)

		s := mkSolver(nVars, clauses)
		s.Simplify()
		got := s.SolveAssuming(assumptions...)
		if (got == Sat) != want {
			t.Fatalf("round %d: SolveAssuming=%v brute=%v (cnf %v assume %v)",
				round, got, want, clauses, assumptions)
		}
		if got != Unsat {
			continue
		}
		core := s.UnsatCore()
		if core == nil {
			t.Fatal("nil core after Unsat")
		}
		inA := map[Lit]bool{}
		for _, a := range assumptions {
			inA[a] = true
		}
		for _, l := range core {
			if !inA[l] {
				t.Fatalf("core literal %v not among assumptions %v", l, assumptions)
			}
		}
		if bruteForceAssuming(nVars, clauses, core) {
			t.Fatalf("core %v not inconsistent (cnf %v)", core, clauses)
		}
	}
}

// TestSimplifySubsumption exercises the subsumption machinery
// directly: plain subsumption removes a superset clause, and
// self-subsuming resolution strengthens one.
func TestSimplifySubsumption(t *testing.T) {
	a, b, c, d := Pos(0), Pos(1), Pos(2), Pos(3)
	s := mkSolver(4, [][]Lit{
		{a, b},          // subsumes the next clause
		{a, b, c},       // removed
		{a.Not(), b, d}, // strengthened to (b, d) by resolution with (a, b)...
	})
	// (a,b) vs (¬a,b,d): a flips, b matches → remove ¬a from the latter.
	if !s.Simplify() {
		t.Fatal("Simplify reported top-level unsat")
	}
	if s.Stats.Subsumed == 0 {
		t.Errorf("no clause subsumed (stats %+v)", s.Stats)
	}
	if s.Stats.Strengthened == 0 {
		t.Errorf("no literal strengthened (stats %+v)", s.Stats)
	}
	// The strengthened set is {(a,b), (b,d)}; forcing b false must now
	// propagate both a and d.
	if st := s.SolveAssuming(b.Not()); st != Sat {
		t.Fatalf("SolveAssuming(¬b) = %v", st)
	}
	if !s.Value(0) || !s.Value(3) {
		t.Errorf("strengthening lost implications: a=%v d=%v", s.Value(0), s.Value(3))
	}
	_ = c
}

// TestSimplifyFindsTopLevelUnsat: strengthening can cascade into a
// top-level contradiction, which Simplify must report (and the next
// solve must confirm).
func TestSimplifyFindsTopLevelUnsat(t *testing.T) {
	a, b := Pos(0), Pos(1)
	s := mkSolver(2, [][]Lit{
		{a, b}, {a.Not(), b}, {a, b.Not()}, {a.Not(), b.Not()},
	})
	if s.Simplify() {
		// Not strictly guaranteed by the API, but this instance is
		// fully resolved by one self-subsumption pass.
		t.Fatal("Simplify missed the contradiction")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve after failed Simplify = %v", st)
	}
}

// TestArenaCompaction drives the clause arena past its waste threshold
// and checks that compaction preserves the clause set and solvability.
func TestArenaCompaction(t *testing.T) {
	const nVars = 50
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	r := rand.New(rand.NewSource(3))
	var clauses [][]Lit
	for i := 0; i < 800; i++ {
		c := []Lit{Pos(r.Intn(nVars)), Neg(r.Intn(nVars)), Pos(r.Intn(nVars))}
		clauses = append(clauses, c)
		s.AddClause(c...)
	}
	before := solverCNF(s)
	// Delete two thirds of the stored clauses directly (white box).
	kept := s.clauses[:0]
	var keptCNF [][]Lit
	for i, c := range s.clauses {
		if i%3 != 0 {
			s.removeClause(c)
			continue
		}
		kept = append(kept, c)
		keptCNF = append(keptCNF, append([]Lit(nil), s.ar.litsOf(c)...))
	}
	s.clauses = kept
	s.maybeCompact()
	if s.Stats.Compactions == 0 {
		t.Fatalf("compaction did not trigger (wasted %d, slab %d)", s.ar.wasted, len(s.ar.slab))
	}
	if s.ar.wasted != 0 {
		t.Errorf("wasted = %d after compaction", s.ar.wasted)
	}
	for i, c := range s.clauses {
		lits := s.ar.litsOf(c)
		if len(lits) != len(keptCNF[i]) {
			t.Fatalf("clause %d changed length after compaction", i)
		}
		for j := range lits {
			if lits[j] != keptCNF[i][j] {
				t.Fatalf("clause %d literal %d changed: %v vs %v", i, j, lits[j], keptCNF[i][j])
			}
		}
	}
	if st := s.Solve(); st != Sat && st != Unsat {
		t.Fatalf("post-compaction solve = %v", st)
	}
	if st := s.Solve(); st == Sat {
		checkModel(t, s, keptCNF)
	}
	_ = before
}

// TestSolveAllocsSteadyState is the allocation audit guard: once the
// solver's scratch buffers have warmed up, a re-solve of an unchanged
// satisfiable instance (phase saving walks straight back to the model,
// so no conflicts occur) must not allocate on the hot paths.
func TestSolveAllocsSteadyState(t *testing.T) {
	nVars := 40
	var s *Solver
	for seed := int64(0); ; seed++ {
		if seed == 64 {
			t.Fatal("no satisfiable random instance in 64 seeds")
		}
		r := rand.New(rand.NewSource(seed))
		s = mkSolver(nVars, randomInstance(r, nVars, 80))
		if s.Solve() == Sat {
			break
		}
	}
	s.Solve() // warm every buffer at its final size
	allocs := testing.AllocsPerRun(50, func() {
		if s.Solve() != Sat {
			t.Fatal("re-solve flipped status")
		}
	})
	// Propagation, decisions, trail and watch updates must all reuse
	// storage; the only tolerated allocations are incidental (e.g. a
	// rare heap growth), hence a small bound rather than exactly 0.
	if allocs > 2 {
		t.Errorf("steady-state Solve allocates %.1f times per call", allocs)
	}
}

// BenchmarkSolveConflictRate measures raw CDCL throughput — conflicts
// per second on PHP(8,7), every solve an identical full UNSAT proof —
// the number BENCH_solve.json pins.
func BenchmarkSolveConflictRate(b *testing.B) {
	nv, clauses := pigeonhole(8, 7)
	var conflicts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mkSolver(nv, clauses)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) not UNSAT")
		}
		conflicts += s.Stats.Conflicts
	}
	b.ReportMetric(float64(conflicts)/b.Elapsed().Seconds(), "conflicts/s")
}

// BenchmarkSolveInprocessed is the same proof with a Simplify pass
// after clause loading, as the learner's portfolio runs it.
func BenchmarkSolveInprocessed(b *testing.B) {
	nv, clauses := pigeonhole(8, 7)
	var conflicts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mkSolver(nv, clauses)
		s.Simplify()
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) not UNSAT")
		}
		conflicts += s.Stats.Conflicts
	}
	b.ReportMetric(float64(conflicts)/b.Elapsed().Seconds(), "conflicts/s")
}
