package experiments

import (
	"fmt"
	"time"
)

// PropertyResult is one checked safety property of a learned model.
type PropertyResult struct {
	Case     string
	Property string
	Holds    bool
	Expected bool
}

// CheckProperties learns the USB Slot and RT-Linux models and checks
// the safety properties their specifications imply — the workflow the
// paper's conclusion sketches (learned models as candidate invariants
// to be checked and then assumed). Each entry records whether the
// property holds of the learned model and whether the specification
// expects it to.
func CheckProperties() ([]PropertyResult, error) {
	var out []PropertyResult

	// USB Slot: the xHCI spec's slot-command ordering.
	slotCase, err := CaseByName("USB Slot")
	if err != nil {
		return nil, err
	}
	slot, err := LearnCase(slotCase, time.Minute)
	if err != nil {
		return nil, err
	}
	g := func(cmd string) string { return "event = '" + cmd + "'" }
	m := slot.Automaton
	out = append(out,
		PropertyResult{"USB Slot", "ENABLE_SLOT precedes ADDR_DEV", m.Precedes(g("CR_ENABLE_SLOT"), g("CR_ADDR_DEV_BSR0")), true},
		PropertyResult{"USB Slot", "ADDR_DEV precedes CONFIG_END", m.Precedes(g("CR_ADDR_DEV_BSR0"), g("CR_CONFIG_END")), true},
		PropertyResult{"USB Slot", "CONFIG_END precedes STOP_END", m.Precedes(g("CR_CONFIG_END"), g("CR_STOP_END")), true},
		PropertyResult{"USB Slot", "never DISABLE then STOP", m.Never([]string{g("CR_DISABLE_SLOT"), g("CR_STOP_END")}), true},
		PropertyResult{"USB Slot", "never double ENABLE", m.Never([]string{g("CR_ENABLE_SLOT"), g("CR_ENABLE_SLOT")}), true},
		PropertyResult{"USB Slot", "RESET always followed by CONFIG_END", m.AlwaysFollowedBy(g("CR_RESET_DEVICE"), []string{g("CR_CONFIG_END")}), true},
	)

	// RT-Linux: the thread-model invariants of Fig 6.
	rtCase, err := CaseByName("Linux Kernel")
	if err != nil {
		return nil, err
	}
	rt, err := LearnCase(rtCase, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	k := rt.Automaton
	ev := func(name string) string { return "event = '" + name + "'" }
	out = append(out,
		PropertyResult{"Linux Kernel", "waking precedes switch_in", k.Precedes(ev("sched_waking"), ev("sched_switch_in")), true},
		PropertyResult{"Linux Kernel", "never suspend directly after switch_in", k.Never([]string{ev("sched_switch_in"), ev("sched_switch_suspend")}), true},
		PropertyResult{"Linux Kernel", "never two switch_in in a row", k.Never([]string{ev("sched_switch_in"), ev("sched_switch_in")}), true},
		PropertyResult{"Linux Kernel", "suspend only after sched_entry", k.Precedes(ev("sched_entry"), ev("sched_switch_suspend")), true},
	)
	return out, nil
}

// Describe renders one property result row.
func (r PropertyResult) Describe() string {
	verdict := "HOLDS"
	if !r.Holds {
		verdict = "VIOLATED"
	}
	note := ""
	if r.Holds != r.Expected {
		note = "  (unexpected!)"
	}
	return fmt.Sprintf("%-14s %-42s %s%s", r.Case, r.Property, verdict, note)
}
