package experiments

import (
	"strings"
	"testing"
	"time"

	"repro"
)

func TestCasesWellFormed(t *testing.T) {
	cases := Cases()
	if len(cases) != 6 {
		t.Fatalf("cases = %d, want 6", len(cases))
	}
	for _, c := range cases {
		tr, err := c.Generate()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if tr.Len() != c.PaperTraceLen {
			t.Errorf("%s: trace length %d, want %d (paper Table I)", c.Name, tr.Len(), c.PaperTraceLen)
		}
		// Generators are deterministic.
		tr2, err := c.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if tr2.Len() != tr.Len() {
			t.Errorf("%s: nondeterministic generator", c.Name)
		}
	}
	if _, err := CaseByName("nope"); err == nil {
		t.Error("unknown case accepted")
	}
}

// TestLearnedStateCounts checks the headline reproduction: every
// benchmark learns a concise model within one state of the paper's
// count.
func TestLearnedStateCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range Cases() {
		c := c
		t.Run(strings.ReplaceAll(c.Name, " ", ""), func(t *testing.T) {
			t.Parallel()
			m, err := LearnCase(c, 2*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			diff := m.States - c.PaperStates
			if diff < -1 || diff > 1 {
				t.Errorf("%s: learned %d states, paper reports %d (tolerance ±1)\n%s",
					c.Name, m.States, c.PaperStates, m.Automaton)
			}
			if !m.Automaton.IsDeterministic() {
				t.Errorf("%s: nondeterministic model", c.Name)
			}
		})
	}
}

func TestTable1SmallCases(t *testing.T) {
	cases := Cases()[:2] // USB Slot, USB Attach
	rows, err := Table1(cases, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SegmentedTime <= 0 {
			t.Errorf("%s: zero segmented time", r.Name)
		}
		if !r.FullTimedOut && r.FullTime <= 0 {
			t.Errorf("%s: zero full time", r.Name)
		}
	}
}

func TestTable2SmallCases(t *testing.T) {
	cases := Cases()[:1]
	rows, err := Table2(cases, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MergeTimedOut || r.MergeStates == 0 {
		t.Errorf("merge failed: %+v", r)
	}
	if r.LearnStates == 0 {
		t.Errorf("learn failed: %+v", r)
	}
	// The headline claim: the learned model is no larger than the
	// state-merge model.
	if r.LearnStates > r.MergeStates {
		t.Errorf("learned %d states > merge %d states", r.LearnStates, r.MergeStates)
	}
}

func TestFig7SmallLengths(t *testing.T) {
	points, err := Fig7([]int{64, 128}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.SegmentedTime <= 0 {
			t.Errorf("len %d: zero segmented time", p.TraceLen)
		}
	}
}

func TestAblationWindowAgrees(t *testing.T) {
	c, err := CaseByName("Counter")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblationWindow(c, []int{2, 3, 4}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		if r.States != rows[0].States {
			t.Errorf("w=%d gives %d states, w=%d gives %d — §III-C expects agreement",
				rows[0].Window, rows[0].States, r.Window, r.States)
		}
	}
}

func TestAblationCompliance(t *testing.T) {
	c, err := CaseByName("USB Slot")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblationCompliance(c, []int{1, 2}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Looser compliance (l=1) can only need fewer or equal states.
	if rows[0].States > rows[1].States {
		t.Errorf("l=1 gives %d states > l=2 gives %d", rows[0].States, rows[1].States)
	}
}

func TestSynthStyles(t *testing.T) {
	rows, err := SynthStyles()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §VII example: x + x, not an ite chain. The point
	// is generalisation: the minimal expression extrapolates, the
	// trivial chain memorises (its size also grows with the example
	// count, while minimal stays put — compare rows 0 and 1, which
	// have three examples each).
	if rows[0].MinimalExpr != "x + x" {
		t.Errorf("doubling minimal = %q, want x + x", rows[0].MinimalExpr)
	}
	if !strings.Contains(rows[0].TrivialExpr, "ite(") {
		t.Errorf("doubling trivial = %q, want an ite chain", rows[0].TrivialExpr)
	}
	for _, r := range rows[:2] {
		if r.MinimalSize > r.TrivialSize {
			t.Errorf("%s: minimal (%d) larger than trivial (%d)", r.Name, r.MinimalSize, r.TrivialSize)
		}
	}
}

func TestSlotCoverage(t *testing.T) {
	c, err := CaseByName("USB Slot")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LearnCase(c, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rep := SlotCoverage(m)
	if len(rep.Exercised) != 6 {
		t.Errorf("exercised = %v, want 6 commands", rep.Exercised)
	}
	// BSR=1 addressing is never exercised — the paper's coverage
	// observation.
	found := false
	for _, cmd := range rep.Missing {
		if cmd == "CR_ADDR_DEV_BSR1" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing = %v, want CR_ADDR_DEV_BSR1", rep.Missing)
	}
}

func TestModelsAcceptTheirTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range Cases()[:4] {
		m, err := LearnCase(c, time.Minute)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !m.Automaton.Accepts(m.P) {
			t.Errorf("%s: model rejects its own predicate sequence", c.Name)
		}
	}
	_ = repro.LearnOptions{}
}

func TestCheckProperties(t *testing.T) {
	rows, err := CheckProperties()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d properties checked", len(rows))
	}
	for _, r := range rows {
		if r.Holds != r.Expected {
			t.Errorf("%s", r.Describe())
		}
	}
}

// TestLearnedModelsAreLanguageMinimal cross-checks the learner's
// minimality with the automaton-theoretic minimizer: minimizing a
// learned model must not shrink it much (the SAT search already
// returns the smallest N admitting the constraints; Minimize can
// merge language-equivalent states the constraint semantics keeps
// apart, so equality is not guaranteed — but a large gap would flag a
// search bug).
func TestLearnedModelsAreLanguageMinimal(t *testing.T) {
	for _, name := range []string{"USB Slot", "Counter"} {
		c, err := CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := LearnCase(c, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		min, err := m.Automaton.Minimize()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if min.NumStates() < m.States-1 {
			t.Errorf("%s: learned %d states but minimizes to %d", name, m.States, min.NumStates())
		}
	}
}
