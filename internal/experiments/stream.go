// Streaming trace generators: unlike the Gen* functions, these write
// multi-million-step traces directly to an io.Writer without ever
// materialising a trace.Trace, so the ingestion benchmarks can measure
// decode + windowing cost in isolation and the bounded-memory tests
// can learn from traces far larger than the test's heap ceiling.
package experiments

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"repro"
	"repro/internal/pipeline"
	"repro/internal/systems"
	"repro/internal/trace"
)

// StreamCounterCSV writes a steps-observation trace of a modular
// counter (count:int cycling 0 … mod−1) in the tool's CSV format. The
// predicate sequence of this trace is period-mod, so its model stays a
// handful of states no matter how long the trace runs — the shape of
// input the paper's streaming argument is about.
func StreamCounterCSV(w io.Writer, steps, mod int) error {
	if mod < 2 {
		mod = 8
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("count:int\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 16)
	for i := 0; i < steps; i++ {
		buf = strconv.AppendInt(buf[:0], int64(i%mod), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamScheduleCSV drives a registered simulated system (see
// internal/systems) along its deterministic workload schedule and
// writes the observations in the tool's CSV format, row by row in
// O(1) memory. The schedules are prefix-monotone, so for any steps the
// output is byte-identical to a prefix of WriteCSV over the
// batch-generated trace with the same seed — tracegen relies on this
// to make its -steps streaming mode and its batch mode agree.
func StreamScheduleCSV(w io.Writer, name string, seed int64, steps int) error {
	sys, err := systems.Open(name)
	if err != nil {
		return err
	}
	if steps < 1 {
		return fmt.Errorf("stream %s: need at least 1 observation", name)
	}
	sch := sys.Schema()
	cw := csv.NewWriter(w)
	header := make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		v := sch.Var(i)
		header[i] = v.Name + ":" + v.Type.String()
		if v.Role == trace.Input {
			header[i] += ":input"
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, sch.Len())
	emit := func(obs trace.Observation) error {
		for j, v := range obs {
			row[j] = v.String()
		}
		return cw.Write(row)
	}
	sys.Reset()
	next := sys.Schedule(seed)
	count := 0
	if obs, ok := sys.Init(); ok {
		if err := emit(obs); err != nil {
			return err
		}
		count++
	}
	for ; count < steps; count++ {
		obs, err := sys.Step(next())
		if err != nil {
			return fmt.Errorf("stream %s: observation %d: %w", name, count, err)
		}
		if err := emit(obs); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// StreamFIFOVCD writes a steps-timestamp VCD waveform of a FIFO whose
// occupancy ramps between empty and depth (a triangle wave, one change
// per cycle) — the hardware-flavoured counterpart of StreamCounterCSV
// for the VCD ingestion path. The single watched signal is
// fifo.level, an 8-bit bus.
func StreamFIFOVCD(w io.Writer, steps, depth int) error {
	if depth < 1 {
		depth = 4
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	header := "$timescale 1ns $end\n" +
		"$scope module fifo $end\n" +
		"$var wire 8 ! level $end\n" +
		"$upscope $end\n" +
		"$enddefinitions $end\n" +
		"$dumpvars\nb0 !\n$end\n"
	if _, err := bw.WriteString(header); err != nil {
		return err
	}
	level, dir := 0, 1
	buf := make([]byte, 0, 32)
	for i := 0; i < steps; i++ {
		if level == depth {
			dir = -1
		} else if level == 0 {
			dir = 1
		}
		level += dir
		buf = append(buf[:0], '#')
		buf = strconv.AppendInt(buf, int64(i+1), 10)
		buf = append(buf, '\n', 'b')
		buf = strconv.AppendInt(buf, int64(level), 2)
		buf = append(buf, ' ', '!', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	// Closing timestamp so the final change is flushed as its own
	// observation by the sampler.
	buf = append(buf[:0], '#')
	buf = strconv.AppendInt(buf, int64(steps+1), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	return bw.Flush()
}

// IngestRow compares the batch and streaming ingestion paths on one
// generated trace: wall time, peak live heap, and whether the two
// learned automata are byte-identical (they must be).
type IngestRow struct {
	Steps      int
	BatchWall  time.Duration
	StreamWall time.Duration
	BatchPeak  uint64 // bytes
	StreamPeak uint64 // bytes
	ObsPerSec  int64  // streaming decode+window rate
	States     int
	Identical  bool
}

// RunIngest learns a modular-counter CSV trace of each requested
// length through both paths and reports the comparison. The trace
// bytes are generated once and replayed from memory, so the
// measurement isolates decode + windowing + learning from disk I/O.
func RunIngest(stepsList []int) ([]IngestRow, error) {
	var rows []IngestRow
	for _, steps := range stepsList {
		var buf bytes.Buffer
		if err := StreamCounterCSV(&buf, steps, 8); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		opts := withWorkers(repro.LearnOptions{})

		runtime.GC()
		hs := pipeline.StartHeapSampler(time.Millisecond)
		t0 := time.Now()
		tr, err := trace.ReadCSV(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		mBatch, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", steps, err)
		}
		batchWall := time.Since(t0)
		batchPeak := hs.Stop()
		// Keep only what the comparison needs: the batch model retains
		// the expanded predicate sequence (O(n) strings), which would
		// otherwise sit in the live set and skew the streaming
		// measurement's GC pacing.
		batchAut := mBatch.Automaton.String()
		tr, mBatch = nil, nil
		_ = tr

		runtime.GC()
		hs = pipeline.StartHeapSampler(time.Millisecond)
		t0 = time.Now()
		// NewBytes selects the zero-copy decode path — the same one
		// OpenBytes serves for on-disk traces (mmap'd when possible).
		src, err := trace.NewCSVSource(trace.NewBytes(data))
		if err != nil {
			return nil, err
		}
		mStream, err := repro.LearnSource(src, opts)
		if err != nil {
			return nil, fmt.Errorf("stream %d: %w", steps, err)
		}
		streamWall := time.Since(t0)
		streamPeak := hs.Stop()

		var obsPerSec int64
		for _, st := range mStream.Stages {
			if st.Name == "predicate" {
				obsPerSec = st.Counter("obs_per_sec")
			}
		}
		rows = append(rows, IngestRow{
			Steps:      steps,
			BatchWall:  batchWall,
			StreamWall: streamWall,
			BatchPeak:  batchPeak,
			StreamPeak: streamPeak,
			ObsPerSec:  obsPerSec,
			States:     mStream.States,
			Identical:  batchAut == mStream.Automaton.String(),
		})
	}
	return rows, nil
}
