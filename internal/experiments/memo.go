// Cross-run synthesis-cache evaluation: learn each quick benchmark
// with the predicate cache disabled, cold, warm, shared between
// concurrent runs and deliberately corrupted, and check that every
// mode yields a byte-identical persisted model while the warm runs
// skip the enumerative synthesis work. RunMemo backs `repro -exp
// memo` and the committed BENCH_memo.json, and is the executable form
// of internal/synthcache's contract: the cache changes how fast a
// window predicate is found, never which predicate is found.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro"
)

// MemoRow is one benchmark × worker-count measurement of the cache.
type MemoRow struct {
	// Name is the benchmark's table name; TraceLen its trace length;
	// Workers the predicate-synthesis worker count of every leg.
	Name     string `json:"name"`
	TraceLen int    `json:"trace_len"`
	Workers  int    `json:"workers"`
	// States is the learned state count (identical in every leg).
	States int `json:"states"`
	// DisabledMS is the uncached baseline; ColdMS a first run filling
	// an empty cache directory (synthesis plus store overhead); WarmMS
	// a second run served entirely from it.
	DisabledMS float64 `json:"disabled_ms"`
	ColdMS     float64 `json:"cold_ms"`
	WarmMS     float64 `json:"warm_ms"`
	// ColdStores counts entries the cold run published; WarmHits and
	// WarmMisses the warm run's lookups (misses should be 0);
	// CorruptDetected the entries the corrupted-directory leg rejected
	// by checksum before falling back to fresh synthesis.
	ColdStores      int64 `json:"cold_stores"`
	WarmHits        int64 `json:"warm_hits"`
	WarmMisses      int64 `json:"warm_misses"`
	CorruptDetected int64 `json:"corrupt_detected"`
	// The identity flags compare each leg's persisted model bytes
	// against the cache-disabled baseline — the load-bearing claim.
	ColdIdentical    bool `json:"cold_identical"`
	WarmIdentical    bool `json:"warm_identical"`
	SharedIdentical  bool `json:"shared_identical"`
	CorruptIdentical bool `json:"corrupt_identical"`
}

// memoWorkerCounts: byte-identity is pinned at the serial path and a
// representative parallel one.
var memoWorkerCounts = []int{1, 4}

// memoSharedRuns is how many concurrent learners race one cache
// directory in the shared leg.
const memoSharedRuns = 3

// RunMemo measures every cache mode on the four quick benchmarks
// (rtlinux/integrator dominate on trace generation, not synthesis,
// and add little signal here).
func RunMemo() ([]MemoRow, error) {
	var rows []MemoRow
	for _, c := range Cases()[:4] {
		tr, err := c.Generate()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		for _, workers := range memoWorkerCounts {
			row, err := memoCase(c, tr, workers)
			if err != nil {
				return nil, fmt.Errorf("%s (j=%d): %w", c.Name, workers, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// memoCase runs all five legs of one benchmark at one worker count.
func memoCase(c Case, tr *repro.Trace, workers int) (MemoRow, error) {
	row := MemoRow{Name: c.Name, TraceLen: tr.Len(), Workers: workers}

	// Baseline: cache disabled. Every other leg must reproduce these
	// exact model bytes.
	base, states, baseMS, err := memoLearn(c, tr, workers, nil)
	if err != nil {
		return row, err
	}
	row.States, row.DisabledMS = states, baseMS

	dir, err := os.MkdirTemp("", "t2m-memo-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	// Cold: first run against an empty directory fills it.
	cold, err := repro.OpenSynthCache(dir)
	if err != nil {
		return row, err
	}
	coldBytes, _, coldMS, err := memoLearn(c, tr, workers, cold)
	if err != nil {
		return row, err
	}
	row.ColdMS = coldMS
	row.ColdStores = cold.Stats().Stores
	row.ColdIdentical = bytes.Equal(coldBytes, base)

	// Warm: a fresh handle on the filled directory, so the counters
	// cover this leg alone.
	warm, err := repro.OpenSynthCache(dir)
	if err != nil {
		return row, err
	}
	warmBytes, _, warmMS, err := memoLearn(c, tr, workers, warm)
	if err != nil {
		return row, err
	}
	st := warm.Stats()
	row.WarmMS = warmMS
	row.WarmHits, row.WarmMisses = st.Hits, st.Misses
	row.WarmIdentical = bytes.Equal(warmBytes, base)

	// Shared: concurrent learners racing one directory, each with its
	// own handle, the way independent processes share it. Each
	// regenerates its own trace so nothing is shared but the files.
	shared, err := memoShared(c, workers, base)
	if err != nil {
		return row, err
	}
	row.SharedIdentical = shared

	// Corrupt: damage every stored entry, then relearn. The checksums
	// must reject them all and the run must fall back to synthesis.
	if _, err := corruptCacheDir(dir); err != nil {
		return row, err
	}
	hurt, err := repro.OpenSynthCache(dir)
	if err != nil {
		return row, err
	}
	hurtBytes, _, _, err := memoLearn(c, tr, workers, hurt)
	if err != nil {
		return row, err
	}
	row.CorruptDetected = hurt.Stats().Corrupt
	row.CorruptIdentical = bytes.Equal(hurtBytes, base)
	return row, nil
}

// memoLearn runs one learning leg and returns the persisted model
// bytes, the state count and the wall-clock milliseconds.
func memoLearn(c Case, tr *repro.Trace, workers int, cache *repro.SynthCache) ([]byte, int, float64, error) {
	opts := c.Options
	opts.Workers = workers
	opts.Portfolio = Portfolio
	opts.Context = Context
	opts.SynthCache = cache
	t0 := time.Now()
	m, err := repro.Learn(tr, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	ms := float64(time.Since(t0).Microseconds()) / 1e3
	var buf bytes.Buffer
	if err := repro.SaveModel(&buf, m); err != nil {
		return nil, 0, 0, err
	}
	return buf.Bytes(), m.States, ms, nil
}

// memoShared races memoSharedRuns learners on one fresh cache
// directory and reports whether every one reproduced the baseline
// bytes.
func memoShared(c Case, workers int, base []byte) (bool, error) {
	dir, err := os.MkdirTemp("", "t2m-memo-shared-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	outs := make([][]byte, memoSharedRuns)
	errs := make([]error, memoSharedRuns)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Generate()
			if err != nil {
				errs[i] = err
				return
			}
			sc, err := repro.OpenSynthCache(dir)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], _, _, errs[i] = memoLearn(c, tr, workers, sc)
		}(i)
	}
	wg.Wait()
	identical := true
	for i := range outs {
		if errs[i] != nil {
			return false, errs[i]
		}
		if !bytes.Equal(outs[i], base) {
			identical = false
		}
	}
	return identical, nil
}

// corruptCacheDir flips one byte in the middle of every cache entry
// under dir — the on-disk damage (torn write, disk rot) the entry
// checksums exist to catch — and returns how many files it damaged.
func corruptCacheDir(dir string) (int, error) {
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".sce" {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(raw) == 0 {
			return nil
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}

// WriteMemoBench writes the rows as the BENCH_memo.json document.
func WriteMemoBench(w io.Writer, rows []MemoRow) error {
	doc := struct {
		Benchmark   string    `json:"benchmark"`
		Description string    `json:"description"`
		GOOS        string    `json:"goos"`
		GOARCH      string    `json:"goarch"`
		Results     []MemoRow `json:"results"`
	}{
		Benchmark:   "memo",
		Description: "Cross-run synthesis cache: wall-clock and hit/store/corrupt counts for cache-disabled, cold, warm, shared-concurrent and corrupted-directory runs, with byte-identity of every persisted model against the uncached baseline (repro -exp memo -memo-out BENCH_memo.json)",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Results:     rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
