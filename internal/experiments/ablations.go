package experiments

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/expr"
	"repro/internal/synth"
	"repro/internal/trace"
)

// WindowRow is one point of the window-size ablation (Section III-C:
// different 1 < w ≤ |P| should learn the same automaton).
type WindowRow struct {
	Window   int
	States   int
	Segments int
	Time     time.Duration
}

// AblationWindow sweeps the segmentation window on one case.
func AblationWindow(c Case, windows []int, timeout time.Duration) ([]WindowRow, error) {
	tr, err := c.Generate()
	if err != nil {
		return nil, err
	}
	var rows []WindowRow
	for _, w := range windows {
		opts := withWorkers(c.Options)
		opts.SegmentWindow = w
		opts.Timeout = timeout
		start := time.Now()
		m, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("w=%d: %w", w, err)
		}
		rows = append(rows, WindowRow{
			Window:   w,
			States:   m.States,
			Segments: m.LearnStats.Segments,
			Time:     time.Since(start),
		})
	}
	return rows, nil
}

// ComplianceRow is one point of the compliance-length ablation
// (Section III-C: higher l tightens the model towards exactness).
type ComplianceRow struct {
	L      int
	States int
	Time   time.Duration
}

// AblationCompliance sweeps the compliance length l on one case.
func AblationCompliance(c Case, ls []int, timeout time.Duration) ([]ComplianceRow, error) {
	tr, err := c.Generate()
	if err != nil {
		return nil, err
	}
	var rows []ComplianceRow
	for _, l := range ls {
		opts := withWorkers(c.Options)
		opts.ComplianceLen = l
		if opts.SegmentWindow == 0 && l > 3 {
			// The compliance window cannot exceed the segment
			// window; widen it with l.
			opts.SegmentWindow = l
		}
		opts.Timeout = timeout
		start := time.Now()
		m, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("l=%d: %w", l, err)
		}
		rows = append(rows, ComplianceRow{L: l, States: m.States, Time: time.Since(start)})
	}
	return rows, nil
}

// SymmetryRow is one point of the symmetry-breaking ablation: the
// state-ordering constraint is this implementation's own design
// choice (DESIGN.md §5), so its effect is measured explicitly.
type SymmetryRow struct {
	Name        string
	WithTime    time.Duration
	WithoutTime time.Duration
	States      int // must agree between the two runs
}

// AblationSymmetry measures learning with and without the
// state-ordering symmetry break.
func AblationSymmetry(cases []Case, timeout time.Duration) ([]SymmetryRow, error) {
	var rows []SymmetryRow
	for _, c := range cases {
		tr, err := c.Generate()
		if err != nil {
			return nil, err
		}
		opts := withWorkers(c.Options)
		opts.Timeout = timeout
		start := time.Now()
		m1, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("%s with symmetry: %w", c.Name, err)
		}
		withTime := time.Since(start)

		opts.NoSymmetryBreaking = true
		start = time.Now()
		m2, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("%s without symmetry: %w", c.Name, err)
		}
		withoutTime := time.Since(start)
		if m1.States != m2.States {
			return nil, fmt.Errorf("%s: symmetry breaking changed the result (%d vs %d states)",
				c.Name, m1.States, m2.States)
		}
		rows = append(rows, SymmetryRow{
			Name:        c.Name,
			WithTime:    withTime,
			WithoutTime: withoutTime,
			States:      m1.States,
		})
	}
	return rows, nil
}

// SynthStyleRow contrasts synthesis strategies on one example set
// (Section VII's fastsynth vs CVC4-default discussion).
type SynthStyleRow struct {
	Name        string
	MinimalExpr string
	MinimalSize int
	TrivialExpr string
	TrivialSize int
}

// SynthStyles reproduces the Section VII comparison: the minimal
// expression found by enumerative CEGIS against the trivial ite chain
// a syntax-unguided solver produces.
func SynthStyles() ([]SynthStyleRow, error) {
	type sample struct {
		name string
		ins  []int64
		outs []int64
	}
	samples := []sample{
		{"doubling 1,2,4,8 (paper §VII)", []int64{1, 2, 4}, []int64{2, 4, 8}},
		{"counter ascent", []int64{1, 2, 3}, []int64{2, 3, 4}},
		{"counter turn at 128", []int64{127, 128}, []int64{128, 127}},
	}
	vars := []synth.Var{{Name: "x", Type: expr.Int}}
	var rows []SynthStyleRow
	for _, s := range samples {
		exs := make([]synth.Example, len(s.ins))
		for i := range s.ins {
			exs[i] = synth.Example{
				In:  map[string]expr.Value{"x": expr.IntVal(s.ins[i])},
				Out: expr.IntVal(s.outs[i]),
			}
		}
		minimal, err := synth.Synthesize(vars, exs, synth.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		trivial, err := synth.IteChain(vars, exs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		rows = append(rows, SynthStyleRow{
			Name:        s.name,
			MinimalExpr: minimal.String(),
			MinimalSize: minimal.Size(),
			TrivialExpr: trivial.String(),
			TrivialSize: trivial.Size(),
		})
	}
	return rows, nil
}

// CoverageReport lists alphabet symbols of the learned model against
// the datasheet's full command set — the paper's USB Slot observation
// that unexercised scenarios are visible as missing transitions.
type CoverageReport struct {
	Exercised []string
	Missing   []string
}

// SlotCoverage compares the USB Slot model's alphabet against the full
// xHCI slot command set.
func SlotCoverage(m *repro.Model) CoverageReport {
	full := []string{
		"CR_ENABLE_SLOT", "CR_DISABLE_SLOT", "CR_ADDR_DEV_BSR0",
		"CR_ADDR_DEV_BSR1", "CR_CONFIG_END", "CR_STOP_END", "CR_RESET_DEVICE",
	}
	have := map[string]bool{}
	for _, sym := range m.Automaton.Symbols() {
		// Event predicates render as event = 'NAME'.
		for _, cmd := range full {
			if sym == "event = '"+cmd+"'" {
				have[cmd] = true
			}
		}
	}
	var rep CoverageReport
	for _, cmd := range full {
		if have[cmd] {
			rep.Exercised = append(rep.Exercised, cmd)
		} else {
			rep.Missing = append(rep.Missing, cmd)
		}
	}
	return rep
}

// TraceOf regenerates a case's trace (convenience for the CLI).
func TraceOf(c Case) (*trace.Trace, error) { return c.Generate() }
