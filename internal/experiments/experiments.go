// Package experiments defines the paper's evaluation: the six
// benchmark systems, the two tables and the scalability figure, plus
// the ablations DESIGN.md calls out. It is shared by cmd/repro (which
// prints the tables) and the repository-root benchmarks (which
// regenerate each row under `go test -bench`).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/trace"
)

// Case is one benchmark system of Section IV.
type Case struct {
	// Name as used in the paper's tables.
	Name string
	// Figure is the paper figure showing the learned model.
	Figure string
	// PaperStates is the state count the paper reports (Table II,
	// Model Learning column).
	PaperStates int
	// PaperTraceLen is the trace length the paper reports.
	PaperTraceLen int
	// Generate produces the benchmark trace.
	Generate func() (*trace.Trace, error)
	// Options are the pipeline options for this benchmark.
	Options repro.LearnOptions
}

// Cases returns the six benchmarks in the paper's Table I order.
func Cases() []Case {
	return []Case{
		{
			Name: "USB Slot", Figure: "Fig 1b", PaperStates: 4, PaperTraceLen: 39,
			Generate: GenUSBSlot,
		},
		{
			Name: "USB Attach", Figure: "Fig 3", PaperStates: 7, PaperTraceLen: 259,
			Generate: GenUSBAttach,
		},
		{
			Name: "Counter", Figure: "Fig 5", PaperStates: 4, PaperTraceLen: 447,
			Generate: GenCounter,
		},
		{
			Name: "Serial I/O Port", Figure: "Fig 2b", PaperStates: 6, PaperTraceLen: 2076,
			Generate: GenSerial,
		},
		{
			Name: "Linux Kernel", Figure: "Fig 6", PaperStates: 8, PaperTraceLen: 20165,
			Generate: GenRTLinux,
		},
		{
			Name: "Integrator", Figure: "Fig 4", PaperStates: 3, PaperTraceLen: 32768,
			Generate: GenIntegrator,
		},
	}
}

// Workers is the predicate-synthesis worker count applied to every
// experiment run (cmd/repro's -j flag). Zero means one worker per
// available CPU; 1 forces the serial path. Results are identical
// either way — only wall-clock time changes.
var Workers int

// Portfolio is the SAT solver portfolio size applied to every
// experiment run (cmd/repro's -portfolio flag). Zero or one runs the
// serial solver. The learned models are identical either way; see
// internal/learn's determinism rule.
var Portfolio int

// Telemetry, when non-nil, is attached to every experiment run
// (cmd/repro's -metrics-addr flag): counters and latency histograms
// accumulate across runs into its registry. Like Workers and
// Portfolio it never changes results.
var Telemetry *repro.Telemetry

// Context, when non-nil, cancels every experiment run at the next
// observation or solver-round boundary (cmd/repro wires its signal
// context here so ^C aborts a long evaluation cleanly).
var Context context.Context

// SynthCache, when non-nil, shares synthesized window predicates
// across every experiment run (cmd/repro's -synth-cache flag). Like
// Workers and Portfolio it never changes results: models are
// byte-identical with the cache cold, warm, shared or disabled.
var SynthCache *repro.SynthCache

// withWorkers applies the package-level worker count, portfolio size,
// telemetry, synthesis cache and cancellation context to a run's
// options.
func withWorkers(opts repro.LearnOptions) repro.LearnOptions {
	opts.Workers = Workers
	opts.Portfolio = Portfolio
	opts.Telemetry = Telemetry
	opts.Context = Context
	opts.SynthCache = SynthCache
	return opts
}

// CaseByName finds a case by its table name.
func CaseByName(name string) (Case, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("experiments: unknown case %q", name)
}

// LearnCase runs the full pipeline on one benchmark.
func LearnCase(c Case, timeout time.Duration) (*repro.Model, error) {
	tr, err := c.Generate()
	if err != nil {
		return nil, err
	}
	opts := withWorkers(c.Options)
	opts.Timeout = timeout
	return repro.Learn(tr, opts)
}

// Table1Row is one row of Table I: segmented vs non-segmented
// model-construction runtime at the same starting N.
type Table1Row struct {
	Name          string
	States        int // N the search converged to (segmented run)
	TraceLen      int
	SegmentedTime time.Duration
	FullTime      time.Duration
	FullTimedOut  bool
}

// Table1 reproduces Table I. Both runs start at the converged state
// count N for a fair comparison (the paper's methodology), and the
// non-segmented run is bounded by fullTimeout — the paper's ">16
// hours" rows are reported as timeouts.
func Table1(cases []Case, fullTimeout time.Duration) ([]Table1Row, error) {
	var rows []Table1Row
	for _, c := range cases {
		tr, err := c.Generate()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		// Discover N with a plain segmented run.
		opts := withWorkers(c.Options)
		probe, err := repro.Learn(tr, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: probe: %w", c.Name, err)
		}
		n := probe.States

		opts.StartStates = n
		segStart := time.Now()
		if _, err := repro.Learn(tr, opts); err != nil {
			return nil, fmt.Errorf("%s: segmented: %w", c.Name, err)
		}
		segTime := time.Since(segStart)

		opts.NonSegmented = true
		opts.Timeout = fullTimeout
		fullStart := time.Now()
		_, err = repro.Learn(tr, opts)
		fullTime := time.Since(fullStart)
		timedOut := false
		if err != nil {
			if !isTimeout(err) {
				return nil, fmt.Errorf("%s: full trace: %w", c.Name, err)
			}
			timedOut = true
		}
		rows = append(rows, Table1Row{
			Name:          c.Name,
			States:        n,
			TraceLen:      tr.Len(),
			SegmentedTime: segTime,
			FullTime:      fullTime,
			FullTimedOut:  timedOut,
		})
	}
	return rows, nil
}

// Table2Row is one row of Table II: state merge vs model learning.
type Table2Row struct {
	Name             string
	TraceLen         int
	MergeTime        time.Duration
	MergeStates      int
	MergeTimedOut    bool // the paper's "no model" entries
	LearnTime        time.Duration
	LearnStates      int
	PaperMergeStates string // what the paper reports, for the report
	PaperLearnStates int
}

// paperMergeStates is Table II's State Merge "Number of States" column.
var paperMergeStates = map[string]string{
	"USB Slot": "6", "USB Attach": "91", "Counter": "377",
	"Serial I/O Port": "28", "Linux Kernel": "no model", "Integrator": "no model",
}

// Table2 reproduces Table II: the MINT-style baseline on raw trace
// tokens against the full pipeline.
func Table2(cases []Case, mergeTimeout time.Duration) ([]Table2Row, error) {
	var rows []Table2Row
	for _, c := range cases {
		tr, err := c.Generate()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		words := [][]string{repro.Tokenize(tr)}

		mergeStart := time.Now()
		base, err := repro.LearnBaseline(repro.MINT, words, repro.BaselineOptions{Timeout: mergeTimeout})
		mergeTime := time.Since(mergeStart)
		mergeStates, mergeTimedOut := 0, false
		if err != nil {
			if !isTimeout(err) {
				return nil, fmt.Errorf("%s: baseline: %w", c.Name, err)
			}
			mergeTimedOut = true
		} else {
			mergeStates = base.States
		}

		learnStart := time.Now()
		model, err := repro.Learn(tr, withWorkers(c.Options))
		if err != nil {
			return nil, fmt.Errorf("%s: learn: %w", c.Name, err)
		}
		learnTime := time.Since(learnStart)

		rows = append(rows, Table2Row{
			Name:             c.Name,
			TraceLen:         tr.Len(),
			MergeTime:        mergeTime,
			MergeStates:      mergeStates,
			MergeTimedOut:    mergeTimedOut,
			LearnTime:        learnTime,
			LearnStates:      model.States,
			PaperMergeStates: paperMergeStates[c.Name],
			PaperLearnStates: c.PaperStates,
		})
	}
	return rows, nil
}

// Fig7Point is one point of the Fig 7 log–log scalability plot.
type Fig7Point struct {
	TraceLen      int
	SegmentedTime time.Duration
	FullTime      time.Duration
	FullTimedOut  bool
}

// Fig7 reproduces the scalability figure: integrator traces of
// exponentially increasing length, segmented vs non-segmented, with
// the non-segmented run bounded by fullTimeout.
func Fig7(lengths []int, fullTimeout time.Duration) ([]Fig7Point, error) {
	var points []Fig7Point
	for _, n := range lengths {
		tr, err := GenIntegratorLen(n)
		if err != nil {
			return nil, err
		}
		segStart := time.Now()
		if _, err := repro.Learn(tr, withWorkers(repro.LearnOptions{})); err != nil {
			return nil, fmt.Errorf("fig7 len %d segmented: %w", n, err)
		}
		segTime := time.Since(segStart)

		fullStart := time.Now()
		_, err = repro.Learn(tr, withWorkers(repro.LearnOptions{NonSegmented: true, Timeout: fullTimeout}))
		fullTime := time.Since(fullStart)
		timedOut := false
		if err != nil {
			if !isTimeout(err) {
				return nil, fmt.Errorf("fig7 len %d full: %w", n, err)
			}
			timedOut = true
		}
		points = append(points, Fig7Point{
			TraceLen:      n,
			SegmentedTime: segTime,
			FullTime:      fullTime,
			FullTimedOut:  timedOut,
		})
	}
	return points, nil
}

func isTimeout(err error) bool {
	return err != nil && (errorsIs(err, repro.ErrTimeout))
}
