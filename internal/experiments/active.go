// Active-probing evaluation: for each simulated system, learn a model
// from a deliberately truncated trace, run the counterexample-guided
// refinement loop of internal/active against the live system, and
// check the stabilized model against the passively learned full-trace
// one. RunActive backs `repro -exp active` and the committed
// BENCH_active.json.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/systems"
	"repro/internal/trace"
)

// ActiveRow is one system's refinement outcome.
type ActiveRow struct {
	// System is the registry name (systems.Open).
	System string `json:"system"`
	// SeedObs is the truncated seed trace length; FullObs the
	// canonical benchmark trace length the probes grow toward.
	SeedObs int `json:"seed_obs"`
	FullObs int `json:"full_obs"`
	// Rounds is rounds-to-stabilize; Divergences how many of them
	// found behaviour the hypothesis could not explain.
	Rounds      int  `json:"rounds"`
	Divergences int  `json:"divergences"`
	Stabilized  bool `json:"stabilized"`
	// States is the stabilized model's state count, and Identical
	// whether its automaton is byte-identical to the passively
	// learned full-trace model — the paper-level claim the active
	// loop makes.
	States    int  `json:"states"`
	Identical bool `json:"identical_to_passive"`
	// WallMS is the whole refinement's wall-clock time.
	WallMS float64 `json:"wall_ms"`
}

// activeTruncations picks each system's deliberately truncated seed
// length: enough to learn a plausible hypothesis, short of at least
// one behaviour (a missing turn, a missing attach-cycle variant). The
// acceptance test in internal/active pins the same values.
var activeTruncations = map[string]int{
	"counter": 100, // ascent only; both turns unseen
	"fifo":    6,   // ascent and top turn; bottom turn unseen
	"serial":  300,
	"usbslot": 12, // first attach cycle and a partial second
}

// activeCoreOptions maps the package-level evaluation knobs onto the
// pipeline options the refinement loop takes.
func activeCoreOptions() core.Options {
	return core.Options{
		Predicate: predicate.Options{Workers: Workers},
		Learn:     learn.Options{Portfolio: Portfolio, Workers: Workers},
		Telemetry: Telemetry,
		Context:   Context,
	}
}

// RunActive runs the refinement loop on every registered system and
// reports rounds-to-stabilize and the passive-model comparison.
func RunActive() ([]ActiveRow, error) {
	var rows []ActiveRow
	for _, name := range systems.Names() {
		sys, err := systems.Open(name)
		if err != nil {
			return nil, err
		}
		n := systems.CanonicalObservations(name)
		full, err := systems.DriveSchedule(sys, 0, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		pl, err := core.NewPipeline(full.Schema(), activeCoreOptions())
		if err != nil {
			return nil, err
		}
		passive, err := pl.LearnSource(trace.NewTraceSource(full))
		if err != nil {
			return nil, fmt.Errorf("%s: passive learn: %w", name, err)
		}
		seed := full.Slice(0, activeTruncations[name])
		t0 := time.Now()
		res, err := active.Refine(sys, seed, activeCoreOptions(), active.Options{ProbeCap: n})
		if err != nil {
			return nil, fmt.Errorf("%s: refine: %w", name, err)
		}
		row := ActiveRow{
			System:     name,
			SeedObs:    seed.Len(),
			FullObs:    n,
			Rounds:     len(res.Rounds),
			Stabilized: res.Stabilized,
			States:     res.Model.States,
			Identical:  res.Model.Automaton.String() == passive.Automaton.String(),
			WallMS:     float64(time.Since(t0).Microseconds()) / 1e3,
		}
		for _, r := range res.Rounds {
			if !r.Verdict.Conforms {
				row.Divergences++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteActiveBench writes the rows as the BENCH_active.json document.
func WriteActiveBench(w io.Writer, rows []ActiveRow) error {
	doc := struct {
		Benchmark   string      `json:"benchmark"`
		Description string      `json:"description"`
		GOOS        string      `json:"goos"`
		GOARCH      string      `json:"goarch"`
		Results     []ActiveRow `json:"results"`
	}{
		Benchmark:   "active",
		Description: "Active conformance probing: rounds to stabilize from a truncated seed trace, and whether the stabilized model is byte-identical to the passive full-trace model (repro -exp active -active-out BENCH_active.json)",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Results:     rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
